//! End-to-end serving tests: the continuous-batching engine against the
//! offline single-sequence oracle, over both the scheduler API and the
//! real HTTP front door.
//!
//! The load-bearing claim: continuous batching — chunked prefill,
//! iteration-level join/leave, paged KV, preempt-and-recompute — is a
//! *scheduling* change only. Greedy decoding is per-sequence
//! independent, so every served request must produce tokens
//! bit-identical to `quantize_model(..).generate(..)` run alone,
//! regardless of what batch composition the arrival pattern produced.

use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{quantize_model, BitAssignment, Bitwidth, Rounding};
use llmpq_runtime::{
    real_clock, serve_continuous, serve_static, AdmissionConfig, AdmissionPolicy,
    ContinuousConfig, HttpServer, HttpServerConfig, IterCost, KvPoolConfig, ModelStepEngine,
    PhasePolicy, Request, SimStepEngine, Telemetry,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const SEED: u64 = 7;

fn checkpoint() -> RefModel {
    RefModel::new(RefConfig::scaled_like(3, SEED))
}

fn ladder(n_layers: usize) -> Vec<BitAssignment> {
    vec![
        BitAssignment::uniform(n_layers, Bitwidth::Fp16),
        BitAssignment::uniform(n_layers, Bitwidth::Int8),
    ]
}

fn model_engine(n_blocks: usize) -> ModelStepEngine {
    let ckpt = checkpoint();
    ModelStepEngine::new(
        &ckpt,
        &ladder(ckpt.cfg.n_layers),
        Rounding::Deterministic,
        SEED,
        KvPoolConfig { n_blocks, block_tokens: 4 },
    )
    .expect("engine builds")
}

/// What the offline path generates for `prompt`: the rung-0 quantized
/// model, greedy, run alone.
fn offline_tokens(prompt: &[usize], n: usize) -> Vec<usize> {
    let ckpt = checkpoint();
    let quantized = quantize_model(
        &ckpt,
        &BitAssignment::uniform(ckpt.cfg.n_layers, Bitwidth::Fp16),
        Rounding::Deterministic,
        SEED,
    );
    quantized.generate(prompt, n, 0.0, 0).tokens
}

fn prompt_for(i: usize, len: usize, vocab: usize) -> Vec<usize> {
    (0..len).map(|j| (i * 131 + j * 17 + 3) % vocab).collect()
}

#[test]
fn continuous_batching_is_bit_identical_to_offline_generation() {
    // Tight pool + tiny prefill chunks + staggered arrivals: the batch
    // composition changes every iteration and at least some prompts are
    // prefilled across multiple chunks.
    let engine = model_engine(96);
    let vocab = checkpoint().cfg.vocab;
    let requests: Vec<Request> = (0..12)
        .map(|i| Request {
            id: i,
            arrival_s: i as f64 * 0.004,
            prompt: prompt_for(i, 3 + (i * 5) % 21, vocab),
            n_generate: 2 + i % 6,
            deadline_s: None,
            priority: (i % 3) as u32,
        })
        .collect();
    let cfg = ContinuousConfig {
        prefill_chunk: 5,
        token_budget: 48,
        max_batch: 8,
        policy: PhasePolicy::Mixed { prefill_frac: 0.5 },
        ..ContinuousConfig::default()
    };
    let report = serve_continuous(engine, &requests, cfg, None).expect("run completes");
    assert!(report.conserves(), "conservation: {:?}", report.stats);
    assert_eq!(report.completed, requests.len(), "everything admitted must finish");
    for fin in &report.outputs {
        let req = &requests[fin.id];
        assert_eq!(
            fin.tokens,
            offline_tokens(&req.prompt, req.n_generate),
            "request {} diverged from the offline oracle",
            fin.id
        );
    }
}

#[test]
fn preemption_under_kv_pressure_keeps_tokens_exact() {
    // A pool small enough that concurrent sequences cannot all hold KV:
    // the scheduler must preempt (drop KV, requeue, recompute) and the
    // regenerated tokens must still match the oracle.
    let engine = model_engine(24);
    let vocab = checkpoint().cfg.vocab;
    let requests: Vec<Request> = (0..6)
        .map(|i| Request {
            id: i,
            arrival_s: 0.0,
            prompt: prompt_for(i, 10, vocab),
            n_generate: 6,
            deadline_s: None,
            priority: (i % 2) as u32,
        })
        .collect();
    let report = serve_continuous(engine, &requests, ContinuousConfig::default(), None)
        .expect("run completes");
    assert!(report.conserves());
    assert_eq!(report.completed, 6);
    for fin in &report.outputs {
        let req = &requests[fin.id];
        assert_eq!(fin.tokens, offline_tokens(&req.prompt, req.n_generate));
    }
}

#[test]
fn static_baseline_matches_the_same_oracle() {
    // The comparison in BENCH_serving.json is only fair if both
    // schedulers compute the same function.
    let vocab = checkpoint().cfg.vocab;
    let requests: Vec<Request> = (0..5)
        .map(|i| Request {
            id: i,
            arrival_s: i as f64 * 0.01,
            prompt: prompt_for(i, 4 + i, vocab),
            n_generate: 3 + i % 3,
            deadline_s: None,
            priority: 0,
        })
        .collect();
    let report =
        serve_static(model_engine(512), &requests, ContinuousConfig::default(), 4, 0.05)
            .expect("run completes");
    assert!(report.conserves());
    assert_eq!(report.completed, 5);
    for fin in &report.outputs {
        let req = &requests[fin.id];
        assert_eq!(fin.tokens, offline_tokens(&req.prompt, req.n_generate));
    }
}

#[test]
fn overload_conserves_and_sheds_with_deadlines() {
    // 10x over capacity with a deadline-shedding queue: nothing may be
    // lost or double-counted, and the pressure must actually shed.
    let engine = SimStepEngine::new(
        KvPoolConfig { n_blocks: 256, block_tokens: 16 },
        vec![IterCost { base_s: 5e-3, per_prefill_token_s: 1e-4, per_decode_token_s: 1e-3 }],
        97,
        SEED,
    );
    let requests = llmpq_runtime::poisson_requests(600, 400.0, 24, 8, SEED).expect("trace");
    let cfg = ContinuousConfig {
        admission: AdmissionConfig {
            policy: AdmissionPolicy::DeadlineShed,
            max_queue: 64,
            default_deadline_s: Some(0.5),
            ..AdmissionConfig::default()
        },
        ..ContinuousConfig::default()
    };
    let report = serve_continuous(engine, &requests, cfg, None).expect("run completes");
    assert!(report.conserves(), "conservation: {:?}", report.stats);
    assert!(report.stats.shed + report.stats.expired > 0, "overload must shed");
    assert_eq!(
        report.stats.offered,
        report.stats.served + report.stats.shed + report.stats.expired,
        "trace drains fully"
    );
}

fn http_roundtrip(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(raw.as_bytes()).expect("send");
    let mut out = String::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.push_str(&String::from_utf8_lossy(&buf[..n])),
        }
    }
    out
}

#[test]
fn http_front_door_serves_model_tokens_and_metrics() {
    let ckpt = checkpoint();
    let vocab = ckpt.cfg.vocab;
    let engine = model_engine(512);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let telemetry = Telemetry::new(0);
    let server = HttpServer::start(
        listener,
        engine,
        ContinuousConfig::default(),
        HttpServerConfig { vocab, ..HttpServerConfig::default() },
        telemetry,
        real_clock(),
    )
    .expect("server starts");
    let addr = server.addr;

    let prompt = prompt_for(1, 7, vocab);
    let body = format!(
        "{{\"prompt\":{:?},\"max_tokens\":5}}",
        prompt
    );
    let resp = http_roundtrip(
        addr,
        &format!(
            "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    let expect = offline_tokens(&prompt, 5)
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",");
    assert!(
        resp.contains(&format!("\"tokens\":[{expect}]")),
        "HTTP tokens must match the offline oracle: {resp}"
    );

    // /metrics carries the serving block with a recorded request.
    let metrics = http_roundtrip(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
    for needle in ["serving:", "batch_occupancy:", "kv_occupancy:", "latency_us ttft:"] {
        assert!(metrics.contains(needle), "metrics missing {needle:?}:\n{metrics}");
    }

    // Strict JSON surface: unknown fields 400, bad JSON 400, wrong
    // route 404.
    let bad = http_roundtrip(
        addr,
        "POST /v1/completions HTTP/1.1\r\nContent-Length: 26\r\nConnection: close\r\n\r\n{\"prompt\":[1],\"maxtok\":2}x",
    );
    assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
    let lost = http_roundtrip(addr, "GET /v2/completions HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(lost.starts_with("HTTP/1.1 404"), "{lost}");

    let report = server.shutdown().expect("clean shutdown");
    assert!(report.conserves(), "server run conserves: {:?}", report.stats);
    assert_eq!(report.completed, 1);
}
