//! Cross-crate integration tests for the §7-discussion extensions:
//! tensor parallelism, KV-cache quantization, online serving, recovery.

use llm_pq::evaluate::stage_loads;
use llm_pq::{assign, tp_sweep, AssignerConfig, SolverChoice};
use llmpq_cluster::paper_cluster;
use llmpq_cost::CostDb;
use llmpq_model::{zoo, RefConfig, RefModel};
use llmpq_quant::{IndicatorTable, Rounding};
use llmpq_runtime::{run_pipeline_recoverable, FaultPlan};
use llmpq_sim::{simulate_pipeline, KernelEnv, PipelineWorkload};
use llmpq_workload::{simulate_online, BatchJob, OnlineConfig, PromptLengthModel};

fn flat_indicator(n: usize) -> IndicatorTable {
    IndicatorTable {
        omega: (0..n)
            .map(|l| {
                let b = 1.0 / (1.0 + l as f64 * 0.05) / n as f64;
                [b, b * 0.2, b * 0.01, 0.0]
            })
            .collect(),
    }
}

#[test]
fn tensor_parallel_sweep_covers_all_widths_feasibly() {
    let cluster = paper_cluster(11);
    let spec = zoo::bloom_176b();
    let job = BatchJob::paper_default();
    let out = tp_sweep(
        &cluster,
        &spec,
        &job,
        &KernelEnv::default(),
        &flat_indicator(spec.n_layers),
        0.1,
        10,
    );
    assert_eq!(out.len(), 3, "TP widths 1/2/4 on 4×A800");
    for o in &out {
        assert!(o.throughput > 0.0 && o.total_latency > 0.0, "width {}", o.tp_width);
        assert!(o.n_stages >= 1 && o.n_stages <= 4 / o.tp_width);
    }
}

#[test]
fn kv8_search_never_hurts_the_objective() {
    // Searching a strict superset of plans cannot worsen the outcome.
    let cluster = paper_cluster(9);
    let spec = zoo::opt_30b();
    let job = BatchJob { global_batch: 32, prompt_len: 512, n_generate: 400 };
    let db = CostDb::oracle(&KernelEnv::default());
    let indicator = flat_indicator(spec.n_layers);
    let mut cfg = AssignerConfig {
        theta: 0.1,
        solver: SolverChoice::Dp { group: 8 },
        xi: 2,
        max_orderings: 2,
        dp_grid: Some(8),
        search_kv8: false,
        max_bits: None,
    };
    let base = assign(&cluster, &spec, &job, &db, &indicator, &cfg).ok();
    cfg.search_kv8 = true;
    let wide = assign(&cluster, &spec, &job, &db, &indicator, &cfg).expect("kv8 superset feasible");
    if let Some(base) = base {
        assert!(
            wide.report.throughput >= base.report.throughput * 0.999,
            "kv8 search regressed: {} < {}",
            wide.report.throughput,
            base.report.throughput
        );
    }
    assert!(wide.plan.kv_bits == 8 || wide.plan.kv_bits == 16);
}

#[test]
fn online_simulation_over_a_real_plan_saturates_monotonically() {
    let cluster = paper_cluster(3);
    let spec = zoo::opt_30b();
    let job = BatchJob::paper_default();
    let db = CostDb::oracle(&KernelEnv::default());
    let cfg = AssignerConfig {
        theta: 0.1,
        solver: SolverChoice::Dp { group: 8 },
        xi: 2,
        max_orderings: 2,
        dp_grid: Some(8),
        search_kv8: false,
        max_bits: None,
    };
    let out = assign(&cluster, &spec, &job, &db, &flat_indicator(spec.n_layers), &cfg).unwrap();
    let plan = out.plan.clone();
    let cost = move |s: usize, n: usize, b: usize| {
        let job = BatchJob { global_batch: b, prompt_len: s, n_generate: n };
        let mut p = plan.clone();
        p.microbatch.prefill_size = p.microbatch.prefill_size.min(b).max(1);
        p.microbatch.prefill_count = b.div_ceil(p.microbatch.prefill_size);
        p.microbatch.decode_size = p.microbatch.decode_size.min(b).max(1);
        p.microbatch.decode_count = b.div_ceil(p.microbatch.decode_size);
        let loads = stage_loads(&p, &cluster, &spec, &db, &job);
        simulate_pipeline(
            &loads,
            &PipelineWorkload {
                prefill_microbatches: p.microbatch.prefill_count,
                decode_microbatches: p.microbatch.decode_count,
                n_tokens: n,
                master_prefill: 0.0,
                master_decode: 0.0,
            },
        )
        .total_latency
    };
    let pm = PromptLengthModel::default();
    let light = simulate_online(
        &OnlineConfig { arrival_rate: 0.1, n_requests: 40, ..Default::default() },
        &pm,
        &cost,
    )
    .expect("light online run");
    let heavy = simulate_online(
        &OnlineConfig { arrival_rate: 10.0, n_requests: 40, ..Default::default() },
        &pm,
        &cost,
    )
    .expect("heavy online run");
    assert!(heavy.p95_latency >= light.p95_latency * 0.9, "saturation inverted");
    assert!(heavy.throughput >= light.throughput * 0.9, "batching should help at load");
}

#[test]
fn recovery_works_for_an_assigned_plan() {
    // Full loop: assign on metadata → execute with an injected crash →
    // recover → verify token count and determinism across runs.
    let spec = llmpq_model::ModelSpec::new(
        llmpq_model::ModelFamily::Opt,
        "itest-6l",
        6,
        64,
        4,
        256,
        128,
    );
    let cluster = llmpq_cluster::Cluster::from_groups(
        "itest",
        &[(llmpq_cluster::GpuModel::T4_16G, 1), (llmpq_cluster::GpuModel::V100_32G, 1)],
        llmpq_cluster::Interconnect::Ethernet800G,
        None,
    );
    let db = CostDb::oracle(&KernelEnv::default());
    let job = BatchJob { global_batch: 4, prompt_len: 8, n_generate: 10 };
    let cfg = AssignerConfig {
        theta: 0.05,
        solver: SolverChoice::Dp { group: 1 },
        xi: 2,
        max_orderings: 2,
        dp_grid: Some(8),
        search_kv8: false,
        max_bits: None,
    };
    let out = assign(&cluster, &spec, &job, &db, &flat_indicator(6), &cfg).unwrap();
    let checkpoint = RefModel::new(RefConfig::scaled_like(6, 5));
    let prompts: Vec<Vec<usize>> =
        (0..4).map(|i| (0..8).map(|j| (i * 29 + j * 13) % 256).collect()).collect();
    let crash_stage = out.plan.stages.len() - 1;
    let (rec, restarts) = run_pipeline_recoverable(
        &checkpoint,
        &out.plan,
        &prompts,
        10,
        Rounding::Deterministic,
        0,
        2,
        Some(&FaultPlan::crash(crash_stage, 3)),
    )
    .expect("recovered");
    assert!(restarts >= 1);
    let (clean, zero) = run_pipeline_recoverable(
        &checkpoint,
        &out.plan,
        &prompts,
        10,
        Rounding::Deterministic,
        0,
        2,
        None,
    )
    .unwrap();
    assert_eq!(zero, 0);
    assert_eq!(rec.tokens, clean.tokens, "recovery must not change tokens");
}
