//! Telemetry round-trip tests: run an observed pipeline, export the
//! Chrome trace and metrics snapshot, and check the invariants the
//! exporters promise — the JSON parses, spans per stage are
//! monotonically ordered and non-overlapping, per-stage busy time fits
//! inside the run's wall-clock, and the snapshot reports percentiles.

use llm_pq::{ExecutionPlan, StagePlan};
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{Bitwidth, Rounding};
use llmpq_runtime::{
    run_pipeline, run_pipeline_observed, run_pipeline_supervised_observed, FaultPlan,
    FoldReplanner, SupervisorConfig, Telemetry,
};
use serde_json::Value;

fn tiny_plan() -> ExecutionPlan {
    ExecutionPlan {
        model: "tiny".into(),
        cluster: "test".into(),
        stages: vec![
            StagePlan { device: 0, layer_start: 0, layer_end: 1, bits: vec![Bitwidth::Int8] },
            StagePlan { device: 1, layer_start: 1, layer_end: 2, bits: vec![Bitwidth::Fp16] },
        ],
        microbatch: llmpq_workload::MicrobatchPlan {
            prefill_size: 2,
            prefill_count: 2,
            decode_size: 3,
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

fn run_observed(n_generate: usize) -> (Telemetry01, f64) {
    let m = RefModel::new(RefConfig::tiny());
    let prompts = vec![vec![1, 2, 3], vec![9, 8], vec![4, 5, 6]];
    let tel = Telemetry::new(2);
    let out = run_pipeline_observed(
        &m,
        &tiny_plan(),
        &prompts,
        n_generate,
        Rounding::Deterministic,
        0,
        None,
        Some(tel.clone()),
    )
    .expect("observed run");
    (tel, out.wall_s)
}

type Telemetry01 = std::sync::Arc<Telemetry>;

#[test]
fn observed_run_produces_identical_tokens() {
    let m = RefModel::new(RefConfig::tiny());
    let prompts = vec![vec![1, 2, 3], vec![9, 8], vec![4, 5, 6]];
    let plain = run_pipeline(&m, &tiny_plan(), &prompts, 5, Rounding::Deterministic, 0, None)
        .expect("plain run");
    let tel = Telemetry::new(2);
    let observed = run_pipeline_observed(
        &m,
        &tiny_plan(),
        &prompts,
        5,
        Rounding::Deterministic,
        0,
        None,
        Some(tel.clone()),
    )
    .expect("observed run");
    assert_eq!(plain.tokens, observed.tokens, "telemetry must not perturb generation");
    assert!(tel.tokens() > 0);
}

#[test]
fn chrome_trace_round_trips_through_json() {
    let (tel, _) = run_observed(4);
    let json = tel.to_chrome_trace();
    let v = serde_json::parse_value(&json).expect("trace must be valid JSON");
    let Value::Obj(pairs) = &v else { panic!("trace root must be an object") };
    assert!(pairs.iter().any(|(k, _)| k == "displayTimeUnit"));
    let Some(Value::Arr(events)) = v.get("traceEvents") else {
        panic!("traceEvents array expected")
    };
    assert!(!events.is_empty());
    // Every event is a metadata ("M") or complete ("X") event with the
    // required fields.
    for ev in events {
        let ph = match ev.get("ph") {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("event without ph: {other:?}"),
        };
        assert!(ph == "M" || ph == "X", "unexpected phase {ph}");
        assert!(ev.get("tid").is_some() && ev.get("pid").is_some());
        if ph == "X" {
            assert!(ev.get("ts").is_some() && ev.get("dur").is_some());
            let args = ev.get("args").expect("X event args");
            assert!(args.get("phase").is_some() && args.get("step").is_some());
        }
    }
}

#[test]
fn spans_per_stage_are_monotonic_and_non_overlapping() {
    let (tel, wall_s) = run_observed(5);
    let rows = tel.ordered_spans();
    assert!(rows.len() >= 3, "master + 2 stages traced, got {}", rows.len());
    for (tid, spans) in &rows {
        assert!(!spans.is_empty(), "tid {tid} has no spans");
        let mut prev_end = 0u64;
        for s in spans {
            assert!(
                s.ts_us >= prev_end,
                "tid {tid}: span [{}, {}) overlaps previous end {prev_end}",
                s.ts_us,
                s.ts_us + s.dur_us
            );
            prev_end = s.ts_us + s.dur_us;
        }
        // Total spanned time per trace thread fits in the wall clock
        // (with slack for the export-time epoch being started before
        // loading).
        let total_us: u64 = spans.iter().map(|s| s.dur_us).sum();
        assert!(
            (total_us as f64) / 1e6 <= wall_s + 0.5,
            "tid {tid}: spans sum {total_us}µs beyond wall {wall_s}s"
        );
    }
}

#[test]
fn parsed_trace_spans_are_ordered_per_tid() {
    // The same invariant, but checked on the *exported* JSON — what a
    // trace viewer actually loads.
    let (tel, _) = run_observed(4);
    let v = serde_json::parse_value(&tel.to_chrome_trace()).expect("valid JSON");
    let Some(Value::Arr(events)) = v.get("traceEvents") else { panic!("traceEvents") };
    let mut by_tid: std::collections::BTreeMap<i64, Vec<(f64, f64)>> = Default::default();
    for ev in events {
        if !matches!(ev.get("ph"), Some(Value::Str(s)) if s == "X") {
            continue;
        }
        let Some(Value::Num(tid)) = ev.get("tid") else { panic!("tid") };
        let Some(Value::Num(ts)) = ev.get("ts") else { panic!("ts") };
        let Some(Value::Num(dur)) = ev.get("dur") else { panic!("dur") };
        by_tid.entry(*tid as i64).or_default().push((*ts, *dur));
    }
    assert!(by_tid.len() >= 3, "master + 2 stages");
    for (tid, spans) in by_tid {
        let mut prev_end = f64::MIN;
        for (ts, dur) in spans {
            assert!(ts >= prev_end, "tid {tid}: span at {ts} overlaps previous end {prev_end}");
            prev_end = ts + dur;
        }
    }
}

#[test]
fn stage_busy_time_fits_wall_clock() {
    let (tel, wall_s) = run_observed(6);
    for i in 0..tel.n_stages() {
        let stage = tel.stage(i).expect("stage recorder");
        assert!(stage.items() > 0, "stage {i} processed items");
        assert!(
            stage.busy_s() <= wall_s + 0.5,
            "stage {i} busy {:.4}s exceeds wall {wall_s:.4}s",
            stage.busy_s()
        );
        // Phase routing: prefill and decode both ran.
        assert!(stage.prefill_latency.count() > 0, "stage {i} prefill samples");
        assert!(stage.decode_latency.count() > 0, "stage {i} decode samples");
    }
}

#[test]
fn metrics_snapshot_reports_percentiles_for_every_stage() {
    let (tel, _) = run_observed(4);
    let text = tel.metrics_text();
    for i in 0..2 {
        assert!(text.contains(&format!("stage {i}:")), "{text}");
    }
    assert!(text.contains("p50=") && text.contains("p95=") && text.contains("p99="));
    assert!(text.contains("tokens_per_s:"));
    assert!(text.contains("queue_peak="));
    assert!(text.contains("kv_entries="));
}

#[test]
fn supervised_observed_run_counts_restarts() {
    let m = RefModel::new(RefConfig::tiny());
    let prompts = vec![vec![1, 2, 3], vec![9, 8]];
    let tel = Telemetry::new(2);
    let cfg = SupervisorConfig {
        heartbeat_timeout_ms: 60,
        progress_timeout_ms: 150,
        tick_ms: 1,
        backoff_base_ms: 1,
        backoff_cap_ms: 4,
        ..SupervisorConfig::default()
    };
    let faults = FaultPlan::crash_schedule(&[(1, 2)]);
    let out = run_pipeline_supervised_observed(
        &m,
        &tiny_plan(),
        &prompts,
        5,
        Rounding::Deterministic,
        0,
        &cfg,
        Some(&faults),
        Some(&FoldReplanner),
        Some(tel.clone()),
    )
    .expect("recovered");
    assert_eq!(out.restarts, 1);
    assert_eq!(tel.restarts(), 1, "telemetry mirrors the supervisor's restart count");
    let text = tel.metrics_text();
    assert!(text.contains("restarts: 1"), "{text}");
}
