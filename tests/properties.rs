//! Property-based tests (proptest) over the core invariants.

use llm_pq::{evaluate_plan, ExecutionPlan, StagePlan};
use llmpq_cluster::{Cluster, GpuModel, Interconnect};
use llmpq_cost::CostDb;
use llmpq_model::{Matrix, RefConfig, RefModel};
use llmpq_quant::{quantize_matrix, BitAssignment, Bitwidth, Rounding};
use llmpq_runtime::run_pipeline;
use llmpq_sim::{simulate_pipeline, KernelEnv, PipelineWorkload, StageLoad};
use llmpq_workload::{BatchJob, MicrobatchPlan};
use proptest::prelude::*;

fn bitwidth_strategy() -> impl Strategy<Value = Bitwidth> {
    prop_oneof![
        Just(Bitwidth::Int3),
        Just(Bitwidth::Int4),
        Just(Bitwidth::Int8),
        Just(Bitwidth::Fp16),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Symmetric quantization error is bounded by half the per-row scale
    /// for any matrix and any integer bitwidth.
    #[test]
    fn quantization_error_bounded(
        rows in 1usize..12,
        cols in 1usize..24,
        seed in 0u64..1000,
        scale in 0.01f32..3.0,
    ) {
        let m = Matrix::random(rows, cols, scale, seed);
        for bits in [Bitwidth::Int3, Bitwidth::Int4, Bitwidth::Int8] {
            let q = quantize_matrix(&m, bits, Rounding::Deterministic, 0);
            let dq = q.dequantize();
            for r in 0..rows {
                let bound = q.scales[r] * 0.5 + 1e-5;
                for (a, b) in m.row(r).iter().zip(dq.row(r)) {
                    prop_assert!((a - b).abs() <= bound);
                }
            }
        }
    }

    /// Stochastic rounding never increases the representable range and
    /// stays reproducible per seed.
    #[test]
    fn stochastic_quantization_reproducible(seed in 0u64..500) {
        let m = Matrix::random(6, 10, 0.4, seed);
        let a = quantize_matrix(&m, Bitwidth::Int4, Rounding::Stochastic, seed);
        let b = quantize_matrix(&m, Bitwidth::Int4, Rounding::Stochastic, seed);
        prop_assert_eq!(a, b);
    }

    /// The pipeline DES respects causality: the batch can never finish
    /// faster than the critical path of a single micro-batch, nor faster
    /// than the busiest stage's total work.
    #[test]
    fn pipeline_lower_bounds(
        n_stages in 1usize..6,
        pre in 0.01f64..2.0,
        dec in 0.001f64..0.5,
        mu_p in 1usize..6,
        mu_d in 1usize..6,
        n_tokens in 1usize..20,
    ) {
        let stages = vec![StageLoad {
            prefill_time: pre,
            decode_time: dec,
            comm_prefill: 0.0,
            comm_decode: 0.0,
        }; n_stages];
        let w = PipelineWorkload {
            prefill_microbatches: mu_p,
            decode_microbatches: mu_d,
            n_tokens,
            master_prefill: 0.0,
            master_decode: 0.0,
        };
        let r = simulate_pipeline(&stages, &w);
        // Critical path of one micro-batch through the pipeline.
        let path = n_stages as f64 * pre
            + (n_tokens - 1) as f64 * n_stages as f64 * dec;
        prop_assert!(r.total_latency >= path - 1e-9);
        // Busiest stage work: all prefill + all decode items.
        let work = mu_p as f64 * pre + (mu_d * (n_tokens - 1)) as f64 * dec;
        prop_assert!(r.total_latency >= work - 1e-9);
        // Latency is finite and phases are consistent.
        prop_assert!(r.prefill_latency <= r.total_latency + 1e-12);
        prop_assert!((r.prefill_latency + r.decode_latency - r.total_latency).abs() < 1e-9);
    }

    /// Any structurally valid plan evaluates to positive latency or a
    /// clean OOM error — never a panic — for arbitrary per-layer bits.
    #[test]
    fn evaluate_never_panics(
        bits in prop::collection::vec(bitwidth_strategy(), 8),
        split in 1usize..8,
        prefill_size in 1usize..5,
    ) {
        let cluster = Cluster::from_groups(
            "prop",
            &[(GpuModel::T4_16G, 1), (GpuModel::A100_40G, 1)],
            Interconnect::Ethernet100G,
            None,
        );
        let spec = llmpq_model::ModelSpec::new(
            llmpq_model::ModelFamily::Opt, "prop-8l", 8, 512, 8, 5000, 1024,
        );
        let plan = ExecutionPlan {
            model: spec.name.clone(),
            cluster: cluster.name.clone(),
            stages: vec![
                StagePlan { device: 0, layer_start: 0, layer_end: split, bits: bits[..split].to_vec() },
                StagePlan { device: 1, layer_start: split, layer_end: 8, bits: bits[split..].to_vec() },
            ],
            microbatch: MicrobatchPlan {
                prefill_size,
                prefill_count: 8usize.div_ceil(prefill_size),
                decode_size: 4,
                decode_count: 2,
            },
            scheme: "prop".into(),
            kv_bits: 16,
        };
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob { global_batch: 8, prompt_len: 64, n_generate: 16 };
        match evaluate_plan(&plan, &cluster, &spec, &db, &job) {
            Ok(r) => {
                prop_assert!(r.total_latency > 0.0);
                prop_assert!(r.throughput > 0.0);
            }
            Err(e) => {
                let msg = format!("{e}");
                prop_assert!(msg.contains("OOM"), "unexpected error: {}", msg);
            }
        }
    }

    /// The threaded pipeline runtime is equivalent to sequential greedy
    /// generation for arbitrary prompts and stage splits.
    #[test]
    fn runtime_equals_sequential(
        seed in 0u64..50,
        split in 1usize..2,
        n_gen in 1usize..5,
        prompt_lens in prop::collection::vec(1usize..6, 1..4),
    ) {
        let checkpoint = RefModel::new(RefConfig::tiny()); // 2 layers
        let bits = vec![Bitwidth::Int8, Bitwidth::Int4];
        let prompts: Vec<Vec<usize>> = prompt_lens
            .iter()
            .enumerate()
            .map(|(i, &l)| (0..l).map(|j| (seed as usize + i * 13 + j * 7) % 96).collect())
            .collect();
        let n_seqs = prompts.len();
        let plan = ExecutionPlan {
            model: "tiny".into(),
            cluster: "prop".into(),
            stages: vec![
                StagePlan { device: 0, layer_start: 0, layer_end: split, bits: bits[..split].to_vec() },
                StagePlan { device: 1, layer_start: split, layer_end: 2, bits: bits[split..].to_vec() },
            ],
            microbatch: MicrobatchPlan {
                prefill_size: 1,
                prefill_count: n_seqs,
                decode_size: n_seqs,
                decode_count: 1,
            },
            scheme: "prop".into(),
            kv_bits: 16,
        };
        let out = run_pipeline(&checkpoint, &plan, &prompts, n_gen, Rounding::Deterministic, 0, None)
            .expect("runtime ok");
        let qm = llmpq_quant::quantize_model(
            &checkpoint,
            &BitAssignment { bits },
            Rounding::Deterministic,
            0,
        );
        for (i, p) in prompts.iter().enumerate() {
            prop_assert_eq!(&out.tokens[i], &qm.generate(p, n_gen, 0.0, 0).tokens);
        }
    }

    /// Plan JSON serialization round-trips for arbitrary valid plans.
    #[test]
    fn plan_json_round_trip(
        bits in prop::collection::vec(bitwidth_strategy(), 1..20),
        device in 0usize..4,
    ) {
        let n = bits.len();
        let plan = ExecutionPlan {
            model: "m".into(),
            cluster: "c".into(),
            stages: vec![StagePlan { device, layer_start: 0, layer_end: n, bits }],
            microbatch: MicrobatchPlan {
                prefill_size: 1,
                prefill_count: 1,
                decode_size: 1,
                decode_count: 1,
            },
            scheme: "s".into(),
            kv_bits: 16,
        };
        let parsed = ExecutionPlan::from_json(&plan.to_json()).unwrap();
        prop_assert_eq!(parsed, plan);
    }
}
