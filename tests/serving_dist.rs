//! Distributed continuous serving: the online scheduler driven through
//! the real multi-process TCP ring — three stage OS processes (spawned
//! via the `llmpq-dist` binary) plus the serving master in this test
//! process — must produce tokens bit-identical to the single-process
//! `serve_continuous` engine, including through an injected mid-serve
//! wire fault (supervisor restart + recompute) and a committed live
//! plan swap at an iteration boundary.
//!
//! The load-bearing claim mirrors `tests/serving.rs`, one level up:
//! continuous batching is a scheduling change, and the *placement* of
//! the step engine — local threads vs a TCP pipeline ring — is an
//! execution-transport change. Neither may perturb a single token.

use llm_pq::{ExecutionPlan, StagePlan};
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{BitAssignment, Bitwidth, Rounding};
use llmpq_runtime::{
    poisson_requests, serve_continuous, ContinuousConfig, ContinuousReport, DistMasterConfig,
    DistServeConfig, DistStepEngine, KvPoolConfig, ModelStepEngine, Request, RungSwap,
    TcpServingRing, WireFaultPlan,
};
use llmpq_workload::MicrobatchPlan;
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SEED: u64 = 0;
const N_LAYERS: usize = 3;
/// Stage-side KV slots; doubles as the `--batch` flag handed to the
/// stage processes (their per-sequence cache count).
const N_SLOTS: usize = 8;

/// The exact checkpoint `llmpq-dist` derives from `--seed`: the stage
/// processes must build identical stand-in weights or the activations
/// (and therefore the tokens) would diverge.
fn checkpoint() -> RefModel {
    RefModel::new(RefConfig::scaled_like(N_LAYERS, 0xD157 ^ SEED))
}

/// Three stages, one layer each, at uniform `bits`.
fn plan(bits: Bitwidth) -> ExecutionPlan {
    ExecutionPlan {
        model: "serving-dist".into(),
        cluster: "loopback".into(),
        stages: (0..N_LAYERS)
            .map(|s| StagePlan { device: s, layer_start: s, layer_end: s + 1, bits: vec![bits] })
            .collect(),
        microbatch: MicrobatchPlan {
            prefill_size: 1,
            prefill_count: 1,
            decode_size: 1,
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

/// Rung ladder: boot on Fp16, degrade (or live-swap) to Int8.
fn ladder() -> Vec<ExecutionPlan> {
    vec![plan(Bitwidth::Fp16), plan(Bitwidth::Int8)]
}

fn bit_ladder() -> Vec<BitAssignment> {
    vec![
        BitAssignment::uniform(N_LAYERS, Bitwidth::Fp16),
        BitAssignment::uniform(N_LAYERS, Bitwidth::Int8),
    ]
}

fn serve_cfg() -> ContinuousConfig {
    ContinuousConfig { token_budget: 16, max_batch: 4, ..ContinuousConfig::default() }
}

fn trace() -> Vec<Request> {
    poisson_requests(6, 50.0, 6, 4, 5).expect("arrival trace")
}

fn finished_tokens(report: &ContinuousReport) -> BTreeMap<usize, Vec<usize>> {
    report.outputs.iter().map(|f| (f.id, f.tokens.clone())).collect()
}

/// The single-process reference: the same scheduler over the local
/// model-backed step engine.
fn local_report(cfg: ContinuousConfig) -> ContinuousReport {
    let engine = ModelStepEngine::new(
        &checkpoint(),
        &bit_ladder(),
        Rounding::Deterministic,
        SEED,
        KvPoolConfig::default(),
    )
    .expect("local engine");
    serve_continuous(engine, &trace(), cfg, None).expect("local serve")
}

/// Locate (building if necessary) the `llmpq-dist` binary — the same
/// resolution `tests/distributed.rs` uses.
fn dist_binary() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join(format!("llmpq-dist{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        let status = Command::new(env!("CARGO", "cargo"))
            .args(["build", "-p", "llmpq-cli", "--bin", "llmpq-dist"])
            .status()
            .expect("cargo build llmpq-dist");
        assert!(status.success(), "building llmpq-dist failed");
    }
    assert!(bin.exists(), "llmpq-dist not found at {}", bin.display());
    bin
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("llmpq-serving-dist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

struct KillOnDrop(Child, String);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Wait for a stage process under a watchdog and return its stdout.
fn wait_stage(mut child: KillOnDrop, limit: Duration) -> String {
    let start = Instant::now();
    loop {
        match child.0.try_wait().expect("try_wait") {
            Some(status) => {
                let mut out = String::new();
                if let Some(mut stdout) = child.0.stdout.take() {
                    use std::io::Read;
                    let _ = stdout.read_to_string(&mut out);
                }
                assert!(status.success(), "{} exited with {status}:\n{out}", child.1);
                return out;
            }
            None if start.elapsed() > limit => panic!("{} still running after {limit:?}", child.1),
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Run the distributed serving path: spawn one OS process per stage of
/// the boot plan (stage 0 optionally carrying a wire-fault plan), bring
/// up the serving ring, and drive the continuous scheduler through it.
/// Returns the serving report and each stage process's stdout.
fn dist_report(
    cfg: ContinuousConfig,
    stage0_faults: Option<&WireFaultPlan>,
    tag: &str,
) -> (ContinuousReport, Vec<String>) {
    let bin = dist_binary();
    let boot = ladder().remove(0);
    let strat = scratch(&format!("{tag}-plan.json"));
    std::fs::write(&strat, boot.to_json()).unwrap();
    let fault_file = stage0_faults.map(|f| {
        let p = scratch(&format!("{tag}-wire.json"));
        std::fs::write(&p, f.to_json()).unwrap();
        p
    });

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind master listener");
    let addr = listener.local_addr().unwrap().to_string();

    let mut stages = Vec::new();
    for s in 0..boot.stages.len() {
        let mut cmd = Command::new(&bin);
        cmd.args(["--strat_file_name", strat.to_str().unwrap()])
            .args(["--stage", &s.to_string()])
            .args(["--listen", "127.0.0.1:0"])
            .args(["--connect", &addr])
            .args(["--batch", &N_SLOTS.to_string()])
            .args(["--seed", &SEED.to_string()])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if s == 0 {
            if let Some(f) = &fault_file {
                cmd.args(["--wire-fault", f.to_str().unwrap()]);
            }
        }
        stages.push(KillOnDrop(cmd.spawn().expect("spawn stage"), format!("stage {s}")));
    }

    let ring = TcpServingRing::establish(&boot, listener, &DistMasterConfig::default())
        .expect("stage fleet checks in");
    let engine = DistStepEngine::over_ring(
        &checkpoint(),
        ladder(),
        DistServeConfig { n_slots: N_SLOTS, ..DistServeConfig::default() },
        Box::new(ring),
    )
    .expect("dist engine");
    let report = serve_continuous(engine, &trace(), cfg, None).expect("dist serve");
    // `engine` (and the ring inside it) dropped above: the ring said
    // `Bye`, so every stage process flushes its report and exits.
    let outs = stages.into_iter().map(|c| wait_stage(c, Duration::from_secs(30))).collect();
    (report, outs)
}

#[test]
fn three_process_serving_is_bit_identical_to_local_engine() {
    let local = local_report(serve_cfg());
    let (dist, stage_outs) = dist_report(serve_cfg(), None, "clean");
    assert_eq!(
        finished_tokens(&local),
        finished_tokens(&dist),
        "distributed continuous serving must not perturb a single token"
    );
    assert!(dist.stats.conserves(dist.pending_end), "conservation: {:?}", dist.stats);
    for (s, out) in stage_outs.iter().enumerate() {
        assert!(out.contains("served 1 attempt(s)"), "stage {s} restarted unexpectedly:\n{out}");
    }
}

#[test]
fn wire_fault_mid_serve_recovers_bit_identically() {
    let local = local_report(serve_cfg());
    // Stage 0's downstream link dies after 6 data frames — mid-serve,
    // with sequences in flight.
    let faults = WireFaultPlan::disconnect_tx(0, 6);
    let (dist, stage_outs) = dist_report(serve_cfg(), Some(&faults), "fault");
    assert_eq!(
        finished_tokens(&local),
        finished_tokens(&dist),
        "recompute after the ring restart must be exact"
    );
    assert!(dist.stats.recovered > 0, "restart requeued in-flight work: {:?}", dist.stats);
    assert!(dist.stats.conserves(dist.pending_end), "no request lost: {:?}", dist.stats);
    assert!(
        stage_outs.iter().any(|o| o.contains("served 2 attempt(s)")),
        "expected exactly one supervisor restart:\n{}",
        stage_outs.join("\n")
    );
}

#[test]
fn live_swap_mid_serve_over_processes_matches_local_swap() {
    let mut cfg = serve_cfg();
    cfg.swaps = vec![RungSwap { at_iteration: 3, rung: 1 }];
    let local = local_report(cfg.clone());
    let (dist, stage_outs) = dist_report(cfg, None, "swap");
    assert_eq!(
        finished_tokens(&local),
        finished_tokens(&dist),
        "a committed live swap must be transparent to the token stream"
    );
    assert!(dist.stats.conserves(dist.pending_end), "conservation: {:?}", dist.stats);
    // The swap requantizes in place over the existing ring — no restart.
    for (s, out) in stage_outs.iter().enumerate() {
        assert!(out.contains("served 1 attempt(s)"), "stage {s} restarted during swap:\n{out}");
    }
}

#[test]
fn wire_fault_after_swap_boots_restart_into_committed_rung() {
    // The hardest path: the swap commits at iteration 2, then stage 0's
    // link dies. The rebuilt ring boots on the Fp16 boot plan, so the
    // engine must replay the Int8 barrier before resuming — or every
    // token decoded after the restart would come from the wrong rung.
    let mut cfg = serve_cfg();
    cfg.swaps = vec![RungSwap { at_iteration: 2, rung: 1 }];
    let local = local_report(cfg.clone());
    let faults = WireFaultPlan::disconnect_tx(0, 10);
    let (dist, _) = dist_report(cfg, Some(&faults), "swap-fault");
    assert_eq!(
        finished_tokens(&local),
        finished_tokens(&dist),
        "restart must resume on the committed rung"
    );
    assert!(dist.stats.recovered > 0, "the fault landed mid-serve: {:?}", dist.stats);
    assert!(dist.stats.conserves(dist.pending_end), "no request lost: {:?}", dist.stats);
}
