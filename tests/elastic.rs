//! Integration: the elastic-fleet control loop driving the *real*
//! pipeline ring. A device join debounces into one replan whose target
//! is executed through the two-phase live-swap barrier
//! (`run_pipeline_with_swap`), token-identical to the hybrid oracle;
//! a device loss mid-migration aborts the barrier cleanly back to the
//! still-serving old plan with nothing dropped or duplicated.

use llm_pq::{ExecutionPlan, MicrobatchPlan, StagePlan};
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{quantize_model, Bitwidth, Rounding};
use llmpq_runtime::{
    hybrid_oracle_tokens, run_pipeline_with_swap, ControllerCommand, ControllerState,
    DebouncedPolicy, ElasticPlanner, FleetController, FleetEvent, FleetEventKind, FleetView,
    PlanFailure, RecoveryPolicy, SupervisorConfig, SwapRequest, Telemetry,
};

const N_LAYERS: usize = 4;
const N_STAGES: usize = 3;

fn checkpoint() -> RefModel {
    RefModel::new(RefConfig::scaled_like(N_LAYERS, 42))
}

fn prompts(n: usize) -> Vec<Vec<usize>> {
    (0..n).map(|i| (0..8).map(|j| (i * 31 + j * 7) % 256).collect()).collect()
}

fn plan_on(devices: [usize; N_STAGES], bits: &[Bitwidth; N_LAYERS]) -> ExecutionPlan {
    let partition = [(0usize, 1usize), (1, 3), (3, 4)];
    ExecutionPlan {
        model: "tiny-4l".into(),
        cluster: "elastic-trio".into(),
        stages: partition
            .iter()
            .zip(devices)
            .map(|(&(lo, hi), device)| StagePlan {
                device,
                layer_start: lo,
                layer_end: hi,
                bits: bits[lo..hi].to_vec(),
            })
            .collect(),
        microbatch: MicrobatchPlan {
            prefill_size: 1,
            prefill_count: 2,
            decode_size: 2,
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        heartbeat_timeout_ms: 2_000,
        progress_timeout_ms: 5_000,
        tick_ms: 1,
        max_restarts: 3,
        backoff_base_ms: 1,
        backoff_factor: 2.0,
        backoff_cap_ms: 8,
        policy: RecoveryPolicy::RestartSamePlan,
        max_queue: None,
    }
}

/// The test's elastic planner: the pipeline keeps its ring shape
/// (`N_STAGES` stages — live swaps require an unchanged stage count),
/// stages are re-homed onto the `N_STAGES` highest-id live devices, and
/// a fleet larger than the ring runs the whole model at Int8 (the
/// "spare capacity buys the quantization headroom back" move); exactly
/// ring-sized fleets stay at Fp16.
struct RehomePlanner;

impl ElasticPlanner for RehomePlanner {
    fn plan(&mut self, view: &FleetView<'_>) -> Result<ExecutionPlan, PlanFailure> {
        if view.live.is_empty() {
            return Err(PlanFailure::NoDevices);
        }
        if view.live.len() < N_STAGES {
            return Err(PlanFailure::Infeasible {
                devices: view.live.len(),
                reason: format!("{N_STAGES}-stage ring needs {N_STAGES} devices"),
            });
        }
        let chosen: Vec<usize> = view.live.iter().rev().take(N_STAGES).rev().copied().collect();
        let devices: [usize; N_STAGES] = chosen.try_into().expect("exactly N_STAGES chosen");
        let bits = if view.live.len() > N_STAGES {
            [Bitwidth::Int8; N_LAYERS]
        } else {
            [Bitwidth::Fp16; N_LAYERS]
        };
        Ok(plan_on(devices, &bits))
    }
}

fn controller(base: &ExecutionPlan) -> FleetController {
    FleetController::new(
        Box::new(RehomePlanner),
        Box::new(DebouncedPolicy::new(10_000, 50_000, 200_000, 3)),
        [0, 1, 2],
        base.clone(),
    )
}

fn join(device: usize, at_us: u64) -> FleetEvent {
    FleetEvent { device, kind: FleetEventKind::Join, at_us }
}

fn leave(device: usize, at_us: u64) -> FleetEvent {
    FleetEvent { device, kind: FleetEventKind::Leave, at_us }
}

/// Join → debounced replan → live swap on the real ring: the committed
/// target re-homes a stage onto the joined device and drops the fleet
/// to Int8, and the served tokens are bit-identical to the hybrid
/// oracle (old model up to the boundary, new model after). Exact token
/// counts per sequence mean no request was dropped or double-served.
#[test]
fn scale_out_join_replans_and_live_swaps_on_the_ring() {
    let ck = checkpoint();
    let base = plan_on([0, 1, 2], &[Bitwidth::Fp16; N_LAYERS]);
    let mut ctl = controller(&base);

    // t=1ms: device 3 joins. Debounce holds the replan for 10ms.
    assert_eq!(ctl.on_event(join(3, 1_000)), None);
    assert_eq!(ctl.state(), ControllerState::Debouncing);
    assert_eq!(ctl.tick(2_000), None, "still inside the debounce window");

    let cmd = ctl.tick(12_000).expect("debounce expired: replan");
    let ControllerCommand::BeginMigration { target } = cmd else {
        panic!("expected BeginMigration, got {cmd:?}");
    };
    assert_eq!(ctl.state(), ControllerState::Migrating);
    assert!(
        target.stages.iter().all(|s| ctl.live().contains(&s.device)),
        "target must reference only live devices"
    );
    assert!(
        target.stages.iter().any(|s| s.device == 3),
        "scale-out must re-home a stage onto the joined device"
    );
    assert_eq!(target.stages.len(), base.stages.len(), "live swaps keep the stage count");

    // Execute the migration on the real ring: one mid-decode swap.
    let prompts = prompts(3);
    let n_gen = 8;
    let swap_at = 3;
    let telemetry = Telemetry::new(N_STAGES);
    let out = run_pipeline_with_swap(
        &ck,
        &base,
        &prompts,
        n_gen,
        Rounding::Deterministic,
        0,
        &[SwapRequest { at_token: swap_at, plan: target.clone() }],
        &fast_supervisor(),
        None,
        Some(telemetry.clone()),
    )
    .expect("elastic swap run ok");

    assert_eq!(out.restarts, 0);
    assert_eq!(out.swaps.len(), 1);
    assert!(out.swaps[0].committed, "clean scale-out must commit: {:?}", out.swaps[0].reason);
    assert_eq!(out.final_plan, target);

    // Report the commit back to the controller.
    ctl.migration_resolved(true, 13_000);
    assert_eq!(ctl.state(), ControllerState::Cooldown);
    assert_eq!(ctl.commits(), 1);
    assert_eq!(ctl.plan(), &target);
    assert!(ctl.plan_is_live(), "committed plan must reference only live devices");
    assert_eq!(ctl.alarms().aborted_migrations, 0);

    // No request lost or double-served: every sequence has exactly
    // n_gen tokens, bit-identical to the hybrid oracle.
    let qo = quantize_model(&ck, &base.bit_assignment(), Rounding::Deterministic, 0);
    let qn = quantize_model(&ck, &target.bit_assignment(), Rounding::Deterministic, 0);
    assert_eq!(out.output.tokens.len(), prompts.len());
    for (i, p) in prompts.iter().enumerate() {
        let want = hybrid_oracle_tokens(&[(0, &qo), (swap_at, &qn)], p, n_gen, None);
        assert_eq!(out.output.tokens[i].len(), n_gen, "sequence {i} dropped tokens");
        assert_eq!(out.output.tokens[i], want, "sequence {i} diverged from the oracle");
    }

    // Cooldown drains back to Idle with nothing pending.
    assert_eq!(ctl.tick(13_000 + 50_000), None);
    assert_eq!(ctl.state(), ControllerState::Idle);
}

/// The joined device dies while its migration is in the barrier: the
/// controller aborts back to the old plan, the old plan — which never
/// referenced the loser — keeps serving bit-identically to a plain run,
/// and a later stable re-join migrates successfully.
#[test]
fn device_loss_mid_migration_aborts_cleanly_to_the_old_plan() {
    let ck = checkpoint();
    let base = plan_on([0, 1, 2], &[Bitwidth::Fp16; N_LAYERS]);
    let mut ctl = controller(&base);

    ctl.on_event(join(3, 1_000));
    let cmd = ctl.tick(12_000).expect("replan after debounce");
    assert!(matches!(cmd, ControllerCommand::BeginMigration { .. }));

    // The join target dies inside the barrier window.
    let abort = ctl.on_event(leave(3, 12_500));
    assert_eq!(abort, Some(ControllerCommand::AbortMigration { device: 3 }));
    ctl.migration_resolved(false, 12_600);
    assert_eq!(ctl.alarms().aborted_migrations, 1);
    assert_eq!(ctl.plan(), &base, "abort must leave the old plan in force");
    assert_eq!(ctl.commits(), 0);
    assert!(ctl.plan_is_live(), "the old plan never referenced the lost device");

    // The data plane never received a commit, so serving continues on
    // the old plan exactly as if the migration had never been proposed:
    // run the real ring with the (aborted → empty) swap schedule and
    // check bit-identity against the plain old-plan oracle.
    let prompts = prompts(2);
    let n_gen = 8;
    let out = run_pipeline_with_swap(
        &ck,
        &base,
        &prompts,
        n_gen,
        Rounding::Deterministic,
        0,
        &[],
        &fast_supervisor(),
        None,
        None,
    )
    .expect("old plan keeps serving after the abort");

    assert_eq!(out.restarts, 0);
    assert!(out.swaps.is_empty());
    assert_eq!(out.final_plan, base);
    let q = quantize_model(&ck, &base.bit_assignment(), Rounding::Deterministic, 0);
    for (i, p) in prompts.iter().enumerate() {
        let want = hybrid_oracle_tokens(&[(0, &q)], p, n_gen, None);
        assert_eq!(out.output.tokens[i].len(), n_gen, "sequence {i} dropped tokens");
        assert_eq!(out.output.tokens[i], want, "sequence {i} diverged on the held plan");
    }

    // The abort must not wedge the loop: a stable re-join replans and
    // commits.
    ctl.on_event(join(3, 400_000));
    let cmd = ctl.tick(420_000).expect("re-join replans after the abort");
    let ControllerCommand::BeginMigration { target } = cmd else {
        panic!("expected BeginMigration, got {cmd:?}");
    };
    assert!(target.stages.iter().any(|s| s.device == 3));
    ctl.migration_resolved(true, 421_000);
    assert_eq!(ctl.commits(), 1);
    assert!(ctl.plan_is_live());
}

/// Losing a device the *old plan* serves on, mid-migration, aborts the
/// barrier too — and when the survivors can't hold the model the
/// controller holds the (now degraded) old plan and raises the
/// fleet-infeasible alarm instead of committing a dead plan.
#[test]
fn survivor_shortfall_after_abort_raises_the_infeasible_alarm() {
    let base = plan_on([0, 1, 2], &[Bitwidth::Fp16; N_LAYERS]);
    let mut ctl = controller(&base);

    ctl.on_event(join(3, 1_000));
    assert!(ctl.tick(12_000).is_some(), "join must start a migration");

    // A *serving* device dies mid-barrier: abort.
    let abort = ctl.on_event(leave(1, 12_500));
    assert_eq!(abort, Some(ControllerCommand::AbortMigration { device: 1 }));
    ctl.migration_resolved(false, 12_600);

    // Two more losses leave a 2-device fleet under a 3-stage ring:
    // typed infeasible, alarm raised, old plan held.
    ctl.on_event(leave(3, 13_000));
    ctl.on_event(leave(2, 13_100));
    assert_eq!(ctl.tick(24_000), None, "infeasible fleet must not emit a migration");
    assert_eq!(ctl.alarms().infeasible_fleet, 1);
    assert_eq!(ctl.plan(), &base, "the old plan is held even when degraded");
    assert_eq!(ctl.state(), ControllerState::Idle);
    assert!(
        ctl.log().iter().any(|l| l.contains("infeasible")),
        "the decision log must record the typed failure: {:?}",
        ctl.log()
    );
}
