//! Integration: the overload-control layer driving the *real*
//! supervised thread pipeline, end-to-end across `llm-pq` (degradation
//! ladder from Algorithm 1), `llmpq-cost` (KV budget from the memory
//! model), and `llmpq-runtime` (admission → KV guard → ladder →
//! supervised execution with fault injection and bounded queues).

use llm_pq::{degradation_ladder, AssignerConfig, ExecutionPlan, SolverChoice, DEFAULT_CAPS};
use llmpq_cluster::{Cluster, GpuModel, Interconnect};
use llmpq_cost::CostDb;
use llmpq_model::{ModelFamily, ModelSpec, RefConfig, RefModel};
use llmpq_quant::{quantize_model, BitAssignment, IndicatorTable, Rounding};
use llmpq_runtime::{
    poisson_requests, serve, AdmissionConfig, AdmissionPolicy, BatchEngine, DegradationConfig,
    FaultPlan, KvGuardConfig, PipelineEngine, ServeConfig, SupervisorConfig,
};
use llmpq_sim::KernelEnv;
use llmpq_workload::BatchJob;

fn tiny_spec() -> ModelSpec {
    ModelSpec::new(ModelFamily::Opt, "tiny-4l", 4, 64, 4, 256, 128)
}

fn tiny_indicator(n_layers: usize) -> IndicatorTable {
    IndicatorTable {
        omega: (0..n_layers)
            .map(|l| {
                let base = 1.0 / (1.0 + l as f64);
                [base, base * 0.2, base * 0.01, 0.0]
            })
            .collect(),
    }
}

fn duo() -> Cluster {
    Cluster::from_groups(
        "duo",
        &[(GpuModel::T4_16G, 1), (GpuModel::V100_32G, 1)],
        Interconnect::Ethernet800G,
        None,
    )
}

fn quick_cfg() -> AssignerConfig {
    AssignerConfig {
        theta: 0.05,
        solver: SolverChoice::Dp { group: 1 },
        xi: 2,
        max_orderings: 2,
        dp_grid: Some(8),
        search_kv8: false,
        max_bits: None,
    }
}

fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        heartbeat_timeout_ms: 100,
        progress_timeout_ms: 300,
        tick_ms: 1,
        max_restarts: 3,
        backoff_base_ms: 1,
        backoff_factor: 2.0,
        backoff_cap_ms: 8,
        max_queue: Some(2),
        ..SupervisorConfig::default()
    }
}

/// Build a real ladder with Algorithm 1 and serve an overload burst
/// through the supervised pipeline, with fault injection active and
/// bounded inter-stage queues — the full robustness stack in one run.
#[test]
fn overload_with_faults_conserves_and_degrades() {
    let cluster = duo();
    let spec = tiny_spec();
    let db = CostDb::oracle(&KernelEnv::default());
    let indicator = tiny_indicator(spec.n_layers);
    let job = BatchJob { global_batch: 2, prompt_len: 4, n_generate: 3 };
    let ladder =
        degradation_ladder(&cluster, &spec, &job, &db, &indicator, &quick_cfg(), &DEFAULT_CAPS)
            .expect("ladder");
    assert!(!ladder.is_empty());
    let plans: Vec<ExecutionPlan> = ladder.rungs.iter().map(|r| r.plan.clone()).collect();

    let checkpoint = RefModel::new(RefConfig::scaled_like(spec.n_layers, 11));
    let mut engine = PipelineEngine::new(checkpoint, plans, fast_supervisor());
    engine.max_batch = 2;
    // Crash stage 0 after one item on the first batch and hang stage 1
    // on the third — the supervisor must absorb both inside run_batch.
    engine.fault_plans = vec![FaultPlan::crash_schedule(&[(0, 1)]), FaultPlan::default()];

    // KV budget from the cost model: what the tightest device can hold
    // for this job's sequence length (coarse but cost-model-derived).
    let seq = job.prompt_len + job.n_generate;
    let kv_per_token_layer = spec.kv_bytes_per_layer(1, 1, 16.0);
    let kv_per_token = kv_per_token_layer * spec.n_layers as f64;
    engine.kv_per_token = kv_per_token;
    let budget = kv_per_token * seq as f64 * 4.0; // room for ~4 requests

    let n = 12usize;
    let requests = poisson_requests(n, 50.0, 4, 3, 9).expect("arrivals");
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            policy: AdmissionPolicy::Reject,
            max_queue: 6,
            default_deadline_s: None,
            queue_timeout_s: 1.0,
        },
        kv_guard: Some(KvGuardConfig { budget_bytes: budget, headroom: 0.1 }),
        degradation: Some(DegradationConfig { high: 0.7, low: 0.2, dwell: 1 }),
        max_inflight: 2,
        max_retries: 2,
    };
    let rep = serve(&mut engine, &requests, &cfg, None);

    assert!(rep.stats.conserves(0), "{:?}", rep.stats);
    assert_eq!(rep.stats.offered, n);
    assert!(rep.stats.served > 0, "the pipeline must make progress under faults");
    // Every served request produced real tokens through the pipeline.
    assert_eq!(engine.outputs.len(), rep.stats.served);
    for toks in engine.outputs.values() {
        assert_eq!(toks.len(), 3, "served requests generate their full token budget");
    }
    assert!(engine.restarts >= 1, "the injected crash must have cost a restart");
}

/// Tokens served through the overload loop at rung 0 are bit-identical
/// to sequential execution of the rung-0 quantized model — overload
/// control must not perturb generation.
#[test]
fn overload_served_tokens_match_reference() {
    let cluster = duo();
    let spec = tiny_spec();
    let db = CostDb::oracle(&KernelEnv::default());
    let indicator = tiny_indicator(spec.n_layers);
    let job = BatchJob { global_batch: 2, prompt_len: 4, n_generate: 3 };
    let ladder =
        degradation_ladder(&cluster, &spec, &job, &db, &indicator, &quick_cfg(), &DEFAULT_CAPS)
            .expect("ladder");
    let rung0 = ladder.rungs[0].plan.clone();

    let checkpoint = RefModel::new(RefConfig::scaled_like(spec.n_layers, 23));
    let reference = {
        let bits = rung0.bit_assignment();
        quantize_model(&checkpoint, &BitAssignment { bits: bits.bits }, Rounding::Deterministic, 0)
    };

    let mut engine = PipelineEngine::new(checkpoint, vec![rung0], fast_supervisor());
    engine.max_batch = 2;
    let requests = poisson_requests(4, 2.0, 4, 3, 5).expect("arrivals");
    let cfg = ServeConfig {
        admission: AdmissionConfig { max_queue: 8, ..AdmissionConfig::default() },
        kv_guard: None,
        degradation: None,
        max_inflight: 1,
        max_retries: 1,
    };
    let rep = serve(&mut engine, &requests, &cfg, None);
    assert_eq!(rep.stats.served, 4);
    for req in &requests {
        let got = &engine.outputs[&req.id];
        let want = reference.generate(&req.prompt, req.n_generate, 0.0, 0).tokens;
        assert_eq!(got, &want, "request {} diverged from sequential reference", req.id);
    }
}

/// Sanity: the PipelineEngine reports KV demand consistent with the
/// cost model's per-layer KV bytes, so guard budgets computed from
/// `crates/cost` line up with what the loop gates on.
#[test]
fn pipeline_engine_kv_demand_tracks_cost_model() {
    let spec = tiny_spec();
    let checkpoint = RefModel::new(RefConfig::scaled_like(spec.n_layers, 3));
    let plan_bits = vec![llmpq_quant::Bitwidth::Fp16; spec.n_layers];
    let plan = ExecutionPlan {
        model: "tiny-4l".into(),
        cluster: "duo".into(),
        stages: vec![llm_pq::StagePlan {
            device: 0,
            layer_start: 0,
            layer_end: spec.n_layers,
            bits: plan_bits,
        }],
        microbatch: llmpq_workload::MicrobatchPlan {
            prefill_size: 1,
            prefill_count: 1,
            decode_size: 1,
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    };
    let mut engine = PipelineEngine::new(checkpoint, vec![plan], fast_supervisor());
    engine.kv_per_token = spec.kv_bytes_per_layer(1, 1, 16.0) * spec.n_layers as f64;
    let req = llmpq_runtime::Request {
        id: 0,
        arrival_s: 0.0,
        prompt: vec![1; 6],
        n_generate: 4,
        deadline_s: None,
        priority: 0,
    };
    let want = spec.kv_bytes_per_layer(1, 1, 16.0) * spec.n_layers as f64 * 10.0;
    assert!((engine.kv_demand(&req) - want).abs() < 1e-6);
}

/// Satellite of the live-migration PR: ladder transitions execute as
/// *live* plan swaps (two-phase protocol inside `run_batch`) and the
/// admission conservation invariant still holds across the epoch
/// boundary — no request is counted twice or lost because its batch
/// changed plans mid-decode.
#[test]
fn rung_transitions_run_as_live_swaps_and_conserve() {
    let spec = tiny_spec();
    let checkpoint = RefModel::new(RefConfig::scaled_like(spec.n_layers, 17));
    let mk_plan = |bits: llmpq_quant::Bitwidth| ExecutionPlan {
        model: "tiny-4l".into(),
        cluster: "duo".into(),
        stages: vec![
            llm_pq::StagePlan { device: 0, layer_start: 0, layer_end: 2, bits: vec![bits; 2] },
            llm_pq::StagePlan { device: 1, layer_start: 2, layer_end: 4, bits: vec![bits; 2] },
        ],
        microbatch: llmpq_workload::MicrobatchPlan {
            prefill_size: 1,
            prefill_count: 2,
            decode_size: 2,
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    };
    let plans = vec![mk_plan(llmpq_quant::Bitwidth::Fp16), mk_plan(llmpq_quant::Bitwidth::Int4)];
    let mut engine = PipelineEngine::new(checkpoint, plans, fast_supervisor());
    engine.max_batch = 2;
    assert!(engine.live_swap, "live swaps are the default transition path");

    let n = 10usize;
    let n_generate = 4usize;
    // A burst: everything arrives inside ~10 ms against a tight queue,
    // so pressure crosses `high` after the first batch.
    let requests = poisson_requests(n, 1000.0, 4, n_generate, 31).expect("arrivals");
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            policy: AdmissionPolicy::Reject,
            max_queue: 5,
            default_deadline_s: None,
            queue_timeout_s: 5.0,
        },
        kv_guard: None,
        // dwell 1: one high-pressure sample climbs the ladder, so the
        // next batch starts on rung 0's plan and live-swaps to rung 1's.
        degradation: Some(DegradationConfig { high: 0.5, low: 0.05, dwell: 1 }),
        max_inflight: 1,
        max_retries: 1,
    };
    let rep = serve(&mut engine, &requests, &cfg, None);

    assert!(rep.stats.conserves(0), "conservation across live swaps: {:?}", rep.stats);
    assert_eq!(rep.stats.offered, n);
    assert!(!rep.transitions.is_empty(), "the ladder must have moved");
    assert!(
        !engine.swap_reports.is_empty(),
        "rung transitions must have gone through the live-swap path"
    );
    assert!(
        engine.swap_reports.iter().all(|r| r.committed),
        "fault-free swaps commit: {:?}",
        engine.swap_reports
    );
    // Served requests are whole: every one has its full token budget.
    assert_eq!(engine.outputs.len(), rep.stats.served);
    for toks in engine.outputs.values() {
        assert_eq!(toks.len(), n_generate);
    }
}
