//! Cross-crate integration tests: the full LLM-PQ flow from assigner to
//! live pipeline execution.

use llm_pq::{assign, AssignerConfig, ExecutionPlan, SolverChoice};
use llm_pq::baselines::{pipeedge_plan, uniform_plan};
use llmpq_cluster::{paper_cluster, Cluster, GpuModel, Interconnect};
use llmpq_cost::CostDb;
use llmpq_model::{ModelFamily, ModelSpec, RefConfig, RefModel};
use llmpq_quant::{quantize_model, IndicatorTable, Rounding};
use llmpq_runtime::run_pipeline;
use llmpq_sim::KernelEnv;
use llmpq_workload::BatchJob;

/// A toy model spec small enough that any cluster holds it — used when
/// the plan must afterwards run on the real reference transformer.
fn tiny_spec() -> ModelSpec {
    ModelSpec::new(ModelFamily::Opt, "tiny-4l", 4, 64, 4, 256, 128)
}

fn tiny_indicator(n_layers: usize) -> IndicatorTable {
    IndicatorTable {
        omega: (0..n_layers)
            .map(|l| {
                let base = 1.0 / (1.0 + l as f64);
                [base, base * 0.2, base * 0.01, 0.0]
            })
            .collect(),
    }
}

fn two_device_cluster() -> Cluster {
    Cluster::from_groups(
        "itest",
        &[(GpuModel::T4_16G, 1), (GpuModel::V100_32G, 1)],
        Interconnect::Ethernet800G,
        None,
    )
}

fn quick_cfg() -> AssignerConfig {
    AssignerConfig {
        theta: 0.05,
        solver: SolverChoice::Dp { group: 1 },
        xi: 2,
        max_orderings: 2,
        dp_grid: Some(8),
        search_kv8: false,
        max_bits: None,
    }
}

#[test]
fn assigner_plan_executes_on_live_runtime() {
    // Plan on the metadata, then execute the plan on the real reference
    // transformer and verify tokens against sequential generation.
    let spec = tiny_spec();
    let cluster = two_device_cluster();
    let db = CostDb::oracle(&KernelEnv::default());
    let job = BatchJob { global_batch: 4, prompt_len: 8, n_generate: 5 };
    let out = assign(&cluster, &spec, &job, &db, &tiny_indicator(4), &quick_cfg()).expect("plan");
    out.plan.validate(4).unwrap();

    let checkpoint = RefModel::new(RefConfig::scaled_like(4, 42));
    let prompts: Vec<Vec<usize>> =
        (0..4).map(|i| (0..8).map(|j| (i * 31 + j * 7) % 256).collect()).collect();
    let run = run_pipeline(&checkpoint, &out.plan, &prompts, 5, Rounding::Deterministic, 0, None)
        .expect("runtime ok");

    let qm = quantize_model(
        &checkpoint,
        &out.plan.bit_assignment(),
        Rounding::Deterministic,
        0,
    );
    for (i, p) in prompts.iter().enumerate() {
        assert_eq!(run.tokens[i], qm.generate(p, 5, 0.0, 0).tokens, "sequence {i}");
    }
}

#[test]
fn llmpq_never_loses_to_its_baselines() {
    // On the paper clusters the LLM-PQ objective (θ→0) must produce at
    // least the throughput of PipeEdge and Uniform — its search space
    // contains both.
    let db = CostDb::oracle(&KernelEnv::default());
    let job = BatchJob::paper_default();
    for n in [3usize, 9] {
        let cluster = paper_cluster(n);
        let spec = llmpq_model::zoo::by_name(cluster.paper_model.as_deref().unwrap()).unwrap();
        let indicator = tiny_indicator(spec.n_layers);
        let cfg = AssignerConfig {
            theta: 0.0,
            solver: SolverChoice::Dp { group: 4 },
            xi: 4,
            max_orderings: 4,
            dp_grid: Some(10),
            search_kv8: false,
        max_bits: None,
        };
        let pq = assign(&cluster, &spec, &job, &db, &indicator, &cfg).expect("feasible");
        if let Ok((_, pe)) = pipeedge_plan(&cluster, &spec, &job, &db) {
            assert!(
                pq.report.throughput >= pe.throughput * 0.999,
                "cluster {n}: LLM-PQ {} < PipeEdge {}",
                pq.report.throughput,
                pe.throughput
            );
        }
        if let Ok((_, un)) = uniform_plan(&cluster, &spec, &job, &db) {
            assert!(
                pq.report.throughput >= un.throughput * 0.999,
                "cluster {n}: LLM-PQ {} < Uniform {}",
                pq.report.throughput,
                un.throughput
            );
        }
    }
}

#[test]
fn strategy_file_round_trips_through_runtime() {
    // The llmpq-algo → strategy file → llmpq-dist flow: serialize the
    // plan, parse it back, execute it.
    let spec = tiny_spec();
    let cluster = two_device_cluster();
    let db = CostDb::oracle(&KernelEnv::default());
    let job = BatchJob { global_batch: 2, prompt_len: 6, n_generate: 4 };
    let out = assign(&cluster, &spec, &job, &db, &tiny_indicator(4), &quick_cfg()).expect("plan");

    let json = out.plan.to_json();
    let parsed = ExecutionPlan::from_json(&json).expect("parse strategy file");
    assert_eq!(parsed, out.plan);

    let checkpoint = RefModel::new(RefConfig::scaled_like(4, 7));
    let prompts = vec![vec![1, 2, 3, 4, 5, 6], vec![10, 20, 30, 40, 50, 60]];
    let run = run_pipeline(&checkpoint, &parsed, &prompts, 4, Rounding::Deterministic, 1, None)
        .expect("runtime ok");
    assert_eq!(run.tokens.len(), 2);
    assert!(run.tokens.iter().all(|t| t.len() == 4));
}

#[test]
fn paper_clusters_all_get_feasible_plans() {
    // Every Table 3 cluster must admit a feasible LLM-PQ plan for its
    // paper-assigned model (the paper sizes models to fit quantized).
    let db = CostDb::oracle(&KernelEnv::default());
    let job = BatchJob::paper_default();
    for n in 1..=11 {
        let cluster = paper_cluster(n);
        let spec = llmpq_model::zoo::by_name(cluster.paper_model.as_deref().unwrap()).unwrap();
        let indicator = tiny_indicator(spec.n_layers);
        let cfg = AssignerConfig {
            theta: 0.1,
            solver: SolverChoice::Dp { group: 8 },
            xi: 2,
            max_orderings: 2,
            dp_grid: Some(8),
            search_kv8: false,
        max_bits: None,
        };
        let out = assign(&cluster, &spec, &job, &db, &indicator, &cfg)
            .unwrap_or_else(|e| panic!("cluster {n}: {e}"));
        out.plan.validate(spec.n_layers).unwrap();
        assert!(out.report.throughput > 0.0, "cluster {n}");
    }
}

#[test]
fn heterogeneous_plan_weights_fast_devices() {
    // On cluster 3 (3×T4 + V100) the V100 should host more layers than
    // an average T4 under a throughput-oriented objective.
    let db = CostDb::oracle(&KernelEnv::default());
    let cluster = paper_cluster(3);
    let spec = llmpq_model::zoo::opt_30b();
    let cfg = AssignerConfig {
        theta: 0.0,
        solver: SolverChoice::Dp { group: 4 },
        xi: 4,
        max_orderings: 4,
        dp_grid: Some(10),
        search_kv8: false,
        max_bits: None,
    };
    let out = assign(&cluster, &spec, &BatchJob::paper_default(), &db, &tiny_indicator(spec.n_layers), &cfg)
        .expect("feasible");
    let mut per_device = vec![0usize; cluster.len()];
    for s in &out.plan.stages {
        per_device[s.device] += s.n_layers();
    }
    let v100_layers = per_device[3]; // device 3 is the V100
    let t4_avg = (per_device[0] + per_device[1] + per_device[2]) as f64 / 3.0;
    assert!(
        v100_layers as f64 >= t4_avg,
        "V100 {v100_layers} layers vs T4 avg {t4_avg:.1}"
    );
}
