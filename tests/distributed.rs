//! Multi-process integration: a real 3-stage pipeline — one OS process
//! per stage plus a master — over loopback TCP, spawned through the
//! `llmpq-dist` binary, must generate tokens bit-identical to the
//! in-process engine, and must survive an injected mid-run connection
//! drop via the supervisor's restart path.

use llm_pq::{ExecutionPlan, StagePlan};
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{Bitwidth, Rounding};
use llmpq_runtime::{run_pipeline, WireFaultPlan};
use llmpq_workload::MicrobatchPlan;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BATCH: usize = 2;
const PROMPT_LEN: usize = 6;
const N_GENERATE: usize = 5;
const SEED: u64 = 0;

/// The 3-stage plan every process is handed (as a strategy file).
fn plan3() -> ExecutionPlan {
    ExecutionPlan {
        model: "tiny-dist".into(),
        cluster: "loopback".into(),
        stages: vec![
            StagePlan { device: 0, layer_start: 0, layer_end: 2, bits: vec![Bitwidth::Int8, Bitwidth::Int4] },
            StagePlan { device: 1, layer_start: 2, layer_end: 3, bits: vec![Bitwidth::Fp16] },
            StagePlan { device: 2, layer_start: 3, layer_end: 4, bits: vec![Bitwidth::Int8] },
        ],
        microbatch: MicrobatchPlan {
            prefill_size: 1,
            prefill_count: 2,
            decode_size: 1,
            decode_count: 2,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

/// The exact checkpoint + prompts `llmpq-dist` derives from the shared
/// flags — reproduced here so the in-process reference run matches.
fn reference_tokens() -> Vec<Vec<usize>> {
    let plan = plan3();
    let checkpoint = RefModel::new(RefConfig::scaled_like(plan.n_layers(), 0xD157 ^ SEED));
    let prompts: Vec<Vec<usize>> = (0..BATCH)
        .map(|i| {
            (0..PROMPT_LEN)
                .map(|j| (i * 41 + j * 17 + SEED as usize) % checkpoint.cfg.vocab)
                .collect()
        })
        .collect();
    run_pipeline(&checkpoint, &plan, &prompts, N_GENERATE, Rounding::Deterministic, SEED, None)
        .expect("in-process reference run")
        .tokens
}

/// Locate (building if necessary) the `llmpq-dist` binary. Integration
/// tests of the suite package don't implicitly build other packages'
/// bins, so fall back to an explicit `cargo build`.
fn dist_binary() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // the test executable
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join(format!("llmpq-dist{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        let status = Command::new(env!("CARGO", "cargo"))
            .args(["build", "-p", "llmpq-cli", "--bin", "llmpq-dist"])
            .status()
            .expect("cargo build llmpq-dist");
        assert!(status.success(), "building llmpq-dist failed");
    }
    assert!(bin.exists(), "llmpq-dist not found at {}", bin.display());
    bin
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("llmpq-dist-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

struct KillOnDrop(Child, &'static str);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Wait for a child with a wall-clock watchdog; returns its stdout.
fn wait_with_timeout(mut child: KillOnDrop, limit: Duration) -> String {
    let start = Instant::now();
    loop {
        match child.0.try_wait().expect("try_wait") {
            Some(status) => {
                let mut out = String::new();
                if let Some(mut stdout) = child.0.stdout.take() {
                    use std::io::Read;
                    let _ = stdout.read_to_string(&mut out);
                }
                assert!(status.success(), "{} exited with {status}:\n{out}", child.1);
                return out;
            }
            None if start.elapsed() > limit => {
                panic!("{} still running after {limit:?}", child.1);
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Spawn the master, read its `listening on ADDR` line, then spawn one
/// stage process per pipeline stage (stage 0 optionally with a wire
/// fault plan). Returns the master's remaining stdout.
fn run_cluster(strat: &Path, stage0_faults: Option<&Path>) -> String {
    let bin = dist_binary();
    let common = |cmd: &mut Command| {
        cmd.args(["--strat_file_name", strat.to_str().unwrap()])
            .args(["--batch", &BATCH.to_string()])
            .args(["--prompt-len", &PROMPT_LEN.to_string()])
            .args(["--n-generate", &N_GENERATE.to_string()])
            .args(["--seed", &SEED.to_string()])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
    };

    let mut master_cmd = Command::new(&bin);
    common(&mut master_cmd);
    master_cmd.args(["--listen", "127.0.0.1:0"]);
    let mut master = KillOnDrop(master_cmd.spawn().expect("spawn master"), "master");

    // The first stdout line announces the ephemeral port.
    let mut reader = BufReader::new(master.0.stdout.take().expect("master stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();

    let mut stages = Vec::new();
    for s in 0..plan3().stages.len() {
        let mut cmd = Command::new(&bin);
        common(&mut cmd);
        cmd.args(["--stage", &s.to_string()])
            .args(["--listen", "127.0.0.1:0"])
            .args(["--connect", &addr]);
        if s == 0 {
            if let Some(faults) = stage0_faults {
                cmd.args(["--wire-fault", faults.to_str().unwrap()]);
            }
        }
        stages.push(KillOnDrop(cmd.spawn().expect("spawn stage"), "stage"));
    }

    // Drain the master's stdout on this thread (it is small), then the
    // watchdog only has to poll exit codes.
    let mut master_out = line;
    for l in reader.lines() {
        master_out.push_str(&l.expect("master stdout"));
        master_out.push('\n');
    }
    let limit = Duration::from_secs(120);
    let start = Instant::now();
    loop {
        match master.0.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "master exited with {status}:\n{master_out}");
                break;
            }
            None if start.elapsed() > limit => panic!("master still running after {limit:?}"),
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    for st in stages {
        wait_with_timeout(st, Duration::from_secs(30));
    }
    master_out
}

#[test]
fn three_process_loopback_run_is_bit_identical() {
    let strat = scratch("plan3.json");
    std::fs::write(&strat, plan3().to_json()).unwrap();

    let out = run_cluster(&strat, None);

    let expected = reference_tokens();
    for (i, toks) in expected.iter().enumerate() {
        let line = format!("seq {i}: {toks:?}");
        assert!(out.contains(&line), "missing/mismatched `{line}` in master output:\n{out}");
    }
    assert!(out.contains("(conserved=true)"), "admission conservation not reported:\n{out}");
    assert!(out.contains("0 restarts"), "clean run should not restart:\n{out}");
}

#[test]
fn injected_connection_drop_recovers_bit_identically() {
    let strat = scratch("plan3-faulty.json");
    std::fs::write(&strat, plan3().to_json()).unwrap();
    // Stage 0 kills its downstream connection after 4 data frames —
    // mid-run — and the master's supervisor must rebuild the ring and
    // resume from the lock-step checkpoint.
    let faults = scratch("wire-faults.json");
    std::fs::write(&faults, WireFaultPlan::disconnect_tx(0, 4).to_json()).unwrap();

    let out = run_cluster(&strat, Some(&faults));

    let expected = reference_tokens();
    for (i, toks) in expected.iter().enumerate() {
        let line = format!("seq {i}: {toks:?}");
        assert!(out.contains(&line), "recovery perturbed `{line}`:\n{out}");
    }
    assert!(out.contains("1 restarts"), "expected exactly one restart:\n{out}");
    assert!(out.contains("(conserved=true)"), "admission conservation violated:\n{out}");
}
