//! Integration: the supervisor recovering from permanent device loss by
//! re-running the *real* assigner (Algorithm 1) on the surviving
//! sub-cluster, reloading through the on-the-fly quantizing loader, and
//! resuming bit-identically — the full LLM-PQ recovery story wired
//! end-to-end across `llm-pq`, `llmpq-cluster` and `llmpq-runtime`.

use llm_pq::{assign, replan_after_loss, AssignerConfig, ExecutionPlan, SolverChoice};
use llmpq_cluster::{Cluster, GpuModel, Interconnect};
use llmpq_cost::CostDb;
use llmpq_model::{ModelFamily, ModelSpec, RefConfig, RefModel};
use llmpq_quant::{quantize_model, IndicatorTable, Rounding};
use llmpq_runtime::{
    run_pipeline_supervised, FaultPlan, RecoveryPolicy, Replanner, SupervisorConfig,
};
use llmpq_sim::KernelEnv;
use llmpq_workload::BatchJob;

fn tiny_spec() -> ModelSpec {
    ModelSpec::new(ModelFamily::Opt, "tiny-4l", 4, 64, 4, 256, 128)
}

fn tiny_indicator(n_layers: usize) -> IndicatorTable {
    IndicatorTable {
        omega: (0..n_layers)
            .map(|l| {
                let base = 1.0 / (1.0 + l as f64);
                [base, base * 0.2, base * 0.01, 0.0]
            })
            .collect(),
    }
}

fn two_device_cluster() -> Cluster {
    Cluster::from_groups(
        "duo",
        &[(GpuModel::T4_16G, 1), (GpuModel::V100_32G, 1)],
        Interconnect::Ethernet800G,
        None,
    )
}

fn quick_cfg() -> AssignerConfig {
    AssignerConfig {
        theta: 0.05,
        solver: SolverChoice::Dp { group: 1 },
        xi: 2,
        max_orderings: 2,
        dp_grid: Some(8),
        search_kv8: false,
        max_bits: None,
    }
}

/// The production-shaped replanner: delegates to Algorithm 1 on the
/// surviving sub-cluster via `llm_pq::replan_after_loss`.
struct AssignerReplanner<'a> {
    cluster: &'a Cluster,
    spec: &'a ModelSpec,
    job: &'a BatchJob,
    db: &'a CostDb,
    indicator: &'a IndicatorTable,
    cfg: &'a AssignerConfig,
}

impl Replanner for AssignerReplanner<'_> {
    fn replan(&self, _old: &ExecutionPlan, lost: &[usize]) -> Result<ExecutionPlan, String> {
        replan_after_loss(self.cluster, lost, self.spec, self.job, self.db, self.indicator, self.cfg)
            .map(|o| o.plan)
            .map_err(|e| e.to_string())
    }
}

fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        heartbeat_timeout_ms: 100,
        progress_timeout_ms: 300,
        tick_ms: 1,
        max_restarts: 2,
        backoff_base_ms: 1,
        backoff_factor: 2.0,
        backoff_cap_ms: 8,
        policy: RecoveryPolicy::Replan,
        max_queue: None,
    }
}

#[test]
fn device_loss_recovers_via_assigner_replan_bit_identically() {
    let spec = tiny_spec();
    let cluster = two_device_cluster();
    let db = CostDb::oracle(&KernelEnv::default());
    let job = BatchJob { global_batch: 4, prompt_len: 8, n_generate: 6 };
    let indicator = tiny_indicator(spec.n_layers);
    let cfg = quick_cfg();
    let out = assign(&cluster, &spec, &job, &db, &indicator, &cfg).expect("initial plan");
    let plan = out.plan;
    plan.validate(spec.n_layers).unwrap();
    assert_eq!(plan.stages.len(), 2, "need a two-stage pipeline to kill a stage");

    let checkpoint = RefModel::new(RefConfig::scaled_like(4, 42));
    let prompts: Vec<Vec<usize>> =
        (0..4).map(|i| (0..8).map(|j| (i * 31 + j * 7) % 256).collect()).collect();
    let n_gen = 6;

    // Permanently lose the device hosting stage 1 after a few items.
    let faults = FaultPlan::device_loss(1, 3);
    let replanner = AssignerReplanner {
        cluster: &cluster,
        spec: &spec,
        job: &job,
        db: &db,
        indicator: &indicator,
        cfg: &cfg,
    };
    let sup = run_pipeline_supervised(
        &checkpoint,
        &plan,
        &prompts,
        n_gen,
        Rounding::Deterministic,
        0,
        &fast_supervisor(),
        Some(&faults),
        Some(&replanner),
    )
    .expect("recovered via replan");

    assert_eq!(sup.replans, 1);
    let lost_device = plan.stages[1].device;
    assert!(
        sup.final_plan.stages.iter().all(|s| s.device != lost_device),
        "replanned plan must avoid the lost device"
    );
    sup.final_plan.validate(spec.n_layers).unwrap();

    // Bit-identity: prefix follows the old plan's quantized model, the
    // resumed tail follows sequential execution of the *new* plan's
    // model fed prompt ++ prefix.
    let done = sup.events[0].checkpointed_tokens;
    assert!(done > 0 && done < n_gen, "loss must land mid-generation, got {done}");
    let qm_old =
        quantize_model(&checkpoint, &plan.bit_assignment(), Rounding::Deterministic, 0);
    let qm_new = quantize_model(
        &checkpoint,
        &sup.final_plan.bit_assignment(),
        Rounding::Deterministic,
        0,
    );
    for (i, p) in prompts.iter().enumerate() {
        let old_full = qm_old.generate(p, n_gen, 0.0, 0).tokens;
        assert_eq!(&sup.output.tokens[i][..done], &old_full[..done], "prefix, sequence {i}");
        let mut resumed = p.clone();
        resumed.extend_from_slice(&old_full[..done]);
        let tail = qm_new.generate(&resumed, n_gen - done, 0.0, 0).tokens;
        assert_eq!(&sup.output.tokens[i][done..], &tail[..], "resumed tail, sequence {i}");
    }
}

#[test]
fn fault_plan_survives_json_round_trip_through_strategy_files() {
    // The CLI ships fault plans as JSON next to the strategy file; the
    // two layers must agree on the format.
    let fp = FaultPlan::random(0xFA17, 3, 10, 5);
    let json = fp.to_json();
    let back = FaultPlan::from_json(&json).expect("parse");
    assert_eq!(fp, back);
}
