//! Integration: live plan migration — the epoch-numbered two-phase
//! swap protocol (`llmpq_runtime::migrate`) driving a *real* 3-stage
//! pipeline through mid-decode precision and partition changes, with
//! tokens bit-identical to a hybrid oracle that runs the pre-swap model
//! up to the boundary and the post-swap model after it.

use llm_pq::{ExecutionPlan, MicrobatchPlan, StagePlan};
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{quantize_model, Bitwidth, Rounding};
use llmpq_runtime::{
    hybrid_oracle_tokens, run_pipeline_with_swap, FaultPlan, RecoveryPolicy, SupervisorConfig,
    SwapRequest, Telemetry,
};

const N_LAYERS: usize = 4;

fn checkpoint() -> RefModel {
    RefModel::new(RefConfig::scaled_like(N_LAYERS, 42))
}

fn prompts(n: usize) -> Vec<Vec<usize>> {
    (0..n).map(|i| (0..8).map(|j| (i * 31 + j * 7) % 256).collect()).collect()
}

fn plan(partition: &[(usize, usize)], bits: &[Bitwidth]) -> ExecutionPlan {
    ExecutionPlan {
        model: "tiny-4l".into(),
        cluster: "trio".into(),
        stages: partition
            .iter()
            .enumerate()
            .map(|(d, &(lo, hi))| StagePlan {
                device: d,
                layer_start: lo,
                layer_end: hi,
                bits: bits[lo..hi].to_vec(),
            })
            .collect(),
        microbatch: MicrobatchPlan {
            prefill_size: 1,
            prefill_count: 2,
            decode_size: 2,
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        heartbeat_timeout_ms: 2_000,
        progress_timeout_ms: 5_000,
        tick_ms: 1,
        max_restarts: 3,
        backoff_base_ms: 1,
        backoff_factor: 2.0,
        backoff_cap_ms: 8,
        policy: RecoveryPolicy::RestartSamePlan,
        max_queue: None,
    }
}

/// The oracle for one prompt: old-plan model up to `swap_at` generated
/// tokens, target-plan model after, both quantized exactly like the
/// pipeline's loader quantizes them.
fn oracle(
    ck: &RefModel,
    old: &ExecutionPlan,
    new: &ExecutionPlan,
    swap_at: usize,
    prompt: &[usize],
    n_gen: usize,
    resume_at: Option<usize>,
) -> Vec<usize> {
    let qo = quantize_model(ck, &old.bit_assignment(), Rounding::Deterministic, 0);
    let qn = quantize_model(ck, &new.bit_assignment(), Rounding::Deterministic, 0);
    hybrid_oracle_tokens(&[(0, &qo), (swap_at, &qn)], prompt, n_gen, resume_at)
}

#[test]
fn mid_decode_bitwidth_swap_is_token_identical_to_oracle() {
    let ck = checkpoint();
    let part = [(0, 1), (1, 3), (3, 4)];
    let base = plan(&part, &[Bitwidth::Fp16; N_LAYERS]);
    let target = plan(&part, &[Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int8, Bitwidth::Int4]);
    let prompts = prompts(3);
    let n_gen = 8;
    let swap_at = 3;
    let telemetry = Telemetry::new(3);

    let out = run_pipeline_with_swap(
        &ck,
        &base,
        &prompts,
        n_gen,
        Rounding::Deterministic,
        0,
        &[SwapRequest { at_token: swap_at, plan: target.clone() }],
        &fast_supervisor(),
        None,
        Some(telemetry.clone()),
    )
    .expect("swap run ok");

    assert_eq!(out.restarts, 0);
    assert_eq!(out.swaps.len(), 1);
    let report = &out.swaps[0];
    assert!(report.committed, "clean run must commit: {:?}", report.reason);
    assert_eq!(report.epoch, 1);
    assert_eq!(report.at_token, swap_at);
    // Pure precision swap: every stage keeps its layers, no KV moves.
    assert_eq!(report.kv_bytes, 0, "bitwidth-only swap must not ship KV");
    assert_eq!(out.final_plan, target);
    assert_eq!(telemetry.epoch(), 1);
    assert_eq!(telemetry.swaps(), 1);

    for (i, p) in prompts.iter().enumerate() {
        let want = oracle(&ck, &base, &target, swap_at, p, n_gen, None);
        assert_eq!(out.output.tokens[i], want, "sequence {i}");
    }
}

#[test]
fn repartition_swap_ships_kv_and_is_token_identical_to_oracle() {
    let ck = checkpoint();
    let bits = [Bitwidth::Int8, Bitwidth::Fp16, Bitwidth::Int8, Bitwidth::Fp16];
    let base = plan(&[(0, 1), (1, 3), (3, 4)], &bits);
    // Layer 1 moves from stage 1 to stage 0, layer 3's stage unchanged:
    // stage 0 must receive layer 1's KV slices from stage 1 in the
    // commit window.
    let target = plan(&[(0, 2), (2, 3), (3, 4)], &bits);
    let prompts = prompts(2);
    let n_gen = 7;
    let swap_at = 4;
    let telemetry = Telemetry::new(3);

    let out = run_pipeline_with_swap(
        &ck,
        &base,
        &prompts,
        n_gen,
        Rounding::Deterministic,
        0,
        &[SwapRequest { at_token: swap_at, plan: target.clone() }],
        &fast_supervisor(),
        None,
        Some(telemetry.clone()),
    )
    .expect("repartition run ok");

    assert_eq!(out.restarts, 0);
    let report = &out.swaps[0];
    assert!(report.committed, "clean run must commit: {:?}", report.reason);
    // Same bits, so the oracle equals a plain old-plan run — the swap
    // must be invisible in token space but visible in KV traffic.
    assert!(report.kv_bytes > 0, "repartition must account KV migration bytes");
    assert_eq!(telemetry.kv_migrated_bytes(), report.kv_bytes);
    assert_eq!(out.final_plan, target);

    for (i, p) in prompts.iter().enumerate() {
        let want = oracle(&ck, &base, &target, swap_at, p, n_gen, None);
        assert_eq!(out.output.tokens[i], want, "sequence {i}");
    }
}

#[test]
fn chained_swaps_walk_precision_down_then_repartition() {
    let ck = checkpoint();
    let base = plan(&[(0, 1), (1, 3), (3, 4)], &[Bitwidth::Fp16; N_LAYERS]);
    let mid = plan(&[(0, 1), (1, 3), (3, 4)], &[Bitwidth::Int8; N_LAYERS]);
    let last = plan(&[(0, 2), (2, 3), (3, 4)], &[Bitwidth::Int8; N_LAYERS]);
    let prompts = prompts(2);
    let n_gen = 9;

    let out = run_pipeline_with_swap(
        &ck,
        &base,
        &prompts,
        n_gen,
        Rounding::Deterministic,
        0,
        &[
            SwapRequest { at_token: 2, plan: mid.clone() },
            SwapRequest { at_token: 5, plan: last.clone() },
        ],
        &fast_supervisor(),
        None,
        None,
    )
    .expect("chained swaps ok");

    assert_eq!(out.swaps.len(), 2);
    assert!(out.swaps.iter().all(|r| r.committed));
    assert_eq!((out.swaps[0].epoch, out.swaps[1].epoch), (1, 2));
    assert_eq!(out.final_plan, last);

    let qb = quantize_model(&ck, &base.bit_assignment(), Rounding::Deterministic, 0);
    let qm = quantize_model(&ck, &mid.bit_assignment(), Rounding::Deterministic, 0);
    let ql = quantize_model(&ck, &last.bit_assignment(), Rounding::Deterministic, 0);
    for (i, p) in prompts.iter().enumerate() {
        let want = hybrid_oracle_tokens(&[(0, &qb), (2, &qm), (5, &ql)], p, n_gen, None);
        assert_eq!(out.output.tokens[i], want, "sequence {i}");
    }
}

#[test]
fn mid_migration_crash_recovers_without_dropping_requests() {
    let ck = checkpoint();
    let part = [(0, 1), (1, 3), (3, 4)];
    let base = plan(&part, &[Bitwidth::Fp16; N_LAYERS]);
    let target = plan(&part, &[Bitwidth::Int4; N_LAYERS]);
    let prompts = prompts(2);
    let n_gen = 8;
    let swap_at = 3;

    // Crash stage 1 somewhere around the swap boundary: prefill is 2
    // stage-local items, so item 4 lands inside decode near at_token.
    let faults = FaultPlan::crash(1, 4);
    let out = run_pipeline_with_swap(
        &ck,
        &base,
        &prompts,
        n_gen,
        Rounding::Deterministic,
        0,
        &[SwapRequest { at_token: swap_at, plan: target.clone() }],
        &fast_supervisor(),
        Some(&faults),
        None,
    )
    .expect("supervised migration run recovers");

    assert!(out.restarts >= 1, "the scheduled crash must have fired");
    // No dropped requests: every sequence finished all its tokens.
    assert!(out.output.tokens.iter().all(|t| t.len() == n_gen));

    // The run must be bit-identical to *some* legal recovery history:
    // the hybrid oracle resumed (re-prefilled) at the restart point, or
    // never interrupted (resume before any decode progress).
    let legal: Vec<Vec<usize>> = std::iter::once(None)
        .chain((1..=n_gen).map(Some))
        .map(|resume| oracle(&ck, &base, &target, swap_at, &prompts[0], n_gen, resume))
        .collect();
    assert!(
        legal.contains(&out.output.tokens[0]),
        "recovered tokens match no legal oracle history: {:?}",
        out.output.tokens[0]
    );
    // Both sequences took the same history.
    let k = legal.iter().position(|l| l == &out.output.tokens[0]).unwrap();
    let resume = if k == 0 { None } else { Some(k) };
    assert_eq!(
        out.output.tokens[1],
        oracle(&ck, &base, &target, swap_at, &prompts[1], n_gen, resume),
        "sequences disagree on the recovery history"
    );
}

#[test]
fn swap_schedule_validation_rejects_stage_count_changes() {
    let ck = checkpoint();
    let base = plan(&[(0, 1), (1, 3), (3, 4)], &[Bitwidth::Fp16; N_LAYERS]);
    let two_stage = plan(&[(0, 2), (2, 4)], &[Bitwidth::Fp16; N_LAYERS]);
    let err = run_pipeline_with_swap(
        &ck,
        &base,
        &prompts(1),
        4,
        Rounding::Deterministic,
        0,
        &[SwapRequest { at_token: 2, plan: two_stage }],
        &fast_supervisor(),
        None,
        None,
    )
    .unwrap_err();
    assert!(err.to_string().contains("stage count"), "got: {err}");
}
