//! Fast cross-crate regression tests for behaviours that earlier
//! development iterations got wrong — pinned here so they stay fixed.

use llm_pq::evaluate::{stage_loads, stage_memories};
use llm_pq::{ExecutionPlan, StagePlan};
use llmpq_cluster::paper_cluster;
use llmpq_cost::CostDb;
use llmpq_model::{zoo, Phase};
use llmpq_quant::{Bitwidth, IndicatorTable};
use llmpq_sim::{simulate_pipeline, KernelEnv, PipelineWorkload, StageLoad};
use llmpq_workload::{BatchJob, MicrobatchPlan};

fn even_plan(n_layers: usize, n_stages: usize, bits: Bitwidth, kv_bits: u32) -> ExecutionPlan {
    let per = n_layers / n_stages;
    let stages = (0..n_stages)
        .map(|i| {
            let start = i * per;
            let end = if i + 1 == n_stages { n_layers } else { start + per };
            StagePlan { device: i, layer_start: start, layer_end: end, bits: vec![bits; end - start] }
        })
        .collect();
    ExecutionPlan {
        model: "opt-30b".into(),
        cluster: "cluster-3".into(),
        stages,
        microbatch: MicrobatchPlan { prefill_size: 2, prefill_count: 16, decode_size: 8, decode_count: 4 },
        scheme: "test".into(),
        kv_bits,
    }
}

/// Regression: the master engine must not serialize the pipeline when
/// its per-micro-batch cost is zero (an early implementation ratcheted
/// `master_free` forward on zero-duration jobs, destroying overlap).
#[test]
fn zero_cost_master_does_not_serialize_pipeline() {
    let stages = vec![
        StageLoad { prefill_time: 1.0, decode_time: 0.1, comm_prefill: 0.0, comm_decode: 0.0 };
        4
    ];
    let w = PipelineWorkload {
        prefill_microbatches: 4,
        decode_microbatches: 4,
        n_tokens: 1,
        master_prefill: 0.0,
        master_decode: 0.0,
    };
    let r = simulate_pipeline(&stages, &w);
    assert!((r.prefill_latency - 7.0).abs() < 1e-9, "perfect overlap expected, got {}", r.prefill_latency);
}

/// Regression: KV bits must flow from the plan into both the memory
/// check and the stage latencies (early version hardcoded FP16).
#[test]
fn plan_kv_bits_affect_memory_and_latency() {
    let cluster = paper_cluster(3);
    let spec = zoo::opt_30b();
    let db = CostDb::oracle(&KernelEnv::default());
    let job = BatchJob { global_batch: 32, prompt_len: 512, n_generate: 400 };
    let p16 = even_plan(spec.n_layers, 4, Bitwidth::Int4, 16);
    let p8 = even_plan(spec.n_layers, 4, Bitwidth::Int4, 8);
    let m16 = stage_memories(&p16, &spec, &job);
    let m8 = stage_memories(&p8, &spec, &job);
    for (a, b) in m16.iter().zip(&m8) {
        assert!(b < a, "int8 KV must shrink memory: {b} vs {a}");
    }
    let l16 = stage_loads(&p16, &cluster, &spec, &db, &job);
    let l8 = stage_loads(&p8, &cluster, &spec, &db, &job);
    for (a, b) in l16.iter().zip(&l8) {
        assert!(b.decode_time < a.decode_time, "int8 KV must cut decode traffic");
    }
}

/// Regression: the paper-named bitwidth set stays {3,4,8,16}, ascending
/// — the assigner indexes `Bitwidth::ALL` positionally.
#[test]
fn bitwidth_all_order_is_load_bearing() {
    assert_eq!(
        Bitwidth::ALL.map(|b| b.bits()),
        [3u32, 4, 8, 16],
        "changing this order silently corrupts every IndicatorTable"
    );
    let t = IndicatorTable { omega: vec![[3.0, 4.0, 8.0, 0.0]] };
    assert_eq!(t.get(0, Bitwidth::Int3), 3.0);
    assert_eq!(t.get(0, Bitwidth::Fp16), 0.0);
}

/// Regression: workspace memory must follow the *micro-batch* size, not
/// the global batch (the cluster-1 enabler).
#[test]
fn workspace_follows_microbatch_not_global_batch() {
    let spec = zoo::opt_13b();
    let small_mb = llmpq_sim::layer_workspace_bytes(&spec, Phase::Prefill, 1, 512, Bitwidth::Int8);
    let big_mb = llmpq_sim::layer_workspace_bytes(&spec, Phase::Prefill, 32, 512, Bitwidth::Int8);
    assert!(big_mb > 10.0 * small_mb);
}

/// Regression: plan JSON without `kv_bits` (pre-extension strategy
/// files) must still parse, defaulting to FP16 KV.
#[test]
fn legacy_strategy_files_parse() {
    let legacy = r#"{
        "model": "opt-13b",
        "cluster": "cluster-1",
        "stages": [
            { "device": 0, "layer_start": 0, "layer_end": 2, "bits": ["Int8", "Int8"] }
        ],
        "microbatch": { "prefill_size": 1, "prefill_count": 2, "decode_size": 2, "decode_count": 1 },
        "scheme": "LLM-PQ"
    }"#;
    let plan = ExecutionPlan::from_json(legacy).expect("legacy plan parses");
    assert_eq!(plan.kv_bits, 16);
    plan.validate(2).unwrap();
}

/// Regression: evaluating the same plan twice is deterministic (the DES
/// and cost models are seed-free).
#[test]
fn evaluation_is_deterministic() {
    let cluster = paper_cluster(3);
    let spec = zoo::opt_30b();
    let db = CostDb::oracle(&KernelEnv::default());
    let job = BatchJob::paper_default();
    let plan = even_plan(spec.n_layers, 4, Bitwidth::Int4, 16);
    let a = llm_pq::evaluate_plan(&plan, &cluster, &spec, &db, &job).unwrap();
    let b = llm_pq::evaluate_plan(&plan, &cluster, &spec, &db, &job).unwrap();
    assert_eq!(a, b);
}
