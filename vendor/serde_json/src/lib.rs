//! Offline stand-in for `serde_json`, vendored so the workspace builds
//! without network access. Prints and parses standard JSON over the
//! vendored `serde::Value` reflection tree; `from_str`, `to_string`, and
//! `to_string_pretty` match the call surface this workspace uses.

use serde::{Deserialize, Serialize};
pub use serde::Value;

/// JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s).map_err(Error)?;
    T::from_value(&v).map_err(Error)
}

/// Serialize compactly.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => (
            "\n".to_string(),
            " ".repeat(w * level),
            " ".repeat(w * (level + 1)),
        ),
        None => (String::new(), String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&nl);
                out.push_str(&pad_in);
                write_value(x, out, indent, level + 1);
            }
            out.push_str(&nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(x, out, indent, level + 1);
            }
            out.push_str(&nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct JsonParser<'a> {
    chars: Vec<char>,
    i: usize,
    _src: &'a str,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.chars.len() && self.chars[self.i].is_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.i).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == c => {
                self.i += 1;
                Ok(())
            }
            got => Err(format!("expected '{c}' at position {}, got {got:?}", self.i)),
        }
    }

    fn parse(&mut self) -> Result<Value, String> {
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some('n') => self.keyword("null", Value::Null),
            Some('t') => self.keyword("true", Value::Bool(true)),
            Some('f') => self.keyword("false", Value::Bool(false)),
            Some('"') => self.parse_string().map(Value::Str),
            Some('[') => {
                self.i += 1;
                let mut xs = Vec::new();
                if self.peek() == Some(']') {
                    self.i += 1;
                    return Ok(Value::Arr(xs));
                }
                loop {
                    xs.push(self.parse()?);
                    match self.peek() {
                        Some(',') => self.i += 1,
                        Some(']') => {
                            self.i += 1;
                            return Ok(Value::Arr(xs));
                        }
                        got => return Err(format!("expected ',' or ']', got {got:?}")),
                    }
                }
            }
            Some('{') => {
                self.i += 1;
                let mut pairs = Vec::new();
                if self.peek() == Some('}') {
                    self.i += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(':')?;
                    let val = self.parse()?;
                    pairs.push((key, val));
                    match self.peek() {
                        Some(',') => self.i += 1,
                        Some('}') => {
                            self.i += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        got => return Err(format!("expected ',' or '}}', got {got:?}")),
                    }
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(format!("unexpected character '{c}' at position {}", self.i)),
        }
    }

    fn keyword(&mut self, kw: &str, v: Value) -> Result<Value, String> {
        self.skip_ws();
        for want in kw.chars() {
            if self.chars.get(self.i).copied() != Some(want) {
                return Err(format!("bad literal (expected `{kw}`) at position {}", self.i));
            }
            self.i += 1;
        }
        Ok(v)
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        while let Some(&c) = self.chars.get(self.i) {
            self.i += 1;
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let esc = self.chars.get(self.i).copied().ok_or("bad escape")?;
                    self.i += 1;
                    match esc {
                        '"' => s.push('"'),
                        '\\' => s.push('\\'),
                        '/' => s.push('/'),
                        'n' => s.push('\n'),
                        'r' => s.push('\r'),
                        't' => s.push('\t'),
                        'b' => s.push('\u{8}'),
                        'f' => s.push('\u{c}'),
                        'u' => {
                            let hex: String =
                                self.chars[self.i..(self.i + 4).min(self.chars.len())]
                                    .iter()
                                    .collect();
                            self.i += 4;
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{other}`")),
                    }
                }
                c => s.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.i;
        while let Some(&c) = self.chars.get(self.i) {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}`"))
    }
}

/// Parse a JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, String> {
    let mut p = JsonParser { chars: s.chars().collect(), i: 0, _src: s };
    let v = p.parse()?;
    p.skip_ws();
    if p.i != p.chars.len() {
        return Err(format!("trailing characters at position {}", p.i));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![Value::Num(1.0), Value::Num(-2.5)])),
            ("s".into(), Value::Str("hi \"there\"\n".into())),
            ("b".into(), Value::Bool(true)),
            ("n".into(), Value::Null),
        ]);
        for pretty in [false, true] {
            let mut s = String::new();
            write_value(&v, &mut s, if pretty { Some(2) } else { None }, 0);
            assert_eq!(parse_value(&s).unwrap(), v, "pretty={pretty}: {s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{not json").is_err());
        assert!(parse_value("").is_err());
        assert!(parse_value("[1,2,]").is_err());
        assert!(parse_value("{} trailing").is_err());
    }

    #[test]
    fn integers_print_without_exponent() {
        let mut s = String::new();
        write_value(&Value::Num(1234567890.0), &mut s, None, 0);
        assert_eq!(s, "1234567890");
    }
}
