//! Offline stand-in for `serde`, vendored so the workspace builds with
//! no network access and no crates.io registry.
//!
//! Exposes the same surface this workspace uses — the `Serialize` /
//! `Deserialize` derive macros plus the traits they implement — but the
//! data model is a simple reflection tree ([`Value`]) instead of serde's
//! visitor architecture. `serde_json` (also vendored) renders and parses
//! that tree as standard JSON, so plan files and checkpoints written by
//! one build round-trip in any other.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped reflection value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered `(key, value)` pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Reflect into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, String>;

    /// Called when a struct field is absent from the serialized object.
    /// Errors by default; `Option` overrides this to yield `None`.
    fn absent(field: &str) -> Result<Self, String> {
        Err(format!("missing field `{field}`"))
    }
}

/// Deserialize a struct field, routing missing keys through
/// [`Deserialize::absent`]. Used by the derive macro.
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, String> {
    match v.get(key) {
        Some(inner) => T::from_value(inner)
            .map_err(|e| format!("field `{key}`: {e}")),
        None => T::absent(key),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Deserialize for &'static str {
    /// Leaks each distinct string it deserializes. Only used for
    /// `&'static str` struct fields (device marketing names), a small
    /// closed set, so the leak is bounded.
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(format!("expected single-char string, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent(_field: &str) -> Result<Self, String> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Arr(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<const N: usize, T: Serialize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<const N: usize, T: Deserialize + std::fmt::Debug> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, String> {
        let xs: Vec<T> = Deserialize::from_value(v)?;
        let n = xs.len();
        xs.try_into()
            .map_err(|_| format!("expected array of length {N}, got {n}"))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Arr(xs) if xs.len() == [$($i),+].len() => {
                        Ok(($($t::from_value(&xs[$i])?,)+))
                    }
                    other => Err(format!("expected tuple array, got {other:?}")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => format!("{other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(format!("expected object, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_absent_defaults_to_none() {
        let v = Value::Obj(vec![]);
        let got: Option<u32> = de_field(&v, "missing").unwrap();
        assert_eq!(got, None);
        assert!(de_field::<u32>(&v, "missing").is_err());
    }

    #[test]
    fn vec_round_trip() {
        let xs = vec![1usize, 2, 3];
        let v = xs.to_value();
        assert_eq!(Vec::<usize>::from_value(&v).unwrap(), xs);
    }
}
