//! Offline stand-in for `rayon`, vendored so the workspace builds with no
//! network access. The `par_*` entry points return a [`Par`] wrapper that
//! executes **sequentially** on the calling thread; results are
//! bit-identical to rayon's (all uses in this workspace are
//! order-independent reductions or disjoint writes), only the speedup is
//! forfeited. Rayon's two-argument `reduce(identity, op)` is provided as
//! an inherent method so call sites compile unchanged.

/// Sequential stand-in for a rayon parallel iterator.
pub struct Par<I>(I);

impl<I: Iterator> Par<I> {
    /// Map each item.
    pub fn map<F, R>(self, f: F) -> Par<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        Par(self.0.map(f))
    }

    /// Pair items with their index.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    /// Zip with another (par-)iterator.
    pub fn zip<J: IntoIterator>(self, other: J) -> Par<std::iter::Zip<I, J::IntoIter>> {
        Par(self.0.zip(other))
    }

    /// Keep items satisfying the predicate.
    pub fn filter<F>(self, f: F) -> Par<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        Par(self.0.filter(f))
    }

    /// Consume every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Rayon-style fold: `identity()` seeds the accumulator, `op` merges.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

impl<I: Iterator> IntoIterator for Par<I> {
    type Item = I::Item;
    type IntoIter = I;

    fn into_iter(self) -> I {
        self.0
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T> {
    /// Per-element iterator.
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
    /// Chunked iterator (`size` elements per chunk, last may be short).
    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

/// `par_iter_mut` / `par_chunks_mut` on exclusive slices.
pub trait ParallelSliceMut<T> {
    /// Per-element mutable iterator.
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>>;
    /// Chunked mutable iterator.
    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        Par(self.iter())
    }

    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(size))
    }
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
        Par(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(size))
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{Par, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chained_mutation_matches_sequential() {
        let mut data = vec![0f32; 12];
        data.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 4 + j) as f32;
            }
        });
        assert_eq!(data, (0..12).map(|x| x as f32).collect::<Vec<_>>());
    }

    #[test]
    fn two_arg_reduce_and_zip() {
        let xs = [1.0f64, 2.0, 3.0];
        let ys = [10usize, 20, 30];
        let (s, n) = xs
            .par_iter()
            .zip(ys.par_iter())
            .map(|(&x, &y)| (x, y))
            .reduce(|| (0.0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!((s, n), (6.0, 60));
        let total: usize = ys.par_iter().map(|&y| y).sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..10).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }
}
