//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the vendored reflection-style `serde` stub without `syn`/`quote`: the
//! item's token stream is re-lexed from its string form and a trivial
//! item grammar (structs with named/tuple fields, enums with unit /
//! tuple / struct variants) is parsed by hand. Supported field
//! attributes: `#[serde(default)]` and `#[serde(default = "path")]` —
//! the only ones this workspace uses.

use proc_macro::TokenStream;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Punct(char),
    /// String literal, *unquoted* content.
    Str(String),
    Lifetime(String),
}

fn lex(src: &str) -> Vec<Tok> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            // Line or doc comment: runs to end of line (token streams
            // rendered from real source keep their newlines).
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            i += 2;
            while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                i += 1;
            }
            i += 2;
        } else if c == '"' {
            let mut s = String::new();
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    s.push(chars[i]);
                    s.push(chars[i + 1]);
                    i += 2;
                } else {
                    s.push(chars[i]);
                    i += 1;
                }
            }
            i += 1; // closing quote
            out.push(Tok::Str(s));
        } else if c == '\'' {
            // Lifetime ('a) or char literal ('x').
            if i + 2 < chars.len() && chars[i + 1] != '\\' && chars[i + 2] != '\'' {
                let mut name = String::new();
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    name.push(chars[i]);
                    i += 1;
                }
                out.push(Tok::Lifetime(name));
            } else {
                // char literal: skip to closing quote
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    if chars[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1;
                out.push(Tok::Ident("'c'".into()));
            }
        } else if c.is_alphanumeric() || c == '_' {
            let mut s = String::new();
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.') {
                s.push(chars[i]);
                i += 1;
            }
            out.push(Tok::Ident(s));
        } else {
            out.push(Tok::Punct(c));
            i += 1;
        }
    }
    out
}

/// How a field's absence is handled during deserialization.
#[derive(Debug, Clone, PartialEq)]
enum FieldDefault {
    /// No attribute: `de_field` (errors unless the type opts out).
    Required,
    /// `#[serde(default)]`: `Default::default()`.
    TypeDefault,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

#[derive(Debug)]
struct Field {
    name: String,
    default: FieldDefault,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Parser {
    toks: Vec<Tok>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).cloned();
        self.i += 1;
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    /// Skip a balanced group starting at the current opening delimiter.
    fn skip_balanced(&mut self) {
        let (open, close) = match self.peek() {
            Some(Tok::Punct('(')) => ('(', ')'),
            Some(Tok::Punct('[')) => ('[', ']'),
            Some(Tok::Punct('{')) => ('{', '}'),
            _ => return,
        };
        let mut depth = 0i32;
        while let Some(t) = self.bump() {
            match t {
                Tok::Punct(c) if c == open => depth += 1,
                Tok::Punct(c) if c == close => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
    }

    /// Consume attributes; return the field default they specify, if any.
    fn eat_attrs(&mut self) -> FieldDefault {
        let mut default = FieldDefault::Required;
        while self.peek() == Some(&Tok::Punct('#')) {
            self.i += 1; // '#'
            // Inspect the bracket group for serde(default...).
            let start = self.i;
            self.skip_balanced();
            let group = &self.toks[start..self.i];
            if group.len() >= 2 && group[1] == Tok::Ident("serde".into()) {
                // Shapes: [ serde ( default ) ] or [ serde ( default = "path" ) ]
                let has_default = group.iter().any(|t| *t == Tok::Ident("default".into()));
                if has_default {
                    let path = group.iter().find_map(|t| match t {
                        Tok::Str(s) => Some(s.clone()),
                        _ => None,
                    });
                    default = match path {
                        Some(p) => FieldDefault::Path(p),
                        None => FieldDefault::TypeDefault,
                    };
                }
            }
        }
        default
    }

    fn eat_vis(&mut self) {
        if self.peek() == Some(&Tok::Ident("pub".into())) {
            self.i += 1;
            if self.peek() == Some(&Tok::Punct('(')) {
                self.skip_balanced();
            }
        }
    }

    /// Skip a type expression: everything until a top-level ',' or the
    /// given closer. Leaves the ',' / closer unconsumed.
    fn skip_type(&mut self, closer: char) {
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while let Some(t) = self.peek() {
            match t {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => {
                    if paren == 0 && closer == ')' {
                        return;
                    }
                    paren -= 1;
                }
                Tok::Punct('[') => bracket += 1,
                Tok::Punct(']') => bracket -= 1,
                Tok::Punct(',') if angle == 0 && paren == 0 && bracket == 0 => return,
                Tok::Punct(c) if *c == closer && angle == 0 && paren == 0 && bracket == 0 => {
                    return
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    fn parse_named_fields(&mut self, closer: char) -> Vec<Field> {
        let mut fields = Vec::new();
        loop {
            while self.eat_punct(',') {}
            if self.peek() == Some(&Tok::Punct(closer)) || self.peek().is_none() {
                break;
            }
            let default = self.eat_attrs();
            self.eat_vis();
            let name = match self.bump() {
                Some(Tok::Ident(s)) => s,
                other => panic!("serde stub derive: expected field name, got {other:?}"),
            };
            assert!(self.eat_punct(':'), "serde stub derive: expected ':' after field `{name}`");
            self.skip_type(closer);
            fields.push(Field { name, default });
        }
        fields
    }

    fn parse_item(&mut self) -> Item {
        self.eat_attrs();
        self.eat_vis();
        let kw = loop {
            match self.bump() {
                Some(Tok::Ident(s)) if s == "struct" || s == "enum" => break s,
                Some(_) => continue,
                None => panic!("serde stub derive: no struct/enum found"),
            }
        };
        let name = match self.bump() {
            Some(Tok::Ident(s)) => s,
            other => panic!("serde stub derive: expected item name, got {other:?}"),
        };
        if self.peek() == Some(&Tok::Punct('<')) {
            panic!("serde stub derive: generic types are not supported (type `{name}`)");
        }
        if kw == "struct" {
            match self.peek() {
                Some(Tok::Punct('{')) => {
                    self.i += 1;
                    let fields = self.parse_named_fields('}');
                    Item::NamedStruct { name, fields }
                }
                Some(Tok::Punct('(')) => {
                    self.i += 1;
                    let mut arity = 0usize;
                    loop {
                        while self.eat_punct(',') {}
                        if self.peek() == Some(&Tok::Punct(')')) || self.peek().is_none() {
                            break;
                        }
                        let _ = self.eat_attrs();
                        self.eat_vis();
                        self.skip_type(')');
                        arity += 1;
                    }
                    Item::TupleStruct { name, arity }
                }
                _ => Item::UnitStruct { name },
            }
        } else {
            assert!(self.eat_punct('{'), "serde stub derive: expected enum body");
            let mut variants = Vec::new();
            loop {
                while self.eat_punct(',') {}
                if self.peek() == Some(&Tok::Punct('}')) || self.peek().is_none() {
                    break;
                }
                let _ = self.eat_attrs();
                let vname = match self.bump() {
                    Some(Tok::Ident(s)) => s,
                    other => panic!("serde stub derive: expected variant name, got {other:?}"),
                };
                let shape = match self.peek() {
                    Some(Tok::Punct('(')) => {
                        self.i += 1;
                        let mut arity = 0usize;
                        loop {
                            while self.eat_punct(',') {}
                            if self.peek() == Some(&Tok::Punct(')')) || self.peek().is_none() {
                                break;
                            }
                            self.skip_type(')');
                            arity += 1;
                        }
                        self.eat_punct(')');
                        VariantShape::Tuple(arity)
                    }
                    Some(Tok::Punct('{')) => {
                        self.i += 1;
                        let fields = self.parse_named_fields('}');
                        self.eat_punct('}');
                        VariantShape::Struct(fields)
                    }
                    _ => VariantShape::Unit,
                };
                // Skip a possible discriminant `= expr`.
                if self.eat_punct('=') {
                    while let Some(t) = self.peek() {
                        if matches!(t, Tok::Punct(',') | Tok::Punct('}')) {
                            break;
                        }
                        self.i += 1;
                    }
                }
                variants.push(Variant { name: vname, shape });
            }
            Item::Enum { name, variants }
        }
    }
}

fn parse(input: TokenStream) -> Item {
    let src = input.to_string();
    let mut p = Parser { toks: lex(&src), i: 0 };
    p.parse_item()
}

fn field_de_expr(f: &Field) -> String {
    match &f.default {
        FieldDefault::Required => format!("::serde::de_field(v, \"{}\")?", f.name),
        FieldDefault::TypeDefault => format!(
            "match v.get(\"{n}\") {{ \
                 Some(x) => ::serde::Deserialize::from_value(x)\
                     .map_err(|e| format!(\"field `{n}`: {{e}}\"))?, \
                 None => ::core::default::Default::default() }}",
            n = f.name
        ),
        FieldDefault::Path(p) => format!(
            "match v.get(\"{n}\") {{ \
                 Some(x) => ::serde::Deserialize::from_value(x)\
                     .map_err(|e| format!(\"field `{n}`: {{e}}\"))?, \
                 None => {p}() }}",
            n = f.name
        ),
    }
}

/// Derive `serde::Serialize` (reflection-style stub).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                     fn to_value(&self) -> ::serde::Value {{ \
                         ::serde::Value::Obj(vec![{}]) }} }}",
                pairs.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{ \
                         fn to_value(&self) -> ::serde::Value {{ \
                             ::serde::Serialize::to_value(&self.0) }} }}"
                )
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{ \
                         fn to_value(&self) -> ::serde::Value {{ \
                             ::serde::Value::Arr(vec![{}]) }} }}",
                    elems.join(", ")
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }} }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string())"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(a0) => ::serde::Value::Obj(vec![\
                                 (\"{vn}\".to_string(), ::serde::Serialize::to_value(a0))])"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("a{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(a{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({b}) => ::serde::Value::Obj(vec![\
                                     (\"{vn}\".to_string(), ::serde::Value::Arr(vec![{e}]))])",
                                b = binds.join(", "),
                                e = elems.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {b} }} => ::serde::Value::Obj(vec![\
                                     (\"{vn}\".to_string(), ::serde::Value::Obj(vec![{p}]))])",
                                b = binds.join(", "),
                                p = pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                     fn to_value(&self) -> ::serde::Value {{ \
                         match self {{ {} }} }} }}",
                arms.join(", ")
            )
        }
    };
    code.parse().expect("serde stub derive: generated code must parse")
}

/// Derive `serde::Deserialize` (reflection-style stub).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{n}: {e}", n = f.name, e = field_de_expr(f)))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, String> {{ \
                         if !matches!(v, ::serde::Value::Obj(_)) {{ \
                             return Err(format!(\"expected object for {name}, got {{v:?}}\")); }} \
                         Ok(Self {{ {} }}) }} }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{ \
                         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, String> {{ \
                             Ok(Self(::serde::Deserialize::from_value(v)?)) }} }}"
                )
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&xs[{i}])?"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{ \
                         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, String> {{ \
                             match v {{ \
                                 ::serde::Value::Arr(xs) if xs.len() == {arity} => \
                                     Ok(Self({})), \
                                 other => Err(format!(\"expected {arity}-array for {name}, got {{other:?}}\")) }} }} }}",
                    elems.join(", ")
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(_v: &::serde::Value) -> ::core::result::Result<Self, String> {{ \
                     Ok(Self) }} }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn})", vn = v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(payload)?))"
                        )),
                        VariantShape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&xs[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match payload {{ \
                                     ::serde::Value::Arr(xs) if xs.len() == {n} => \
                                         Ok({name}::{vn}({e})), \
                                     other => Err(format!(\
                                         \"expected {n}-array for {name}::{vn}, got {{other:?}}\")) }}",
                                e = elems.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{n}: {e}", n = f.name, e = field_de_expr(f)))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let v = payload; \
                                     Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let unit_match = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Str(s) => match s.as_str() {{ {}, \
                         other => Err(format!(\"unknown variant `{{other}}` of {name}\")) }},",
                    unit_arms.join(", ")
                )
            };
            let payload_match = if payload_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Obj(pairs) if pairs.len() == 1 => {{ \
                         let (tag, payload) = (&pairs[0].0, &pairs[0].1); \
                         match tag.as_str() {{ {}, \
                             other => Err(format!(\"unknown variant `{{other}}` of {name}\")) }} }},",
                    payload_arms.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, String> {{ \
                         match v {{ {unit_match} {payload_match} \
                             other => Err(format!(\"bad value for {name}: {{other:?}}\")) }} }} }}"
            )
        }
    };
    code.parse().expect("serde stub derive: generated code must parse")
}
