//! Offline stand-in for `proptest`, vendored so the workspace builds with
//! no network access. Supports the subset this workspace uses: the
//! `proptest!` macro over named-argument strategies, numeric range
//! strategies, `Just`, `prop_oneof!`, tuple strategies,
//! `prop::collection::vec`, `prop::sample::select`, and
//! `ProptestConfig::with_cases`.
//!
//! Cases are generated from a deterministic per-test seed (FNV of the
//! test name), so failures reproduce run-to-run. There is no shrinking:
//! a failing case panics with the assertion message directly.
//!
#![allow(clippy::type_complexity)]

pub mod strategy {
    //! Strategy trait, combinators, and the case-generation RNG.

    /// Deterministic per-case generator (SplitMix64 over an FNV seed).
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from the test name and case index; pure function of both.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform index below `n` (panics when `n == 0`).
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "empty choice");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.uniform();
                    (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                    let u = rng.uniform();
                    (lo + u * (hi - lo)) as $t
                }
            }
        )*};
    }

    impl_float_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );

    /// Uniform choice among boxed strategies sharing a value type
    /// (the expansion target of `prop_oneof!`).
    pub struct OneOf<V>(Vec<Box<dyn Fn(&mut TestRng) -> V>>);

    impl<V> OneOf<V> {
        /// Build from the boxed generator list.
        pub fn new(choices: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            OneOf(choices)
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.0.len());
            (self.0[i])(rng)
        }
    }

    /// Erase a strategy into the closure form `OneOf` consumes.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Fn(&mut TestRng) -> S::Value> {
        Box::new(move |rng| s.generate(rng))
    }
}

pub mod collection {
    //! Collection strategies.
    use crate::strategy::{Strategy, TestRng};

    /// Element-count specification for [`vec()`](crate::collection::vec): an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` draws.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with `size` elements (exact count or range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies over explicit value lists.
    use crate::strategy::{Strategy, TestRng};

    /// Strategy yielding uniformly-chosen clones from a list.
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }
}

pub mod test_runner {
    //! Run configuration.

    /// How many generated cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Default config with `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! `prop::collection` / `prop::sample` paths used inside tests.
        pub use crate::{collection, sample};
    }
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` seeded draws of its arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases as u64 {
                let mut __rng =
                    $crate::strategy::TestRng::for_case(stringify!($name), __case);
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                // Bodies may `return Ok(())` early (proptest convention),
                // so run them inside a Result-returning closure.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!("proptest case {__case} of {} failed: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Assert inside a property; failure reports the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn parity() -> impl Strategy<Value = u8> {
        prop_oneof![Just(0u8), Just(1u8)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hit_bounds(x in 3usize..7, f in -1.0f64..1.0) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_spec(
            exact in prop::collection::vec(0u64..10, 4),
            ranged in prop::collection::vec(0u64..10, 1..4),
        ) {
            prop_assert_eq!(exact.len(), 4);
            prop_assert!((1..4).contains(&ranged.len()));
        }

        #[test]
        fn oneof_and_select(p in parity(), pick in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(p <= 1);
            prop_assert!([2usize, 4, 8].contains(&pick));
        }

        #[test]
        fn tuples_compose((a, b) in (0u32..5, 10u32..15)) {
            prop_assert!(a < 5 && (10..15).contains(&b));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut r1 = crate::strategy::TestRng::for_case("t", 3);
        let mut r2 = crate::strategy::TestRng::for_case("t", 3);
        assert_eq!(r1.next_u64(), r2.next_u64());
        let mut r3 = crate::strategy::TestRng::for_case("t", 4);
        assert_ne!(r1.next_u64(), r3.next_u64());
    }
}
