//! Offline stand-in for `rand`, vendored so the workspace builds with no
//! network access. Provides the subset this workspace uses: a seedable
//! `SmallRng` (SplitMix64 core), `Rng::{gen, gen_range, gen_bool}` over
//! integer and float ranges, and `seq::SliceRandom::shuffle`.
//!
//! The stream differs numerically from upstream `rand`; the workspace only
//! relies on determinism-given-seed and reasonable uniformity, both of
//! which hold.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] from the "standard" distribution.
pub trait StandardSample {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Element types [`Rng::gen_range`] can draw uniformly. The generic
/// parameter is the *element* type (as in upstream rand), so unsuffixed
/// float literals in ranges infer from the surrounding expression.
pub trait SampleUniform: Sized {
    /// Draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw uniformly. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                let u = f64::sample_standard(rng);
                (lo as f64 + u * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// High-level sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw from the standard distribution (`f32`/`f64` in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T: SampleUniform, U: SampleRange<T>>(&mut self, range: U) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Small, fast, seedable generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed ^ 0x5DEECE66D }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly pick one element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&y));
            let f = rng.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformity_is_sane() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        let heads = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "gen_bool(0.25) frac {frac}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
