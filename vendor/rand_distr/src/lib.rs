//! Offline stand-in for `rand_distr`, vendored so the workspace builds
//! with no network access. Provides the `Distribution` trait and the
//! `LogNormal` distribution (Box–Muller) used by the workload models.

use rand::{RngCore, StandardSample};

/// Types that can draw samples of `T` from a generator.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// Log-normal distribution: `exp(mu + sigma * Z)` with standard normal `Z`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create from the location `mu` and scale `sigma > 0` of the
    /// underlying normal (matching `rand_distr::LogNormal::new`).
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma.is_finite() && sigma >= 0.0 && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform; clamp u1 away from zero so ln is finite.
        let u1 = f64::sample_standard(rng).max(1e-300);
        let u2 = f64::sample_standard(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(1.0, 0.5).is_ok());
    }

    #[test]
    fn lognormal_moments_are_sane() {
        // For mu=0, sigma=0.5 the median is exp(0)=1 and all samples > 0.
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let below = samples.iter().filter(|&&x| x < 1.0).count() as f64 / n as f64;
        assert!((below - 0.5).abs() < 0.02, "median off: {below} below 1.0");
        // Mean of log-samples ~ mu.
        let logmean = samples.iter().map(|x| x.ln()).sum::<f64>() / n as f64;
        assert!(logmean.abs() < 0.02, "log-mean {logmean} far from 0");
    }
}
