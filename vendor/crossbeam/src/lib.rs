//! Offline stand-in for `crossbeam`, vendored so the workspace builds
//! with no network access. Only the `channel` module surface this
//! workspace uses is provided: unbounded channels whose `Receiver` is
//! cloneable (std's `mpsc::Receiver` wrapped in `Arc<Mutex<..>>`).
//! Disconnect semantics match crossbeam: `recv` fails once every sender
//! is gone, `send` fails once every receiver clone is gone.

pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel; cloneable (clones share
    /// the same queue, crossbeam-style).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    impl<T> Sender<T> {
        /// Send a message; fails if all receivers are gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t)
        }
    }

    impl<T> Receiver<T> {
        fn guard(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Block until a message or disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.guard().recv()
        }

        /// Block with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.guard().recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.guard().try_recv()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            let rx2 = rx.clone();
            drop(tx);
            assert!(rx2.recv().is_err(), "all senders gone");
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            drop(rx);
            drop(rx2);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
