//! Offline stand-in for `crossbeam`, vendored so the workspace builds
//! with no network access. Only the `channel` module surface this
//! workspace uses is provided: unbounded and bounded MPMC channels with
//! cloneable senders and receivers, built on `Mutex<VecDeque>` plus two
//! condition variables. Disconnect semantics match crossbeam: `recv`
//! fails once every sender is gone, `send` fails once every receiver
//! clone is gone, and bounded `send` blocks while the queue is full.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Error returned by [`Sender::try_send`], mirroring
    /// `crossbeam_channel::TrySendError`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Sender::send_timeout`], mirroring
    /// `crossbeam_channel::SendTimeoutError`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The queue stayed full for the whole timeout.
        Timeout(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        /// `None` = unbounded.
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when a message is pushed or the last sender drops.
        not_empty: Condvar,
        /// Signalled when a message is popped or the last receiver drops.
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> MutexGuard<'_, Inner<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Sending half of a channel; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of a channel; cloneable (clones share the same
    /// queue, crossbeam-style).
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.0.lock();
            g.senders -= 1;
            if g.senders == 0 {
                drop(g);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut g = self.0.lock();
            g.receivers -= 1;
            if g.receivers == 0 {
                drop(g);
                self.0.not_full.notify_all();
            }
        }
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    /// Create a bounded channel holding at most `cap` messages
    /// (`cap == 0` is treated as capacity 1; this stand-in has no
    /// zero-capacity rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    impl<T> Inner<T> {
        fn full(&self) -> bool {
            self.cap.is_some_and(|c| self.queue.len() >= c)
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded queue is full;
        /// fails if all receivers are gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut g = self.0.lock();
            loop {
                if g.receivers == 0 {
                    return Err(SendError(t));
                }
                if !g.full() {
                    g.queue.push_back(t);
                    drop(g);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                g = self.0.not_full.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Send without blocking; fails with `Full` if a bounded queue
        /// is at capacity.
        pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
            let mut g = self.0.lock();
            if g.receivers == 0 {
                return Err(TrySendError::Disconnected(t));
            }
            if g.full() {
                return Err(TrySendError::Full(t));
            }
            g.queue.push_back(t);
            drop(g);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Send with a timeout: blocks up to `timeout` for queue space.
        pub fn send_timeout(&self, t: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut g = self.0.lock();
            loop {
                if g.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(t));
                }
                if !g.full() {
                    g.queue.push_back(t);
                    drop(g);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(SendTimeoutError::Timeout(t));
                }
                let (guard, _res) = self
                    .0
                    .not_full
                    .wait_timeout(g, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                g = guard;
            }
        }
    }

    impl<T> Receiver<T> {
        fn pop(&self, g: &mut MutexGuard<'_, Inner<T>>) -> Option<T> {
            let t = g.queue.pop_front();
            if t.is_some() {
                self.0.not_full.notify_one();
            }
            t
        }

        /// Block until a message or disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.0.lock();
            loop {
                if let Some(t) = self.pop(&mut g) {
                    return Ok(t);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.0.not_empty.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Block with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut g = self.0.lock();
            loop {
                if let Some(t) = self.pop(&mut g) {
                    return Ok(t);
                }
                if g.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .0
                    .not_empty
                    .wait_timeout(g, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                g = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut g = self.0.lock();
            if let Some(t) = self.pop(&mut g) {
                return Ok(t);
            }
            if g.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            let rx2 = rx.clone();
            drop(tx);
            assert!(rx2.recv().is_err(), "all senders gone");
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            drop(rx);
            drop(rx2);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn bounded_blocks_until_space() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(
                tx.send_timeout(3, Duration::from_millis(10)),
                Err(SendTimeoutError::Timeout(3))
            );
            // A blocked send completes once the consumer drains one slot.
            let t = std::thread::spawn(move || tx.send(3).map_err(|_| ()));
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn bounded_send_fails_on_disconnect_not_timeout() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            drop(rx);
            assert_eq!(
                tx.send_timeout(2, Duration::from_millis(5)),
                Err(SendTimeoutError::Disconnected(2))
            );
        }

        #[test]
        fn fifo_order_with_cloned_receivers() {
            let (tx, rx) = bounded::<u32>(8);
            let rx2 = rx.clone();
            for i in 0..6 {
                tx.send(i).unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..3 {
                got.push(rx.recv().unwrap());
                got.push(rx2.recv().unwrap());
            }
            assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        }

        #[test]
        fn len_tracks_queue_depth() {
            let (tx, rx) = unbounded::<u32>();
            assert!(rx.is_empty());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            rx.recv().unwrap();
            assert_eq!(rx.len(), 1);
        }
    }
}
