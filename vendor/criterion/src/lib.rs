//! Offline stand-in for `criterion`, vendored so the workspace builds
//! with no network access. Benches compile and run with the same API
//! (`criterion_group!`, `benchmark_group`, `bench_with_input`, …) but use
//! a simple mean-of-N timer instead of criterion's statistical engine:
//! each benchmark warms up once, then runs for a bounded number of
//! iterations and prints the mean wall time.

use std::time::{Duration, Instant};

/// Upper bound on timed iterations per benchmark.
const MAX_ITERS: u32 = 30;
/// Wall-clock budget per benchmark.
const TIME_BUDGET: Duration = Duration::from_millis(400);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

/// A named family of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

/// Two-part benchmark label (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose a label from a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

impl Bencher {
    /// Time repeated runs of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, untimed
        let budget_start = Instant::now();
        while self.iters < MAX_ITERS && budget_start.elapsed() < TIME_BUDGET {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0 };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<50} (no samples)");
    } else {
        let mean = b.total / b.iters;
        println!("{label:<50} {mean:>12.2?} mean of {} iters", b.iters);
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), f);
        self
    }
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub timer bounds iterations
    /// internally instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Run a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// End the group (no-op; output is printed eagerly).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::new("param", 42), &7u32, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }
}
