//! Offline stand-in for `parking_lot`, vendored so the workspace builds
//! with no network access. Wraps `std::sync` primitives with
//! parking_lot's poison-free API (lock() returns the guard directly).

use std::sync::PoisonError;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard for shared access.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for exclusive access.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
