//! Quickstart: plan LLM serving for a heterogeneous cluster in ~30 lines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Mirrors the paper's `llmpq-algo` entry point: pick a cluster and a
//! model, build the cost database and the sensitivity indicator, run the
//! assigner, and print the resulting execution plan (the strategy file
//! `llmpq-dist` would launch).

use llm_pq::{assign, AssignerConfig};
use llmpq_cluster::paper_cluster;
use llmpq_cost::CostDb;
use llmpq_model::zoo;
use llmpq_quant::{calibrate, variance_indicator, Rounding};
use llmpq_model::{RefConfig, RefModel};
use llmpq_sim::KernelEnv;
use llmpq_workload::BatchJob;

fn main() {
    // 1. The serving scenario: OPT-30b on paper cluster 3 (3×T4 + V100),
    //    batch 32, prompts padded to 512, 100 generated tokens.
    let cluster = paper_cluster(3);
    let spec = zoo::opt_30b();
    let job = BatchJob::paper_default();

    // 2. Cost database (the profiler/simulator) and the variance
    //    indicator from a calibration pass over a scaled stand-in model.
    let db = CostDb::oracle(&KernelEnv::default());
    let teacher = RefModel::new(RefConfig::scaled_like(spec.n_layers, 1));
    let calib: Vec<Vec<usize>> =
        (0..4).map(|i| (0..32).map(|j| (i * 37 + j * 11) % teacher.cfg.vocab).collect()).collect();
    let report = calibrate(&teacher, &calib);
    let indicator =
        variance_indicator(&teacher, &report, Rounding::Deterministic).normalized_budget(1.0);

    // 3. Run the assigner (Algorithm 1).
    let cfg = AssignerConfig::default();
    let out = assign(&cluster, &spec, &job, &db, &indicator, &cfg).expect("feasible plan");

    // 4. Inspect the plan.
    println!("LLM-PQ plan for {} on {}:", spec.name, cluster.name);
    for (i, s) in out.plan.stages.iter().enumerate() {
        let gpu = cluster.devices[s.device].gpu;
        let bits: Vec<String> = s.bits.iter().map(|b| b.to_string()).collect();
        println!(
            "  stage {i}: {gpu} layers {}..{} bits [{}]",
            s.layer_start,
            s.layer_end,
            bits.join(",")
        );
    }
    println!(
        "  micro-batches: prefill {}x{}, decode {}x{}",
        out.plan.microbatch.prefill_count,
        out.plan.microbatch.prefill_size,
        out.plan.microbatch.decode_count,
        out.plan.microbatch.decode_size,
    );
    println!(
        "  predicted: {:.1} tokens/s, batch latency {:.2}s, mean bits {:.1}, assigner took {:.2}s",
        out.report.throughput, out.report.total_latency, out.report.mean_bits, out.overhead_s
    );

    // 5. Emit the strategy file.
    let json = out.plan.to_json();
    println!("\nstrategy file ({} bytes of JSON) ready for the runtime", json.len());
}
