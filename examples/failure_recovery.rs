//! Failure recovery in the pipeline runtime.
//!
//! ```bash
//! cargo run --release --example failure_recovery
//! ```
//!
//! Injects a stage-worker crash mid-generation and shows the recoverable
//! runner checkpointing progress, reloading the stage through the
//! on-the-fly quantizer (the fast-recovery path the paper's §5 loader
//! was built for), and resuming to a bit-identical result.

use llm_pq::{ExecutionPlan, StagePlan};
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{quantize_model, BitAssignment, Bitwidth, Rounding};
use llmpq_runtime::{run_pipeline_recoverable, FaultPlan, RuntimeError};
use llmpq_workload::MicrobatchPlan;

fn main() -> Result<(), RuntimeError> {
    let checkpoint = RefModel::new(RefConfig::scaled_like(6, 77));
    let bits = vec![
        Bitwidth::Int8,
        Bitwidth::Int8,
        Bitwidth::Int4,
        Bitwidth::Int4,
        Bitwidth::Int4,
        Bitwidth::Fp16,
    ];
    let plan = ExecutionPlan {
        model: "demo-6l".into(),
        cluster: "demo".into(),
        stages: vec![
            StagePlan { device: 0, layer_start: 0, layer_end: 3, bits: bits[..3].to_vec() },
            StagePlan { device: 1, layer_start: 3, layer_end: 6, bits: bits[3..].to_vec() },
        ],
        microbatch: MicrobatchPlan { prefill_size: 2, prefill_count: 2, decode_size: 4, decode_count: 1 },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    };
    let prompts: Vec<Vec<usize>> =
        (0..4).map(|i| (0..10).map(|j| (i * 31 + j * 7) % 256).collect()).collect();

    println!("running 24-token generation with stage 1 crashing after 8 work items…");
    let (out, restarts) = run_pipeline_recoverable(
        &checkpoint,
        &plan,
        &prompts,
        24,
        Rounding::Deterministic,
        0,
        3,
        // stage 1 dies mid-decode on the first attempt
        Some(&FaultPlan::crash(1, 8)),
    )?;
    println!("recovered with {restarts} restart(s); wall {:.3}s", out.wall_s);
    for (i, m) in out.stage_metrics.iter().enumerate() {
        println!("  stage {i}: {} items, {:.4}s busy", m.items, m.busy_s);
    }

    // Verify against sequential execution of the same quantized model.
    let qm = quantize_model(&checkpoint, &BitAssignment { bits }, Rounding::Deterministic, 0);
    for (i, p) in prompts.iter().enumerate() {
        assert_eq!(out.tokens[i], qm.generate(p, 24, 0.0, 0).tokens, "sequence {i}");
    }
    println!("\ntokens verified bit-identical to an uninterrupted sequential run ✓");
    Ok(())
}
