//! Quality trade-off exploration: *where* you spend your bits matters.
//!
//! ```bash
//! cargo run --release --example quality_tradeoff
//! ```
//!
//! Demonstrates the paper's Table 1 observation on a live model: under
//! the same memory budget (half the layers int8, half int4), different
//! placements give measurably different perplexity. The example measures
//! the placement spread, compares indicator-guided vs random placement,
//! and checks that both stay between the uniform endpoints.
//!
//! Substitution note (DESIGN.md): on the synthetic stand-in, true
//! end-to-end sensitivity is concentrated in *early* layers (noise
//! compounds through random-weight depth), while the paper's trained
//! OPT shows the opposite profile. The variance indicator is local by
//! construction — it models each layer's own output perturbation — so
//! this example also reports the oracle (probe-measured) placement to
//! show the full headroom placement offers.

use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{
    calibrate, quantize_model, variance_indicator, BitAssignment, Bitwidth, Rounding,
};
use llmpq_quality::{perplexity_suite, standard_corpora, Corpus};
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};

fn ppl(model: &RefModel, bits: &BitAssignment, corpora: &[Corpus]) -> f64 {
    let q = quantize_model(model, bits, Rounding::Deterministic, 0);
    perplexity_suite(&q, corpora).average
}

fn half_int8(n: usize, chosen: &[usize]) -> BitAssignment {
    let mut a = BitAssignment::uniform(n, Bitwidth::Int4);
    for &l in chosen {
        a.bits[l] = Bitwidth::Int8;
    }
    a
}

fn main() {
    let model = RefModel::new(RefConfig::scaled_like(24, 9));
    let corpora = standard_corpora(&model, 6, 28);
    let n = model.cfg.n_layers;
    let half = n / 2;
    println!("fp16 PPL: {:.3}", perplexity_suite(&model, &corpora).average);
    for bits in [Bitwidth::Int8, Bitwidth::Int4] {
        println!(
            "uniform {bits}: PPL {:.3}",
            ppl(&model, &BitAssignment::uniform(n, bits), &corpora)
        );
    }
    println!("\nSame budget (12×int8 + 12×int4), different placements:");

    // Oracle: probe each layer's true sensitivity on a small corpus and
    // protect the most damaging layers with int8.
    let probe = &corpora[..1];
    let mut probed: Vec<(usize, f64)> = (0..n)
        .map(|l| {
            let mut a = BitAssignment::uniform(n, Bitwidth::Fp16);
            a.bits[l] = Bitwidth::Int4;
            (l, ppl(&model, &a, probe))
        })
        .collect();
    probed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let oracle: Vec<usize> = probed.iter().take(half).map(|(l, _)| *l).collect();
    let anti: Vec<usize> = probed.iter().rev().take(half).map(|(l, _)| *l).collect();
    println!("  oracle (probe-guided):    PPL {:.3}", ppl(&model, &half_int8(n, &oracle), &corpora));

    // Indicator-guided (the paper's cheap local indicator).
    let calib: Vec<Vec<usize>> =
        (0..4).map(|i| (0..24).map(|j| (i * 31 + j * 7) % model.cfg.vocab).collect()).collect();
    let report = calibrate(&model, &calib);
    let ind = variance_indicator(&model, &report, Rounding::Deterministic);
    let mut by_ind: Vec<usize> = (0..n).collect();
    by_ind.sort_by(|&a, &b| {
        ind.get(b, Bitwidth::Int4).partial_cmp(&ind.get(a, Bitwidth::Int4)).unwrap()
    });
    let guided: Vec<usize> = by_ind.iter().take(half).copied().collect();
    println!("  variance-indicator-guided: PPL {:.3}", ppl(&model, &half_int8(n, &guided), &corpora));

    // Random placements.
    let mut rng = SmallRng::seed_from_u64(77);
    let mut random_ppls = Vec::new();
    for _ in 0..5 {
        let mut layers: Vec<usize> = (0..n).collect();
        layers.shuffle(&mut rng);
        random_ppls.push(ppl(&model, &half_int8(n, &layers[..half]), &corpora));
    }
    let mean_random = random_ppls.iter().sum::<f64>() / random_ppls.len() as f64;
    println!("  random (5 seeds, mean):    PPL {mean_random:.3}  {random_ppls:.3?}");

    // Adversarial: protect the least sensitive layers.
    println!("  adversarial (anti-oracle): PPL {:.3}", ppl(&model, &half_int8(n, &anti), &corpora));

    println!("\nTakeaway: the oracle—adversarial spread is the value of placement (Table 1);");
    println!("the oracle must beat random. All placements sit between the uniform endpoints.");
}
