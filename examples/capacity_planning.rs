//! Capacity planning: which of your idle GPUs can serve which model,
//! and at what cost in quality?
//!
//! ```bash
//! cargo run --release --example capacity_planning
//! ```
//!
//! The paper's Figure-1 motivation in practice: an operator holding a
//! mixed bag of idle inference GPUs wants to know what LLM they can
//! serve and how fast. This example sweeps candidate clusters assembled
//! from idle capacity and reports the best plan per (cluster, model),
//! including the quality trade-off of θ.

use llm_pq::{assign, AssignerConfig, SolverChoice};
use llmpq_cluster::{Cluster, GpuModel, Interconnect, ProductionTrace, TraceConfig};
use llmpq_cost::CostDb;
use llmpq_model::zoo;
use llmpq_quant::IndicatorTable;
use llmpq_sim::KernelEnv;
use llmpq_workload::BatchJob;

fn flat_indicator(n: usize) -> IndicatorTable {
    IndicatorTable {
        omega: (0..n)
            .map(|l| {
                let base = 1.0 / (1.0 + l as f64 * 0.1) / n as f64;
                [base, base * 0.22, base * 0.02, 0.0]
            })
            .collect(),
    }
}

fn main() {
    // Where the idle capacity lives (Fig 1).
    let trace = ProductionTrace::generate(&TraceConfig::default());
    println!("Idle GPU-hours in the production trace:");
    for (g, h) in trace.idle_gpu_hours() {
        println!("  {g}: {h:.0}");
    }

    // Candidate scavenged clusters.
    let candidates = vec![
        Cluster::from_groups("4xT4", &[(GpuModel::T4_16G, 4)], Interconnect::Ethernet100G, None),
        Cluster::from_groups(
            "4xT4+2xV100",
            &[(GpuModel::T4_16G, 4), (GpuModel::V100_32G, 2)],
            Interconnect::Ethernet100G,
            None,
        ),
        Cluster::from_groups(
            "2xP100+1xV100",
            &[(GpuModel::P100_12G, 2), (GpuModel::V100_32G, 1)],
            Interconnect::Ethernet100G,
            None,
        ),
    ];
    let models = vec![zoo::opt_13b(), zoo::opt_30b(), zoo::opt_66b()];
    let db = CostDb::oracle(&KernelEnv::default());
    let job = BatchJob::paper_default();

    println!("\nBest feasible plan per (cluster, model):");
    println!("{:<14} {:<9} {:>12} {:>10} {:>10}", "cluster", "model", "tokens/s", "mean bits", "plan time");
    for cluster in &candidates {
        for spec in &models {
            let cfg = AssignerConfig {
                theta: 0.5,
                solver: SolverChoice::Dp { group: 4 },
                xi: 4,
                max_orderings: 3,
                dp_grid: Some(10),
                search_kv8: false,
        max_bits: None,
            };
            match assign(cluster, spec, &job, &db, &flat_indicator(spec.n_layers), &cfg) {
                Ok(out) => println!(
                    "{:<14} {:<9} {:>12.1} {:>10.1} {:>9.2}s",
                    cluster.name, spec.name, out.report.throughput, out.report.mean_bits, out.overhead_s
                ),
                Err(_) => println!(
                    "{:<14} {:<9} {:>12} {:>10} {:>10}",
                    cluster.name, spec.name, "does not fit", "-", "-"
                ),
            }
        }
    }
    println!("\n(models that don't fit even at 3-bit are reported as infeasible — the");
    println!(" assigner's memory model catches OOM before any deployment attempt)");
}
