//! End-to-end serving: plan with the assigner, then *execute* the plan
//! on the live pipeline runtime.
//!
//! ```bash
//! cargo run --release --example serve_heterogeneous
//! ```
//!
//! Uses a laptop-scale reference transformer as the checkpoint so the
//! whole flow — phase-aware partition, adaptive quantization, on-the-fly
//! quantized loading, master engine + stage workers — actually runs and
//! generates tokens, bit-identical to sequential execution.

use llm_pq::{assign, AssignerConfig, SolverChoice};
use llmpq_cluster::{Cluster, GpuModel, Interconnect};
use llmpq_cost::CostDb;
use llmpq_model::{ModelFamily, ModelSpec, RefConfig, RefModel};
use llmpq_quant::{calibrate, variance_indicator, Rounding};
use llmpq_runtime::run_pipeline;
use llmpq_sim::KernelEnv;
use llmpq_workload::BatchJob;

fn main() {
    // A small heterogeneous "cluster": one T4 and one V100.
    let cluster = Cluster::from_groups(
        "demo",
        &[(GpuModel::T4_16G, 1), (GpuModel::V100_32G, 1)],
        Interconnect::Ethernet800G,
        None,
    );
    // The model as the *planner* sees it: 8 transformer layers at a
    // serving-scale width (hidden 12288), so real memory pressure forces
    // adaptive quantization…
    let spec = ModelSpec::new(ModelFamily::Opt, "demo-8l", 8, 12288, 96, 50272, 2048);
    // …and as the *runtime* executes it: the scaled stand-in checkpoint
    // with the same layer count (the DESIGN.md substitution).
    let checkpoint = RefModel::new(RefConfig::scaled_like(8, 123));

    let job = BatchJob { global_batch: 32, prompt_len: 512, n_generate: 100 };
    let db = CostDb::oracle(&KernelEnv::default());
    let calib: Vec<Vec<usize>> =
        (0..4).map(|i| (0..24).map(|j| (i * 29 + j * 13) % 256).collect()).collect();
    let report = calibrate(&checkpoint, &calib);
    let indicator =
        variance_indicator(&checkpoint, &report, Rounding::Deterministic).normalized_budget(1.0);

    let cfg = AssignerConfig { theta: 0.2, solver: SolverChoice::Dp { group: 1 }, ..Default::default() };
    let out = assign(&cluster, &spec, &job, &db, &indicator, &cfg).expect("plan");
    println!("plan: {} stages, mean bits {:.1}", out.plan.stages.len(), out.report.mean_bits);

    // Six prompts of 12 tokens each.
    let prompts: Vec<Vec<usize>> = (0..6)
        .map(|i| (0..12).map(|j| (i * 41 + j * 17) % 256).collect())
        .collect();

    let n_generate = 16; // runtime demo length (the plan covers n=100)
    let run = run_pipeline(&checkpoint, &out.plan, &prompts, n_generate, Rounding::Deterministic, 0, None)
        .expect("pipeline runs");
    println!("\ngenerated {n_generate} tokens per sequence in {:.3}s (wall):", run.wall_s);
    for (i, toks) in run.tokens.iter().enumerate() {
        println!("  seq {i}: {:?}", &toks[..8.min(toks.len())]);
    }
    for (i, s) in run.loader_stats.iter().enumerate() {
        println!(
            "  stage {i} loader: {} modules streamed ({} quantized), peak staging {} KiB",
            s.modules,
            s.quantized_modules,
            s.peak_staging_bytes / 1024
        );
    }

    // Prove equivalence with single-threaded execution.
    let qm = llmpq_quant::quantize_model(
        &checkpoint,
        &out.plan.bit_assignment(),
        Rounding::Deterministic,
        0,
    );
    let want = qm.generate(&prompts[0], n_generate, 0.0, 0).tokens;
    assert_eq!(run.tokens[0], want);
    println!("\npipeline output verified bit-identical to sequential execution ✓");
}
