//! Serve online traffic with an offline plan (paper §7 discussion).
//!
//! ```bash
//! cargo run --release --example online_serving
//! ```
//!
//! Builds an LLM-PQ plan for a small heterogeneous cluster, then feeds it
//! Poisson arrivals with ShareGPT-like prompt lengths and reports the
//! latency/throughput/padding profile at increasing load.

use llm_pq::evaluate::stage_loads;
use llm_pq::{assign, AssignerConfig, SolverChoice};
use llmpq_cluster::{Cluster, GpuModel, Interconnect};
use llmpq_cost::CostDb;
use llmpq_model::{zoo, RefConfig, RefModel};
use llmpq_quant::{calibrate, variance_indicator, Rounding};
use llmpq_sim::{simulate_pipeline, KernelEnv, PipelineWorkload};
use llmpq_workload::{simulate_online, BatchJob, OnlineConfig, PromptLengthModel};

fn main() {
    let cluster = Cluster::from_groups(
        "online-demo",
        &[(GpuModel::T4_16G, 2), (GpuModel::V100_32G, 1)],
        Interconnect::Ethernet800G,
        None,
    );
    let spec = zoo::opt_13b();
    let job = BatchJob { global_batch: 8, prompt_len: 512, n_generate: 100 };
    let db = CostDb::oracle(&KernelEnv::default());
    let teacher = RefModel::new(RefConfig::scaled_like(spec.n_layers, 1));
    let calib: Vec<Vec<usize>> =
        (0..4).map(|i| (0..32).map(|j| (i * 37 + j * 11) % teacher.cfg.vocab).collect()).collect();
    let report = calibrate(&teacher, &calib);
    let indicator =
        variance_indicator(&teacher, &report, Rounding::Deterministic).normalized_budget(1.0);
    let cfg = AssignerConfig { theta: 0.5, solver: SolverChoice::Dp { group: 4 }, ..Default::default() };
    let out = assign(&cluster, &spec, &job, &db, &indicator, &cfg).expect("plan");
    println!(
        "plan: {} stages, {:.1} mean bits, offline {:.1} tok/s\n",
        out.plan.stages.len(),
        out.report.mean_bits,
        out.report.throughput
    );

    let plan = out.plan.clone();
    let batch_cost = move |s: usize, n: usize, b: usize| {
        let job = BatchJob { global_batch: b, prompt_len: s, n_generate: n };
        let mut p = plan.clone();
        p.microbatch.prefill_size = p.microbatch.prefill_size.min(b).max(1);
        p.microbatch.prefill_count = b.div_ceil(p.microbatch.prefill_size);
        p.microbatch.decode_size = p.microbatch.decode_size.min(b).max(1);
        p.microbatch.decode_count = b.div_ceil(p.microbatch.decode_size);
        let loads = stage_loads(&p, &cluster, &spec, &db, &job);
        let wl = PipelineWorkload {
            prefill_microbatches: p.microbatch.prefill_count,
            decode_microbatches: p.microbatch.decode_count,
            n_tokens: n,
            master_prefill: 0.0,
            master_decode: 0.0,
        };
        simulate_pipeline(&loads, &wl).total_latency
    };

    let prompt_model = PromptLengthModel::default();
    println!("{:>8} {:>10} {:>10} {:>12} {:>10}", "req/s", "p50 (s)", "p95 (s)", "tok/s", "padding");
    for rate in [0.1, 0.3, 1.0, 3.0] {
        let cfg = OnlineConfig { arrival_rate: rate, n_requests: 100, batch_size: 8, ..Default::default() };
        let s = simulate_online(&cfg, &prompt_model, &batch_cost).expect("online sim");
        println!(
            "{rate:>8} {:>10.2} {:>10.2} {:>12.1} {:>9.0}%",
            s.p50_latency,
            s.p95_latency,
            s.throughput,
            s.padding_fraction * 100.0
        );
    }
    println!("\nthe knee marks this plan's online capacity; beyond it requests queue.");
}
