//! Property-based tests for quantization numerics and indicators.

use llmpq_model::Matrix;
use llmpq_quant::{
    fake_quantize_scheme, quantization_mse, quantize_matrix, Bitwidth, QuantScheme, Rounding,
};
use proptest::prelude::*;

fn any_int_bits() -> impl Strategy<Value = Bitwidth> {
    prop_oneof![Just(Bitwidth::Int3), Just(Bitwidth::Int4), Just(Bitwidth::Int8)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MSE shrinks as the grid gets finer. Strict pointwise monotonicity
    /// can fail on tiny matrices when a coarse grid happens to align with
    /// the data, so the property is checked with enough elements to
    /// average the alignment luck and a modest tolerance.
    #[test]
    fn mse_monotone_in_bits(rows in 4usize..10, cols in 16usize..48, seed in 0u64..1000) {
        let m = Matrix::random(rows, cols, 0.5, seed);
        let e3 = quantization_mse(&m, Bitwidth::Int3, Rounding::Deterministic, 0);
        let e4 = quantization_mse(&m, Bitwidth::Int4, Rounding::Deterministic, 0);
        let e8 = quantization_mse(&m, Bitwidth::Int8, Rounding::Deterministic, 0);
        prop_assert!(e3 >= e4 * 0.85, "int3 MSE {e3} below int4 {e4}");
        prop_assert!(e4 >= e8 * 0.85, "int4 MSE {e4} below int8 {e8}");
        // And the aggregate ordering over the whole grid ladder is strict.
        prop_assert!(e3 > e8, "coarsest must be worst overall");
    }

    /// Quantization is idempotent: re-quantizing a dequantized matrix at
    /// the same precision is exact (values already sit on the grid).
    #[test]
    fn quantization_idempotent(bits in any_int_bits(), seed in 0u64..1000) {
        let m = Matrix::random(6, 24, 0.4, seed);
        let once = quantize_matrix(&m, bits, Rounding::Deterministic, 0).dequantize();
        let twice = quantize_matrix(&once, bits, Rounding::Deterministic, 0).dequantize();
        for (a, b) in once.data.iter().zip(twice.data.iter()) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    /// Group-wise error essentially never exceeds per-channel error
    /// (finer scales can only help the *range*; round-to-nearest noise
    /// can add a sub-percent wiggle), and the scheme storage ordering
    /// holds.
    #[test]
    fn groupwise_no_worse_than_per_channel(
        seed in 0u64..500,
        group in prop::sample::select(vec![8usize, 16, 32]),
    ) {
        use llmpq_quant::scheme_mse;
        let m = Matrix::random(8, 64, 0.3, seed);
        let pc = scheme_mse(&m, Bitwidth::Int4, QuantScheme::PerChannel, Rounding::Deterministic, 0);
        let gw = scheme_mse(&m, Bitwidth::Int4, QuantScheme::GroupWise { group }, Rounding::Deterministic, 0);
        prop_assert!(gw <= pc * 1.05 + 1e-12, "group-wise {gw} much worse than per-channel {pc}");
        let pc_bytes = QuantScheme::PerChannel.scale_bytes(8, 64);
        let gw_bytes = QuantScheme::GroupWise { group }.scale_bytes(8, 64);
        prop_assert!(gw_bytes >= pc_bytes);
    }

    /// Fake-quantized values always lie on the representable grid of the
    /// row/group scale.
    #[test]
    fn values_on_grid(bits in any_int_bits(), seed in 0u64..500) {
        let m = Matrix::random(4, 16, 0.6, seed);
        let q = quantize_matrix(&m, bits, Rounding::Deterministic, 0);
        let dq = q.dequantize();
        for r in 0..4 {
            let s = q.scales[r];
            for &v in dq.row(r) {
                let steps = v / s;
                prop_assert!((steps - steps.round()).abs() < 1e-3,
                    "{v} not a multiple of scale {s}");
            }
        }
    }

    /// Double quantization reproduces group-wise within a small factor
    /// while never inflating the scale storage.
    #[test]
    fn double_quant_bounded(seed in 0u64..300) {
        let m = Matrix::random(8, 64, 0.3, seed);
        let gw = fake_quantize_scheme(&m, Bitwidth::Int4, QuantScheme::GroupWise { group: 16 }, Rounding::Deterministic, 0);
        let dq = fake_quantize_scheme(&m, Bitwidth::Int4, QuantScheme::DoubleQuant { group: 16 }, Rounding::Deterministic, 0);
        let err_gw: f64 = m.data.iter().zip(&gw.data).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum();
        let err_dq: f64 = m.data.iter().zip(&dq.data).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum();
        prop_assert!(err_dq <= err_gw * 4.0 + 1e-9, "double-quant error exploded");
        let b_gw = QuantScheme::GroupWise { group: 16 }.scale_bytes(8, 64);
        let b_dq = QuantScheme::DoubleQuant { group: 16 }.scale_bytes(8, 64);
        prop_assert!(b_dq < b_gw);
    }
}
