//! Symmetric per-channel weight quantization.
//!
//! Matches the numerics the paper builds on (§2.4): the weight range of
//! each output channel (row) is split into a fixed number of bins; each
//! weight is mapped to `round(w / s)` on a signed integer grid and
//! dequantized as `ŵ = s · q`. Two rounding modes are supported —
//! deterministic (round-to-nearest, as GPTQ/bitsandbytes) and stochastic
//! (unbiased randomized rounding) — because the paper's Theorem 1 derives
//! a different output-variance bound for each.

use crate::bitwidth::Bitwidth;
use llmpq_kernels::{PackBits, PackedMatrix, DEFAULT_GROUP};
use llmpq_model::{LinearOp, Matrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Rounding mode used when mapping weights onto the integer grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rounding {
    /// Round to nearest (used by GPTQ, SmoothQuant, bitsandbytes).
    Deterministic,
    /// Unbiased stochastic rounding: round up with probability equal to
    /// the fractional part.
    Stochastic,
}

/// A quantized weight matrix: `i8` payload + one `f32` scale per row
/// (output channel). Symmetric quantization, so no zero points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    /// Rows (output channels).
    pub rows: usize,
    /// Columns (input features).
    pub cols: usize,
    /// Precision of the payload grid.
    pub bits: Bitwidth,
    /// Row-major quantized values in `[-qmax, qmax]`.
    pub q: Vec<i8>,
    /// Per-row scale factors `S_W` (the paper's scaling factor).
    pub scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Dequantize back to `f32`.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        out.data
            .par_chunks_mut(self.cols)
            .zip(self.q.par_chunks(self.cols))
            .zip(self.scales.par_iter())
            .for_each(|((dst, src), &s)| {
                for (d, &qv) in dst.iter_mut().zip(src) {
                    *d = qv as f32 * s;
                }
            });
        out
    }

    /// Storage bytes of this quantized matrix: payload at `bits` plus
    /// per-row FP16 scales.
    pub fn storage_bytes(&self) -> f64 {
        self.bits.payload_bytes((self.rows * self.cols) as u64) + self.rows as f64 * 2.0
    }

    /// Convert to the kernel crate's packed layout for fused serving.
    ///
    /// The per-row scale is replicated into every `group`-length group
    /// (zero points 0), so `PackedMatrix::unpack()` — and therefore the
    /// fused `qgemm_t` — reproduces [`QuantizedMatrix::dequantize`]
    /// bit-for-bit.
    pub fn to_packed(&self, group: usize) -> PackedMatrix {
        let bits = match self.bits {
            Bitwidth::Int3 => PackBits::Int3,
            Bitwidth::Int4 => PackBits::Int4,
            Bitwidth::Int8 => PackBits::Int8,
            Bitwidth::Fp16 => panic!("fp16 weights stay dense, not packed"),
        };
        PackedMatrix::from_rowwise(self.rows, self.cols, bits, group, &self.q, &self.scales)
    }
}

/// Quantize a dense operator and keep it packed: the serving-side
/// counterpart of [`fake_quantize`]. The returned [`LinearOp::Packed`]
/// forwards bit-identically to a dense forward over
/// `fake_quantize(m, …)` while keeping only `bits`-scaled payload bytes
/// resident.
pub fn pack_operator(m: &Matrix, bits: Bitwidth, rounding: Rounding, seed: u64) -> LinearOp {
    if bits == Bitwidth::Fp16 {
        return LinearOp::Dense(m.clone());
    }
    LinearOp::Packed(quantize_matrix(m, bits, rounding, seed).to_packed(DEFAULT_GROUP))
}

/// Quantize `m` row-wise to `bits` with the given `rounding`. The `seed`
/// only matters for stochastic rounding.
///
/// FP16 is handled by the caller (no quantization); passing it here
/// panics, keeping the `i8` payload honest.
pub fn quantize_matrix(m: &Matrix, bits: Bitwidth, rounding: Rounding, seed: u64) -> QuantizedMatrix {
    let qmax = bits
        .qmax()
        .unwrap_or_else(|| panic!("cannot integer-quantize {bits}")) as f32;
    let cols = m.cols;
    let mut q = vec![0i8; m.rows * cols];
    let mut scales = vec![0.0f32; m.rows];
    q.par_chunks_mut(cols)
        .zip(scales.par_iter_mut())
        .enumerate()
        .for_each(|(r, (qrow, scale))| {
            let row = m.row(r);
            let absmax = row.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let s = if absmax == 0.0 { 1.0 } else { absmax / qmax };
            *scale = s;
            match rounding {
                Rounding::Deterministic => {
                    for (qv, &w) in qrow.iter_mut().zip(row) {
                        let x = (w / s).round().clamp(-qmax, qmax);
                        *qv = x as i8;
                    }
                }
                Rounding::Stochastic => {
                    let mut rng = SmallRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    for (qv, &w) in qrow.iter_mut().zip(row) {
                        let x = w / s;
                        let floor = x.floor();
                        let frac = x - floor;
                        let rounded = if rng.gen::<f32>() < frac { floor + 1.0 } else { floor };
                        *qv = rounded.clamp(-qmax, qmax) as i8;
                    }
                }
            }
        });
    QuantizedMatrix { rows: m.rows, cols: m.cols, bits, q, scales }
}

/// Quantize-dequantize a matrix in one step ("fake quantization") —
/// exactly what serving does numerically when a weight-only kernel
/// dequantizes on the fly into the FP16 GEMM.
pub fn fake_quantize(m: &Matrix, bits: Bitwidth, rounding: Rounding, seed: u64) -> Matrix {
    if bits == Bitwidth::Fp16 {
        return m.clone();
    }
    quantize_matrix(m, bits, rounding, seed).dequantize()
}

/// Mean squared quantization error of a matrix at `bits`.
pub fn quantization_mse(m: &Matrix, bits: Bitwidth, rounding: Rounding, seed: u64) -> f64 {
    if bits == Bitwidth::Fp16 {
        return 0.0;
    }
    let dq = fake_quantize(m, bits, rounding, seed);
    m.data
        .iter()
        .zip(dq.data.iter())
        .map(|(&a, &b)| ((a - b) as f64).powi(2))
        .sum::<f64>()
        / m.data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::random(16, 32, 0.3, 42)
    }

    #[test]
    fn dequantize_error_bounded_by_half_scale() {
        let m = sample();
        for bits in [Bitwidth::Int3, Bitwidth::Int4, Bitwidth::Int8] {
            let qm = quantize_matrix(&m, bits, Rounding::Deterministic, 0);
            let dq = qm.dequantize();
            for r in 0..m.rows {
                let s = qm.scales[r];
                for (a, b) in m.row(r).iter().zip(dq.row(r)) {
                    assert!(
                        (a - b).abs() <= s * 0.5 + 1e-6,
                        "{bits}: err {} > s/2 {}",
                        (a - b).abs(),
                        s * 0.5
                    );
                }
            }
        }
    }

    #[test]
    fn error_decreases_with_bits() {
        let m = sample();
        let e3 = quantization_mse(&m, Bitwidth::Int3, Rounding::Deterministic, 0);
        let e4 = quantization_mse(&m, Bitwidth::Int4, Rounding::Deterministic, 0);
        let e8 = quantization_mse(&m, Bitwidth::Int8, Rounding::Deterministic, 0);
        let e16 = quantization_mse(&m, Bitwidth::Fp16, Rounding::Deterministic, 0);
        assert!(e3 > e4 && e4 > e8 && e8 > e16);
        assert_eq!(e16, 0.0);
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        // Mean dequantized value over many seeds approaches the original.
        let m = Matrix::from_vec(1, 1, vec![0.137]);
        let mut sum = 0.0f64;
        let n = 4000;
        for seed in 0..n {
            let dq = fake_quantize(&m, Bitwidth::Int4, Rounding::Stochastic, seed);
            sum += dq.data[0] as f64;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 0.137).abs() < 0.002,
            "stochastic rounding biased: mean {mean}"
        );
    }

    #[test]
    fn deterministic_ignores_seed() {
        let m = sample();
        let a = quantize_matrix(&m, Bitwidth::Int4, Rounding::Deterministic, 1);
        let b = quantize_matrix(&m, Bitwidth::Int4, Rounding::Deterministic, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn stochastic_is_reproducible() {
        let m = sample();
        let a = quantize_matrix(&m, Bitwidth::Int4, Rounding::Stochastic, 5);
        let b = quantize_matrix(&m, Bitwidth::Int4, Rounding::Stochastic, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn payload_within_grid() {
        let m = sample();
        for bits in [Bitwidth::Int3, Bitwidth::Int4, Bitwidth::Int8] {
            let qm = quantize_matrix(&m, bits, Rounding::Stochastic, 9);
            let qmax = bits.qmax().unwrap() as i8;
            assert!(qm.q.iter().all(|&v| v >= -qmax && v <= qmax));
        }
    }

    #[test]
    fn zero_row_is_stable() {
        let m = Matrix::zeros(2, 8);
        let qm = quantize_matrix(&m, Bitwidth::Int8, Rounding::Deterministic, 0);
        assert!(qm.dequantize().data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn storage_accounts_scales() {
        let m = sample();
        let qm = quantize_matrix(&m, Bitwidth::Int8, Rounding::Deterministic, 0);
        assert_eq!(qm.storage_bytes(), 16.0 * 32.0 + 16.0 * 2.0);
    }

    #[test]
    #[should_panic(expected = "cannot integer-quantize")]
    fn rejects_fp16_grid() {
        quantize_matrix(&sample(), Bitwidth::Fp16, Rounding::Deterministic, 0);
    }
}
