//! Extended quantization schemes (paper §7, "Other Quantization
//! Schemes").
//!
//! The paper treats newer weight-only methods as drop-in candidate
//! schemes: AWQ-style **group-wise scaling** (finer-grained scales along
//! the input dimension improve accuracy at a small storage cost) and
//! QLoRA-style **double quantization** (the per-group scales are
//! themselves quantized to 8-bit against a per-row super-scale, clawing
//! back most of the scale storage). This module implements both on top
//! of the same symmetric integer grid as [`crate::quantizer`], with the
//! storage accounting the memory cost model needs.

use crate::bitwidth::Bitwidth;
use crate::quantizer::Rounding;
use llmpq_model::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How quantization scales are organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantScheme {
    /// One scale per output channel (row) — GPTQ-style, the default.
    PerChannel,
    /// One scale per `group` input elements within each row — AWQ-style.
    GroupWise {
        /// Elements sharing a scale (commonly 64 or 128).
        group: usize,
    },
    /// Group-wise with the scales quantized to 8-bit against a per-row
    /// FP16 super-scale — QLoRA-style double quantization.
    DoubleQuant {
        /// Elements sharing a scale.
        group: usize,
    },
}

impl QuantScheme {
    /// Scale-storage bytes for a `rows × cols` matrix under this scheme.
    pub fn scale_bytes(self, rows: usize, cols: usize) -> f64 {
        match self {
            QuantScheme::PerChannel => rows as f64 * 2.0,
            QuantScheme::GroupWise { group } => {
                let groups_per_row = cols.div_ceil(group);
                (rows * groups_per_row) as f64 * 2.0
            }
            QuantScheme::DoubleQuant { group } => {
                let groups_per_row = cols.div_ceil(group);
                // 1-byte quantized scale per group + FP16 super-scale per row.
                (rows * groups_per_row) as f64 + rows as f64 * 2.0
            }
        }
    }

    /// Total storage bytes (payload + scales) for a quantized matrix.
    pub fn storage_bytes(self, rows: usize, cols: usize, bits: Bitwidth) -> f64 {
        bits.payload_bytes((rows * cols) as u64) + self.scale_bytes(rows, cols)
    }
}

/// Quantize→dequantize a matrix under `scheme` at `bits` — the
/// numerics a serving kernel of that scheme would produce.
pub fn fake_quantize_scheme(
    m: &Matrix,
    bits: Bitwidth,
    scheme: QuantScheme,
    rounding: Rounding,
    seed: u64,
) -> Matrix {
    if bits == Bitwidth::Fp16 {
        return m.clone();
    }
    let qmax = bits.qmax().expect("integer grid") as f32;
    let group = match scheme {
        QuantScheme::PerChannel => m.cols.max(1),
        QuantScheme::GroupWise { group } | QuantScheme::DoubleQuant { group } => group.max(1),
    };
    let mut out = Matrix::zeros(m.rows, m.cols);
    for r in 0..m.rows {
        let row = m.row(r);
        // First pass: raw group scales.
        let n_groups = m.cols.div_ceil(group);
        let mut scales = vec![0.0f32; n_groups];
        for (gi, scale) in scales.iter_mut().enumerate() {
            let lo = gi * group;
            let hi = (lo + group).min(m.cols);
            let absmax = row[lo..hi].iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            *scale = if absmax == 0.0 { 1.0 } else { absmax / qmax };
        }
        // Double quantization: quantize the scales themselves to 8 bit
        // against the row's max scale.
        if matches!(scheme, QuantScheme::DoubleQuant { .. }) {
            let super_scale = scales.iter().cloned().fold(0.0f32, f32::max).max(f32::MIN_POSITIVE) / 255.0;
            for s in scales.iter_mut() {
                let q = (*s / super_scale).round().clamp(1.0, 255.0);
                *s = q * super_scale;
            }
        }
        // Second pass: quantize the payload against the (possibly
        // re-quantized) scales.
        let mut rng = SmallRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37_79B9));
        let out_row = out.row_mut(r);
        for (c, (&w, o)) in row.iter().zip(out_row.iter_mut()).enumerate() {
            let s = scales[c / group];
            let x = w / s;
            let q = match rounding {
                Rounding::Deterministic => x.round(),
                Rounding::Stochastic => {
                    let floor = x.floor();
                    if rng.gen::<f32>() < x - floor {
                        floor + 1.0
                    } else {
                        floor
                    }
                }
            }
            .clamp(-qmax, qmax);
            *o = q * s;
        }
    }
    out
}

/// Mean squared error of a matrix quantized under `scheme`.
pub fn scheme_mse(m: &Matrix, bits: Bitwidth, scheme: QuantScheme, rounding: Rounding, seed: u64) -> f64 {
    let dq = fake_quantize_scheme(m, bits, scheme, rounding, seed);
    m.data
        .iter()
        .zip(dq.data.iter())
        .map(|(&a, &b)| ((a - b) as f64).powi(2))
        .sum::<f64>()
        / m.data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outlier_matrix() -> Matrix {
        // A matrix with a few large outliers per row — the regime where
        // per-channel scaling wastes grid resolution and group-wise wins.
        // Both outliers sit in the first group of 64, so group-wise
        // scaling contains the damage to one group out of four.
        let mut m = Matrix::random(16, 256, 0.1, 3);
        for r in 0..m.rows {
            m.row_mut(r)[7] = 2.5;
            m.row_mut(r)[40] = -3.0;
        }
        m
    }

    #[test]
    fn groupwise_beats_per_channel_on_outliers() {
        let m = outlier_matrix();
        for bits in [Bitwidth::Int3, Bitwidth::Int4] {
            let pc = scheme_mse(&m, bits, QuantScheme::PerChannel, Rounding::Deterministic, 0);
            let gw = scheme_mse(
                &m,
                bits,
                QuantScheme::GroupWise { group: 64 },
                Rounding::Deterministic,
                0,
            );
            assert!(gw < pc * 0.5, "{bits}: group-wise {gw:.6} vs per-channel {pc:.6}");
        }
    }

    #[test]
    fn double_quant_close_to_groupwise() {
        let m = outlier_matrix();
        let gw = scheme_mse(&m, Bitwidth::Int4, QuantScheme::GroupWise { group: 64 }, Rounding::Deterministic, 0);
        let dq = scheme_mse(&m, Bitwidth::Int4, QuantScheme::DoubleQuant { group: 64 }, Rounding::Deterministic, 0);
        assert!(dq < gw * 1.5, "double-quant {dq:.6} vs group-wise {gw:.6}");
    }

    #[test]
    fn double_quant_saves_scale_storage() {
        let gw = QuantScheme::GroupWise { group: 64 }.scale_bytes(1024, 4096);
        let dq = QuantScheme::DoubleQuant { group: 64 }.scale_bytes(1024, 4096);
        let pc = QuantScheme::PerChannel.scale_bytes(1024, 4096);
        assert!(dq < gw, "double-quant {dq} should be under group-wise {gw}");
        assert!(pc < dq, "per-channel is still the smallest: {pc}");
        // Group-wise 64 on 4096 cols = 64 scales/row at FP16 = 128 B/row.
        assert_eq!(gw, 1024.0 * 64.0 * 2.0);
    }

    #[test]
    fn smaller_groups_reduce_error() {
        let m = outlier_matrix();
        let g128 = scheme_mse(&m, Bitwidth::Int4, QuantScheme::GroupWise { group: 128 }, Rounding::Deterministic, 0);
        let g32 = scheme_mse(&m, Bitwidth::Int4, QuantScheme::GroupWise { group: 32 }, Rounding::Deterministic, 0);
        assert!(g32 <= g128, "g32 {g32:.6} vs g128 {g128:.6}");
    }

    #[test]
    fn per_channel_scheme_matches_baseline_quantizer() {
        let m = Matrix::random(8, 32, 0.4, 11);
        let a = fake_quantize_scheme(&m, Bitwidth::Int8, QuantScheme::PerChannel, Rounding::Deterministic, 0);
        let b = crate::quantizer::fake_quantize(&m, Bitwidth::Int8, Rounding::Deterministic, 0);
        for (x, y) in a.data.iter().zip(b.data.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn fp16_is_identity() {
        let m = Matrix::random(4, 8, 1.0, 5);
        let out = fake_quantize_scheme(&m, Bitwidth::Fp16, QuantScheme::GroupWise { group: 4 }, Rounding::Deterministic, 0);
        assert_eq!(out, m);
    }

    #[test]
    fn storage_totals_are_consistent() {
        let s = QuantScheme::GroupWise { group: 128 };
        let total = s.storage_bytes(100, 256, Bitwidth::Int4);
        assert_eq!(total, 100.0 * 256.0 * 0.5 + 100.0 * 2.0 * 2.0);
    }

    #[test]
    fn ragged_groups_handled() {
        // cols not divisible by group
        let m = Matrix::random(3, 100, 0.3, 9);
        let out = fake_quantize_scheme(&m, Bitwidth::Int4, QuantScheme::GroupWise { group: 33 }, Rounding::Deterministic, 0);
        assert_eq!(out.cols, 100);
        assert!(out.data.iter().all(|v| v.is_finite()));
    }
}
