//! Quantization-sensitivity indicators (paper §4.2, Table 6).
//!
//! An indicator assigns each `(layer, bitwidth)` pair a scalar ω
//! quantifying how much model quality suffers if that layer is served at
//! that precision. The assigner's ILP objective trades `θ·Σω` against
//! latency, so a good indicator steers low bits toward insensitive layers.
//!
//! Three implementations:
//!
//! * [`variance_indicator`] — the paper's contribution: the closed-form
//!   output-variance bound of Theorem 1, `ω(i,b) = Σ_o D_o·S_o(b)²·G(X_o)`
//!   where `D` is the operator fan-in, `S(b)` the quantization scale at
//!   `b` bits, and `G` folds calibration activation statistics
//!   (`Var[X]/4` deterministic, `(E[X]²+Var[X])/6` stochastic). Costs one
//!   calibration pass.
//! * [`hessian_indicator`] — the GPTQ/HAWQ-style baseline that actually
//!   evaluates `‖WX − W̃X‖²` per operator/bitwidth on calibration data.
//!   Accurate, but it quantizes every operator at every precision —
//!   Table 6 reports it 58–72× slower.
//! * [`random_indicator`] — ablation control.

use crate::bitwidth::Bitwidth;
use crate::calibrate::{calibrate, CalibrationReport, OPERATORS};
use crate::quantizer::{quantize_matrix, Rounding};
use llmpq_model::{forward_layer_taps, KvCache, Matrix, RefModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which indicator to build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IndicatorKind {
    /// The paper's variance indicator under a rounding mode.
    Variance(Rounding),
    /// Hessian-proxy (measured ‖WX − W̃X‖²).
    Hessian(Rounding),
    /// Uniform-random ω, seeded.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// ω values for every `(layer, bitwidth)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndicatorTable {
    /// `omega[layer][k]` where `k` indexes [`Bitwidth::ALL`].
    pub omega: Vec<[f64; 4]>,
}

impl IndicatorTable {
    /// ω for a layer at a bitwidth.
    pub fn get(&self, layer: usize, bits: Bitwidth) -> f64 {
        let k = Bitwidth::ALL.iter().position(|b| *b == bits).unwrap();
        self.omega[layer][k]
    }

    /// Number of layers covered.
    pub fn n_layers(&self) -> usize {
        self.omega.len()
    }

    /// Rescale so the largest ω is `target` — the paper normalizes
    /// indicators to a common range before the Table 6 comparison so the
    /// latency/quality trade-off in the ILP is unaffected by indicator
    /// units.
    pub fn normalized_to(&self, target: f64) -> IndicatorTable {
        let max = self
            .omega
            .iter()
            .flat_map(|r| r.iter())
            .fold(0.0f64, |m, &v| m.max(v));
        if max == 0.0 {
            return self.clone();
        }
        let f = target / max;
        IndicatorTable {
            omega: self
                .omega
                .iter()
                .map(|r| [r[0] * f, r[1] * f, r[2] * f, r[3] * f])
                .collect(),
        }
    }

    /// Rescale so the *total* ω of a uniform-INT3 assignment equals
    /// `target` — the worst-case quality degradation becomes one unit.
    /// This gives the user scalar θ a stable meaning across models:
    /// `θ·Σω ∈ [0, θ]` regardless of layer count or weight scale.
    pub fn normalized_budget(&self, target: f64) -> IndicatorTable {
        let int3: f64 = (0..self.n_layers()).map(|l| self.get(l, Bitwidth::Int3)).sum();
        if int3 == 0.0 {
            return self.clone();
        }
        let f = target / int3;
        IndicatorTable {
            omega: self
                .omega
                .iter()
                .map(|r| [r[0] * f, r[1] * f, r[2] * f, r[3] * f])
                .collect(),
        }
    }

    /// Sum of ω over a per-layer bit assignment — the quality-degradation
    /// term of the ILP objective.
    pub fn total(&self, bits: &[Bitwidth]) -> f64 {
        bits.iter().enumerate().map(|(i, &b)| self.get(i, b)).sum()
    }
}

/// Mean squared per-row quantization scale of a weight matrix at `bits` —
/// the `S_W(b)²` statistic of Theorem 1, computed without materializing
/// the quantized payload.
fn mean_sq_scale(w: &Matrix, bits: Bitwidth) -> f64 {
    let Some(qmax) = bits.qmax() else { return 0.0 };
    let qmax = qmax as f64;
    let mut acc = 0.0f64;
    for r in 0..w.rows {
        let absmax = w.row(r).iter().fold(0.0f32, |m, &v| m.max(v.abs())) as f64;
        let s = absmax / qmax;
        acc += s * s;
    }
    acc / w.rows as f64
}

/// `G(X)` of Proposition 2 for each rounding mode.
fn g_of_x(mean: f64, var: f64, rounding: Rounding) -> f64 {
    match rounding {
        Rounding::Deterministic => var / 4.0,
        Rounding::Stochastic => (mean * mean + var) / 6.0,
    }
}

/// The paper's variance indicator: one calibration pass, then closed-form
/// per-(layer, bitwidth) scores.
pub fn variance_indicator(
    model: &RefModel,
    report: &CalibrationReport,
    rounding: Rounding,
) -> IndicatorTable {
    assert_eq!(report.n_layers(), model.cfg.n_layers, "calibration/model mismatch");
    let omega = model
        .layers
        .iter()
        .enumerate()
        .map(|(l, layer)| {
            let mut row = [0.0f64; 4];
            for (k, &bits) in Bitwidth::ALL.iter().enumerate() {
                if bits == Bitwidth::Fp16 {
                    row[k] = 0.0;
                    continue;
                }
                let mut total = 0.0;
                for (name, w) in layer.linear_operators() {
                    let w = w.dense(); // indicators run on the FP model
                    let stats = report.get(l, name);
                    let d = w.cols as f64; // fan-in: errors from D weights sum per output
                    let s2 = mean_sq_scale(w, bits);
                    total += d * s2 * g_of_x(stats.mean, stats.variance(), rounding);
                }
                row[k] = total;
            }
            row
        })
        .collect();
    IndicatorTable { omega }
}

/// Hessian-proxy indicator: measure `‖WX − W̃X‖²_F` per operator on real
/// calibration activations, summed per layer, for every candidate
/// bitwidth. This is the expensive baseline of Table 6.
#[allow(clippy::needless_range_loop)]
pub fn hessian_indicator(model: &RefModel, sequences: &[Vec<usize>], rounding: Rounding) -> IndicatorTable {
    let mut omega = vec![[0.0f64; 4]; model.cfg.n_layers];
    for seq in sequences {
        let mut cache = KvCache::new(model.cfg.n_layers, model.cfg.hidden);
        let mut x = model.embed_tokens(seq, 0);
        for l in 0..model.cfg.n_layers {
            let (out, taps) =
                forward_layer_taps(&model.layers[l], model.cfg.n_heads, l, &x, &mut cache);
            for (k, &bits) in Bitwidth::ALL.iter().enumerate() {
                if bits == Bitwidth::Fp16 {
                    continue;
                }
                let ops = model.layers[l].linear_operators();
                for op in OPERATORS {
                    let w = ops.iter().find(|(n, _)| *n == op).map(|(_, w)| w.dense()).unwrap();
                    let dq = quantize_matrix(w, bits, rounding, 0xC0FFEE ^ l as u64).dequantize();
                    // ΔW = W − W̃; error energy = ‖X·ΔWᵀ‖²_F.
                    let mut dw = w.clone();
                    for (a, &b) in dw.data.iter_mut().zip(dq.data.iter()) {
                        *a -= b;
                    }
                    let err = taps.input_for(op).matmul_t(&dw);
                    let e = err.frobenius();
                    omega[l][k] += e * e;
                }
            }
            x = out;
        }
    }
    IndicatorTable { omega }
}

/// Random indicator: ω drawn uniform in `(0, scale]`, zero at FP16 so the
/// "do nothing" option stays free.
pub fn random_indicator(n_layers: usize, seed: u64, scale: f64) -> IndicatorTable {
    let mut rng = SmallRng::seed_from_u64(seed);
    let omega = (0..n_layers)
        .map(|_| {
            let mut row = [0.0f64; 4];
            for (k, &bits) in Bitwidth::ALL.iter().enumerate() {
                row[k] = if bits == Bitwidth::Fp16 { 0.0 } else { rng.gen_range(f64::EPSILON..=scale) };
            }
            row
        })
        .collect();
    IndicatorTable { omega }
}

/// Build the requested indicator, running calibration internally.
/// Returns the table and the wall-clock seconds spent — the "Overhead"
/// column of Table 6.
pub fn build_indicator(
    kind: IndicatorKind,
    model: &RefModel,
    sequences: &[Vec<usize>],
) -> (IndicatorTable, f64) {
    let start = std::time::Instant::now();
    let table = match kind {
        IndicatorKind::Variance(r) => {
            let report = calibrate(model, sequences);
            variance_indicator(model, &report, r)
        }
        IndicatorKind::Hessian(r) => hessian_indicator(model, sequences, r),
        IndicatorKind::Random { seed } => random_indicator(model.cfg.n_layers, seed, 1.0),
    };
    (table, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_model::{RefConfig, RefModel};

    fn setup() -> (RefModel, Vec<Vec<usize>>) {
        let model = RefModel::new(RefConfig::tiny());
        let seqs = vec![vec![1, 2, 3, 4, 5, 6, 7, 8], vec![10, 20, 30, 40]];
        (model, seqs)
    }

    #[test]
    fn variance_indicator_monotone_in_bits() {
        let (model, seqs) = setup();
        let report = calibrate(&model, &seqs);
        let t = variance_indicator(&model, &report, Rounding::Deterministic);
        for l in 0..t.n_layers() {
            let w3 = t.get(l, Bitwidth::Int3);
            let w4 = t.get(l, Bitwidth::Int4);
            let w8 = t.get(l, Bitwidth::Int8);
            let w16 = t.get(l, Bitwidth::Fp16);
            assert!(w3 > w4 && w4 > w8 && w8 > w16, "layer {l}: {w3} {w4} {w8} {w16}");
            assert_eq!(w16, 0.0);
        }
    }

    #[test]
    fn hessian_indicator_monotone_in_bits() {
        let (model, seqs) = setup();
        let t = hessian_indicator(&model, &seqs, Rounding::Deterministic);
        for l in 0..t.n_layers() {
            assert!(t.get(l, Bitwidth::Int3) > t.get(l, Bitwidth::Int4));
            assert!(t.get(l, Bitwidth::Int4) > t.get(l, Bitwidth::Int8));
        }
    }

    #[test]
    fn variance_ranks_layers_like_hessian() {
        // The whole point of the indicator: it should order layers by
        // sensitivity similarly to the expensive measured baseline.
        let (model, seqs) = setup();
        let report = calibrate(&model, &seqs);
        let v = variance_indicator(&model, &report, Rounding::Deterministic);
        let h = hessian_indicator(&model, &seqs, Rounding::Deterministic);
        // Spearman on per-layer INT4 sensitivity.
        let rank = |t: &IndicatorTable| {
            let mut idx: Vec<usize> = (0..t.n_layers()).collect();
            idx.sort_by(|&a, &b| {
                t.get(a, Bitwidth::Int4).partial_cmp(&t.get(b, Bitwidth::Int4)).unwrap()
            });
            idx
        };
        // With only 2 layers in tiny config, the orders must simply agree.
        assert_eq!(rank(&v), rank(&h));
    }

    #[test]
    fn variance_indicator_is_much_cheaper_than_hessian() {
        let model = RefModel::new(RefConfig {
            n_layers: 4,
            hidden: 64,
            n_heads: 4,
            ffn: 128,
            vocab: 128,
            max_seq: 64,
            seed: 3,
            alibi: false,
        });
        let seqs: Vec<Vec<usize>> = (0..4).map(|i| (0..32).map(|j| (i * 31 + j * 7) % 128).collect()).collect();
        let (_, t_var) = build_indicator(IndicatorKind::Variance(Rounding::Deterministic), &model, &seqs);
        let (_, t_hes) = build_indicator(IndicatorKind::Hessian(Rounding::Deterministic), &model, &seqs);
        assert!(
            t_hes > t_var,
            "hessian ({t_hes:.4}s) should cost more than variance ({t_var:.4}s)"
        );
    }

    #[test]
    fn theorem1_bound_dominates_empirical_variance_inflation() {
        // Empirically check Theorem 1: the indicator's predicted added
        // variance should upper-bound (within sampling slack) the actual
        // output-variance inflation of a quantized operator.
        let w = Matrix::random(48, 48, 0.15, 5);
        let x = Matrix::random(256, 48, 1.0, 6);
        let y = x.matmul_t(&w);
        let dq = quantize_matrix(&w, Bitwidth::Int3, Rounding::Stochastic, 7).dequantize();
        let yq = x.matmul_t(&dq);
        let inflation = (yq.variance() - y.variance()).abs();
        let d = w.cols as f64;
        let s2 = mean_sq_scale(&w, Bitwidth::Int3);
        let bound = d * s2 * g_of_x(x.mean(), x.variance(), Rounding::Stochastic);
        assert!(
            inflation < bound * 3.0,
            "empirical {inflation:.5} vs bound {bound:.5}"
        );
        assert!(bound > 0.0);
    }

    #[test]
    fn random_indicator_reproducible_and_positive() {
        let a = random_indicator(6, 9, 1.0);
        let b = random_indicator(6, 9, 1.0);
        assert_eq!(a, b);
        for l in 0..6 {
            assert!(a.get(l, Bitwidth::Int3) > 0.0);
            assert_eq!(a.get(l, Bitwidth::Fp16), 0.0);
        }
    }

    #[test]
    fn normalization_preserves_ratios() {
        let (model, seqs) = setup();
        let report = calibrate(&model, &seqs);
        let t = variance_indicator(&model, &report, Rounding::Deterministic);
        let n = t.normalized_to(10.0);
        let max = n.omega.iter().flat_map(|r| r.iter()).fold(0.0f64, |m, &v| m.max(v));
        assert!((max - 10.0).abs() < 1e-9);
        let r_before = t.get(0, Bitwidth::Int3) / t.get(0, Bitwidth::Int4);
        let r_after = n.get(0, Bitwidth::Int3) / n.get(0, Bitwidth::Int4);
        assert!((r_before - r_after).abs() < 1e-9);
    }

    #[test]
    fn total_sums_selected_bits() {
        let (model, seqs) = setup();
        let report = calibrate(&model, &seqs);
        let t = variance_indicator(&model, &report, Rounding::Deterministic);
        let bits = vec![Bitwidth::Int4, Bitwidth::Fp16];
        let expect = t.get(0, Bitwidth::Int4);
        assert!((t.total(&bits) - expect).abs() < 1e-12);
    }
}
