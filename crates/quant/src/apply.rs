//! Apply a bit assignment to a reference model.
//!
//! Quantized operators stay *packed* (`LinearOp::Packed`): the fused
//! dequant-GEMM serves them with bit-identical numerics to an FP16 GEMM
//! over dequantized weights, so quality experiments see exactly the
//! fake-quantization values while resident weight bytes shrink by
//! `bits/32`.

use crate::bitwidth::{BitAssignment, Bitwidth};
use crate::quantizer::{pack_operator, Rounding};
use llmpq_model::RefModel;
use rayon::prelude::*;

/// Return a copy of `model` whose decoder layers are quantized per
/// `assignment` (layer `i` at `assignment.bits[i]`), stored packed.
/// Embeddings, norms and biases stay FP16/FP32, as in the paper.
pub fn quantize_model(model: &RefModel, assignment: &BitAssignment, rounding: Rounding, seed: u64) -> RefModel {
    assert_eq!(
        assignment.len(),
        model.cfg.n_layers,
        "assignment must cover every layer"
    );
    let mut out = model.clone();
    out.layers
        .par_iter_mut()
        .enumerate()
        .for_each(|(l, layer)| {
            let bits = assignment.bits[l];
            if bits == Bitwidth::Fp16 {
                return;
            }
            let layer_seed = seed ^ ((l as u64) << 32);
            for name in ["wq", "wk", "wv", "wo", "w1", "w2"] {
                let w = layer.linear_operator_mut(name).unwrap();
                let packed = pack_operator(w.dense(), bits, rounding, layer_seed ^ name.len() as u64);
                *w = packed;
            }
        });
    out
}

/// Quantize every layer to the same bitwidth.
pub fn quantize_model_uniform(model: &RefModel, bits: Bitwidth, rounding: Rounding, seed: u64) -> RefModel {
    quantize_model(model, &BitAssignment::uniform(model.cfg.n_layers, bits), rounding, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_model::{RefConfig, RefModel};

    fn corpus(model: &RefModel, n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| {
                let toks = model.generate(&[1 + i], 24, 0.9, 100 + i as u64).tokens;
                let mut s = vec![1 + i];
                s.extend(toks);
                s
            })
            .collect()
    }

    fn mean_nll(model: &RefModel, corpus: &[Vec<usize>]) -> f64 {
        corpus.iter().map(|s| model.nll(s)).sum::<f64>() / corpus.len() as f64
    }

    #[test]
    fn fp16_assignment_is_identity() {
        let model = RefModel::new(RefConfig::tiny());
        let q = quantize_model_uniform(&model, Bitwidth::Fp16, Rounding::Deterministic, 0);
        assert_eq!(q.layers[0].wq, model.layers[0].wq);
    }

    #[test]
    fn quantized_layers_stay_packed_and_shrink() {
        let model = RefModel::new(RefConfig::tiny());
        let q = quantize_model_uniform(&model, Bitwidth::Int4, Rounding::Deterministic, 0);
        for layer in &q.layers {
            for (name, op) in layer.linear_operators() {
                assert!(op.is_packed(), "{name} should be packed at int4");
            }
        }
        let dense: usize = model.layers.iter().map(|l| l.resident_weight_bytes()).sum();
        let packed: usize = q.layers.iter().map(|l| l.resident_weight_bytes()).sum();
        assert!(
            packed * 5 < dense,
            "int4 resident bytes {packed} should be well under a fifth of dense {dense}"
        );
    }

    #[test]
    fn packed_forward_matches_fake_quantize_forward() {
        // The bit-exactness contract end-to-end: serving from packed
        // weights generates the same tokens as the dequantize-everything
        // model the quality experiments used to build.
        use crate::quantizer::fake_quantize;
        let model = RefModel::new(RefConfig::tiny());
        let packed = quantize_model_uniform(&model, Bitwidth::Int4, Rounding::Deterministic, 0);
        let mut dense = model.clone();
        for (l, layer) in dense.layers.iter_mut().enumerate() {
            // Mirrors quantize_model_uniform's per-layer seed with seed = 0.
            let layer_seed = (l as u64) << 32;
            for name in ["wq", "wk", "wv", "wo", "w1", "w2"] {
                let w = layer.linear_operator_mut(name).unwrap();
                let dq = fake_quantize(
                    w.dense(),
                    Bitwidth::Int4,
                    Rounding::Deterministic,
                    layer_seed ^ name.len() as u64,
                );
                *w = dq.into();
            }
        }
        let a = packed.generate(&[1, 2, 3], 12, 0.0, 0);
        let b = dense.generate(&[1, 2, 3], 12, 0.0, 0);
        assert_eq!(a, b, "packed and dequantized serving must emit identical tokens");
        let (la, _) = packed.prefill(&[4, 5, 6]);
        let (lb, _) = dense.prefill(&[4, 5, 6]);
        for (x, y) in la.data.iter().zip(&lb.data) {
            assert_eq!(x.to_bits(), y.to_bits(), "logits must be bit-identical");
        }
    }

    #[test]
    fn nll_degrades_monotonically_with_lower_bits() {
        // The Fig-4 mechanism end-to-end: uniform 3-bit worse than 4-bit
        // worse than 8-bit worse than FP16, on the model's own corpus.
        let model = RefModel::new(RefConfig::tiny());
        let corpus = corpus(&model, 3);
        let base = mean_nll(&model, &corpus);
        let mut prev = base;
        for bits in [Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int3] {
            let q = quantize_model_uniform(&model, bits, Rounding::Deterministic, 0);
            let nll = mean_nll(&q, &corpus);
            assert!(
                nll >= prev - 0.02,
                "{bits}: nll {nll:.4} should be >= {prev:.4}"
            );
            prev = nll;
        }
        let q3 = quantize_model_uniform(&model, Bitwidth::Int3, Rounding::Deterministic, 0);
        assert!(mean_nll(&q3, &corpus) > base, "int3 must be worse than fp16");
    }

    #[test]
    fn mixed_assignment_between_uniform_extremes() {
        // mixed4-8 should sit between uniform-4 and uniform-8 — the
        // paper's Fig 4 observation.
        let model = RefModel::new(RefConfig::tiny());
        let corpus = corpus(&model, 3);
        let u4 = mean_nll(
            &quantize_model_uniform(&model, Bitwidth::Int4, Rounding::Deterministic, 0),
            &corpus,
        );
        let u8 = mean_nll(
            &quantize_model_uniform(&model, Bitwidth::Int8, Rounding::Deterministic, 0),
            &corpus,
        );
        let mut mixed = BitAssignment::uniform(model.cfg.n_layers, Bitwidth::Int8);
        mixed.bits[0] = Bitwidth::Int4;
        let m = mean_nll(&quantize_model(&model, &mixed, Rounding::Deterministic, 0), &corpus);
        assert!(
            m <= u4 + 0.02 && m >= u8 - 0.02,
            "mixed {m:.4} should lie between int8 {u8:.4} and int4 {u4:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "cover every layer")]
    fn rejects_wrong_length_assignment() {
        let model = RefModel::new(RefConfig::tiny());
        let bad = BitAssignment::uniform(model.cfg.n_layers + 1, Bitwidth::Int8);
        quantize_model(&model, &bad, Rounding::Deterministic, 0);
    }
}
