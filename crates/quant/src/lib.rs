//! # llmpq-quant
//!
//! Weight quantization for LLM serving, mirroring the kernels LLM-PQ
//! builds on: symmetric per-channel quantization with deterministic or
//! stochastic rounding (GPTQ-style weight-only 3/4-bit, bitsandbytes-style
//! INT8), plus the *quantization-sensitivity indicators* that guide the
//! assigner's bitwidth choices:
//!
//! * the paper's **variance indicator** ω(i,b) (Theorem 1 /
//!   Proposition 2) — a closed-form bound on the output variance a
//!   quantized linear operator introduces, computable from weight scale
//!   statistics and cheap activation statistics;
//! * a **Hessian-proxy indicator** (HAWQ/GPTQ-objective style) that
//!   actually measures ‖WX − W̃X‖² on calibration data — accurate but
//!   orders of magnitude slower (Table 6's comparison);
//! * a **random indicator** (the paper's ablation control).

pub mod apply;
pub mod bitwidth;
pub mod calibrate;
pub mod indicator;
pub mod quantizer;
pub mod schemes;
pub mod smoothquant;

pub use apply::{quantize_model, quantize_model_uniform};
pub use bitwidth::{BitAssignment, Bitwidth};
pub use calibrate::{calibrate, CalibrationReport, OperatorStats, OPERATORS};
pub use indicator::{
    build_indicator, hessian_indicator, random_indicator, variance_indicator, IndicatorKind,
    IndicatorTable,
};
pub use quantizer::{
    fake_quantize, pack_operator, quantization_mse, quantize_matrix, QuantizedMatrix, Rounding,
};
pub use schemes::{fake_quantize_scheme, scheme_mse, QuantScheme};
pub use smoothquant::{apply_smoothing, smoothed_w8a8_error, smoothing_factors, w8a8_error, SmoothingFactors};
