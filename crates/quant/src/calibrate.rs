//! Calibration: collect activation statistics per linear operator.
//!
//! The paper determines quantization statistics from calibration data
//! (128 segments of C4 in §6.1). The variance indicator needs only two
//! scalars per operator input — `E[X]` and `Var[X]` (the `G(X)` term in
//! Proposition 2) — so calibration here runs the reference model over a
//! handful of sequences and streams Welford statistics off the operator
//! input taps.

use llmpq_model::{forward_layer_taps, KvCache, RefModel};
use serde::{Deserialize, Serialize};

/// Operator names of one decoder layer, in a stable order.
pub const OPERATORS: [&str; 6] = ["wq", "wk", "wv", "wo", "w1", "w2"];

/// Streaming mean/variance (Welford) over activation elements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OperatorStats {
    /// Number of elements observed.
    pub n: u64,
    /// Running mean `E[X]`.
    pub mean: f64,
    /// Sum of squared deviations (divide by `n` for `Var[X]`).
    m2: f64,
}

impl OperatorStats {
    /// Fold one activation value into the stream.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Population variance `Var[X]`.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Merge another stream into this one (parallel Welford).
    pub fn merge(&mut self, other: &OperatorStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
    }
}

/// Per-layer, per-operator activation statistics from a calibration run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// `stats[layer][op_index]` where `op_index` follows [`OPERATORS`].
    pub stats: Vec<[OperatorStats; 6]>,
}

impl CalibrationReport {
    /// Stats for `(layer, operator-name)`.
    pub fn get(&self, layer: usize, op: &str) -> &OperatorStats {
        let idx = OPERATORS.iter().position(|o| *o == op).expect("unknown operator");
        &self.stats[layer][idx]
    }

    /// Number of layers covered.
    pub fn n_layers(&self) -> usize {
        self.stats.len()
    }
}

/// Run `model` over each calibration sequence (prefill only — the paper
/// calibrates on text segments) and collect activation statistics at the
/// input of every linear operator of every layer.
#[allow(clippy::needless_range_loop)]
pub fn calibrate(model: &RefModel, sequences: &[Vec<usize>]) -> CalibrationReport {
    let mut stats = vec![[OperatorStats::default(); 6]; model.cfg.n_layers];
    for seq in sequences {
        assert!(!seq.is_empty(), "calibration sequence must be non-empty");
        let mut cache = KvCache::new(model.cfg.n_layers, model.cfg.hidden);
        let mut x = model.embed_tokens(seq, 0);
        for l in 0..model.cfg.n_layers {
            let (out, taps) = forward_layer_taps(&model.layers[l], model.cfg.n_heads, l, &x, &mut cache);
            for (oi, op) in OPERATORS.iter().enumerate() {
                let input = taps.input_for(op);
                let s = &mut stats[l][oi];
                for &v in &input.data {
                    s.push(v as f64);
                }
            }
            x = out;
        }
    }
    CalibrationReport { stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_model::{RefConfig, RefModel};

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0];
        let mut s = OperatorStats::default();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0).collect();
        let mut whole = OperatorStats::default();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OperatorStats::default();
        let mut b = OperatorStats::default();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.n, whole.n);
        assert!((a.mean - whole.mean).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn calibration_covers_all_layers_and_ops() {
        let model = RefModel::new(RefConfig::tiny());
        let seqs = vec![vec![1, 2, 3, 4, 5], vec![9, 8, 7]];
        let report = calibrate(&model, &seqs);
        assert_eq!(report.n_layers(), model.cfg.n_layers);
        for l in 0..report.n_layers() {
            for op in OPERATORS {
                let s = report.get(l, op);
                assert!(s.n > 0, "layer {l} op {op} saw no data");
                assert!(s.variance() > 0.0, "layer {l} op {op} degenerate");
            }
        }
    }

    #[test]
    fn attention_inputs_are_normalized() {
        // wq/wk/wv taps sit right after LayerNorm, so their variance
        // should be near 1.
        let model = RefModel::new(RefConfig::tiny());
        let report = calibrate(&model, &[vec![3, 1, 4, 1, 5, 9, 2, 6]]);
        for l in 0..report.n_layers() {
            let v = report.get(l, "wq").variance();
            assert!(v > 0.5 && v < 1.5, "layer {l} wq var {v}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_sequence() {
        let model = RefModel::new(RefConfig::tiny());
        calibrate(&model, &[vec![]]);
    }
}
