//! SmoothQuant-style activation-aware smoothing (paper §2.4's W8A8
//! kernel-based category).
//!
//! W8A8 quantization must quantize *activations*, whose per-channel
//! outliers are far worse than weights'. SmoothQuant migrates that
//! difficulty: each input channel `j` of a linear operator is divided by
//! a smoothing factor `s_j = max|X_j|^α / max|W_j|^{1−α}` in the
//! activation and multiplied into the weight column — mathematically a
//! no-op (`(X diag(1/s)) (diag(s) Wᵀ) = X Wᵀ`), but it balances the two
//! tensors' dynamic ranges so both survive 8-bit grids.
//!
//! This module implements the transform on real matrices and measures
//! the W8A8 matmul error with and without smoothing.

use crate::bitwidth::Bitwidth;
use crate::quantizer::{fake_quantize, Rounding};
use llmpq_model::Matrix;
use serde::{Deserialize, Serialize};

/// Per-input-channel smoothing factors for one linear operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmoothingFactors {
    /// `s[j]` divides activation channel `j` and scales weight column `j`.
    pub s: Vec<f32>,
    /// The α used to compute them.
    pub alpha: f32,
}

/// Per-channel absolute maxima of a matrix along rows (one value per
/// column).
fn col_absmax(m: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; m.cols];
    for r in 0..m.rows {
        for (j, &v) in m.row(r).iter().enumerate() {
            out[j] = out[j].max(v.abs());
        }
    }
    out
}

/// Compute smoothing factors from calibration activations `x`
/// (`tokens × in`) and the weight `w` (`out × in`), with migration
/// strength `alpha` (0.5 in the SmoothQuant paper).
pub fn smoothing_factors(x: &Matrix, w: &Matrix, alpha: f32) -> SmoothingFactors {
    assert_eq!(x.cols, w.cols, "activation/weight channel mismatch");
    assert!((0.0..=1.0).contains(&alpha), "alpha in [0,1]");
    let ax = col_absmax(x);
    let aw = col_absmax_rows_as_cols(w);
    let s = ax
        .iter()
        .zip(&aw)
        .map(|(&a, &b)| {
            let a = a.max(1e-6);
            let b = b.max(1e-6);
            (a.powf(alpha) / b.powf(1.0 - alpha)).max(1e-4)
        })
        .collect();
    SmoothingFactors { s, alpha }
}

/// Column-wise absmax of a weight stored `(out, in)` — max over rows per
/// input channel.
fn col_absmax_rows_as_cols(w: &Matrix) -> Vec<f32> {
    col_absmax(w)
}

/// Apply the transform: returns `(x / s, w * s)` such that
/// `smoothed_x · smoothed_wᵀ == x · wᵀ` exactly in infinite precision.
pub fn apply_smoothing(x: &Matrix, w: &Matrix, f: &SmoothingFactors) -> (Matrix, Matrix) {
    assert_eq!(f.s.len(), x.cols);
    let mut xs = x.clone();
    for r in 0..xs.rows {
        for (j, v) in xs.row_mut(r).iter_mut().enumerate() {
            *v /= f.s[j];
        }
    }
    let mut ws = w.clone();
    for r in 0..ws.rows {
        for (j, v) in ws.row_mut(r).iter_mut().enumerate() {
            *v *= f.s[j];
        }
    }
    (xs, ws)
}

/// W8A8 matmul error ‖XWᵀ − Q(X)Q(W)ᵀ‖²_F / elements, quantizing both
/// operands to INT8 per-row.
pub fn w8a8_error(x: &Matrix, w: &Matrix) -> f64 {
    let exact = x.matmul_t(w);
    let qx = fake_quantize(x, Bitwidth::Int8, Rounding::Deterministic, 0);
    let qw = fake_quantize(w, Bitwidth::Int8, Rounding::Deterministic, 1);
    let approx = qx.matmul_t(&qw);
    exact
        .data
        .iter()
        .zip(&approx.data)
        .map(|(&a, &b)| ((a - b) as f64).powi(2))
        .sum::<f64>()
        / exact.data.len() as f64
}

/// W8A8 error after smoothing at `alpha`.
pub fn smoothed_w8a8_error(x: &Matrix, w: &Matrix, alpha: f32) -> f64 {
    let f = smoothing_factors(x, w, alpha);
    let (xs, ws) = apply_smoothing(x, w, &f);
    w8a8_error(&xs, &ws)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Activations with outlier channels — the regime SmoothQuant exists
    /// for (a handful of channels 20–100× larger, per the paper).
    fn outlier_acts(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut x = Matrix::random(rows, cols, 0.5, seed);
        for r in 0..rows {
            x.row_mut(r)[3] *= 40.0;
            x.row_mut(r)[cols - 2] *= 25.0;
        }
        x
    }

    #[test]
    fn smoothing_is_mathematically_exact() {
        let x = outlier_acts(12, 32, 1);
        let w = Matrix::random(16, 32, 0.3, 2);
        let f = smoothing_factors(&x, &w, 0.5);
        let (xs, ws) = apply_smoothing(&x, &w, &f);
        let a = x.matmul_t(&w);
        let b = xs.matmul_t(&ws);
        for (p, q) in a.data.iter().zip(&b.data) {
            assert!((p - q).abs() < 1e-2 * p.abs().max(1.0), "{p} vs {q}");
        }
    }

    #[test]
    fn smoothing_reduces_w8a8_error_on_outliers() {
        let x = outlier_acts(24, 64, 3);
        let w = Matrix::random(32, 64, 0.3, 4);
        let raw = w8a8_error(&x, &w);
        let smooth = smoothed_w8a8_error(&x, &w, 0.5);
        assert!(
            smooth < raw * 0.5,
            "smoothing should halve the error: raw {raw:.5} vs smooth {smooth:.5}"
        );
    }

    #[test]
    fn alpha_extremes_migrate_fully() {
        // α=1 pushes all difficulty into the weights; α=0 leaves it in
        // the activations. The sweet spot lies between.
        let x = outlier_acts(24, 64, 5);
        let w = Matrix::random(32, 64, 0.3, 6);
        let mid = smoothed_w8a8_error(&x, &w, 0.5);
        let none = smoothed_w8a8_error(&x, &w, 0.0);
        assert!(mid <= none + 1e-9, "α=0.5 {mid:.5} should beat α=0 {none:.5}");
    }

    #[test]
    fn smooth_factors_track_outlier_channels() {
        let x = outlier_acts(12, 32, 7);
        let w = Matrix::random(8, 32, 0.3, 8);
        let f = smoothing_factors(&x, &w, 0.5);
        // The outlier channels get the largest divisors.
        let mut idx: Vec<usize> = (0..32).collect();
        idx.sort_by(|&a, &b| f.s[b].partial_cmp(&f.s[a]).unwrap());
        assert!(idx[..2].contains(&3) && idx[..2].contains(&30), "top-2 {:?}", &idx[..4]);
    }

    #[test]
    fn benign_activations_need_no_smoothing() {
        // Without outliers, smoothing can't hurt much either way.
        let x = Matrix::random(24, 64, 0.5, 9);
        let w = Matrix::random(32, 64, 0.3, 10);
        let raw = w8a8_error(&x, &w);
        let smooth = smoothed_w8a8_error(&x, &w, 0.5);
        assert!(smooth < raw * 3.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha in [0,1]")]
    fn rejects_bad_alpha() {
        let x = Matrix::random(4, 8, 1.0, 1);
        let w = Matrix::random(4, 8, 1.0, 2);
        smoothing_factors(&x, &w, 1.5);
    }
}
