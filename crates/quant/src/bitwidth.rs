//! Quantization bitwidths and per-layer bit assignments.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Candidate precision for a model layer's linear weights.
///
/// The paper evaluates `BITs = {3, 4, 8, 16}` (§6.1): 3/4-bit GPTQ-style
/// weight-only kernels, bitsandbytes-style INT8, and uncompressed FP16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Bitwidth {
    /// 3-bit weight-only quantization.
    Int3,
    /// 4-bit weight-only quantization.
    Int4,
    /// 8-bit decomposition-kernel quantization (LLM.int8()-style).
    Int8,
    /// Full half precision — no quantization.
    Fp16,
}

impl Bitwidth {
    /// The paper's full candidate set, ascending.
    pub const ALL: [Bitwidth; 4] = [Bitwidth::Int3, Bitwidth::Int4, Bitwidth::Int8, Bitwidth::Fp16];

    /// Bits per weight element.
    pub fn bits(self) -> u32 {
        match self {
            Bitwidth::Int3 => 3,
            Bitwidth::Int4 => 4,
            Bitwidth::Int8 => 8,
            Bitwidth::Fp16 => 16,
        }
    }

    /// Bits as `f64`, for byte-size arithmetic.
    pub fn bits_f64(self) -> f64 {
        self.bits() as f64
    }

    /// Bytes needed to store `n` weights at this precision (scales only
    /// the payload; per-channel scales are accounted separately by the
    /// memory model's overhead factor).
    pub fn payload_bytes(self, n: u64) -> f64 {
        n as f64 * self.bits_f64() / 8.0
    }

    /// Whether this precision round-trips through an integer grid.
    pub fn is_quantized(self) -> bool {
        !matches!(self, Bitwidth::Fp16)
    }

    /// Largest representable magnitude on the symmetric signed grid,
    /// e.g. 7 for 4-bit. FP16 returns `None`.
    pub fn qmax(self) -> Option<i32> {
        match self {
            Bitwidth::Fp16 => None,
            b => Some((1 << (b.bits() - 1)) - 1),
        }
    }

    /// The next lower precision in the candidate set, if any.
    pub fn step_down(self) -> Option<Bitwidth> {
        match self {
            Bitwidth::Fp16 => Some(Bitwidth::Int8),
            Bitwidth::Int8 => Some(Bitwidth::Int4),
            Bitwidth::Int4 => Some(Bitwidth::Int3),
            Bitwidth::Int3 => None,
        }
    }

    /// The next higher precision in the candidate set, if any.
    pub fn step_up(self) -> Option<Bitwidth> {
        match self {
            Bitwidth::Int3 => Some(Bitwidth::Int4),
            Bitwidth::Int4 => Some(Bitwidth::Int8),
            Bitwidth::Int8 => Some(Bitwidth::Fp16),
            Bitwidth::Fp16 => None,
        }
    }
}

impl fmt::Display for Bitwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bitwidth::Fp16 => write!(f, "fp16"),
            b => write!(f, "int{}", b.bits()),
        }
    }
}

impl FromStr for Bitwidth {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "3" | "int3" => Ok(Bitwidth::Int3),
            "4" | "int4" => Ok(Bitwidth::Int4),
            "8" | "int8" => Ok(Bitwidth::Int8),
            "16" | "fp16" | "bf16" => Ok(Bitwidth::Fp16),
            other => Err(format!("unknown bitwidth '{other}'")),
        }
    }
}

/// A per-layer bitwidth assignment for a whole model — the quantization
/// half of an LLM-PQ execution plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitAssignment {
    /// `bits[i]` is the precision of decoder layer `i`.
    pub bits: Vec<Bitwidth>,
}

impl BitAssignment {
    /// Uniform assignment of `b` to all `n_layers` layers.
    pub fn uniform(n_layers: usize, b: Bitwidth) -> Self {
        Self { bits: vec![b; n_layers] }
    }

    /// Number of layers covered.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether there are no layers.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Average bits per layer — a coarse compression summary.
    pub fn mean_bits(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        self.bits.iter().map(|b| b.bits_f64()).sum::<f64>() / self.bits.len() as f64
    }

    /// Histogram over the candidate set, in `Bitwidth::ALL` order.
    pub fn histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for b in &self.bits {
            let idx = Bitwidth::ALL.iter().position(|c| c == b).unwrap();
            h[idx] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_and_qmax() {
        assert_eq!(Bitwidth::Int3.qmax(), Some(3));
        assert_eq!(Bitwidth::Int4.qmax(), Some(7));
        assert_eq!(Bitwidth::Int8.qmax(), Some(127));
        assert_eq!(Bitwidth::Fp16.qmax(), None);
    }

    #[test]
    fn payload_halves_with_int8() {
        let fp16 = Bitwidth::Fp16.payload_bytes(1_000_000);
        let int8 = Bitwidth::Int8.payload_bytes(1_000_000);
        assert_eq!(fp16, 2e6);
        assert_eq!(int8, 1e6);
    }

    #[test]
    fn parse_round_trip() {
        for b in Bitwidth::ALL {
            let s = b.to_string();
            assert_eq!(s.parse::<Bitwidth>().unwrap(), b);
        }
        assert!("int5".parse::<Bitwidth>().is_err());
    }

    #[test]
    fn step_ladder_is_consistent() {
        let mut b = Bitwidth::Fp16;
        let mut seen = vec![b];
        while let Some(lower) = b.step_down() {
            assert_eq!(lower.step_up(), Some(b));
            b = lower;
            seen.push(b);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn ordering_matches_bits() {
        assert!(Bitwidth::Int3 < Bitwidth::Int4);
        assert!(Bitwidth::Int8 < Bitwidth::Fp16);
    }

    #[test]
    fn assignment_stats() {
        let mut a = BitAssignment::uniform(4, Bitwidth::Int8);
        a.bits[0] = Bitwidth::Fp16;
        a.bits[1] = Bitwidth::Int4;
        assert_eq!(a.histogram(), [0, 1, 2, 1]);
        assert!((a.mean_bits() - (16.0 + 4.0 + 8.0 + 8.0) / 4.0).abs() < 1e-12);
    }
}
