//! Analytical memory cost model (paper §4.1, "Memory Cost Model").
//!
//! "Memory is a first-class citizen in LLM serving systems." Peak usage
//! of a pipeline stage = model weights (at each layer's bitwidth)
//! + pre-allocated KV cache for the maximum sentence length
//! + peak temporary workspace (worst case over both phases)
//! + embedding tables on the master-hosting stage
//! + framework fixed cost.
//!
//! The model is *predictive*: it never executes anything. Its fidelity
//! against the allocator-level measurement lives in [`crate::fidelity`].

use llmpq_model::{ModelSpec, Phase};
use llmpq_quant::Bitwidth;
use llmpq_sim::layer_workspace_bytes;
use serde::{Deserialize, Serialize};

/// Fixed framework overhead (CUDA context, cuBLAS workspaces…).
pub const FRAMEWORK_BYTES: f64 = 600e6;

/// Allocator block granularity the prediction accounts for.
const BLOCK: f64 = 2.0 * 1024.0 * 1024.0;

fn round_block(bytes: f64) -> f64 {
    (bytes / BLOCK).ceil() * BLOCK
}

/// Itemized memory prediction for one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Weight bytes (payload + quantization scales), allocator-rounded.
    pub weights: f64,
    /// Pre-allocated KV-cache bytes for `prompt + n_generate` tokens.
    pub kv_cache: f64,
    /// Peak temporary workspace bytes.
    pub workspace: f64,
    /// Embedding tables (0 unless this stage hosts the master engine).
    pub embedding: f64,
    /// Fixed framework cost.
    pub framework: f64,
}

impl MemoryBreakdown {
    /// Total predicted peak bytes.
    pub fn total(&self) -> f64 {
        self.weights + self.kv_cache + self.workspace + self.embedding + self.framework
    }
}

/// Group-wise quantization scale/zero storage of one decoder layer,
/// matching the packed layout the serving kernels hold resident.
fn scale_overhead(spec: &ModelSpec, bits: Bitwidth) -> f64 {
    if bits.is_quantized() {
        spec.quant_scale_bytes(llmpq_model::QUANT_GROUP)
    } else {
        0.0
    }
}

/// Predict the peak memory of a stage owning `layer_bits` under the
/// job shape `(batch, prompt_len, n_generate)` with KV at `kv_bits`.
#[allow(clippy::too_many_arguments)]
pub fn stage_memory(
    spec: &ModelSpec,
    layer_bits: &[Bitwidth],
    kv_batch: usize,
    micro_batch: usize,
    prompt_len: usize,
    n_generate: usize,
    kv_bits: f64,
    with_embedding: bool,
) -> MemoryBreakdown {
    assert!(!layer_bits.is_empty(), "stage must own at least one layer");
    let seq = prompt_len + n_generate;
    let weights = layer_bits
        .iter()
        .map(|&b| round_block(spec.layer_weight_bytes(b.bits_f64()) + scale_overhead(spec, b)))
        .sum();
    let kv_cache = layer_bits
        .iter()
        .map(|_| round_block(spec.kv_bytes_per_layer(kv_batch, seq, kv_bits)))
        .sum();
    let workspace = layer_bits
        .iter()
        .map(|&b| {
            let pre = layer_workspace_bytes(spec, Phase::Prefill, micro_batch, prompt_len, b);
            let dec = layer_workspace_bytes(spec, Phase::Decode, micro_batch, prompt_len, b);
            pre.max(dec)
        })
        .fold(0.0f64, f64::max);
    MemoryBreakdown {
        weights,
        kv_cache,
        workspace: round_block(workspace),
        embedding: if with_embedding { round_block(spec.embedding_bytes()) } else { 0.0 },
        framework: FRAMEWORK_BYTES,
    }
}

/// Shorthand for [`stage_memory`]`.total()`.
#[allow(clippy::too_many_arguments)]
pub fn stage_memory_bytes(
    spec: &ModelSpec,
    layer_bits: &[Bitwidth],
    kv_batch: usize,
    micro_batch: usize,
    prompt_len: usize,
    n_generate: usize,
    kv_bits: f64,
    with_embedding: bool,
) -> f64 {
    stage_memory(spec, layer_bits, kv_batch, micro_batch, prompt_len, n_generate, kv_bits, with_embedding)
        .total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_model::zoo;
    use llmpq_sim::measured_peak_memory;

    #[test]
    fn prediction_matches_measurement_closely() {
        // Fig 7: "the error of the memory cost model is almost
        // negligible". Require <1% against the allocator-level walk.
        let spec = zoo::opt_13b();
        for (bits, batch, s, n) in [
            (Bitwidth::Fp16, 2, 128, 100),
            (Bitwidth::Int8, 4, 384, 150),
            (Bitwidth::Int4, 8, 512, 200),
            (Bitwidth::Int3, 3, 256, 120),
        ] {
            let layers = vec![bits; 10];
            let pred = stage_memory_bytes(&spec, &layers, batch, batch, s, n, 16.0, false);
            let meas = measured_peak_memory(&spec, &layers, batch, batch, s, n, 16.0, false);
            let err = (pred - meas).abs() / meas;
            assert!(err < 0.01, "{bits} b{batch} s{s}: err {:.3}%", err * 100.0);
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let spec = zoo::opt_30b();
        let b = stage_memory(&spec, &[Bitwidth::Int4; 12], 8, 8, 512, 100, 16.0, true);
        let total = b.weights + b.kv_cache + b.workspace + b.embedding + b.framework;
        assert_eq!(total, b.total());
        assert!(b.embedding > 0.0);
    }

    #[test]
    fn mixed_precision_between_uniform_bounds() {
        let spec = zoo::opt_13b();
        let lo = stage_memory_bytes(&spec, &[Bitwidth::Int4; 8], 8, 8, 512, 100, 16.0, false);
        let hi = stage_memory_bytes(&spec, &[Bitwidth::Fp16; 8], 8, 8, 512, 100, 16.0, false);
        let mut mixed = vec![Bitwidth::Int4; 8];
        mixed[0] = Bitwidth::Fp16;
        mixed[1] = Bitwidth::Fp16;
        let m = stage_memory_bytes(&spec, &mixed, 8, 8, 512, 100, 16.0, false);
        assert!(lo < m && m < hi);
    }

    #[test]
    fn kv_dominates_long_generations() {
        let spec = zoo::opt_66b();
        let short = stage_memory(&spec, &[Bitwidth::Int4; 16], 32, 32, 512, 10, 16.0, false);
        let long = stage_memory(&spec, &[Bitwidth::Int4; 16], 32, 32, 512, 1500, 16.0, false);
        assert!(long.kv_cache > 2.0 * short.kv_cache);
        assert_eq!(long.weights, short.weights);
    }
}
