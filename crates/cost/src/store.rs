//! Profile persistence: save/load profiler samples as JSON artifacts.
//!
//! The paper's workflow separates profiling (slow, on-GPU, done once per
//! device) from planning (fast, repeated per job): `llmpq-algo` consumes
//! profile files via `--use_profiler_prediction` or fits on them via
//! `--fit`. This module provides that artifact format.

use crate::profiler::ProfileSample;
use llmpq_cluster::GpuModel;
use serde::{Deserialize, Serialize};

/// A saved profiling artifact for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileFile {
    /// The device profiled.
    pub gpu: GpuModel,
    /// The model whose decoder layer was profiled.
    pub model: String,
    /// The samples.
    pub samples: Vec<ProfileSample>,
}

impl ProfileFile {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile files serialize")
    }

    /// Parse a JSON artifact.
    pub fn from_json(s: &str) -> Result<ProfileFile, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::CostDb;
    use crate::profiler::{profile_device, ProfilerConfig};
    use llmpq_model::{zoo, PhaseWorkload};
    use llmpq_quant::Bitwidth;
    use llmpq_sim::KernelEnv;

    #[test]
    fn profile_round_trips_through_json() {
        let spec = zoo::opt_13b();
        let samples = profile_device(
            &GpuModel::T4_16G.spec(),
            &KernelEnv::default(),
            &spec,
            &ProfilerConfig {
                batches: vec![1, 8],
                prompt_lens: vec![128, 512],
                past_lens: vec![128],
                noise: 0.0,
                seed: 1,
            },
        );
        let file = ProfileFile { gpu: GpuModel::T4_16G, model: spec.name.clone(), samples };
        let parsed = ProfileFile::from_json(&file.to_json()).unwrap();
        assert_eq!(parsed.gpu, file.gpu);
        assert_eq!(parsed.model, file.model);
        assert_eq!(parsed.samples.len(), file.samples.len());
        for (a, b) in parsed.samples.iter().zip(&file.samples) {
            assert_eq!((a.phase, a.bits, a.batch, a.prompt_len, a.past_len),
                       (b.phase, b.bits, b.batch, b.prompt_len, b.past_len));
            // JSON float text can differ by one ulp; semantic equality.
            assert!((a.latency - b.latency).abs() <= f64::EPSILON * b.latency.abs() * 4.0);
        }
    }

    #[test]
    fn imported_profiles_fit_a_usable_cost_db() {
        let spec = zoo::opt_13b();
        let env = KernelEnv::default();
        let samples = profile_device(
            &GpuModel::V100_32G.spec(),
            &env,
            &spec,
            &ProfilerConfig::default(),
        );
        let file = ProfileFile { gpu: GpuModel::V100_32G, model: spec.name.clone(), samples };
        let json = file.to_json();
        let parsed = ProfileFile::from_json(&json).unwrap();
        // Import into an (otherwise empty) fitted database.
        let mut db = CostDb::fit(&[], &env, &spec, &ProfilerConfig::default());
        db.fit_from_samples(parsed.gpu, &spec, &parsed.samples);
        let t = db.layer_latency(
            GpuModel::V100_32G,
            &spec,
            &PhaseWorkload::prefill(4, 256),
            Bitwidth::Int8,
        );
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(ProfileFile::from_json("{").is_err());
    }
}
