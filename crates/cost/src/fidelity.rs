//! Cost-model fidelity evaluation (Figure 7).
//!
//! The paper validates both cost models against real systems: memory on
//! BLOOM-560m/1b7 and OPT-13b/30b/66b with random shapes and precisions,
//! latency on 50 unseen workloads per device. This module reproduces the
//! protocol with the simulator as the "real system".

use crate::latency::CostDb;
use crate::memory::stage_memory_bytes;
use llmpq_cluster::GpuModel;
use llmpq_model::{ModelSpec, PhaseWorkload};
use llmpq_quant::Bitwidth;
use llmpq_sim::{layer_latency, measured_peak_memory, KernelEnv};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Error statistics of a fidelity run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Number of evaluated cases.
    pub n: usize,
    /// Mean absolute relative error.
    pub mean_rel_err: f64,
    /// Maximum absolute relative error.
    pub max_rel_err: f64,
}

impl FidelityReport {
    fn from_errors(errs: &[f64]) -> Self {
        assert!(!errs.is_empty());
        Self {
            n: errs.len(),
            mean_rel_err: errs.iter().sum::<f64>() / errs.len() as f64,
            max_rel_err: errs.iter().cloned().fold(0.0, f64::max),
        }
    }
}

/// Memory fidelity: random workloads per the paper's protocol — prompt
/// length uniform in [128, 512], batch in {2,4,8}, generation in
/// [100, 200], random per-layer precision.
pub fn memory_fidelity(spec: &ModelSpec, cases: usize, seed: u64) -> FidelityReport {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut errs = Vec::with_capacity(cases);
    for _ in 0..cases {
        let s = rng.gen_range(128..=512);
        let batch = *[2usize, 4, 8].get(rng.gen_range(0..3)).unwrap();
        let n = rng.gen_range(100..=200);
        let n_layers = rng.gen_range(2..=spec.n_layers.min(12));
        let bits: Vec<Bitwidth> = (0..n_layers)
            .map(|_| Bitwidth::ALL[rng.gen_range(0..4)])
            .collect();
        let with_embed = rng.gen_bool(0.3);
        let pred = stage_memory_bytes(spec, &bits, batch, batch, s, n, 16.0, with_embed);
        let meas = measured_peak_memory(spec, &bits, batch, batch, s, n, 16.0, with_embed);
        errs.push((pred - meas).abs() / meas);
    }
    FidelityReport::from_errors(&errs)
}

/// Latency fidelity: `cases` unseen workloads per device with batch in
/// {3,5,7} and past length in {384, 768} — shapes absent from the
/// profiling grid, matching §6.2.
pub fn latency_fidelity(
    db: &CostDb,
    env: &KernelEnv,
    spec: &ModelSpec,
    devices: &[GpuModel],
    cases: usize,
    seed: u64,
) -> FidelityReport {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut errs = Vec::new();
    for _ in 0..cases {
        let gpu = devices[rng.gen_range(0..devices.len())];
        let bits = Bitwidth::ALL[rng.gen_range(0..4)];
        let batch = *[3usize, 5, 7].get(rng.gen_range(0..3)).unwrap();
        let s = rng.gen_range(128..=512);
        let w = if rng.gen_bool(0.5) {
            PhaseWorkload::prefill(batch, s)
        } else {
            let past = *[384usize, 768].get(rng.gen_range(0..2)).unwrap();
            PhaseWorkload::decode(batch, s, past)
        };
        let pred = db.layer_latency(gpu, spec, &w, bits);
        let truth = layer_latency(&gpu.spec(), env, spec, &w, bits, 16.0);
        errs.push((pred - truth).abs() / truth);
    }
    FidelityReport::from_errors(&errs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::ProfilerConfig;
    use llmpq_model::zoo;

    #[test]
    fn memory_error_negligible_across_models() {
        for spec in [zoo::bloom_560m(), zoo::opt_13b()] {
            let r = memory_fidelity(&spec, 40, 11);
            assert!(
                r.mean_rel_err < 0.01,
                "{}: mean memory err {:.3}%",
                spec.name,
                r.mean_rel_err * 100.0
            );
        }
    }

    #[test]
    fn latency_error_below_six_percent() {
        let spec = zoo::opt_30b();
        let env = KernelEnv::default();
        let devices = [GpuModel::T4_16G, GpuModel::V100_32G, GpuModel::A100_40G];
        let specs: Vec<_> = devices.iter().map(|g| g.spec()).collect();
        let db = CostDb::fit(&specs, &env, &spec, &ProfilerConfig::default());
        let r = latency_fidelity(&db, &env, &spec, &devices, 50, 3);
        assert!(
            r.mean_rel_err < 0.06,
            "mean latency err {:.2}%",
            r.mean_rel_err * 100.0
        );
        assert_eq!(r.n, 50);
    }

    #[test]
    fn report_statistics_consistent() {
        let r = FidelityReport::from_errors(&[0.01, 0.03, 0.02]);
        assert_eq!(r.n, 3);
        assert!((r.mean_rel_err - 0.02).abs() < 1e-12);
        assert_eq!(r.max_rel_err, 0.03);
    }
}
