//! Cost-model fidelity evaluation (Figure 7).
//!
//! The paper validates both cost models against real systems: memory on
//! BLOOM-560m/1b7 and OPT-13b/30b/66b with random shapes and precisions,
//! latency on 50 unseen workloads per device. This module reproduces the
//! protocol with the simulator as the "real system".
//!
//! [`stage_crosscheck`] extends the protocol to *live runs*: the
//! telemetry layer (`llmpq-runtime`'s `telemetry` module) observes each
//! stage's busy time, and the cross-check compares those against
//! [`predicted_stage_seconds`] from the analytical model, so every
//! traced pipeline run doubles as a cost-model validation experiment.

use crate::latency::CostDb;
use crate::memory::stage_memory_bytes;
use llmpq_cluster::GpuModel;
use llmpq_model::{ModelSpec, PhaseWorkload};
use llmpq_quant::Bitwidth;
use llmpq_sim::{layer_latency, measured_peak_memory, KernelEnv, PipelineWorkload, StageLoad};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Error statistics of a fidelity run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Number of evaluated cases.
    pub n: usize,
    /// Mean absolute relative error.
    pub mean_rel_err: f64,
    /// Maximum absolute relative error.
    pub max_rel_err: f64,
}

impl FidelityReport {
    fn from_errors(errs: &[f64]) -> Self {
        assert!(!errs.is_empty());
        Self {
            n: errs.len(),
            mean_rel_err: errs.iter().sum::<f64>() / errs.len() as f64,
            max_rel_err: errs.iter().cloned().fold(0.0, f64::max),
        }
    }
}

/// Memory fidelity: random workloads per the paper's protocol — prompt
/// length uniform in [128, 512], batch in {2,4,8}, generation in
/// [100, 200], random per-layer precision.
pub fn memory_fidelity(spec: &ModelSpec, cases: usize, seed: u64) -> FidelityReport {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut errs = Vec::with_capacity(cases);
    for _ in 0..cases {
        let s = rng.gen_range(128..=512);
        let batch = *[2usize, 4, 8].get(rng.gen_range(0..3)).unwrap();
        let n = rng.gen_range(100..=200);
        let n_layers = rng.gen_range(2..=spec.n_layers.min(12));
        let bits: Vec<Bitwidth> = (0..n_layers)
            .map(|_| Bitwidth::ALL[rng.gen_range(0..4)])
            .collect();
        let with_embed = rng.gen_bool(0.3);
        let pred = stage_memory_bytes(spec, &bits, batch, batch, s, n, 16.0, with_embed);
        let meas = measured_peak_memory(spec, &bits, batch, batch, s, n, 16.0, with_embed);
        errs.push((pred - meas).abs() / meas);
    }
    FidelityReport::from_errors(&errs)
}

/// Latency fidelity: `cases` unseen workloads per device with batch in
/// {3,5,7} and past length in {384, 768} — shapes absent from the
/// profiling grid, matching §6.2.
pub fn latency_fidelity(
    db: &CostDb,
    env: &KernelEnv,
    spec: &ModelSpec,
    devices: &[GpuModel],
    cases: usize,
    seed: u64,
) -> FidelityReport {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut errs = Vec::new();
    for _ in 0..cases {
        let gpu = devices[rng.gen_range(0..devices.len())];
        let bits = Bitwidth::ALL[rng.gen_range(0..4)];
        let batch = *[3usize, 5, 7].get(rng.gen_range(0..3)).unwrap();
        let s = rng.gen_range(128..=512);
        let w = if rng.gen_bool(0.5) {
            PhaseWorkload::prefill(batch, s)
        } else {
            let past = *[384usize, 768].get(rng.gen_range(0..2)).unwrap();
            PhaseWorkload::decode(batch, s, past)
        };
        let pred = db.layer_latency(gpu, spec, &w, bits);
        let truth = layer_latency(&gpu.spec(), env, spec, &w, bits, 16.0);
        errs.push((pred - truth).abs() / truth);
    }
    FidelityReport::from_errors(&errs)
}

/// Predicted vs observed compute time of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCrosscheck {
    /// Stage index.
    pub stage: usize,
    /// Analytical prediction of the stage's total compute seconds.
    pub predicted_s: f64,
    /// Observed busy seconds (from telemetry / stage metrics).
    pub observed_s: f64,
    /// `|predicted − observed| / observed` (0 when both are 0).
    pub rel_err: f64,
    /// Predicted share of the pipeline's total compute.
    pub predicted_share: f64,
    /// Observed share of the pipeline's total compute.
    pub observed_share: f64,
    /// `|predicted_share − observed_share|` — the *balance* error, which
    /// stays meaningful even when the absolute scales differ (e.g. a
    /// CPU stand-in executing a plan costed for GPUs).
    pub share_err: f64,
}

/// Analytical per-stage total compute seconds for one batch job:
/// `prefill_time × prefill µ-batches + decode_time × decode µ-batches ×
/// (n − 1)` (the first token comes from prefill logits, the remaining
/// `n − 1` from decode steps).
pub fn predicted_stage_seconds(loads: &[StageLoad], wl: &PipelineWorkload) -> Vec<f64> {
    loads
        .iter()
        .map(|l| {
            l.prefill_time * wl.prefill_microbatches as f64
                + l.decode_time
                    * wl.decode_microbatches as f64
                    * wl.n_tokens.saturating_sub(1) as f64
        })
        .collect()
}

/// Cross-check analytical per-stage compute predictions against
/// observed busy seconds. Both slices must have the same length; returns
/// one row per stage plus both error views (absolute relative error and
/// pipeline-share error — the latter is scale-free, see
/// [`StageCrosscheck::share_err`]).
pub fn stage_crosscheck(predicted_s: &[f64], observed_s: &[f64]) -> Vec<StageCrosscheck> {
    assert_eq!(
        predicted_s.len(),
        observed_s.len(),
        "predicted and observed stage counts must match"
    );
    let pred_total: f64 = predicted_s.iter().sum();
    let obs_total: f64 = observed_s.iter().sum();
    predicted_s
        .iter()
        .zip(observed_s)
        .enumerate()
        .map(|(stage, (&p, &o))| {
            let rel_err = if o > 0.0 {
                (p - o).abs() / o
            } else if p > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            let predicted_share = if pred_total > 0.0 { p / pred_total } else { 0.0 };
            let observed_share = if obs_total > 0.0 { o / obs_total } else { 0.0 };
            StageCrosscheck {
                stage,
                predicted_s: p,
                observed_s: o,
                rel_err,
                predicted_share,
                observed_share,
                share_err: (predicted_share - observed_share).abs(),
            }
        })
        .collect()
}

/// One observed inter-stage link, as counted by the transport layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkObservation {
    /// Link index (link `i` carries traffic *into* stage `i`; the last
    /// link returns activations to the master).
    pub link: usize,
    /// Total payload + framing bytes that crossed the link.
    pub bytes: f64,
    /// Number of frames (messages) that crossed the link.
    pub frames: u64,
    /// Observed wall-clock seconds spent in transfer (summed comm spans).
    pub observed_s: f64,
}

/// Predicted vs observed transfer time of one link, the communication
/// analog of [`StageCrosscheck`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkCrosscheck {
    /// Link index.
    pub link: usize,
    /// α-β model prediction: `frames × latency + bytes / bandwidth`.
    pub predicted_s: f64,
    /// Observed transfer seconds.
    pub observed_s: f64,
    /// `|predicted − observed| / observed` (0 when both are 0).
    pub rel_err: f64,
}

/// Cross-check the interconnect α-β model against transfer times
/// observed by the wire transport (per-link byte/frame counters and
/// comm spans from telemetry). Each frame pays the link's one-way
/// latency once; bytes stream at the link's sustained bandwidth:
/// `predicted = frames × α + bytes / β`.
///
/// On loopback runs pass [`llmpq_cluster::interconnect::Link::loopback`]
/// as the model; in a real deployment, the link class from the cluster
/// spec.
pub fn link_crosscheck(
    link_model: &llmpq_cluster::interconnect::Link,
    observed: &[LinkObservation],
) -> Vec<LinkCrosscheck> {
    observed
        .iter()
        .map(|o| {
            let predicted_s =
                o.frames as f64 * link_model.latency_s + o.bytes / link_model.bandwidth_bps;
            let rel_err = if o.observed_s > 0.0 {
                (predicted_s - o.observed_s).abs() / o.observed_s
            } else if predicted_s > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            LinkCrosscheck { link: o.link, predicted_s, observed_s: o.observed_s, rel_err }
        })
        .collect()
}

/// One measured kernel data point: sustained throughput of the serving
/// GEMM at a given weight precision. Units are free (tokens/s, effective
/// GB/s…) as long as they are consistent across the set — the cross-check
/// only consumes *ratios*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelObservation {
    /// Weight bitwidth of the measured kernel.
    pub bits: Bitwidth,
    /// Measured sustained throughput (any consistent unit).
    pub throughput: f64,
}

/// Predicted vs observed speedup of a quantized kernel over FP16 — the
/// kernel-level analog of [`StageCrosscheck`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCrosscheck {
    /// Weight bitwidth.
    pub bits: Bitwidth,
    /// Roofline-model speedup over FP16: `latency(fp16) / latency(bits)`
    /// under the device's [`KernelEnv`] efficiency tables.
    pub predicted_speedup: f64,
    /// Measured speedup over FP16: `throughput(bits) / throughput(fp16)`.
    pub observed_speedup: f64,
    /// `|predicted − observed| / observed` (∞ when observed is 0 but
    /// predicted is not).
    pub rel_err: f64,
}

/// Cross-check measured per-bitwidth kernel throughput against the
/// simulator's roofline tables. Absolute scales never match (the bench
/// host is not the modeled GPU), so both sides are normalized to their
/// own FP16 baseline and only the *speedup ratios* are compared — the
/// quantity the planner actually consumes when trading precision for
/// latency.
///
/// `observed` must contain an [`Bitwidth::Fp16`] entry with nonzero
/// throughput to serve as the baseline; rows are returned for every
/// non-FP16 observation, in input order.
pub fn kernel_crosscheck(
    dev: &llmpq_cluster::DeviceSpec,
    env: &KernelEnv,
    spec: &ModelSpec,
    w: &PhaseWorkload,
    kv_bits: f64,
    observed: &[KernelObservation],
) -> Vec<KernelCrosscheck> {
    let base = observed
        .iter()
        .find(|o| o.bits == Bitwidth::Fp16 && o.throughput > 0.0)
        .expect("kernel_crosscheck needs an fp16 baseline observation");
    let fp16_latency = layer_latency(dev, env, spec, w, Bitwidth::Fp16, kv_bits);
    observed
        .iter()
        .filter(|o| o.bits != Bitwidth::Fp16)
        .map(|o| {
            let predicted_speedup =
                fp16_latency / layer_latency(dev, env, spec, w, o.bits, kv_bits);
            let observed_speedup = o.throughput / base.throughput;
            let rel_err = if observed_speedup > 0.0 {
                (predicted_speedup - observed_speedup).abs() / observed_speedup
            } else if predicted_speedup > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            KernelCrosscheck { bits: o.bits, predicted_speedup, observed_speedup, rel_err }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::ProfilerConfig;
    use llmpq_model::zoo;

    #[test]
    fn memory_error_negligible_across_models() {
        for spec in [zoo::bloom_560m(), zoo::opt_13b()] {
            let r = memory_fidelity(&spec, 40, 11);
            assert!(
                r.mean_rel_err < 0.01,
                "{}: mean memory err {:.3}%",
                spec.name,
                r.mean_rel_err * 100.0
            );
        }
    }

    #[test]
    fn latency_error_below_six_percent() {
        let spec = zoo::opt_30b();
        let env = KernelEnv::default();
        let devices = [GpuModel::T4_16G, GpuModel::V100_32G, GpuModel::A100_40G];
        let specs: Vec<_> = devices.iter().map(|g| g.spec()).collect();
        let db = CostDb::fit(&specs, &env, &spec, &ProfilerConfig::default());
        let r = latency_fidelity(&db, &env, &spec, &devices, 50, 3);
        assert!(
            r.mean_rel_err < 0.06,
            "mean latency err {:.2}%",
            r.mean_rel_err * 100.0
        );
        assert_eq!(r.n, 50);
    }

    #[test]
    fn report_statistics_consistent() {
        let r = FidelityReport::from_errors(&[0.01, 0.03, 0.02]);
        assert_eq!(r.n, 3);
        assert!((r.mean_rel_err - 0.02).abs() < 1e-12);
        assert_eq!(r.max_rel_err, 0.03);
    }

    #[test]
    fn predicted_stage_seconds_combines_phases() {
        let loads = vec![
            StageLoad { prefill_time: 0.5, decode_time: 0.01, comm_prefill: 0.0, comm_decode: 0.0 },
            StageLoad { prefill_time: 0.2, decode_time: 0.04, comm_prefill: 0.0, comm_decode: 0.0 },
        ];
        let wl = PipelineWorkload {
            prefill_microbatches: 4,
            decode_microbatches: 2,
            n_tokens: 11,
            master_prefill: 0.0,
            master_decode: 0.0,
        };
        let pred = predicted_stage_seconds(&loads, &wl);
        assert!((pred[0] - (0.5 * 4.0 + 0.01 * 2.0 * 10.0)).abs() < 1e-12);
        assert!((pred[1] - (0.2 * 4.0 + 0.04 * 2.0 * 10.0)).abs() < 1e-12);
    }

    #[test]
    fn crosscheck_exact_match_has_zero_error() {
        let rows = stage_crosscheck(&[1.0, 3.0], &[1.0, 3.0]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.rel_err, 0.0);
            assert_eq!(r.share_err, 0.0);
        }
        assert!((rows[0].observed_share - 0.25).abs() < 1e-12);
        assert!((rows[1].predicted_share - 0.75).abs() < 1e-12);
    }

    #[test]
    fn crosscheck_share_error_is_scale_free() {
        // Prediction 100× off in absolute scale but perfectly balanced:
        // rel_err is huge, share_err is zero. This is exactly the
        // CPU-stand-in-vs-GPU-costing situation.
        let rows = stage_crosscheck(&[100.0, 300.0], &[1.0, 3.0]);
        assert!(rows.iter().all(|r| r.rel_err > 10.0));
        assert!(rows.iter().all(|r| r.share_err < 1e-12));
    }

    #[test]
    fn crosscheck_handles_zero_observed() {
        let rows = stage_crosscheck(&[0.0, 1.0], &[0.0, 2.0]);
        assert_eq!(rows[0].rel_err, 0.0, "0 vs 0 is a perfect match");
        assert!((rows[1].rel_err - 0.5).abs() < 1e-12);
        let inf = stage_crosscheck(&[1.0], &[0.0]);
        assert!(inf[0].rel_err.is_infinite());
    }

    #[test]
    fn link_crosscheck_applies_alpha_beta_per_frame() {
        let link = llmpq_cluster::interconnect::Link { bandwidth_bps: 1e9, latency_s: 1e-5 };
        let obs = vec![LinkObservation { link: 0, bytes: 1e6, frames: 100, observed_s: 2e-3 }];
        let rows = link_crosscheck(&link, &obs);
        assert_eq!(rows.len(), 1);
        // 100 frames × 10 µs + 1 MB / 1 GB/s = 1 ms + 1 ms = 2 ms.
        assert!((rows[0].predicted_s - 2e-3).abs() < 1e-12);
        assert!(rows[0].rel_err < 1e-9, "exact match: {:?}", rows[0]);
    }

    #[test]
    fn link_crosscheck_handles_idle_links() {
        let link = llmpq_cluster::interconnect::Link::loopback();
        let rows = link_crosscheck(
            &link,
            &[
                LinkObservation { link: 0, bytes: 0.0, frames: 0, observed_s: 0.0 },
                LinkObservation { link: 1, bytes: 1e3, frames: 1, observed_s: 0.0 },
            ],
        );
        assert_eq!(rows[0].rel_err, 0.0, "idle link is a perfect match");
        assert!(rows[1].rel_err.is_infinite(), "traffic with no observed time");
    }

    #[test]
    fn kernel_crosscheck_zero_error_on_exact_ratios() {
        // Feed back the model's own speedups as "measurements": every
        // rel_err must collapse to zero regardless of absolute scale.
        let dev = GpuModel::A100_40G.spec();
        let env = KernelEnv::default();
        let spec = zoo::opt_13b();
        let w = PhaseWorkload::decode(8, 512, 512);
        let fp16 = layer_latency(&dev, &env, &spec, &w, Bitwidth::Fp16, 16.0);
        let scale = 1234.5; // arbitrary measurement unit
        let obs: Vec<KernelObservation> = [Bitwidth::Fp16, Bitwidth::Int8, Bitwidth::Int4]
            .iter()
            .map(|&bits| KernelObservation {
                bits,
                throughput: scale * fp16 / layer_latency(&dev, &env, &spec, &w, bits, 16.0),
            })
            .collect();
        let rows = kernel_crosscheck(&dev, &env, &spec, &w, 16.0, &obs);
        assert_eq!(rows.len(), 2, "one row per non-fp16 observation");
        for r in &rows {
            assert!(r.rel_err < 1e-12, "{:?}", r);
            assert!(r.predicted_speedup > 1.0, "decode should favor low bits: {:?}", r);
        }
    }

    #[test]
    fn kernel_crosscheck_flags_mismatched_ratios() {
        let dev = GpuModel::V100_32G.spec();
        let env = KernelEnv::default();
        let spec = zoo::opt_13b();
        let w = PhaseWorkload::decode(8, 512, 512);
        let obs = [
            KernelObservation { bits: Bitwidth::Fp16, throughput: 100.0 },
            // Claim int4 is *slower* than fp16 in decode — the roofline
            // predicts a clear speedup, so the error must be large.
            KernelObservation { bits: Bitwidth::Int4, throughput: 50.0 },
        ];
        let rows = kernel_crosscheck(&dev, &env, &spec, &w, 16.0, &obs);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].rel_err > 0.5, "{:?}", rows[0]);
        assert!(rows[0].rel_err.is_finite());
    }

    #[test]
    #[should_panic(expected = "fp16 baseline")]
    fn kernel_crosscheck_requires_fp16_baseline() {
        let dev = GpuModel::T4_16G.spec();
        let obs = [KernelObservation { bits: Bitwidth::Int8, throughput: 10.0 }];
        kernel_crosscheck(
            &dev,
            &KernelEnv::default(),
            &zoo::opt_13b(),
            &PhaseWorkload::decode(4, 256, 256),
            16.0,
            &obs,
        );
    }

    #[test]
    fn loopback_link_is_fast_but_not_free() {
        let l = llmpq_cluster::interconnect::Link::loopback();
        assert!(l.transfer_time(0.0) > 0.0);
        // 1 MB on loopback lands in the hundreds-of-microseconds regime.
        let t = l.transfer_time(1e6);
        assert!(t > 1e-5 && t < 1e-2, "loopback 1MB: {t}");
    }
}
