//! # llmpq-cost
//!
//! The assigner's two cost models (paper §4.1) plus the profiler that
//! feeds them:
//!
//! * [`memory`] — an *analytical* memory model: weight storage per
//!   bitwidth, pre-allocated KV cache, worst-case temporary workspace and
//!   the embedding stage. Fig 7 reports its error as "almost negligible";
//!   here it is validated against the allocator-level measurement in
//!   `llmpq-sim`.
//! * [`profiler`] — samples single-decoder-layer latencies on each
//!   (device, bitwidth, phase) over a grid of common prompt lengths and
//!   batch sizes, with measurement noise, standing in for the paper's
//!   on-GPU profiler.
//! * [`latency`] — a linear-regression latency model per (device,
//!   bitwidth, phase) over FLOPs/MOPs features, fitted by ordinary least
//!   squares on the profiled samples and interpolating to unseen shapes
//!   (<6% average error in the paper; reproduced in `fidelity`).
//! * [`fidelity`] — the Fig 7 harness comparing both models against the
//!   "real system" (the simulator), plus [`stage_crosscheck`], which
//!   compares the analytical per-stage predictions against busy times
//!   *observed* by the runtime's telemetry layer.

pub mod fidelity;
pub mod latency;
pub mod memory;
pub mod profiler;
pub mod store;

pub use fidelity::{
    kernel_crosscheck, latency_fidelity, link_crosscheck, memory_fidelity,
    predicted_stage_seconds, stage_crosscheck, FidelityReport, KernelCrosscheck,
    KernelObservation, LinkCrosscheck, LinkObservation, StageCrosscheck,
};
pub use latency::{CostDb, LatencyModel};
pub use memory::{stage_memory, stage_memory_bytes, MemoryBreakdown, FRAMEWORK_BYTES};
pub use profiler::{profile_device, ProfileSample, ProfilerConfig};
pub use store::ProfileFile;
