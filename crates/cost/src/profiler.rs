//! The profiler: sampled single-layer latencies per (device, bitwidth,
//! phase, shape).
//!
//! The paper profiles "the execution time of each phase on one decoder
//! layer under different precisions with common prompt lengths and batch
//! sizes" and interpolates between the samples. Here the ground truth is
//! the roofline simulator; multiplicative noise models measurement
//! jitter, making the regression fit a genuine estimation problem.

use llmpq_cluster::DeviceSpec;
use llmpq_model::{ModelSpec, Phase, PhaseWorkload};
use llmpq_quant::Bitwidth;
use llmpq_sim::{layer_latency, KernelEnv};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One profiled observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileSample {
    /// Phase profiled.
    pub phase: Phase,
    /// Precision of the layer's linear weights.
    pub bits: Bitwidth,
    /// Micro-batch size.
    pub batch: usize,
    /// Prompt length.
    pub prompt_len: usize,
    /// Context length at the decode step (0 for prefill samples).
    pub past_len: usize,
    /// Observed latency of one decoder layer, seconds.
    pub latency: f64,
}

impl ProfileSample {
    /// The workload this sample observed.
    pub fn workload(&self) -> PhaseWorkload {
        match self.phase {
            Phase::Prefill => PhaseWorkload::prefill(self.batch, self.prompt_len),
            Phase::Decode => PhaseWorkload::decode(self.batch, self.prompt_len, self.past_len),
        }
    }
}

/// Profiling grid and noise configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// Batch sizes to sample (paper uses common sizes like 1..32).
    pub batches: Vec<usize>,
    /// Prompt lengths to sample.
    pub prompt_lens: Vec<usize>,
    /// Decode context lengths to sample.
    pub past_lens: Vec<usize>,
    /// Multiplicative measurement noise, e.g. 0.03 for ±3%.
    pub noise: f64,
    /// RNG seed for the noise.
    pub seed: u64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            batches: vec![1, 2, 4, 8, 16, 32],
            prompt_lens: vec![128, 256, 512, 1024],
            past_lens: vec![128, 256, 512, 640, 1024],
            noise: 0.03,
            seed: 77,
        }
    }
}

/// Profile one device over the grid for every candidate bitwidth and
/// both phases. Returns one sample per grid point.
pub fn profile_device(
    dev: &DeviceSpec,
    env: &KernelEnv,
    spec: &ModelSpec,
    cfg: &ProfilerConfig,
) -> Vec<ProfileSample> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ dev.fp16_tflops.to_bits());
    let mut out = Vec::new();
    for &bits in &Bitwidth::ALL {
        for &batch in &cfg.batches {
            for &s in &cfg.prompt_lens {
                let w = PhaseWorkload::prefill(batch, s);
                let t = layer_latency(dev, env, spec, &w, bits, 16.0);
                let noise = 1.0 + rng.gen_range(-cfg.noise..=cfg.noise);
                out.push(ProfileSample {
                    phase: Phase::Prefill,
                    bits,
                    batch,
                    prompt_len: s,
                    past_len: 0,
                    latency: t * noise,
                });
                for &p in &cfg.past_lens {
                    let w = PhaseWorkload::decode(batch, s, p);
                    let t = layer_latency(dev, env, spec, &w, bits, 16.0);
                    let noise = 1.0 + rng.gen_range(-cfg.noise..=cfg.noise);
                    out.push(ProfileSample {
                        phase: Phase::Decode,
                        bits,
                        batch,
                        prompt_len: s,
                        past_len: p,
                        latency: t * noise,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_cluster::GpuModel;
    use llmpq_model::zoo;

    #[test]
    fn grid_size_is_full_cross_product() {
        let cfg = ProfilerConfig {
            batches: vec![1, 8],
            prompt_lens: vec![128, 512],
            past_lens: vec![128, 512],
            noise: 0.0,
            seed: 1,
        };
        let samples = profile_device(
            &GpuModel::T4_16G.spec(),
            &KernelEnv::default(),
            &zoo::opt_13b(),
            &cfg,
        );
        // 4 bits × 2 batches × 2 prompts × (1 prefill + 2 decode)
        assert_eq!(samples.len(), 4 * 2 * 2 * 3);
    }

    #[test]
    fn noise_is_bounded_and_reproducible() {
        let cfg = ProfilerConfig::default();
        let dev = GpuModel::V100_32G.spec();
        let env = KernelEnv::default();
        let spec = zoo::opt_13b();
        let a = profile_device(&dev, &env, &spec, &cfg);
        let b = profile_device(&dev, &env, &spec, &cfg);
        assert_eq!(a, b);
        for s in &a {
            let truth = layer_latency(&dev, &env, &spec, &s.workload(), s.bits, 16.0);
            let rel = (s.latency - truth).abs() / truth;
            assert!(rel <= cfg.noise + 1e-9, "noise {rel} > {}", cfg.noise);
        }
    }

    #[test]
    fn samples_are_positive() {
        let samples = profile_device(
            &GpuModel::P100_12G.spec(),
            &KernelEnv::default(),
            &zoo::opt_30b(),
            &ProfilerConfig::default(),
        );
        assert!(samples.iter().all(|s| s.latency > 0.0));
    }
}
