//! Learned latency cost model (paper §4.1, "Latency Cost Model").
//!
//! "GEMM takes more than 80% latency and is either FLOPs- and MOPs-
//! related, while the other operators scale with MOPs, thus workload can
//! be shaped and scaled by the previous parameters." Accordingly, for
//! every (device, bitwidth, phase) triple we fit by ordinary least
//! squares
//!
//! ```text
//! latency ≈ β₀ + β₁·FLOPs + β₂·MOPs(bits)
//! ```
//!
//! on the profiler's samples and interpolate to unseen shapes — the
//! paper's `--fit` path. The `--use_profiler_prediction` path (query the
//! profiler directly) is available as [`CostDb::oracle`].

use crate::profiler::{profile_device, ProfileSample, ProfilerConfig};
use llmpq_cluster::{DeviceSpec, GpuModel};
use llmpq_model::{flops, ModelSpec, Phase, PhaseWorkload};
use llmpq_quant::Bitwidth;
use llmpq_sim::{embedding_latency, layer_latency, KernelEnv};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Feature scaling keeps the normal equations well-conditioned.
const FLOPS_SCALE: f64 = 1e12;
const BYTES_SCALE: f64 = 1e9;

fn features(spec: &ModelSpec, w: &PhaseWorkload, bits: Bitwidth, kv_bits: f64) -> [f64; 3] {
    let c = flops::layer_cost(spec, w);
    [1.0, c.flops / FLOPS_SCALE, c.total_bytes(bits.bits_f64(), kv_bits) / BYTES_SCALE]
}

/// Solve a 3×3 linear system by Gaussian elimination with partial
/// pivoting. Returns `None` if singular.
#[allow(clippy::needless_range_loop)]
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..3 {
            let f = a[row][col] / a[col][col];
            for k in col..3 {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for col in (0..3).rev() {
        let mut acc = b[col];
        for k in col + 1..3 {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

/// A training row for the regression: `(features, observed latency)`.
pub type FitRow = ([f64; 3], f64);

/// One fitted regression.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// `[β₀, β₁ (per scaled FLOP), β₂ (per scaled byte)]`.
    pub coeffs: [f64; 3],
}

impl LatencyModel {
    /// Ordinary least squares over `(features, latency)` rows.
    pub fn fit(rows: &[FitRow]) -> Option<LatencyModel> {
        if rows.len() < 3 {
            return None;
        }
        let mut xtx = [[0.0f64; 3]; 3];
        let mut xty = [0.0f64; 3];
        for (x, y) in rows {
            for i in 0..3 {
                for j in 0..3 {
                    xtx[i][j] += x[i] * x[j];
                }
                xty[i] += x[i] * y;
            }
        }
        // Tiny ridge for numerical safety on degenerate grids.
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        solve3(xtx, xty).map(|coeffs| LatencyModel { coeffs })
    }

    /// Predicted latency for a feature vector, clamped non-negative.
    pub fn predict(&self, x: &[f64; 3]) -> f64 {
        (self.coeffs[0] * x[0] + self.coeffs[1] * x[1] + self.coeffs[2] * x[2]).max(0.0)
    }
}

/// How latencies are estimated.
#[derive(Debug, Clone)]
enum Source {
    /// Fitted regressions keyed by (device, bits, phase).
    Fitted(HashMap<(GpuModel, Bitwidth, Phase), LatencyModel>),
    /// Direct roofline queries (`--use_profiler_prediction`).
    Oracle(KernelEnv),
}

/// The latency cost database the assigner queries.
#[derive(Debug, Clone)]
pub struct CostDb {
    source: Source,
    env: KernelEnv,
}

impl CostDb {
    /// Fit regressions for every listed device from profiler samples.
    pub fn fit(devices: &[DeviceSpec], env: &KernelEnv, spec: &ModelSpec, cfg: &ProfilerConfig) -> CostDb {
        let mut models = HashMap::new();
        for dev in devices {
            let samples = profile_device(dev, env, spec, cfg);
            for &bits in &Bitwidth::ALL {
                for phase in Phase::ALL {
                    let rows: Vec<FitRow> = samples
                        .iter()
                        .filter(|s| s.bits == bits && s.phase == phase)
                        .map(|s| (features(spec, &s.workload(), bits, 16.0), s.latency))
                        .collect();
                    if let Some(m) = LatencyModel::fit(&rows) {
                        models.insert((dev.model, bits, phase), m);
                    }
                }
            }
        }
        CostDb { source: Source::Fitted(models), env: *env }
    }

    /// Fit from pre-collected samples of one device (e.g. imported
    /// profiles), merged into an existing database.
    pub fn fit_from_samples(&mut self, gpu: GpuModel, spec: &ModelSpec, samples: &[ProfileSample]) {
        if let Source::Fitted(models) = &mut self.source {
            for &bits in &Bitwidth::ALL {
                for phase in Phase::ALL {
                    let rows: Vec<FitRow> = samples
                        .iter()
                        .filter(|s| s.bits == bits && s.phase == phase)
                        .map(|s| (features(spec, &s.workload(), bits, 16.0), s.latency))
                        .collect();
                    if let Some(m) = LatencyModel::fit(&rows) {
                        models.insert((gpu, bits, phase), m);
                    }
                }
            }
        }
    }

    /// A database that answers from the roofline model directly.
    pub fn oracle(env: &KernelEnv) -> CostDb {
        CostDb { source: Source::Oracle(*env), env: *env }
    }

    /// Predicted latency of **one decoder layer** with an FP16 KV cache.
    pub fn layer_latency(&self, gpu: GpuModel, spec: &ModelSpec, w: &PhaseWorkload, bits: Bitwidth) -> f64 {
        self.layer_latency_kv(gpu, spec, w, bits, 16.0)
    }

    /// Predicted latency of one decoder layer with the KV cache stored
    /// at `kv_bits` bits (the memory-traffic feature scales; the fitted
    /// per-byte coefficient transfers — KV-quantization extension).
    pub fn layer_latency_kv(
        &self,
        gpu: GpuModel,
        spec: &ModelSpec,
        w: &PhaseWorkload,
        bits: Bitwidth,
        kv_bits: f64,
    ) -> f64 {
        match &self.source {
            Source::Fitted(models) => {
                let m = models
                    .get(&(gpu, bits, w.phase))
                    .unwrap_or_else(|| panic!("no model for {gpu} {bits} {}", w.phase));
                m.predict(&features(spec, w, bits, kv_bits))
            }
            Source::Oracle(env) => layer_latency(&gpu.spec(), env, spec, w, bits, kv_bits),
        }
    }

    /// Predicted latency of a model shard: the sum of its layers at
    /// their respective precisions (paper: "the latency of a model shard
    /// can be obtained by summing up the latencies of all involved
    /// decoder layers with respect to their precisions").
    pub fn stage_latency(&self, gpu: GpuModel, spec: &ModelSpec, layer_bits: &[Bitwidth], w: &PhaseWorkload) -> f64 {
        self.stage_latency_kv(gpu, spec, layer_bits, w, 16.0)
    }

    /// [`CostDb::stage_latency`] with a quantized KV cache.
    pub fn stage_latency_kv(
        &self,
        gpu: GpuModel,
        spec: &ModelSpec,
        layer_bits: &[Bitwidth],
        w: &PhaseWorkload,
        kv_bits: f64,
    ) -> f64 {
        layer_bits.iter().map(|&b| self.layer_latency_kv(gpu, spec, w, b, kv_bits)).sum()
    }

    /// Master-engine (embedding + logits) latency; not regression-fitted
    /// because it has a single shape per job.
    pub fn master_latency(&self, gpu: GpuModel, spec: &ModelSpec, w: &PhaseWorkload) -> f64 {
        embedding_latency(&gpu.spec(), &self.env, spec, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_model::zoo;

    #[test]
    fn solve3_inverts_known_system() {
        let a = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 4.0]];
        let x_true = [1.0, -2.0, 3.0];
        let b = [
            a[0][0] * x_true[0] + a[0][1] * x_true[1] + a[0][2] * x_true[2],
            a[1][0] * x_true[0] + a[1][1] * x_true[1] + a[1][2] * x_true[2],
            a[2][0] * x_true[0] + a[2][1] * x_true[1] + a[2][2] * x_true[2],
        ];
        let x = solve3(a, b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn solve3_rejects_singular() {
        let a = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 0.0, 1.0]];
        assert!(solve3(a, [1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn regression_recovers_exact_linear_data() {
        let rows: Vec<([f64; 3], f64)> = (1..20)
            .map(|i| {
                let x = [1.0, i as f64, (i * i) as f64 * 0.1];
                (x, 0.5 + 2.0 * x[1] + 3.0 * x[2])
            })
            .collect();
        let m = LatencyModel::fit(&rows).unwrap();
        assert!((m.coeffs[0] - 0.5).abs() < 1e-6);
        assert!((m.coeffs[1] - 2.0).abs() < 1e-6);
        assert!((m.coeffs[2] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn fitted_db_interpolates_unseen_shapes_under_6_percent() {
        // The Fig 7 headline: average latency error < 6% on workloads the
        // profiler never saw.
        let spec = zoo::opt_13b();
        let env = KernelEnv::default();
        let devices = [GpuModel::T4_16G.spec(), GpuModel::V100_32G.spec()];
        let db = CostDb::fit(&devices, &env, &spec, &ProfilerConfig::default());
        let mut errs = Vec::new();
        for gpu in [GpuModel::T4_16G, GpuModel::V100_32G] {
            for bits in Bitwidth::ALL {
                // Unseen: batches 3/5/7, past 384/768 (not in the grid).
                for (b, s, p) in [(3, 192, 384), (5, 320, 768), (7, 448, 384)] {
                    for w in [PhaseWorkload::prefill(b, s), PhaseWorkload::decode(b, s, p)] {
                        let pred = db.layer_latency(gpu, &spec, &w, bits);
                        let truth = layer_latency(&gpu.spec(), &env, &spec, &w, bits, 16.0);
                        errs.push((pred - truth).abs() / truth);
                    }
                }
            }
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 0.06, "mean latency error {:.2}% >= 6%", mean * 100.0);
    }

    #[test]
    fn oracle_matches_simulator_exactly() {
        let spec = zoo::opt_30b();
        let env = KernelEnv::default();
        let db = CostDb::oracle(&env);
        let w = PhaseWorkload::decode(8, 512, 600);
        let pred = db.layer_latency(GpuModel::A100_40G, &spec, &w, Bitwidth::Int4);
        let truth = layer_latency(&GpuModel::A100_40G.spec(), &env, &spec, &w, Bitwidth::Int4, 16.0);
        assert_eq!(pred, truth);
    }

    #[test]
    fn stage_latency_sums_layers() {
        let spec = zoo::opt_13b();
        let db = CostDb::oracle(&KernelEnv::default());
        let w = PhaseWorkload::prefill(4, 256);
        let one = db.layer_latency(GpuModel::V100_32G, &spec, &w, Bitwidth::Int8);
        let stage = db.stage_latency(GpuModel::V100_32G, &spec, &[Bitwidth::Int8; 5], &w);
        assert!((stage - 5.0 * one).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no model for")]
    fn fitted_db_panics_on_unknown_device() {
        let spec = zoo::opt_13b();
        let db = CostDb::fit(&[], &KernelEnv::default(), &spec, &ProfilerConfig::default());
        db.layer_latency(GpuModel::A800_80G, &spec, &PhaseWorkload::prefill(1, 128), Bitwidth::Fp16);
    }
}
