//! Property tests for the warm-started incremental planner: random
//! small cluster deltas (±1–2 devices) must leave the warm objective
//! exactly equal to a cold solve of the same fleet, caches must be
//! reused across deltas and correctly invalidated when the cost
//! database or device classes change.
//!
//! Case counts are kept small (each case runs several full assigner
//! passes); the properties are about *equivalence*, not coverage
//! volume — any divergence at all is a bug.

use llm_pq::{
    AssignerConfig, IncrementalPlanner, PlanOrigin, SolverChoice,
};
use llmpq_cluster::{Cluster, GpuModel, Interconnect};
use llmpq_cost::CostDb;
use llmpq_model::{ModelFamily, ModelSpec};
use llmpq_quant::IndicatorTable;
use llmpq_sim::KernelEnv;
use llmpq_workload::BatchJob;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn tiny_spec() -> ModelSpec {
    ModelSpec::new(ModelFamily::Opt, "tiny-4l", 4, 64, 4, 256, 128)
}

fn tiny_indicator(n_layers: usize) -> IndicatorTable {
    IndicatorTable {
        omega: (0..n_layers)
            .map(|l| {
                let base = 1.0 / (1.0 + l as f64);
                [base, base * 0.2, base * 0.01, 0.0]
            })
            .collect(),
    }
}

fn quick_cfg() -> AssignerConfig {
    AssignerConfig {
        theta: 0.05,
        solver: SolverChoice::Dp { group: 1 },
        xi: 2,
        max_orderings: 2,
        // Exhaustive (T_pre, T_dec) candidates: warm == cold holds
        // exactly. Under grid subsampling the warm incumbent's realized
        // maxima are injected into the candidate lists, so warm may
        // legitimately *beat* a coarse cold solve — a different (and
        // weaker) property than the equivalence these tests pin down.
        dp_grid: None,
        search_kv8: false,
        max_bits: None,
    }
}

fn job() -> BatchJob {
    BatchJob { global_batch: 4, prompt_len: 8, n_generate: 5 }
}

fn cluster_of(name: &str, devices: &[GpuModel]) -> Cluster {
    let mut groups: BTreeMap<GpuModel, usize> = BTreeMap::new();
    for &g in devices {
        *groups.entry(g).or_insert(0) += 1;
    }
    let groups: Vec<(GpuModel, usize)> = groups.into_iter().collect();
    Cluster::from_groups(name, &groups, Interconnect::Ethernet800G, None)
}

fn gpu_strategy() -> impl Strategy<Value = GpuModel> {
    prop_oneof![
        Just(GpuModel::T4_16G),
        Just(GpuModel::V100_32G),
        Just(GpuModel::A100_40G),
    ]
}

/// Clamp a raw draw into a ±1–2 device delta that always keeps at
/// least two survivors (so the new fleet shares device classes with
/// the old one and warm-starting is on the table) and is never a
/// no-op.
fn clamp_delta(
    base: &[GpuModel],
    remove: usize,
    mut added: Vec<GpuModel>,
) -> (usize, Vec<GpuModel>) {
    let remove = remove.min(base.len().saturating_sub(2));
    if remove == 0 && added.is_empty() {
        added.push(GpuModel::T4_16G);
    }
    (remove, added)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// After a small delta (±1–2 devices), the warm-started planner
    /// finds exactly the cold objective on the new fleet — the warm
    /// path only prunes work, never the optimum — and actually reuses
    /// its cost cache across the delta.
    #[test]
    fn warm_objective_equals_cold_after_small_delta(
        (base, raw_remove, raw_added) in (
            prop::collection::vec(gpu_strategy(), 3..=6),
            0usize..=2,
            prop::collection::vec(gpu_strategy(), 0..=2),
        )
    ) {
        let (remove, added) = clamp_delta(&base, raw_remove, raw_added);
        let spec = tiny_spec();
        let indicator = tiny_indicator(spec.n_layers);
        let db = CostDb::oracle(&KernelEnv::default());
        let cfg = quick_cfg();
        let theta = cfg.theta;

        let old = cluster_of("old", &base);
        let mut devices: Vec<GpuModel> = base[remove..].to_vec();
        devices.extend_from_slice(&added);
        let new = cluster_of("new", &devices);

        let mut warm = IncrementalPlanner::new(spec.clone(), job(), cfg.clone());
        warm.plan(&old, &db, &indicator).expect("base fleet plans");

        let mut cold = IncrementalPlanner::new(spec, job(), cfg);
        match (warm.plan(&new, &db, &indicator), cold.plan(&new, &db, &indicator)) {
            (Ok(w), Ok(c)) => {
                let wo = w.objective(theta);
                let co = c.objective(theta);
                prop_assert!(
                    (wo - co).abs() <= 1e-9 * co.abs().max(1.0),
                    "warm objective {wo} != cold {co} after delta -{remove}+{} on {} devices",
                    added.len(),
                    base.len(),
                );
                // When the delta preserves the set of device classes
                // the cost cache survives it (the DB fingerprint probe
                // hashes per-class latencies, so a class-set change
                // conservatively clears the cache) and the surviving
                // classes must hit the memoized entries from the base
                // round.
                let classes = |d: &[GpuModel]| {
                    d.iter().copied().collect::<std::collections::BTreeSet<_>>()
                };
                if classes(&devices) == classes(&base) {
                    prop_assert!(
                        w.stats.cost.hits > 0,
                        "no cost-cache reuse across the delta: {:?}",
                        w.stats
                    );
                }
                if w.origin == PlanOrigin::WarmStart {
                    prop_assert!(w.stats.hints_applied > 0);
                }
            }
            // If the new fleet is infeasible for one planner it must be
            // infeasible for both — warm-starting must not change
            // feasibility in either direction.
            (Err(_), Err(_)) => {}
            (w, c) => prop_assert!(
                false,
                "feasibility diverged: warm {:?} vs cold {:?}",
                w.map(|o| o.origin),
                c.map(|o| o.origin)
            ),
        }
    }

    /// Replanning the *same* fleet twice must reuse both caches (the
    /// second round is mostly hits) and land on the identical
    /// objective.
    #[test]
    fn identical_replan_is_served_from_cache(
        base in prop::collection::vec(gpu_strategy(), 3..=5)
    ) {
        let spec = tiny_spec();
        let indicator = tiny_indicator(spec.n_layers);
        let db = CostDb::oracle(&KernelEnv::default());
        let cfg = quick_cfg();
        let theta = cfg.theta;
        let cluster = cluster_of("same", &base);

        let mut planner = IncrementalPlanner::new(spec, job(), cfg);
        let first = planner.plan(&cluster, &db, &indicator).expect("first plan");
        let second = planner.plan(&cluster, &db, &indicator).expect("second plan");

        prop_assert!(
            (first.objective(theta) - second.objective(theta)).abs() <= 1e-12,
            "identical fleet, different objective"
        );
        prop_assert!(second.stats.eval.hits > 0, "evaluation cache unused: {:?}", second.stats);
        prop_assert!(
            second.stats.cost.hit_rate() > 0.5,
            "cost cache mostly missed on an identical replan: {:?}",
            second.stats.cost
        );
        prop_assert!(second.stats.omega.hits > 0, "omega cache unused: {:?}", second.stats);
    }

    /// Changing the cost database between rounds must invalidate the
    /// memoized cost entries: the warm planner's answer on the new
    /// database equals a cold solve on that database (stale entries
    /// would skew the objective).
    #[test]
    fn cost_db_change_invalidates_the_cache(
        base in prop::collection::vec(gpu_strategy(), 3..=5)
    ) {
        let spec = tiny_spec();
        let indicator = tiny_indicator(spec.n_layers);
        let cfg = quick_cfg();
        let theta = cfg.theta;
        let cluster = cluster_of("dbflip", &base);
        let db1 = CostDb::oracle(&KernelEnv::default());
        let db2 = CostDb::oracle(&KernelEnv { max_mfu: 0.1, ..KernelEnv::default() });

        let mut warm = IncrementalPlanner::new(spec.clone(), job(), cfg.clone());
        warm.plan(&cluster, &db1, &indicator).expect("plan on db1");
        let switched = warm.plan(&cluster, &db2, &indicator).expect("plan on db2");

        let mut cold = IncrementalPlanner::new(spec, job(), cfg);
        let fresh = cold.plan(&cluster, &db2, &indicator).expect("cold plan on db2");

        prop_assert!(
            (switched.objective(theta) - fresh.objective(theta)).abs()
                <= 1e-9 * fresh.objective(theta).abs().max(1.0),
            "stale cost entries leaked across the database change: warm {} vs cold {}",
            switched.objective(theta),
            fresh.objective(theta)
        );
    }

    /// Swapping every device class between rounds must not let the old
    /// classes' cost entries answer for the new ones: the fingerprint
    /// probe (which hashes per-class latencies of the *current* fleet)
    /// detects the swap and clears stale entries, so the warm planner's
    /// answer and its rebuilt cache both match a cold solve exactly.
    #[test]
    fn device_class_change_misses_into_fresh_entries(
        n in 3usize..=5
    ) {
        let spec = tiny_spec();
        let indicator = tiny_indicator(spec.n_layers);
        let db = CostDb::oracle(&KernelEnv::default());
        let cfg = quick_cfg();
        let theta = cfg.theta;
        let old = cluster_of("cls-a", &vec![GpuModel::T4_16G; n]);
        let new = cluster_of("cls-b", &vec![GpuModel::A100_40G; n]);

        let mut warm = IncrementalPlanner::new(spec.clone(), job(), cfg.clone());
        warm.plan(&old, &db, &indicator).expect("plan on the T4 fleet");
        let switched = warm.plan(&new, &db, &indicator).expect("plan on the A100 fleet");

        let mut cold = IncrementalPlanner::new(spec, job(), cfg);
        let fresh = cold.plan(&new, &db, &indicator).expect("cold plan on the A100 fleet");

        prop_assert!(
            (switched.objective(theta) - fresh.objective(theta)).abs()
                <= 1e-9 * fresh.objective(theta).abs().max(1.0),
            "old device class answered for the new one: warm {} vs cold {}",
            switched.objective(theta),
            fresh.objective(theta)
        );
        // The stale T4 entries were cleared; everything left was
        // rebuilt for the A100 fleet, so the caches of the two planners
        // are structurally identical.
        prop_assert!(switched.stats.cost.misses > 0, "class swap served without misses");
        prop_assert_eq!(
            warm.cached_cost_entries(),
            cold.cached_cost_entries(),
            "cache after the class swap must hold exactly the fresh fleet's entries"
        );
    }
}
