//! Baseline planners for the paper's comparison rows (§6.1):
//!
//! * **PipeEdge** — uniform quantization, single-phase (prefill-only)
//!   heterogeneous partition, one micro-batch size for both phases.
//! * **Uniform** — uniform quantization, *even* layer partition, and the
//!   latency-minimizing micro-batch sizes (the HF-Transformers /
//!   DeepSpeed policy).
//! * **FlexGen / FlexGen-int8** — even partition with CPU/NVMe
//!   offloading on each stage (the swap-heavy baseline).
//! * **adabits** — pure adaptive quantization (Fig 9): the quality-only
//!   bit assignment with an even partition, no phase-aware placement.
//!
//! For PipeEdge and Uniform the bitwidth starts at FP16 and is lowered
//! until the model fits or no feasible precision remains.

use crate::assigner::{build_problem, solution_to_plan};
use crate::evaluate::{evaluate_plan, representative_past, PlanError, PlanReport};
use crate::plan::{ExecutionPlan, StagePlan};
use crate::transfer::adabits_seed;
use llmpq_cluster::Cluster;
use llmpq_cost::CostDb;
use llmpq_model::{flops, ModelFamily, ModelSpec, PhaseWorkload};
use llmpq_quant::{Bitwidth, IndicatorTable};
use llmpq_sim::{offload_stage, simulate_pipeline, KernelEnv, OffloadConfig, PipelineWorkload, StageLoad};
use llmpq_solver::solve_partition;
use llmpq_workload::{microbatch_counts, BatchJob, MicrobatchPlan};
use serde::{Deserialize, Serialize};

/// The comparison schemes of Tables 4/5/7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselineKind {
    /// PipeEdge (uniform quantization + single-phase partition).
    PipeEdge,
    /// Even partition + uniform quantization.
    Uniform,
    /// FlexGen offloading at FP16.
    FlexGen,
    /// FlexGen offloading at INT8.
    FlexGenInt8,
    /// Pure adaptive quantization (adabits).
    Adabits,
}

impl BaselineKind {
    /// Scheme label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            BaselineKind::PipeEdge => "PipeEdge",
            BaselineKind::Uniform => "Uniform",
            BaselineKind::FlexGen => "FlexGen",
            BaselineKind::FlexGenInt8 => "FlexGen-int8",
            BaselineKind::Adabits => "adabits",
        }
    }
}

/// Uniform precisions tried from best quality downward.
const LADDER: [Bitwidth; 4] = [Bitwidth::Fp16, Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int3];

/// Shared micro-batch policy of PipeEdge/FlexGen: the same size for both
/// phases, the global batch divided by the number of stages.
fn even_microbatch(job: &BatchJob, n_stages: usize) -> MicrobatchPlan {
    let g = job.global_batch;
    let mut size = (g / n_stages).max(1);
    while !g.is_multiple_of(size) {
        size -= 1;
    }
    MicrobatchPlan {
        prefill_size: size,
        prefill_count: g / size,
        decode_size: size,
        decode_count: g / size,
    }
}

/// Even contiguous layer split over the cluster's natural device order.
fn even_stages(cluster: &Cluster, spec: &ModelSpec, bits: Bitwidth) -> Vec<StagePlan> {
    let n = cluster.len();
    let l = spec.n_layers;
    let base = l / n;
    let extra = l % n;
    let mut stages = Vec::with_capacity(n);
    let mut start = 0usize;
    for j in 0..n {
        let take = base + usize::from(j < extra);
        stages.push(StagePlan {
            device: j,
            layer_start: start,
            layer_end: start + take,
            bits: vec![bits; take],
        });
        start += take;
    }
    stages
}

/// PipeEdge: heterogeneous partition balancing *prefill only*, uniform
/// quantization lowered until feasible.
pub fn pipeedge_plan(
    cluster: &Cluster,
    spec: &ModelSpec,
    job: &BatchJob,
    db: &CostDb,
) -> Result<(ExecutionPlan, PlanReport), String> {
    let ordering: Vec<usize> = (0..cluster.len()).collect();
    let mb = even_microbatch(job, cluster.len());
    for bits in LADDER {
        let (problem, _q, sizes) = build_problem(
            cluster, &ordering, spec, job, db, None, 0.0, &mb, 1, &[bits], false, Some(24), 16.0,
        );
        let Some(sol) = solve_partition(&problem) else { continue };
        let plan = solution_to_plan(
            cluster, &ordering, spec, &sizes, &sol, &mb, "PipeEdge", &[bits], 16,
        );
        match evaluate_plan(&plan, cluster, spec, db, job) {
            Ok(report) => return Ok((plan, report)),
            Err(PlanError::Oom { .. }) => continue,
            Err(e) => return Err(e.to_string()),
        }
    }
    Err("PipeEdge: no uniform precision fits".into())
}

/// Uniform: even partition, uniform quantization lowered until feasible,
/// micro-batch sizes searched for minimal latency.
pub fn uniform_plan(
    cluster: &Cluster,
    spec: &ModelSpec,
    job: &BatchJob,
    db: &CostDb,
) -> Result<(ExecutionPlan, PlanReport), String> {
    for bits in LADDER {
        let stages = even_stages(cluster, spec, bits);
        let mut best: Option<(ExecutionPlan, PlanReport)> = None;
        for mb in microbatch_counts(job, cluster.len(), 8) {
            let plan = ExecutionPlan {
                model: spec.name.clone(),
                cluster: cluster.name.clone(),
                stages: stages.clone(),
                microbatch: mb,
                scheme: "Uniform".into(),
                kv_bits: 16,
            };
            if let Ok(report) = evaluate_plan(&plan, cluster, spec, db, job) {
                if best.as_ref().is_none_or(|(_, r)| report.total_latency < r.total_latency) {
                    best = Some((plan, report));
                }
            }
        }
        if let Some(found) = best {
            return Ok(found);
        }
    }
    Err("Uniform: no uniform precision fits".into())
}

/// FlexGen(-int8): even partition with offloading; never OOMs, but pays
/// swap traffic. Returns a report directly (the plan over-commits GPU
/// memory by design, so it has no OOM-checked `ExecutionPlan`).
///
/// Returns `None` for BLOOM models — "FlexGen is specialized for OPT
/// models and thus has no results on BLOOM" (§6.1).
pub fn flexgen_report(
    cluster: &Cluster,
    spec: &ModelSpec,
    job: &BatchJob,
    env: &KernelEnv,
    int8: bool,
) -> Option<PlanReport> {
    if spec.family == ModelFamily::Bloom {
        return None;
    }
    let bits = if int8 { Bitwidth::Int8 } else { Bitwidth::Fp16 };
    let mb = even_microbatch(job, cluster.len());
    let pre_w = PhaseWorkload::prefill(mb.prefill_size, job.prompt_len);
    let dec_w = PhaseWorkload::decode(mb.decode_size, job.prompt_len, representative_past(job));
    let cfg = OffloadConfig::default();
    let stages = even_stages(cluster, spec, bits);
    let loads: Vec<StageLoad> = stages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let dev = cluster.devices[s.device].spec();
            // Reserved: KV for the global batch + embeddings on stage 0.
            let kv = spec.kv_bytes_per_layer(job.global_batch, job.max_seq(), 16.0)
                * s.n_layers() as f64;
            let reserved = kv + if i == 0 { spec.embedding_bytes() } else { 0.0 } + 1e9;
            let r = offload_stage(&dev, env, &cfg, spec, s.n_layers(), bits, reserved, &pre_w, &dec_w);
            let (comm_prefill, comm_decode) = if i + 1 < stages.len() {
                let link = cluster.link_between(s.device, i + 1);
                (
                    link.transfer_time(flops::boundary_activation_bytes(spec, &pre_w)),
                    link.transfer_time(flops::boundary_activation_bytes(spec, &dec_w)),
                )
            } else {
                (0.0, 0.0)
            };
            StageLoad { prefill_time: r.prefill_time, decode_time: r.decode_time, comm_prefill, comm_decode }
        })
        .collect();
    let first_gpu = cluster.devices[0].gpu;
    let db = CostDb::oracle(env);
    let wl = PipelineWorkload {
        prefill_microbatches: mb.prefill_count,
        decode_microbatches: mb.decode_count,
        n_tokens: job.n_generate,
        master_prefill: db.master_latency(first_gpu, spec, &pre_w),
        master_decode: db.master_latency(first_gpu, spec, &dec_w),
    };
    let r = simulate_pipeline(&loads, &wl);
    Some(PlanReport {
        scheme: if int8 { "FlexGen-int8" } else { "FlexGen" }.into(),
        prefill_latency: r.prefill_latency,
        decode_latency: r.decode_latency,
        total_latency: r.total_latency,
        throughput: job.total_tokens() as f64 / r.total_latency,
        max_bubble: r.max_bubble_fraction,
        stage_memory: stages
            .iter()
            .map(|s| cluster.devices[s.device].spec().mem_bytes())
            .collect(),
        mean_bits: bits.bits_f64(),
    })
}

/// adabits: pure adaptive quantization (Fig 9) — even partition,
/// quality-greedy bits under memory, even micro-batches.
pub fn adabits_plan(
    cluster: &Cluster,
    spec: &ModelSpec,
    job: &BatchJob,
    db: &CostDb,
    indicator: &IndicatorTable,
    theta: f64,
) -> Result<(ExecutionPlan, PlanReport), String> {
    let ordering: Vec<usize> = (0..cluster.len()).collect();
    let mb = even_microbatch(job, cluster.len());
    let (problem, quality, sizes) = build_problem(
        cluster,
        &ordering,
        spec,
        job,
        db,
        Some(indicator),
        theta,
        &mb,
        1,
        &Bitwidth::ALL,
        true,
        Some(16),
        16.0,
    );
    let seed = adabits_seed(&problem, &quality).ok_or("adabits: memory infeasible")?;
    let sol = seed.to_solution(&problem);
    let plan = solution_to_plan(
        cluster, &ordering, spec, &sizes, &sol, &mb, "adabits", &Bitwidth::ALL, 16,
    );
    let report = evaluate_plan(&plan, cluster, spec, db, job).map_err(|e| e.to_string())?;
    Ok((plan, report))
}

/// Convenience dispatcher used by the bench harness.
#[allow(clippy::too_many_arguments)]
pub fn baseline_report(
    kind: BaselineKind,
    cluster: &Cluster,
    spec: &ModelSpec,
    job: &BatchJob,
    db: &CostDb,
    env: &KernelEnv,
    indicator: Option<&IndicatorTable>,
    theta: f64,
) -> Option<PlanReport> {
    match kind {
        BaselineKind::PipeEdge => pipeedge_plan(cluster, spec, job, db).ok().map(|(_, r)| r),
        BaselineKind::Uniform => uniform_plan(cluster, spec, job, db).ok().map(|(_, r)| r),
        BaselineKind::FlexGen => flexgen_report(cluster, spec, job, env, false),
        BaselineKind::FlexGenInt8 => flexgen_report(cluster, spec, job, env, true),
        BaselineKind::Adabits => {
            adabits_plan(cluster, spec, job, db, indicator?, theta).ok().map(|(_, r)| r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_cluster::paper_cluster;
    use llmpq_model::zoo;
    use llmpq_quant::IndicatorTable;

    fn db() -> CostDb {
        CostDb::oracle(&KernelEnv::default())
    }

    fn indicator(n: usize) -> IndicatorTable {
        IndicatorTable {
            omega: (0..n)
                .map(|l| {
                    let base = 1.0 / (1.0 + l as f64 * 0.1);
                    [base, base * 0.2, base * 0.01, 0.0]
                })
                .collect(),
        }
    }

    #[test]
    fn pipeedge_finds_feasible_uniform_plan() {
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let (plan, report) = pipeedge_plan(&cluster, &spec, &BatchJob::paper_default(), &db()).unwrap();
        plan.validate(spec.n_layers).unwrap();
        // Uniform bits everywhere.
        let bits = plan.bit_assignment();
        assert!(bits.bits.windows(2).all(|w| w[0] == w[1]));
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn pipeedge_quantizes_when_memory_is_tight() {
        // 30b FP16 ≈ 60 GB cannot fit cluster 3's 80 GB with KV of batch
        // 32 on 16 GB cards; PipeEdge must drop below FP16.
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let (plan, _) = pipeedge_plan(&cluster, &spec, &BatchJob::paper_default(), &db()).unwrap();
        assert!(plan.bit_assignment().bits[0] < Bitwidth::Fp16);
    }

    #[test]
    fn uniform_plan_is_even_split() {
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let (plan, _) = uniform_plan(&cluster, &spec, &BatchJob::paper_default(), &db()).unwrap();
        let sizes: Vec<usize> = plan.stages.iter().map(|s| s.n_layers()).collect();
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1, "even split expected, got {sizes:?}");
    }

    #[test]
    fn flexgen_runs_oversized_models() {
        // OPT-66b on cluster 5 at FP16 does not fit — FlexGen still
        // produces a (slow) result.
        let cluster = paper_cluster(5);
        let spec = zoo::opt_66b();
        let r = flexgen_report(&cluster, &spec, &BatchJob::paper_default(), &KernelEnv::default(), false)
            .unwrap();
        assert!(r.throughput > 0.0);
        let r8 = flexgen_report(&cluster, &spec, &BatchJob::paper_default(), &KernelEnv::default(), true)
            .unwrap();
        assert!(
            r8.throughput > r.throughput,
            "int8 {} should beat fp16 {}",
            r8.throughput,
            r.throughput
        );
    }

    #[test]
    fn flexgen_skips_bloom() {
        let cluster = paper_cluster(7);
        let spec = zoo::bloom_176b();
        assert!(flexgen_report(&cluster, &spec, &BatchJob::paper_default(), &KernelEnv::default(), false)
            .is_none());
    }

    #[test]
    fn adabits_produces_mixed_precision() {
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let ind = indicator(spec.n_layers);
        let (plan, report) =
            adabits_plan(&cluster, &spec, &BatchJob::paper_default(), &db(), &ind, 1.0).unwrap();
        plan.validate(spec.n_layers).unwrap();
        assert!(report.mean_bits < 16.0, "memory pressure forces quantization");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BaselineKind::FlexGenInt8.label(), "FlexGen-int8");
        assert_eq!(BaselineKind::PipeEdge.label(), "PipeEdge");
    }
}
