//! Incremental (warm-started) planning for an elastic fleet.
//!
//! A fleet that scales while serving replans often — every device join,
//! leave, or degrade re-runs Algorithm 1. A cold `assign` re-derives the
//! full cost tensors, re-solves every (ordering, micro-batch) partition
//! problem from scratch, and re-simulates every uniform seed plan; at
//! the 50–200 device scale of ROADMAP item 5 that puts the solver on
//! the serving critical path. This module makes replanning cheap after
//! *small* cluster deltas:
//!
//! * [`CostCache`] memoizes the per-layer latency model and the ω
//!   indicator sums keyed by (device class, workload shape, bitwidth) —
//!   values that survive any membership change that keeps a device
//!   class around.
//! * [`EvalCache`] memoizes full plan evaluations by a structural
//!   fingerprint (per-stage device class + layer count + precision,
//!   boundary interconnect class, micro-batch shape), so re-evaluating
//!   the same candidate shape on the churned cluster is a lookup.
//! * [`IncrementalPlanner`] repairs the previous winning assignment
//!   onto each new device ordering and feeds it to the partition
//!   solver's incumbent-pruned warm path
//!   ([`llmpq_solver::solve_partition_warm`]); uniform seed plans are
//!   skipped through a *sound* pipeline-makespan lower bound, so the
//!   warm pass provably returns the same objective the cold pass would.
//!
//! Large deltas (more than [`WarmStartConfig`] allows) fall back to the
//! cold path — the caches still help, the hint does not.
//!
//! All of this is deterministic: warm-vs-cold objective equivalence is
//! asserted in unit tests here and in `tests/warm_props.rs` proptests.

use crate::assigner::{
    bit_menu, build_problem_with_cache, device_orderings, solution_to_plan, AssignOutcome,
};
use crate::config::{AssignerConfig, SolverChoice};
use crate::evaluate::{evaluate_plan, representative_past, PlanError, PlanReport};
use crate::ilp::solve_ilp;
use crate::plan::{ExecutionPlan, StagePlan};
use crate::transfer::heuristic_solve;
use llmpq_cluster::{Cluster, GpuModel};
use llmpq_cost::CostDb;
use llmpq_model::{flops, ModelSpec, Phase, PhaseWorkload};
use llmpq_quant::{Bitwidth, IndicatorTable};
use llmpq_solver::{solve_partition_warm_stats, MilpConfig};
use llmpq_workload::{microbatch_counts, BatchJob, MicrobatchPlan};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Where a committed plan came from. Operators watch this: a fleet that
/// keeps serving `Heuristic` plans is running on degraded planning
/// quality and should be looked at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanOrigin {
    /// The configured exact solver (DP or MILP ladder), cold.
    Ilp,
    /// The Algorithm-2 heuristic — either configured, or the fallback
    /// after the exact solver failed.
    Heuristic,
    /// The incremental planner's warm-started path (previous assignment
    /// repaired and reused as the solver incumbent).
    WarmStart,
}

impl std::fmt::Display for PlanOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanOrigin::Ilp => write!(f, "ilp"),
            PlanOrigin::Heuristic => write!(f, "heuristic"),
            PlanOrigin::WarmStart => write!(f, "warm-start"),
        }
    }
}

/// Typed replan failure. The fleet controller holds the old plan and
/// raises an alarm on `Infeasible` instead of crashing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplanError {
    /// Every device is gone; there is nothing to plan onto.
    AllDevicesLost {
        /// Devices the cluster had before the loss.
        total: usize,
    },
    /// The survivors cannot hold the model even at the lowest ladder
    /// rung (memory-infeasible fleet).
    Infeasible {
        /// Number of surviving devices.
        devices: usize,
        /// Solver-level detail.
        reason: String,
    },
    /// Bad planner configuration (e.g. an empty bitwidth menu).
    Config(String),
}

impl std::fmt::Display for ReplanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplanError::AllDevicesLost { total } => {
                write!(f, "cannot replan: all {total} devices lost")
            }
            ReplanError::Infeasible { devices, reason } => {
                write!(f, "replan infeasible on {devices} survivors: {reason}")
            }
            ReplanError::Config(s) => write!(f, "replan config error: {s}"),
        }
    }
}

impl std::error::Error for ReplanError {}

/// Hit/miss counters for one memoization layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

impl CacheCounters {
    /// Fraction of lookups answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

type LayerKey = (GpuModel, Phase, usize, usize, usize, Bitwidth, u64);
type MasterKey = (GpuModel, Phase, usize, usize, usize);

/// Memoized cost-model and ω-indicator evaluations.
///
/// Keys are (device class, workload shape, bitwidth) — device *identity*
/// never enters, so every value survives joins/leaves that keep the
/// class present, and a device-class change simply misses into fresh
/// keys. The cache is pinned to one (model spec, cost DB) pair; a cost
/// DB swap is detected by fingerprint probe and clears it.
#[derive(Debug, Default)]
pub struct CostCache {
    layer: HashMap<LayerKey, f64>,
    master: HashMap<MasterKey, f64>,
    omega: HashMap<(usize, usize, Bitwidth), f64>,
    /// Per-layer latency lookup counters.
    pub layer_counters: CacheCounters,
    /// ω group-sum lookup counters.
    pub omega_counters: CacheCounters,
    db_stamp: Option<u64>,
}

impl CostCache {
    /// Memoized [`CostDb::layer_latency_kv`].
    pub fn layer_latency(
        &mut self,
        db: &CostDb,
        gpu: GpuModel,
        spec: &ModelSpec,
        w: &PhaseWorkload,
        bits: Bitwidth,
        kv_bits: f64,
    ) -> f64 {
        let key = (gpu, w.phase, w.batch, w.prompt_len, w.past_len, bits, kv_bits.to_bits());
        if let Some(&v) = self.layer.get(&key) {
            self.layer_counters.hits += 1;
            return v;
        }
        self.layer_counters.misses += 1;
        let v = db.layer_latency_kv(gpu, spec, w, bits, kv_bits);
        self.layer.insert(key, v);
        v
    }

    /// Memoized [`CostDb::master_latency`].
    pub fn master_latency(
        &mut self,
        db: &CostDb,
        gpu: GpuModel,
        spec: &ModelSpec,
        w: &PhaseWorkload,
    ) -> f64 {
        let key = (gpu, w.phase, w.batch, w.prompt_len, w.past_len);
        if let Some(&v) = self.master.get(&key) {
            self.layer_counters.hits += 1;
            return v;
        }
        self.layer_counters.misses += 1;
        let v = db.master_latency(gpu, spec, w);
        self.master.insert(key, v);
        v
    }

    /// Memoized ω sum over the contiguous layer range
    /// `[layer0, layer0 + len)` at one bitwidth.
    pub fn omega_sum(
        &mut self,
        indicator: &IndicatorTable,
        layer0: usize,
        len: usize,
        bits: Bitwidth,
    ) -> f64 {
        let key = (layer0, len, bits);
        if let Some(&v) = self.omega.get(&key) {
            self.omega_counters.hits += 1;
            return v;
        }
        self.omega_counters.misses += 1;
        let v: f64 = (layer0..layer0 + len).map(|l| indicator.get(l, bits)).sum();
        self.omega.insert(key, v);
        v
    }

    /// Detect a cost-DB swap by probing a handful of latencies the
    /// planner is about to ask for anyway; clear everything if the
    /// answers changed.
    pub fn sync_db(&mut self, db: &CostDb, spec: &ModelSpec, cluster: &Cluster, menu: &[Bitwidth]) {
        let mut h = DefaultHasher::new();
        spec.name.hash(&mut h);
        let w = PhaseWorkload::prefill(1, 16);
        for (gpu, _) in cluster.model_counts() {
            for &bits in menu {
                db.layer_latency_kv(gpu, spec, &w, bits, 16.0).to_bits().hash(&mut h);
            }
        }
        let stamp = h.finish();
        if self.db_stamp != Some(stamp) {
            self.layer.clear();
            self.master.clear();
            self.omega.clear();
            self.db_stamp = Some(stamp);
        }
    }

    /// Drop every memoized value (counters survive).
    pub fn clear(&mut self) {
        self.layer.clear();
        self.master.clear();
        self.omega.clear();
        self.db_stamp = None;
    }

    /// Number of live memoized entries across all layers.
    pub fn len(&self) -> usize {
        self.layer.len() + self.master.len() + self.omega.len()
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Memoized full-plan evaluations keyed by a structural fingerprint.
///
/// Two plans with the same fingerprint produce the same
/// [`PlanReport`]: the fingerprint covers everything
/// [`evaluate_plan`] reads — spec, job, per-stage device class +
/// layer count + per-layer precision, boundary interconnect class,
/// micro-batch shape, KV precision, and scheme label. Device ids and
/// cluster names are deliberately absent, so an evaluation computed
/// before a churn event answers for the structurally identical plan
/// after it.
#[derive(Debug, Default)]
pub struct EvalCache {
    map: HashMap<u64, Result<PlanReport, PlanError>>,
    /// Lookup counters.
    pub counters: CacheCounters,
}

impl EvalCache {
    fn fingerprint(plan: &ExecutionPlan, cluster: &Cluster, spec: &ModelSpec, job: &BatchJob) -> u64 {
        let mut h = DefaultHasher::new();
        spec.name.hash(&mut h);
        job.global_batch.hash(&mut h);
        job.prompt_len.hash(&mut h);
        job.n_generate.hash(&mut h);
        plan.kv_bits.hash(&mut h);
        plan.scheme.hash(&mut h);
        plan.microbatch.prefill_size.hash(&mut h);
        plan.microbatch.prefill_count.hash(&mut h);
        plan.microbatch.decode_size.hash(&mut h);
        plan.microbatch.decode_count.hash(&mut h);
        plan.stages.len().hash(&mut h);
        for (i, s) in plan.stages.iter().enumerate() {
            cluster.devices[s.device].gpu.hash(&mut h);
            (s.layer_end - s.layer_start).hash(&mut h);
            for &b in &s.bits {
                b.hash(&mut h);
            }
            if i + 1 < plan.stages.len() {
                cluster.link_between(s.device, plan.stages[i + 1].device).hash(&mut h);
            }
        }
        h.finish()
    }

    /// [`evaluate_plan`] through the cache. Structural validation runs
    /// fresh every time (it is cheap and device-id-dependent); only the
    /// expensive memory + simulation verdict is memoized.
    pub fn evaluate(
        &mut self,
        plan: &ExecutionPlan,
        cluster: &Cluster,
        spec: &ModelSpec,
        db: &CostDb,
        job: &BatchJob,
    ) -> Result<PlanReport, PlanError> {
        if let Err(e) = plan.validate(spec.n_layers) {
            return Err(PlanError::Invalid(e));
        }
        if plan.stages.iter().any(|s| s.device >= cluster.len()) {
            return evaluate_plan(plan, cluster, spec, db, job);
        }
        let fp = Self::fingerprint(plan, cluster, spec, job);
        if let Some(r) = self.map.get(&fp) {
            self.counters.hits += 1;
            return r.clone();
        }
        self.counters.misses += 1;
        let r = evaluate_plan(plan, cluster, spec, db, job);
        self.map.insert(fp, r.clone());
        r
    }

    /// Drop every memoized evaluation (counters survive).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of memoized evaluations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Multiset difference between two clusters, by (device class, node).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterDelta {
    /// Devices present in the new cluster but not the old.
    pub added: usize,
    /// Devices present in the old cluster but not the new.
    pub removed: usize,
}

impl ClusterDelta {
    /// Total churn magnitude.
    pub fn magnitude(&self) -> usize {
        self.added + self.removed
    }
}

/// Compute the (class, node)-multiset delta between two clusters.
pub fn cluster_delta(old: &Cluster, new: &Cluster) -> ClusterDelta {
    let mut counts: HashMap<(GpuModel, usize), i64> = HashMap::new();
    for d in &old.devices {
        *counts.entry((d.gpu, d.node)).or_insert(0) -= 1;
    }
    for d in &new.devices {
        *counts.entry((d.gpu, d.node)).or_insert(0) += 1;
    }
    let added = counts.values().filter(|&&v| v > 0).sum::<i64>() as usize;
    let removed = -counts.values().filter(|&&v| v < 0).sum::<i64>() as usize;
    ClusterDelta { added, removed }
}

/// When the incremental planner may warm-start instead of solving cold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmStartConfig {
    /// Absolute churn (added + removed devices) always allowed to warm.
    pub max_abs_delta: usize,
    /// Fraction of the previous fleet the churn may reach and still warm.
    pub max_frac_delta: f64,
}

impl Default for WarmStartConfig {
    fn default() -> Self {
        // ±1–2 devices always warm; on big fleets up to a quarter may
        // churn before the repaired hint stops resembling the optimum.
        Self { max_abs_delta: 2, max_frac_delta: 0.25 }
    }
}

impl WarmStartConfig {
    /// Whether a delta against a previous fleet of `prev_len` devices is
    /// small enough to warm-start from.
    pub fn allows(&self, delta: ClusterDelta, prev_len: usize) -> bool {
        let cap = self
            .max_abs_delta
            .max((prev_len as f64 * self.max_frac_delta).floor() as usize);
        delta.magnitude() <= cap
    }
}

/// Work counters for one `plan` call (and cumulatively, if summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PlannerStats {
    /// Cost-model cache counters over this call.
    pub cost: CacheCounters,
    /// ω cache counters over this call.
    pub omega: CacheCounters,
    /// Plan-evaluation cache counters over this call.
    pub eval: CacheCounters,
    /// Uniform seed plans skipped via the makespan lower bound.
    pub seeds_pruned: u64,
    /// Uniform seed plans fully evaluated.
    pub seeds_evaluated: u64,
    /// Combos where a repaired hint seeded the solver incumbent.
    pub hints_applied: u64,
    /// Inner DP feasibility probes actually run.
    pub dp_calls: u64,
    /// Candidate (T_pre, T_dec) pairs pruned by the incumbent bound.
    pub pairs_pruned: u64,
}

/// One successful planning round.
#[derive(Debug, Clone)]
pub struct PlannedOutcome {
    /// The winning plan and its evaluation.
    pub outcome: AssignOutcome,
    /// Provenance of the plan.
    pub origin: PlanOrigin,
    /// Work counters for this round.
    pub stats: PlannerStats,
    /// Delta against the previously planned cluster, if any.
    pub delta: Option<ClusterDelta>,
}

impl PlannedOutcome {
    /// Objective value `latency + θ·Σω` given the θ it was planned with.
    pub fn objective(&self, theta: f64) -> f64 {
        self.outcome.report.total_latency + theta * self.outcome.omega_total
    }
}

/// A stateful planner that carries caches and the previous winning plan
/// across replans, warm-starting after small cluster deltas.
#[derive(Debug)]
pub struct IncrementalPlanner {
    spec: ModelSpec,
    job: BatchJob,
    cfg: AssignerConfig,
    warm_cfg: WarmStartConfig,
    cost: CostCache,
    eval: EvalCache,
    last: Option<(Cluster, ExecutionPlan)>,
}

impl IncrementalPlanner {
    /// A planner for one (model, job) pair under `cfg`.
    pub fn new(spec: ModelSpec, job: BatchJob, cfg: AssignerConfig) -> Self {
        Self::with_warm_config(spec, job, cfg, WarmStartConfig::default())
    }

    /// [`IncrementalPlanner::new`] with an explicit warm-start policy.
    pub fn with_warm_config(
        spec: ModelSpec,
        job: BatchJob,
        cfg: AssignerConfig,
        warm_cfg: WarmStartConfig,
    ) -> Self {
        Self {
            spec,
            job,
            cfg,
            warm_cfg,
            cost: CostCache::default(),
            eval: EvalCache::default(),
            last: None,
        }
    }

    /// The assigner configuration this planner runs.
    pub fn config(&self) -> &AssignerConfig {
        &self.cfg
    }

    /// The previous committed plan, if any.
    pub fn last_plan(&self) -> Option<&ExecutionPlan> {
        self.last.as_ref().map(|(_, p)| p)
    }

    /// Lifetime cost-cache counters.
    pub fn cost_counters(&self) -> CacheCounters {
        self.cost.layer_counters
    }

    /// Lifetime evaluation-cache counters.
    pub fn eval_counters(&self) -> CacheCounters {
        self.eval.counters
    }

    /// Number of memoized cost entries (for invalidation tests).
    pub fn cached_cost_entries(&self) -> usize {
        self.cost.len()
    }

    /// Forget caches and the previous plan.
    pub fn reset(&mut self) {
        self.cost.clear();
        self.eval.clear();
        self.last = None;
    }

    /// Plan for `cluster`, warm-starting from the previous round when
    /// the membership delta is small. On failure the previous plan is
    /// kept (the caller holds the old plan; [`IncrementalPlanner::last_plan`]
    /// still answers).
    pub fn plan(
        &mut self,
        cluster: &Cluster,
        db: &CostDb,
        indicator: &IndicatorTable,
    ) -> Result<PlannedOutcome, ReplanError> {
        if cluster.is_empty() {
            let total = self.last.as_ref().map_or(0, |(c, _)| c.len());
            return Err(ReplanError::AllDevicesLost { total });
        }
        let menu = bit_menu(&self.cfg).map_err(ReplanError::Config)?;
        self.cost.sync_db(db, &self.spec, cluster, &menu);

        let delta = self.last.as_ref().map(|(c, _)| cluster_delta(c, cluster));
        let warm_ok = matches!(self.cfg.solver, SolverChoice::Dp { .. })
            && delta.is_some_and(|d| {
                self.warm_cfg.allows(d, self.last.as_ref().map_or(0, |(c, _)| c.len()))
            });
        let prev = if warm_ok {
            self.last.as_ref().map(|(c, p)| (c.clone(), p.clone()))
        } else {
            None
        };

        let cost0 = self.cost.layer_counters;
        let omega0 = self.cost.omega_counters;
        let eval0 = self.eval.counters;
        let mut stats = PlannerStats::default();
        let primary = assign_warm(
            cluster,
            &self.spec,
            &self.job,
            db,
            indicator,
            &self.cfg,
            &menu,
            &mut self.cost,
            &mut self.eval,
            prev.as_ref().map(|(c, p)| (c, p)),
            &mut stats,
        );
        let (outcome, origin) = match primary {
            Ok(outcome) => {
                let origin = if stats.hints_applied > 0 {
                    PlanOrigin::WarmStart
                } else if matches!(self.cfg.solver, SolverChoice::Heuristic) {
                    PlanOrigin::Heuristic
                } else {
                    PlanOrigin::Ilp
                };
                (outcome, origin)
            }
            Err(primary) if !matches!(self.cfg.solver, SolverChoice::Heuristic) => {
                // Same ladder as `replan_after_loss`: retry once with the
                // always-feasible Algorithm-2 heuristic before declaring
                // the fleet infeasible.
                let fallback = AssignerConfig { solver: SolverChoice::Heuristic, ..self.cfg };
                let out = assign_warm(
                    cluster,
                    &self.spec,
                    &self.job,
                    db,
                    indicator,
                    &fallback,
                    &menu,
                    &mut self.cost,
                    &mut self.eval,
                    None,
                    &mut stats,
                )
                .map_err(|h| ReplanError::Infeasible {
                    devices: cluster.len(),
                    reason: format!("solver: {primary}; heuristic fallback: {h}"),
                })?;
                (out, PlanOrigin::Heuristic)
            }
            Err(e) => {
                return Err(ReplanError::Infeasible { devices: cluster.len(), reason: e });
            }
        };
        stats.cost = CacheCounters {
            hits: self.cost.layer_counters.hits - cost0.hits,
            misses: self.cost.layer_counters.misses - cost0.misses,
        };
        stats.omega = CacheCounters {
            hits: self.cost.omega_counters.hits - omega0.hits,
            misses: self.cost.omega_counters.misses - omega0.misses,
        };
        stats.eval = CacheCounters {
            hits: self.eval.counters.hits - eval0.hits,
            misses: self.eval.counters.misses - eval0.misses,
        };
        self.last = Some((cluster.clone(), outcome.plan.clone()));
        Ok(PlannedOutcome { outcome, origin, stats, delta })
    }
}

/// Repair the previous winning plan onto one (ordering, group-sizes)
/// combination of the new cluster, producing a group-level assignment
/// `(position-in-ordering, bit-index)` the solver can use as incumbent.
///
/// The previous stages are read off as runs of (device class, bitwidth)
/// and matched monotonically onto positions of the same class in the
/// new ordering; a run whose class has no position left folds into the
/// previously placed stage. The result is only a *hint* — the solver
/// validates it against the new problem's memory and feasibility
/// constraints and ignores it if it does not hold.
fn repair_hint(
    prev_cluster: &Cluster,
    prev_plan: &ExecutionPlan,
    cluster: &Cluster,
    ordering: &[usize],
    sizes: &[usize],
    menu: &[Bitwidth],
) -> Option<Vec<(usize, usize)>> {
    let new_types: Vec<GpuModel> = ordering.iter().map(|&i| cluster.devices[i].gpu).collect();
    // Desired (previous stage, class, bit) per layer group, read off the
    // previous winner. The stage index keeps two same-class devices that
    // held different shards from collapsing into one overloaded stage.
    let mut wanted: Vec<(usize, GpuModel, usize)> = Vec::with_capacity(sizes.len());
    let mut l0 = 0usize;
    for &gsz in sizes {
        let (si, s) = prev_plan
            .stages
            .iter()
            .enumerate()
            .find(|(_, s)| s.layer_start <= l0 && l0 < s.layer_end)?;
        let gpu = prev_cluster.devices.get(s.device)?.gpu;
        let bits = *s.bits.get(l0 - s.layer_start)?;
        let bit = menu.iter().position(|&b| b == bits)?;
        wanted.push((si, gpu, bit));
        l0 += gsz;
    }
    // Monotone walk of previous-stage runs onto the new ordering.
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(sizes.len());
    let mut next = 0usize;
    let mut placed: Option<(usize, usize)> = None;
    let mut g = 0usize;
    while g < wanted.len() {
        let (si, ty, bit) = wanted[g];
        let mut run = 1usize;
        while g + run < wanted.len() && wanted[g + run] == (si, ty, bit) {
            run += 1;
        }
        let slot = (next..new_types.len()).find(|&j| new_types[j] == ty);
        let cur = match (slot, placed) {
            (Some(j), _) => {
                next = j + 1;
                (j, bit)
            }
            (None, Some(prev)) => prev,
            (None, None) => {
                next = 1;
                (0, bit)
            }
        };
        placed = Some(cur);
        out.extend(std::iter::repeat_n(cur, run));
        g += run;
    }
    Some(out)
}

/// Sound lower bound on the simulated end-to-end latency of a plan with
/// per-stage times `pre`/`dec`, boundary comm times, and master-engine
/// times. Derived from the discrete-event semantics of
/// [`llmpq_sim::simulate_pipeline`]:
///
/// * the master is a serial resource doing 2 half-cost ops per
///   micro-batch per phase step;
/// * every stage is a serial FIFO resource;
/// * the last prefill micro-batch embeds after all others and must then
///   traverse the full chain;
/// * decode steps of one micro-batch are serialized by the
///   autoregressive dependency.
///
/// Every term is a valid lower bound on its own, so the max is too.
#[allow(clippy::too_many_arguments)]
fn makespan_lower_bound(
    pre: &[f64],
    dec: &[f64],
    comm_pre: &[f64],
    comm_dec: &[f64],
    master_pre: f64,
    master_dec: f64,
    mb: &MicrobatchPlan,
    n_generate: usize,
) -> f64 {
    let hm = master_pre / 2.0;
    let mup = mb.prefill_count as f64;
    let sum_pre: f64 = pre.iter().sum::<f64>() + comm_pre.iter().sum::<f64>();
    let max_pre = pre.iter().copied().fold(0.0f64, f64::max);
    let lb_last_mb = (mup + 1.0) * hm + sum_pre;
    let lb_straggler = 2.0 * hm + mup * max_pre;
    let lb_master = mup * master_pre;
    let prefill_lb = lb_last_mb.max(lb_straggler).max(lb_master);
    let decode_lb = if n_generate > 1 {
        let steps = ((n_generate - 1) * mb.decode_count) as f64;
        let per_mb = (n_generate - 1) as f64;
        let max_dec = dec.iter().copied().fold(0.0f64, f64::max);
        let sum_dec: f64 = dec.iter().sum::<f64>() + comm_dec.iter().sum::<f64>();
        (steps * max_dec)
            .max(steps * master_dec)
            .max(per_mb * (master_dec + sum_dec))
    } else {
        0.0
    };
    prefill_lb + decode_lb
}

/// The uniform seed plans `assign` evaluates after the combo loop: even
/// layer partition over all devices at one uniform bitwidth, per
/// micro-batch plan (FP16 KV). Returns `None` for shapes that produce
/// no stages.
fn seed_plan(
    cluster: &Cluster,
    spec: &ModelSpec,
    mb: MicrobatchPlan,
    bits: Bitwidth,
) -> Option<ExecutionPlan> {
    let n = cluster.len();
    let l = spec.n_layers;
    let base = l / n;
    let extra = l % n;
    let mut stages = Vec::with_capacity(n);
    let mut startl = 0usize;
    for j in 0..n {
        let take = base + usize::from(j < extra);
        if take == 0 {
            continue;
        }
        stages.push(StagePlan {
            device: j,
            layer_start: startl,
            layer_end: startl + take,
            bits: vec![bits; take],
        });
        startl += take;
    }
    if stages.is_empty() {
        return None;
    }
    Some(ExecutionPlan {
        model: spec.name.clone(),
        cluster: cluster.name.clone(),
        stages,
        microbatch: mb,
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    })
}

/// Algorithm 1 through the incremental machinery: identical enumeration
/// order and tie-breaking to [`crate::assign`], with memoized costs, an
/// optional repaired incumbent per combo, and lower-bound pruning of
/// the uniform seed pass. Returns the same best objective the cold path
/// would (the seed bound is sound; the incumbent only prunes candidates
/// that cannot beat it).
#[allow(clippy::too_many_arguments)]
fn assign_warm(
    cluster: &Cluster,
    spec: &ModelSpec,
    job: &BatchJob,
    db: &CostDb,
    indicator: &IndicatorTable,
    cfg: &AssignerConfig,
    menu: &[Bitwidth],
    cost: &mut CostCache,
    eval: &mut EvalCache,
    prev: Option<(&Cluster, &ExecutionPlan)>,
    stats: &mut PlannerStats,
) -> Result<AssignOutcome, String> {
    assert_eq!(
        indicator.n_layers(),
        spec.n_layers,
        "indicator must cover every decoder layer"
    );
    let start = std::time::Instant::now();
    let orderings = device_orderings(cluster, cfg.max_orderings);
    let mut best: Option<(ExecutionPlan, PlanReport, f64, f64)> = None;
    let mut combos = 0usize;

    let kv_options: Vec<u32> = if cfg.search_kv8 { vec![16, 8] } else { vec![16] };
    for ordering in &orderings {
        let mb_plans = microbatch_counts(job, ordering.len(), cfg.xi);
        for mb in &mb_plans {
            for &kv in &kv_options {
                combos += 1;
                let (group, sol) = match cfg.solver {
                    SolverChoice::Dp { group } => {
                        let (problem, _q, sizes) = build_problem_with_cache(
                            cluster, ordering, spec, job, db, Some(indicator), cfg.theta, mb,
                            group, menu, true, cfg.dp_grid, kv as f64, Some(cost),
                        );
                        let hint = prev.and_then(|(pc, pp)| {
                            repair_hint(pc, pp, cluster, ordering, &sizes, menu)
                        });
                        let (sol, sstats) =
                            solve_partition_warm_stats(&problem, hint.as_deref());
                        if sstats.incumbent_used {
                            stats.hints_applied += 1;
                        }
                        stats.dp_calls += sstats.dp_calls as u64;
                        stats.pairs_pruned += sstats.pruned as u64;
                        (sizes, sol)
                    }
                    SolverChoice::Heuristic => {
                        let (problem, q, sizes) = build_problem_with_cache(
                            cluster, ordering, spec, job, db, Some(indicator), cfg.theta, mb, 1,
                            menu, true, cfg.dp_grid, kv as f64, Some(cost),
                        );
                        (sizes, heuristic_solve(&problem, &q, 400))
                    }
                    SolverChoice::Ilp { group, time_limit_s } => {
                        let (problem, _q, sizes) = build_problem_with_cache(
                            cluster, ordering, spec, job, db, Some(indicator), cfg.theta, mb,
                            group, menu, true, cfg.dp_grid, kv as f64, Some(cost),
                        );
                        let milp_cfg = MilpConfig { time_limit_s, ..Default::default() };
                        (sizes, solve_ilp(&problem, &milp_cfg))
                    }
                };
                let Some(sol) = sol else { continue };
                let plan = solution_to_plan(
                    cluster, ordering, spec, &group, &sol, mb, "LLM-PQ", menu, kv,
                );
                let Ok(report) = eval.evaluate(&plan, cluster, spec, db, job) else {
                    continue;
                };
                let omega = indicator.total(&plan.bit_assignment().bits);
                let objective = report.total_latency + cfg.theta * omega;
                if best.as_ref().is_none_or(|(_, _, _, o)| objective < *o) {
                    best = Some((plan, report, omega, objective));
                }
            }
        }
    }

    // Uniform seed pass, with sound lower-bound pruning: a seed whose
    // provable makespan floor (plus its exactly computable ω term)
    // cannot beat the best objective found so far cannot change the
    // winner under the assigner's strict-improvement rule, so its full
    // evaluation is skipped.
    let pre_w = |mb: &MicrobatchPlan| PhaseWorkload::prefill(mb.prefill_size, job.prompt_len);
    let dec_w = |mb: &MicrobatchPlan| {
        PhaseWorkload::decode(mb.decode_size, job.prompt_len, representative_past(job))
    };
    for mb in microbatch_counts(job, cluster.len(), cfg.xi) {
        for bits in menu.iter().copied() {
            let Some(plan) = seed_plan(cluster, spec, mb, bits) else { continue };
            let omega = indicator.total(&plan.bit_assignment().bits);
            if let Some((_, _, _, best_obj)) = best.as_ref() {
                let pw = pre_w(&mb);
                let dw = dec_w(&mb);
                let n_stages = plan.stages.len();
                let mut pre = Vec::with_capacity(n_stages);
                let mut dec = Vec::with_capacity(n_stages);
                let mut comm_pre = Vec::new();
                let mut comm_dec = Vec::new();
                for (i, s) in plan.stages.iter().enumerate() {
                    let gpu = cluster.devices[s.device].gpu;
                    let take = (s.layer_end - s.layer_start) as f64;
                    pre.push(take * cost.layer_latency(db, gpu, spec, &pw, bits, 16.0));
                    dec.push(take * cost.layer_latency(db, gpu, spec, &dw, bits, 16.0));
                    if i + 1 < n_stages {
                        let link = cluster.link_between(s.device, plan.stages[i + 1].device);
                        comm_pre
                            .push(link.transfer_time(flops::boundary_activation_bytes(spec, &pw)));
                        comm_dec
                            .push(link.transfer_time(flops::boundary_activation_bytes(spec, &dw)));
                    }
                }
                let first_gpu = cluster.devices[plan.stages[0].device].gpu;
                let master_pre = cost.master_latency(db, first_gpu, spec, &pw);
                let master_dec = cost.master_latency(db, first_gpu, spec, &dw);
                let lb = makespan_lower_bound(
                    &pre, &dec, &comm_pre, &comm_dec, master_pre, master_dec, &mb,
                    job.n_generate,
                );
                if lb + cfg.theta * omega >= *best_obj {
                    stats.seeds_pruned += 1;
                    continue;
                }
            }
            stats.seeds_evaluated += 1;
            let Ok(report) = eval.evaluate(&plan, cluster, spec, db, job) else {
                continue;
            };
            let objective = report.total_latency + cfg.theta * omega;
            if best.as_ref().is_none_or(|(_, _, _, o)| objective < *o) {
                best = Some((plan, report, omega, objective));
            }
        }
    }

    let (plan, report, omega, _) =
        best.ok_or_else(|| "no feasible plan: model cannot fit this cluster".to_string())?;
    Ok(AssignOutcome {
        plan,
        report,
        omega_total: omega,
        overhead_s: start.elapsed().as_secs_f64(),
        combinations: combos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assigner::assign;
    use llmpq_cluster::{Interconnect, paper_cluster};
    use llmpq_model::zoo;
    use llmpq_sim::KernelEnv;

    fn synthetic_indicator(n_layers: usize) -> IndicatorTable {
        IndicatorTable {
            omega: (0..n_layers)
                .map(|l| {
                    let base = 1.0 / (1.0 + l as f64 * 0.15);
                    [base, base * 0.22, base * 0.01, 0.0]
                })
                .collect(),
        }
    }

    fn quick_cfg() -> AssignerConfig {
        AssignerConfig {
            theta: 0.1,
            solver: SolverChoice::Dp { group: 8 },
            xi: 2,
            max_orderings: 2,
            dp_grid: Some(8),
            search_kv8: false,
            max_bits: None,
        }
    }

    fn objective(out: &AssignOutcome, theta: f64) -> f64 {
        out.report.total_latency + theta * out.omega_total
    }

    #[test]
    fn warm_assign_matches_cold_assign_exactly() {
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob::paper_default();
        let ind = synthetic_indicator(spec.n_layers);
        let cfg = quick_cfg();
        let cold = assign(&cluster, &spec, &job, &db, &ind, &cfg).expect("cold");
        let mut planner = IncrementalPlanner::new(spec.clone(), job, cfg.clone());
        let first = planner.plan(&cluster, &db, &ind).expect("first plan");
        assert_eq!(first.origin, PlanOrigin::Ilp, "no previous plan to warm from");
        assert!(
            (objective(&first.outcome, cfg.theta) - objective(&cold, cfg.theta)).abs() < 1e-9,
            "first incremental plan must equal cold assign"
        );
        // Replanning the *same* cluster warm-starts and still matches.
        let second = planner.plan(&cluster, &db, &ind).expect("second plan");
        assert_eq!(second.origin, PlanOrigin::WarmStart);
        assert!(
            objective(&second.outcome, cfg.theta) <= objective(&cold, cfg.theta) + 1e-9,
            "warm replan must not regress the cold objective"
        );
        assert!(second.stats.eval.hits > 0, "second round should reuse evaluations");
    }

    #[test]
    fn warm_replan_after_loss_matches_cold_solve_on_survivors() {
        let cluster = paper_cluster(5); // 4×T4 + 2×V100
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob::paper_default();
        let ind = synthetic_indicator(spec.n_layers);
        let cfg = quick_cfg();
        let mut planner = IncrementalPlanner::new(spec.clone(), job, cfg.clone());
        planner.plan(&cluster, &db, &ind).expect("initial plan");
        let (survivors, _) = cluster.without_devices(&[1]);
        let warm = planner.plan(&survivors, &db, &ind).expect("warm replan");
        assert_eq!(warm.origin, PlanOrigin::WarmStart);
        assert_eq!(warm.delta, Some(ClusterDelta { added: 0, removed: 1 }));
        let cold = assign(&survivors, &spec, &job, &db, &ind, &cfg).expect("cold");
        let wo = objective(&warm.outcome, cfg.theta);
        let co = objective(&cold, cfg.theta);
        assert!(
            wo <= co + 1e-9,
            "warm {wo} must not regress cold {co} on the surviving cluster"
        );
        assert!(warm.stats.cost.hits > 0, "cost cache must be reused across the delta");
    }

    #[test]
    fn large_delta_falls_back_to_cold_origin() {
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob::paper_default();
        let ind = synthetic_indicator(spec.n_layers);
        let cfg = quick_cfg();
        let mut planner = IncrementalPlanner::new(spec, job, cfg);
        let big = paper_cluster(5); // 6 devices
        planner.plan(&big, &db, &ind).expect("initial plan");
        // Lose 4 of 6 devices: far beyond the warm-start policy.
        let (survivors, _) = big.without_devices(&[0, 1, 2, 3]);
        let replanned = planner.plan(&survivors, &db, &ind).expect("cold replan");
        assert_eq!(replanned.origin, PlanOrigin::Ilp);
        assert_eq!(replanned.stats.hints_applied, 0);
    }

    #[test]
    fn empty_cluster_is_a_typed_error() {
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob::paper_default();
        let ind = synthetic_indicator(spec.n_layers);
        let mut planner = IncrementalPlanner::new(spec, job, quick_cfg());
        let cluster = paper_cluster(3);
        planner.plan(&cluster, &db, &ind).expect("plan");
        let (empty, _) = cluster.without_devices(&[0, 1, 2, 3]);
        match planner.plan(&empty, &db, &ind) {
            Err(ReplanError::AllDevicesLost { total: 4 }) => {}
            other => panic!("expected AllDevicesLost, got {other:?}"),
        }
        // The previous plan is held.
        assert!(planner.last_plan().is_some());
    }

    #[test]
    fn memory_infeasible_fleet_is_a_typed_error_and_old_plan_held() {
        let spec = zoo::opt_175b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob::paper_default();
        let ind = synthetic_indicator(spec.n_layers);
        let mut planner = IncrementalPlanner::new(spec, job, quick_cfg());
        // 175b fits nowhere on a single T4, even at 3 bits.
        let tiny = Cluster::from_groups(
            "tiny",
            &[(GpuModel::T4_16G, 1)],
            Interconnect::Ethernet100G,
            None,
        );
        match planner.plan(&tiny, &db, &ind) {
            Err(ReplanError::Infeasible { devices: 1, .. }) => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }
        assert!(planner.last_plan().is_none());
    }

    #[test]
    fn seed_lower_bound_never_exceeds_simulated_latency() {
        // The pruning bound must be sound: LB ≤ DES latency for every
        // seed shape on a real cluster.
        let cluster = paper_cluster(5);
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob::paper_default();
        let mut cost = CostCache::default();
        for mb in microbatch_counts(&job, cluster.len(), 4) {
            for bits in Bitwidth::ALL {
                let Some(plan) = seed_plan(&cluster, &spec, mb, bits) else { continue };
                let Ok(report) = evaluate_plan(&plan, &cluster, &spec, &db, &job) else {
                    continue;
                };
                let pw = PhaseWorkload::prefill(mb.prefill_size, job.prompt_len);
                let dw = PhaseWorkload::decode(
                    mb.decode_size,
                    job.prompt_len,
                    representative_past(&job),
                );
                let mut pre = Vec::new();
                let mut dec = Vec::new();
                let mut comm_pre = Vec::new();
                let mut comm_dec = Vec::new();
                for (i, s) in plan.stages.iter().enumerate() {
                    let gpu = cluster.devices[s.device].gpu;
                    let take = (s.layer_end - s.layer_start) as f64;
                    pre.push(take * cost.layer_latency(&db, gpu, &spec, &pw, bits, 16.0));
                    dec.push(take * cost.layer_latency(&db, gpu, &spec, &dw, bits, 16.0));
                    if i + 1 < plan.stages.len() {
                        let link = cluster.link_between(s.device, plan.stages[i + 1].device);
                        comm_pre.push(
                            link.transfer_time(flops::boundary_activation_bytes(&spec, &pw)),
                        );
                        comm_dec.push(
                            link.transfer_time(flops::boundary_activation_bytes(&spec, &dw)),
                        );
                    }
                }
                let g0 = cluster.devices[plan.stages[0].device].gpu;
                let master_pre = cost.master_latency(&db, g0, &spec, &pw);
                let master_dec = cost.master_latency(&db, g0, &spec, &dw);
                let lb = makespan_lower_bound(
                    &pre, &dec, &comm_pre, &comm_dec, master_pre, master_dec, &mb,
                    job.n_generate,
                );
                assert!(
                    lb <= report.total_latency + 1e-9,
                    "LB {lb} exceeds simulated {} for mb {mb:?} bits {bits:?}",
                    report.total_latency
                );
            }
        }
    }

    #[test]
    fn cluster_delta_counts_multiset_changes() {
        let a = paper_cluster(3); // 3×T4 @node0 + 1×V100 @node1
        let (b, _) = a.without_devices(&[0]);
        assert_eq!(cluster_delta(&a, &b), ClusterDelta { added: 0, removed: 1 });
        assert_eq!(cluster_delta(&b, &a), ClusterDelta { added: 1, removed: 0 });
        assert_eq!(cluster_delta(&a, &a), ClusterDelta::default());
        let c = Cluster::from_groups(
            "other",
            &[(GpuModel::A100_40G, 2)],
            Interconnect::Ethernet800G,
            None,
        );
        let d = cluster_delta(&a, &c);
        assert_eq!(d, ClusterDelta { added: 2, removed: 4 });
        assert_eq!(d.magnitude(), 6);
    }

    #[test]
    fn eval_cache_fingerprint_is_structural() {
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob::paper_default();
        let mb = MicrobatchPlan {
            prefill_size: 2,
            prefill_count: 16,
            decode_size: 8,
            decode_count: 4,
        };
        let plan = seed_plan(&cluster, &spec, mb, Bitwidth::Int4).unwrap();
        let mut cache = EvalCache::default();
        let r1 = cache.evaluate(&plan, &cluster, &spec, &db, &job).expect("ok");
        assert_eq!(cache.counters, CacheCounters { hits: 0, misses: 1 });
        let r2 = cache.evaluate(&plan, &cluster, &spec, &db, &job).expect("ok");
        assert_eq!(cache.counters, CacheCounters { hits: 1, misses: 1 });
        assert_eq!(r1, r2);
        // A different precision is a different structure → miss.
        let other = seed_plan(&cluster, &spec, mb, Bitwidth::Int8).unwrap();
        let _ = cache.evaluate(&other, &cluster, &spec, &db, &job);
        assert_eq!(cache.counters.misses, 2);
    }

    #[test]
    fn cost_cache_invalidates_on_db_swap() {
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let menu = Bitwidth::ALL.to_vec();
        let db1 = CostDb::oracle(&KernelEnv::default());
        let mut cache = CostCache::default();
        cache.sync_db(&db1, &spec, &cluster, &menu);
        let w = PhaseWorkload::prefill(2, 128);
        cache.layer_latency(&db1, GpuModel::T4_16G, &spec, &w, Bitwidth::Int4, 16.0);
        assert_eq!(cache.len(), 1);
        // Same DB: cache survives.
        cache.sync_db(&db1, &spec, &cluster, &menu);
        assert_eq!(cache.len(), 1);
        // A different kernel environment changes the answers: cleared.
        let env2 = KernelEnv { max_mfu: 0.1, ..KernelEnv::default() };
        let db2 = CostDb::oracle(&env2);
        cache.sync_db(&db2, &spec, &cluster, &menu);
        assert_eq!(cache.len(), 0, "db swap must invalidate the cache");
    }

    #[test]
    fn repair_hint_survives_device_loss() {
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob::paper_default();
        let ind = synthetic_indicator(spec.n_layers);
        let cfg = quick_cfg();
        let cold = assign(&cluster, &spec, &job, &db, &ind, &cfg).expect("cold");
        let (survivors, _) = cluster.without_devices(&[0]);
        let menu = Bitwidth::ALL.to_vec();
        let orderings = device_orderings(&survivors, 2);
        let sizes: Vec<usize> = {
            // group 8 over the 30b layer count
            let mut v = Vec::new();
            let mut left = spec.n_layers;
            while left > 0 {
                let t = 8.min(left);
                v.push(t);
                left -= t;
            }
            v
        };
        let hint = repair_hint(&cluster, &cold.plan, &survivors, &orderings[0], &sizes, &menu)
            .expect("repairable");
        assert_eq!(hint.len(), sizes.len());
        // Positions are non-decreasing and in range.
        for w in hint.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for &(p, b) in &hint {
            assert!(p < survivors.len());
            assert!(b < menu.len());
        }
    }
}

