//! Replanning after permanent device loss.
//!
//! When the runtime supervisor reports a device as permanently gone, the
//! remaining cluster is a *new* (smaller, usually still heterogeneous)
//! cluster — exactly the input Algorithm 1 was built for. This module
//! re-runs the assigner on the survivors and translates the resulting
//! plan back into the original cluster's device numbering, so the
//! runtime can keep addressing devices by their stable ids.
//!
//! The shrunken cluster may no longer fit the old precision mix; the
//! assigner's inner solver then degrades bitwidths via the Algorithm-2
//! transfer rules (or the DP's precision dimension) just as it would for
//! a fresh plan. If the configured solver fails on the degraded
//! topology, we retry once with the always-feasible Algorithm-2
//! heuristic before giving up.

use crate::assigner::assign;
use crate::config::{AssignerConfig, SolverChoice};
use crate::incremental::{PlanOrigin, ReplanError};
use crate::plan::ExecutionPlan;
use llmpq_cluster::Cluster;
use llmpq_cost::CostDb;
use llmpq_model::ModelSpec;
use llmpq_quant::IndicatorTable;
use llmpq_workload::BatchJob;

/// Outcome of a replan, with provenance for the supervisor's log.
#[derive(Debug, Clone)]
pub struct ReplanOutcome {
    /// The new plan, in *original* cluster device ids.
    pub plan: ExecutionPlan,
    /// The surviving sub-cluster the plan was computed on.
    pub surviving: Cluster,
    /// Where the plan came from: the configured exact solver, or the
    /// Algorithm-2 heuristic after the solver failed. Telemetry and the
    /// `llmpq-dist` end-of-run summary surface this so operators can
    /// see degraded planning quality.
    pub origin: PlanOrigin,
    /// Assigner wall-clock, seconds (the recovery-path "Overhead").
    pub overhead_s: f64,
}

impl ReplanOutcome {
    /// Whether the configured solver failed and the Algorithm-2
    /// heuristic produced the plan instead.
    pub fn fell_back_to_heuristic(&self) -> bool {
        self.origin == PlanOrigin::Heuristic
    }
}

/// Re-run Algorithm 1 on `cluster` minus `lost_devices` and remap the
/// winning plan's device ids back to `cluster`'s numbering.
///
/// Errors (typed, never panics) if every device is lost
/// ([`ReplanError::AllDevicesLost`]) or if neither the configured
/// solver nor the heuristic fallback can fit the model on the
/// survivors ([`ReplanError::Infeasible`]).
pub fn replan_after_loss(
    cluster: &Cluster,
    lost_devices: &[usize],
    spec: &ModelSpec,
    job: &BatchJob,
    db: &CostDb,
    indicator: &IndicatorTable,
    cfg: &AssignerConfig,
) -> Result<ReplanOutcome, ReplanError> {
    let (surviving, new_to_old) = cluster.without_devices(lost_devices);
    if surviving.is_empty() {
        return Err(ReplanError::AllDevicesLost { total: cluster.len() });
    }
    let mut origin = match cfg.solver {
        SolverChoice::Heuristic => PlanOrigin::Heuristic,
        _ => PlanOrigin::Ilp,
    };
    let outcome = match assign(&surviving, spec, job, db, indicator, cfg) {
        Ok(o) => o,
        Err(primary) => {
            if matches!(cfg.solver, SolverChoice::Heuristic) {
                return Err(ReplanError::Infeasible {
                    devices: surviving.len(),
                    reason: primary,
                });
            }
            origin = PlanOrigin::Heuristic;
            let fallback = AssignerConfig { solver: SolverChoice::Heuristic, ..*cfg };
            assign(&surviving, spec, job, db, indicator, &fallback).map_err(|h| {
                ReplanError::Infeasible {
                    devices: surviving.len(),
                    reason: format!("solver: {primary}; heuristic fallback: {h}"),
                }
            })?
        }
    };
    let mut plan = outcome.plan;
    for stage in &mut plan.stages {
        stage.device = new_to_old[stage.device];
    }
    plan.cluster = cluster.name.clone();
    Ok(ReplanOutcome {
        plan,
        surviving,
        origin,
        overhead_s: outcome.overhead_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_cluster::{GpuModel, Interconnect};
    use llmpq_model::{ModelFamily, ModelSpec};
    use llmpq_quant::IndicatorTable;
    use llmpq_sim::KernelEnv;

    fn tiny_spec() -> ModelSpec {
        ModelSpec::new(ModelFamily::Opt, "tiny-4l", 4, 64, 4, 256, 128)
    }

    fn tiny_indicator(n_layers: usize) -> IndicatorTable {
        IndicatorTable {
            omega: (0..n_layers)
                .map(|l| {
                    let base = 1.0 / (1.0 + l as f64);
                    [base, base * 0.2, base * 0.01, 0.0]
                })
                .collect(),
        }
    }

    fn three_device_cluster() -> Cluster {
        Cluster::from_groups(
            "trio",
            &[(GpuModel::T4_16G, 2), (GpuModel::V100_32G, 1)],
            Interconnect::Ethernet800G,
            None,
        )
    }

    fn quick_cfg() -> AssignerConfig {
        AssignerConfig {
            theta: 0.05,
            solver: SolverChoice::Dp { group: 1 },
            xi: 2,
            max_orderings: 2,
            dp_grid: Some(8),
            search_kv8: false,
            max_bits: None,
        }
    }

    #[test]
    fn replan_avoids_lost_device_and_uses_original_ids() {
        let cluster = three_device_cluster();
        let spec = tiny_spec();
        let job = llmpq_workload::BatchJob { global_batch: 4, prompt_len: 8, n_generate: 5 };
        let db = CostDb::oracle(&KernelEnv::default());
        let ind = tiny_indicator(spec.n_layers);
        let out =
            replan_after_loss(&cluster, &[1], &spec, &job, &db, &ind, &quick_cfg()).expect("replan");
        out.plan.validate(spec.n_layers).expect("valid plan");
        assert_eq!(out.surviving.len(), 2);
        for s in &out.plan.stages {
            assert_ne!(s.device, 1, "lost device must not appear");
            assert!(s.device < 3, "ids are in the original numbering");
        }
        // Device 2 (the V100) survives under its original id.
        assert!(out.plan.stages.iter().any(|s| s.device == 2));
        assert_eq!(out.plan.cluster, "trio");
    }

    #[test]
    fn replan_to_single_survivor_still_plans() {
        let cluster = three_device_cluster();
        let spec = tiny_spec();
        let job = llmpq_workload::BatchJob { global_batch: 4, prompt_len: 8, n_generate: 5 };
        let db = CostDb::oracle(&KernelEnv::default());
        let ind = tiny_indicator(spec.n_layers);
        let out = replan_after_loss(&cluster, &[0, 1], &spec, &job, &db, &ind, &quick_cfg())
            .expect("replan onto the lone V100");
        out.plan.validate(spec.n_layers).expect("valid plan");
        assert_eq!(out.plan.stages.len(), 1);
        assert_eq!(out.plan.stages[0].device, 2);
    }

    #[test]
    fn replan_with_everything_lost_errors() {
        let cluster = three_device_cluster();
        let spec = tiny_spec();
        let job = llmpq_workload::BatchJob { global_batch: 4, prompt_len: 8, n_generate: 5 };
        let db = CostDb::oracle(&KernelEnv::default());
        let ind = tiny_indicator(spec.n_layers);
        let err = replan_after_loss(&cluster, &[0, 1, 2], &spec, &job, &db, &ind, &quick_cfg())
            .unwrap_err();
        assert_eq!(err, ReplanError::AllDevicesLost { total: 3 });
        assert!(err.to_string().contains("all 3 devices lost"), "{err}");
    }
}
