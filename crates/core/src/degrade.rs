//! Precomputed degradation ladders for overload graceful degradation.
//!
//! LLM-PQ's adaptive quantization gives the serving runtime a quality ↔
//! throughput lever for free: re-running Algorithm 1 with the bitwidth
//! menu capped from above yields a plan that trades model quality (the
//! ω indicator total rises) for a faster, lighter pipeline. This module
//! precomputes that ladder *offline* — one assigner run per cap — so
//! that under sustained overload the runtime's degradation controller
//! (`runtime::overload`) can step down rung by rung without solving
//! anything on the serving path, and step back up when pressure clears.
//!
//! Rung 0 is always the uncapped (normal-quality) plan. Each subsequent
//! rung must *strictly improve predicted batch latency* over the rung
//! before it — caps that only hurt quality without buying throughput are
//! dropped, so walking down the ladder is monotone in both coordinates:
//! latency falls, quality cost (ω total) rises or stays equal.

use crate::assigner::assign;
use crate::config::AssignerConfig;
use crate::evaluate::PlanReport;
use crate::plan::ExecutionPlan;
use llmpq_cluster::Cluster;
use llmpq_cost::CostDb;
use llmpq_model::ModelSpec;
use llmpq_quant::{Bitwidth, IndicatorTable};
use llmpq_workload::BatchJob;
use serde::{Deserialize, Serialize};

/// The default cap sequence: uncapped, then everything at INT8 or
/// below, then INT4, then INT3 (the harshest plan the paper's menu
/// allows).
pub const DEFAULT_CAPS: [Option<Bitwidth>; 4] =
    [None, Some(Bitwidth::Int8), Some(Bitwidth::Int4), Some(Bitwidth::Int3)];

/// One rung of a degradation ladder: a full execution plan plus the
/// planner's prediction of what stepping onto it costs and buys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LadderRung {
    /// Human-readable cap label ("fp16", "int8", …).
    pub label: String,
    /// Bitwidth cap this rung was solved under (`None` = uncapped).
    pub cap: Option<Bitwidth>,
    /// The plan to serve with at this rung.
    pub plan: ExecutionPlan,
    /// Predicted end-to-end batch latency, seconds.
    pub predicted_latency_s: f64,
    /// ω-based quality cost of the rung: the indicator total of the
    /// plan's bit assignment (0 would be a lossless plan; higher means
    /// more quality degradation).
    pub quality_cost: f64,
    /// Mean bits per layer — a coarser quality proxy for dashboards.
    pub mean_bits: f64,
}

/// A precomputed degradation ladder, rung 0 = normal quality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationLadder {
    /// Rungs ordered best-quality first, fastest last.
    pub rungs: Vec<LadderRung>,
}

impl DegradationLadder {
    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// Whether the ladder has no rungs (never true for a ladder built
    /// by [`degradation_ladder`]).
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// Serialize to pretty JSON (the `--degrade-ladder <file>` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ladder serializes")
    }

    /// Parse from JSON, validating every rung's plan against the model.
    pub fn from_json(s: &str, n_layers: usize) -> Result<Self, String> {
        let ladder: DegradationLadder =
            serde_json::from_str(s).map_err(|e| format!("ladder JSON: {e}"))?;
        if ladder.rungs.is_empty() {
            return Err("ladder has no rungs".into());
        }
        for (i, rung) in ladder.rungs.iter().enumerate() {
            rung.plan.validate(n_layers).map_err(|e| format!("rung {i}: {e}"))?;
        }
        Ok(ladder)
    }
}

fn cap_label(cap: Option<Bitwidth>) -> String {
    match cap {
        None => "fp16".into(),
        Some(b) => format!("{:?}", b).to_lowercase(),
    }
}

fn rung_from(cap: Option<Bitwidth>, plan: ExecutionPlan, report: &PlanReport, omega: f64) -> LadderRung {
    LadderRung {
        label: cap_label(cap),
        cap,
        predicted_latency_s: report.total_latency,
        quality_cost: omega,
        mean_bits: report.mean_bits,
        plan,
    }
}

/// Precompute a degradation ladder by re-running Algorithm 1 with the
/// bitwidth menu capped at each entry of `caps` (use [`DEFAULT_CAPS`]
/// unless you have a reason not to).
///
/// The first cap (normally `None`) produces rung 0 and must solve;
/// later caps are skipped if the solver fails under them (e.g. the
/// capped plan no longer fits memory) or if they don't strictly improve
/// predicted latency over the previous rung. Errors only if rung 0
/// itself cannot be planned.
pub fn degradation_ladder(
    cluster: &Cluster,
    spec: &ModelSpec,
    job: &BatchJob,
    db: &CostDb,
    indicator: &IndicatorTable,
    cfg: &AssignerConfig,
    caps: &[Option<Bitwidth>],
) -> Result<DegradationLadder, String> {
    let caps = if caps.is_empty() { &DEFAULT_CAPS[..] } else { caps };
    let mut rungs: Vec<LadderRung> = Vec::new();
    for (i, &cap) in caps.iter().enumerate() {
        // Combine with any cap already present in cfg: the tighter wins.
        let combined = match (cfg.max_bits, cap) {
            (Some(a), Some(b)) => Some(if a.bits() <= b.bits() { a } else { b }),
            (a, b) => a.or(b),
        };
        let capped = AssignerConfig { max_bits: combined, ..*cfg };
        let outcome = match assign(cluster, spec, job, db, indicator, &capped) {
            Ok(o) => o,
            Err(e) if i == 0 => return Err(format!("ladder rung 0 ({}): {e}", cap_label(cap))),
            Err(_) => continue,
        };
        let candidate = rung_from(cap, outcome.plan, &outcome.report, outcome.omega_total);
        match rungs.last() {
            // Keep only rungs that actually buy throughput; identical or
            // slower plans would make a downgrade pure quality loss.
            Some(prev) if candidate.predicted_latency_s >= prev.predicted_latency_s => continue,
            _ => rungs.push(candidate),
        }
    }
    Ok(DegradationLadder { rungs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverChoice;
    use llmpq_cluster::{GpuModel, Interconnect};
    use llmpq_model::{ModelFamily, ModelSpec};
    use llmpq_sim::KernelEnv;

    fn tiny_spec() -> ModelSpec {
        ModelSpec::new(ModelFamily::Opt, "tiny-4l", 4, 64, 4, 256, 128)
    }

    fn tiny_indicator(n_layers: usize) -> IndicatorTable {
        IndicatorTable {
            omega: (0..n_layers)
                .map(|l| {
                    let base = 1.0 / (1.0 + l as f64);
                    [base, base * 0.2, base * 0.01, 0.0]
                })
                .collect(),
        }
    }

    fn duo() -> Cluster {
        Cluster::from_groups(
            "duo",
            &[(GpuModel::T4_16G, 1), (GpuModel::V100_32G, 1)],
            Interconnect::Ethernet800G,
            None,
        )
    }

    fn quick_cfg() -> AssignerConfig {
        AssignerConfig {
            theta: 0.05,
            solver: SolverChoice::Dp { group: 1 },
            xi: 2,
            max_orderings: 2,
            dp_grid: Some(8),
            search_kv8: false,
            max_bits: None,
        }
    }

    fn job() -> BatchJob {
        BatchJob { global_batch: 4, prompt_len: 8, n_generate: 5 }
    }

    #[test]
    fn ladder_is_monotone_in_latency_and_quality() {
        let cluster = duo();
        let spec = tiny_spec();
        let db = CostDb::oracle(&KernelEnv::default());
        let ind = tiny_indicator(spec.n_layers);
        let ladder =
            degradation_ladder(&cluster, &spec, &job(), &db, &ind, &quick_cfg(), &DEFAULT_CAPS)
                .expect("ladder");
        assert!(!ladder.is_empty());
        assert_eq!(ladder.rungs[0].label, "fp16");
        for w in ladder.rungs.windows(2) {
            assert!(
                w[1].predicted_latency_s < w[0].predicted_latency_s,
                "each rung must buy latency: {} → {}",
                w[0].predicted_latency_s,
                w[1].predicted_latency_s
            );
            assert!(
                w[1].quality_cost >= w[0].quality_cost - 1e-12,
                "stepping down must not improve quality"
            );
        }
        for rung in &ladder.rungs {
            rung.plan.validate(spec.n_layers).expect("rung plan valid");
            if let Some(cap) = rung.cap {
                let max = rung
                    .plan
                    .bit_assignment()
                    .bits
                    .iter()
                    .map(|b| b.bits())
                    .max()
                    .unwrap();
                assert!(max <= cap.bits(), "rung {} violates its cap", rung.label);
            }
        }
    }

    #[test]
    fn ladder_round_trips_through_json() {
        let cluster = duo();
        let spec = tiny_spec();
        let db = CostDb::oracle(&KernelEnv::default());
        let ind = tiny_indicator(spec.n_layers);
        let ladder =
            degradation_ladder(&cluster, &spec, &job(), &db, &ind, &quick_cfg(), &DEFAULT_CAPS)
                .expect("ladder");
        let back = DegradationLadder::from_json(&ladder.to_json(), spec.n_layers).expect("parse");
        assert_eq!(back.len(), ladder.len());
        for (a, b) in back.rungs.iter().zip(&ladder.rungs) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.plan, b.plan);
        }
    }

    #[test]
    fn from_json_rejects_mismatched_plans() {
        let cluster = duo();
        let spec = tiny_spec();
        let db = CostDb::oracle(&KernelEnv::default());
        let ind = tiny_indicator(spec.n_layers);
        let ladder =
            degradation_ladder(&cluster, &spec, &job(), &db, &ind, &quick_cfg(), &DEFAULT_CAPS)
                .expect("ladder");
        // Claim the model has a different layer count: every rung's plan
        // must fail validation.
        assert!(DegradationLadder::from_json(&ladder.to_json(), spec.n_layers + 1).is_err());
        assert!(DegradationLadder::from_json("{\"rungs\":[]}", spec.n_layers).is_err());
    }

    #[test]
    fn existing_cap_combines_with_rung_caps() {
        let cluster = duo();
        let spec = tiny_spec();
        let db = CostDb::oracle(&KernelEnv::default());
        let ind = tiny_indicator(spec.n_layers);
        let cfg = AssignerConfig { max_bits: Some(Bitwidth::Int8), ..quick_cfg() };
        let ladder = degradation_ladder(&cluster, &spec, &job(), &db, &ind, &cfg, &DEFAULT_CAPS)
            .expect("ladder");
        for rung in &ladder.rungs {
            let max =
                rung.plan.bit_assignment().bits.iter().map(|b| b.bits()).max().unwrap();
            assert!(max <= 8, "global int8 cap must bound every rung, got {max} bits");
        }
    }
}
