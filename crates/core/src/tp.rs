//! Tensor-parallel mesh search (paper §7).
//!
//! "Given 2 nodes with 8 GPUs per node we can represent them as a device
//! mesh of size 2×8, 1×16, 4×4 … As the possible device mesh is
//! limited, it is similar to how we enumerate all possible 1-D device
//! orderings … we can view the device along the tensor-parallel
//! dimension as a new device with larger memory and different kernel
//! performance, and it is still a 1-D partition problem along another
//! axis, which conforms to our solutions."
//!
//! This module does exactly that: enumerate uniform TP widths that
//! divide every same-node device group, fold each TP group into one
//! *virtual pipeline device* (memory ×width, TP-adjusted kernel times,
//! all-reduce overhead), and run the same partition solver over the
//! virtual chain.

use crate::evaluate::representative_past;
use llmpq_cluster::Cluster;
use llmpq_model::{flops, ModelSpec, Phase, PhaseWorkload};
use llmpq_quant::{Bitwidth, IndicatorTable};
use llmpq_sim::{
    layer_workspace_bytes, simulate_pipeline, tp_layer_latency, KernelEnv, PipelineWorkload,
    StageLoad, TpGroup,
};
use llmpq_solver::{solve_partition, PartitionProblem, PartitionSolution};
use llmpq_workload::{microbatch_counts, BatchJob, MicrobatchPlan};
use serde::{Deserialize, Serialize};

/// Allocator block granularity mirrored from the memory cost model.
const BLOCK: f64 = 2.0 * 1024.0 * 1024.0;

fn round_block(bytes: f64) -> f64 {
    (bytes / BLOCK).ceil() * BLOCK
}

/// One virtual pipeline device: a TP group of identical GPUs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualDevice {
    /// Member device indices in the underlying cluster.
    pub members: Vec<usize>,
    /// Node hosting the group (TP stays intra-node).
    pub node: usize,
}

/// Result of planning at one TP width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpOutcome {
    /// Uniform TP width used.
    pub tp_width: usize,
    /// Number of (non-empty) pipeline stages.
    pub n_stages: usize,
    /// Predicted end-to-end batch latency, seconds.
    pub total_latency: f64,
    /// Token throughput, tokens/second.
    pub throughput: f64,
    /// Mean bits of the winning assignment.
    pub mean_bits: f64,
    /// Micro-batch plan chosen.
    pub microbatch: MicrobatchPlan,
}

/// TP widths valid for this cluster: powers of two dividing every
/// same-node device-group size (TP requires identical devices sharing a
/// node).
pub fn candidate_tp_widths(cluster: &Cluster) -> Vec<usize> {
    let mut group_sizes: Vec<usize> = Vec::new();
    let mut counts = std::collections::HashMap::new();
    for d in &cluster.devices {
        *counts.entry((d.node, d.gpu)).or_insert(0usize) += 1;
    }
    for (_, c) in counts {
        group_sizes.push(c);
    }
    let min = group_sizes.iter().cloned().min().unwrap_or(1);
    let mut widths = vec![1usize];
    let mut w = 2;
    while w <= min && group_sizes.iter().all(|g| g % w == 0) {
        widths.push(w);
        w *= 2;
    }
    widths
}

/// Fold the cluster into virtual TP devices of `width`.
pub fn virtual_devices(cluster: &Cluster, width: usize) -> Option<Vec<VirtualDevice>> {
    let mut by_group: std::collections::BTreeMap<(usize, llmpq_cluster::GpuModel), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, d) in cluster.devices.iter().enumerate() {
        by_group.entry((d.node, d.gpu)).or_default().push(i);
    }
    let mut out = Vec::new();
    for ((node, _), members) in by_group {
        if members.len() % width != 0 {
            return None;
        }
        for chunk in members.chunks(width) {
            out.push(VirtualDevice { members: chunk.to_vec(), node });
        }
    }
    Some(out)
}

/// Plan at a fixed TP width: enumerate micro-batch plans, solve the
/// partition problem over the virtual chain, and simulate the best.
#[allow(clippy::too_many_arguments)]
pub fn plan_with_tp(
    cluster: &Cluster,
    spec: &ModelSpec,
    job: &BatchJob,
    env: &KernelEnv,
    indicator: &IndicatorTable,
    theta: f64,
    width: usize,
    group: usize,
) -> Option<TpOutcome> {
    let virtuals = virtual_devices(cluster, width)?;
    let n = virtuals.len();
    let nb = Bitwidth::ALL.len();
    let l = spec.n_layers.div_ceil(group);
    let sizes: Vec<usize> = (0..l)
        .map(|g| group.min(spec.n_layers - g * group))
        .collect();

    let mut best: Option<TpOutcome> = None;
    for mb in microbatch_counts(job, n, 4) {
        let pre_w = PhaseWorkload::prefill(mb.prefill_size, job.prompt_len);
        let dec_w = PhaseWorkload::decode(mb.decode_size, job.prompt_len, representative_past(job));

        let size = l * n * nb;
        let mut pre = vec![0.0; size];
        let mut dec = vec![0.0; size];
        let mut mem = vec![0.0; size];
        let mut lin = vec![0.0; size];
        let kv_per_layer =
            round_block(spec.kv_bytes_per_layer(job.global_batch, job.max_seq(), 16.0));
        let mut layer0 = 0;
        for (g, &gsz) in sizes.iter().enumerate() {
            for (j, vd) in virtuals.iter().enumerate() {
                let dev = cluster.devices[vd.members[0]].spec();
                let tp = if width == 1 { TpGroup::solo() } else { TpGroup::nvlink(width) };
                for (bi, &bits) in Bitwidth::ALL.iter().enumerate() {
                    let k = (g * n + j) * nb + bi;
                    pre[k] = gsz as f64 * tp_layer_latency(&dev, env, &tp, spec, &pre_w, bits, 16.0);
                    dec[k] = gsz as f64 * tp_layer_latency(&dev, env, &tp, spec, &dec_w, bits, 16.0);
                    mem[k] = gsz as f64
                        * (round_block(spec.layer_weight_bytes(bits.bits_f64())) + kv_per_layer);
                    let omega: f64 =
                        (layer0..layer0 + gsz).map(|layer| indicator.get(layer, bits)).sum();
                    lin[k] = pre[k] + dec[k] + theta * omega;
                }
            }
            layer0 += gsz;
        }

        let workspace = layer_workspace_bytes(spec, Phase::Prefill, mb.prefill_size, job.prompt_len, Bitwidth::Int3);
        let mut fixed_mem = vec![600e6 + round_block(workspace); n];
        fixed_mem[0] += round_block(spec.embedding_bytes());
        let capacity: Vec<f64> = virtuals
            .iter()
            .map(|vd| cluster.devices[vd.members[0]].spec().mem_bytes() * width as f64)
            .collect();
        let mut comm_pre = vec![0.0; n];
        let mut comm_dec = vec![0.0; n];
        for j in 0..n.saturating_sub(1) {
            let link = cluster.link_between(virtuals[j].members[0], virtuals[j + 1].members[0]);
            comm_pre[j] = link.transfer_time(flops::boundary_activation_bytes(spec, &pre_w));
            comm_dec[j] = link.transfer_time(flops::boundary_activation_bytes(spec, &dec_w));
        }

        let problem = PartitionProblem {
            n_groups: l,
            n_devices: n,
            n_bits: nb,
            pre_time: pre,
            dec_time: dec,
            mem,
            lin_cost: lin,
            capacity,
            fixed_mem,
            comm_pre,
            comm_dec,
            alpha_pre: (mb.prefill_count.saturating_sub(1)) as f64,
            alpha_dec: ((job.n_generate.saturating_sub(1)) * mb.decode_count).saturating_sub(1)
                as f64,
            allow_empty_stages: n > 1,
            grid: Some(12),
        };
        let Some(sol) = solve_partition(&problem) else { continue };
        let outcome = simulate_solution(&problem, &sol, job, &mb, width);
        if best.as_ref().is_none_or(|b| outcome.throughput > b.throughput) {
            best = Some(outcome);
        }
    }
    best
}

/// Simulate a solved TP plan with the DES pipeline.
fn simulate_solution(
    p: &PartitionProblem,
    sol: &PartitionSolution,
    job: &BatchJob,
    mb: &MicrobatchPlan,
    width: usize,
) -> TpOutcome {
    let mut loads: Vec<StageLoad> = Vec::new();
    for j in 0..p.n_devices {
        let groups: Vec<usize> = (0..p.n_groups)
            .filter(|&g| sol.assignment[g].0 == j)
            .collect();
        if groups.is_empty() {
            continue;
        }
        let pre: f64 = groups
            .iter()
            .map(|&g| p.pre_time[(g * p.n_devices + j) * p.n_bits + sol.assignment[g].1])
            .sum();
        let dec: f64 = groups
            .iter()
            .map(|&g| p.dec_time[(g * p.n_devices + j) * p.n_bits + sol.assignment[g].1])
            .sum();
        loads.push(StageLoad {
            prefill_time: pre,
            decode_time: dec,
            comm_prefill: p.comm_pre[j],
            comm_decode: p.comm_dec[j],
        });
    }
    let wl = PipelineWorkload {
        prefill_microbatches: mb.prefill_count,
        decode_microbatches: mb.decode_count,
        n_tokens: job.n_generate,
        master_prefill: 0.0,
        master_decode: 0.0,
    };
    let r = simulate_pipeline(&loads, &wl);
    let bits_sum: f64 = sol
        .assignment
        .iter()
        .map(|&(_, b)| Bitwidth::ALL[b].bits_f64())
        .sum();
    TpOutcome {
        tp_width: width,
        n_stages: loads.len(),
        total_latency: r.total_latency,
        throughput: job.total_tokens() as f64 / r.total_latency,
        mean_bits: bits_sum / sol.assignment.len() as f64,
        microbatch: *mb,
    }
}

/// Sweep all candidate TP widths and return the outcome per width.
pub fn tp_sweep(
    cluster: &Cluster,
    spec: &ModelSpec,
    job: &BatchJob,
    env: &KernelEnv,
    indicator: &IndicatorTable,
    theta: f64,
    group: usize,
) -> Vec<TpOutcome> {
    candidate_tp_widths(cluster)
        .into_iter()
        .filter_map(|w| plan_with_tp(cluster, spec, job, env, indicator, theta, w, group))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_cluster::paper_cluster;
    use llmpq_model::zoo;

    fn indicator(n: usize) -> IndicatorTable {
        IndicatorTable {
            omega: (0..n).map(|_| [0.01, 0.002, 0.0001, 0.0]).collect(),
        }
    }

    #[test]
    fn candidate_widths_respect_group_sizes() {
        assert_eq!(candidate_tp_widths(&paper_cluster(11)), vec![1, 2, 4]); // 4×A800
        assert_eq!(candidate_tp_widths(&paper_cluster(3)), vec![1]); // 3×T4 + 1×V100
        assert_eq!(candidate_tp_widths(&paper_cluster(7)), vec![1, 2, 4]); // 4+4
    }

    #[test]
    fn virtual_devices_partition_members() {
        let c = paper_cluster(7);
        let v = virtual_devices(&c, 2).unwrap();
        assert_eq!(v.len(), 4);
        let all: Vec<usize> = v.iter().flat_map(|d| d.members.clone()).collect();
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        // Groups never span nodes.
        for d in &v {
            let nodes: std::collections::HashSet<usize> =
                d.members.iter().map(|&m| c.devices[m].node).collect();
            assert_eq!(nodes.len(), 1);
        }
    }

    #[test]
    fn invalid_width_rejected() {
        let c = paper_cluster(3); // groups of 3 and 1
        assert!(virtual_devices(&c, 2).is_none());
    }

    #[test]
    fn tp_sweep_produces_outcomes_per_width() {
        let c = paper_cluster(11);
        let spec = zoo::bloom_176b();
        let job = BatchJob::paper_default();
        let out = tp_sweep(&c, &spec, &job, &KernelEnv::default(), &indicator(spec.n_layers), 0.1, 10);
        assert_eq!(out.len(), 3, "widths 1, 2, 4");
        for o in &out {
            assert!(o.throughput > 0.0, "width {} infeasible", o.tp_width);
        }
    }

    #[test]
    fn wider_tp_trades_pipeline_depth_for_memory() {
        let c = paper_cluster(11);
        let spec = zoo::bloom_176b();
        let job = BatchJob::paper_default();
        let out = tp_sweep(&c, &spec, &job, &KernelEnv::default(), &indicator(spec.n_layers), 0.1, 10);
        let stages: Vec<usize> = out.iter().map(|o| o.n_stages).collect();
        // Wider TP ⇒ fewer pipeline stages available.
        assert!(stages.windows(2).all(|w| w[1] <= w[0]), "{stages:?}");
        // More aggregate memory per virtual device ⇒ milder quantization.
        let w1 = out.iter().find(|o| o.tp_width == 1).unwrap();
        let w4 = out.iter().find(|o| o.tp_width == 4).unwrap();
        assert!(w4.mean_bits >= w1.mean_bits, "{} vs {}", w4.mean_bits, w1.mean_bits);
    }
}
