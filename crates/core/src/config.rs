//! Assigner configuration, including the paper's per-cluster setups
//! (Appendix Table 9).

use llmpq_quant::Bitwidth;
use serde::{Deserialize, Serialize};

/// Which inner solver Algorithm 1 uses for bitwidth + partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SolverChoice {
    /// Exact DP over per-stage bitwidths with the given layer-group size
    /// (paper "Group=k" rows; `1` = per-layer groups).
    Dp {
        /// Layers per group (Optimization #2).
        group: usize,
    },
    /// The bitwidth-transfer heuristic seeded by adabits (Algorithm 2).
    Heuristic,
    /// The full per-layer ILP via branch-and-bound (small instances).
    Ilp {
        /// Layers per group.
        group: usize,
        /// Solver wall-clock limit, seconds.
        time_limit_s: f64,
    },
}

/// Full assigner configuration (the `llmpq-algo` command line).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssignerConfig {
    /// The user quality scalar θ: weight on the quality-degradation term
    /// of the objective. Larger θ → better model quality, possibly lower
    /// throughput (§6.8).
    pub theta: f64,
    /// Inner solver.
    pub solver: SolverChoice,
    /// Prefill micro-batch pruning window ξ (Optimization #1).
    pub xi: usize,
    /// Maximum device orderings Algorithm 1 enumerates.
    pub max_orderings: usize,
    /// Candidate-grid size for the DP solver (`None` = exhaustive).
    pub dp_grid: Option<usize>,
    /// Also search an INT8 KV cache (KV-quantization extension; the
    /// paper's evaluation keeps KV at FP16).
    pub search_kv8: bool,
    /// Cap on the per-layer bitwidth candidates the solver may use
    /// (`None` = the full [`Bitwidth::ALL`] menu). Degradation ladders
    /// (`llm_pq::degrade`) re-run the assigner with progressively lower
    /// caps to precompute throughput-over-quality fallback plans.
    #[serde(default)]
    pub max_bits: Option<Bitwidth>,
}

impl Default for AssignerConfig {
    fn default() -> Self {
        Self {
            theta: 1.0,
            solver: SolverChoice::Dp { group: 1 },
            xi: 8,
            max_orderings: 24,
            dp_grid: Some(16),
            search_kv8: false,
            max_bits: None,
        }
    }
}

impl AssignerConfig {
    /// The paper's Table 9 setup for a given cluster number: (group,
    /// heuristic?, θ).
    pub fn paper_setup(cluster: usize) -> AssignerConfig {
        let (solver, theta) = match cluster {
            1 => (SolverChoice::Dp { group: 1 }, 1.0),
            2 => (SolverChoice::Dp { group: 1 }, 1.0),
            3 => (SolverChoice::Dp { group: 1 }, 1.0),
            4 => (SolverChoice::Heuristic, 1000.0),
            5 => (SolverChoice::Heuristic, 50.0),
            6 => (SolverChoice::Dp { group: 1 }, 100.0),
            7 => (SolverChoice::Dp { group: 1 }, 10.0),
            8 => (SolverChoice::Dp { group: 1 }, 10.0),
            9 => (SolverChoice::Dp { group: 1 }, 1.0),
            10 => (SolverChoice::Heuristic, 1.0),
            11 => (SolverChoice::Heuristic, 10.0),
            other => panic!("paper defines clusters 1–11, got {other}"),
        };
        AssignerConfig { theta, solver, ..AssignerConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table9_heuristic_rows() {
        for c in [4, 5, 10, 11] {
            assert!(matches!(AssignerConfig::paper_setup(c).solver, SolverChoice::Heuristic));
        }
        for c in [1, 2, 3, 6, 7, 8, 9] {
            assert!(matches!(
                AssignerConfig::paper_setup(c).solver,
                SolverChoice::Dp { group: 1 }
            ));
        }
    }

    #[test]
    fn table9_theta_values() {
        assert_eq!(AssignerConfig::paper_setup(4).theta, 1000.0);
        assert_eq!(AssignerConfig::paper_setup(5).theta, 50.0);
        assert_eq!(AssignerConfig::paper_setup(6).theta, 100.0);
        assert_eq!(AssignerConfig::paper_setup(1).theta, 1.0);
    }

    #[test]
    #[should_panic(expected = "clusters 1–11")]
    fn rejects_unknown_cluster() {
        AssignerConfig::paper_setup(0);
    }
}
