//! Plan evaluation: memory feasibility + pipeline simulation.
//!
//! Turns an [`ExecutionPlan`] into per-stage loads (via the latency cost
//! database and the interconnect model), checks every device against its
//! memory capacity (OOM detection — the missing rows of Table 4 are OOM
//! entries), runs the discrete-event pipeline simulation, and reports
//! latency and token throughput.

use crate::plan::ExecutionPlan;
use llmpq_cluster::Cluster;
use llmpq_cost::{stage_memory_bytes, CostDb};
use llmpq_model::{flops, ModelSpec, PhaseWorkload};
use llmpq_sim::{simulate_pipeline, PipelineWorkload, StageLoad};
use llmpq_workload::BatchJob;
use serde::{Deserialize, Serialize};

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanError {
    /// A stage does not fit its device.
    Oom {
        /// Stage index.
        stage: usize,
        /// Predicted bytes needed.
        needed: f64,
        /// Device capacity in bytes.
        capacity: f64,
    },
    /// Structural problem in the plan.
    Invalid(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Oom { stage, needed, capacity } => write!(
                f,
                "OOM on stage {stage}: needs {:.1} GB, capacity {:.1} GB",
                needed / 1e9,
                capacity / 1e9
            ),
            PlanError::Invalid(s) => write!(f, "invalid plan: {s}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Evaluation result for one plan on one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanReport {
    /// Scheme label copied from the plan.
    pub scheme: String,
    /// Prefill wall-clock, seconds.
    pub prefill_latency: f64,
    /// Decode wall-clock, seconds.
    pub decode_latency: f64,
    /// End-to-end batch latency, seconds ("Latency (s)" column).
    pub total_latency: f64,
    /// Token throughput = generated tokens / latency ("Token/s" column).
    pub throughput: f64,
    /// Largest per-stage bubble fraction during decode.
    pub max_bubble: f64,
    /// Predicted peak memory per stage, bytes.
    pub stage_memory: Vec<f64>,
    /// Mean bits per layer of the plan.
    pub mean_bits: f64,
}

/// Representative decode context length used for planning and
/// simulation: half the generation is done on average.
pub fn representative_past(job: &BatchJob) -> usize {
    job.prompt_len + job.n_generate / 2
}

/// Build the per-stage loads of a plan.
pub fn stage_loads(
    plan: &ExecutionPlan,
    cluster: &Cluster,
    spec: &ModelSpec,
    db: &CostDb,
    job: &BatchJob,
) -> Vec<StageLoad> {
    let mb = &plan.microbatch;
    let pre_w = PhaseWorkload::prefill(mb.prefill_size, job.prompt_len);
    let dec_w = PhaseWorkload::decode(mb.decode_size, job.prompt_len, representative_past(job));
    plan.stages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let gpu = cluster.devices[s.device].gpu;
            let kv = plan.kv_bits as f64;
            let prefill_time = db.stage_latency_kv(gpu, spec, &s.bits, &pre_w, kv);
            let decode_time = db.stage_latency_kv(gpu, spec, &s.bits, &dec_w, kv);
            let (comm_prefill, comm_decode) = if i + 1 < plan.stages.len() {
                let link = cluster.link_between(s.device, plan.stages[i + 1].device);
                (
                    link.transfer_time(flops::boundary_activation_bytes(spec, &pre_w)),
                    link.transfer_time(flops::boundary_activation_bytes(spec, &dec_w)),
                )
            } else {
                (0.0, 0.0)
            };
            StageLoad { prefill_time, decode_time, comm_prefill, comm_decode }
        })
        .collect()
}

/// Predicted peak memory per stage (embedding charged to stage 0, which
/// co-hosts the master engine).
pub fn stage_memories(plan: &ExecutionPlan, spec: &ModelSpec, job: &BatchJob) -> Vec<f64> {
    plan.stages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            stage_memory_bytes(
                spec,
                &s.bits,
                job.global_batch,
                plan.microbatch.prefill_size.max(1),
                job.prompt_len,
                job.n_generate,
                plan.kv_bits as f64,
                i == 0,
            )
        })
        .collect()
}

/// Evaluate a plan end to end.
pub fn evaluate_plan(
    plan: &ExecutionPlan,
    cluster: &Cluster,
    spec: &ModelSpec,
    db: &CostDb,
    job: &BatchJob,
) -> Result<PlanReport, PlanError> {
    plan.validate(spec.n_layers).map_err(PlanError::Invalid)?;
    for s in &plan.stages {
        if s.device >= cluster.len() {
            return Err(PlanError::Invalid(format!("stage device {} out of range", s.device)));
        }
    }

    // Memory feasibility.
    let mems = stage_memories(plan, spec, job);
    for (i, (&m, s)) in mems.iter().zip(&plan.stages).enumerate() {
        let cap = cluster.devices[s.device].spec().mem_bytes();
        if m > cap {
            return Err(PlanError::Oom { stage: i, needed: m, capacity: cap });
        }
    }

    // Simulate.
    let loads = stage_loads(plan, cluster, spec, db, job);
    let first_gpu = cluster.devices[plan.stages[0].device].gpu;
    let mb = &plan.microbatch;
    let pre_w = PhaseWorkload::prefill(mb.prefill_size, job.prompt_len);
    let dec_w = PhaseWorkload::decode(mb.decode_size, job.prompt_len, representative_past(job));
    let wl = PipelineWorkload {
        prefill_microbatches: mb.prefill_count,
        decode_microbatches: mb.decode_count,
        n_tokens: job.n_generate,
        master_prefill: db.master_latency(first_gpu, spec, &pre_w),
        master_decode: db.master_latency(first_gpu, spec, &dec_w),
    };
    let r = simulate_pipeline(&loads, &wl);
    Ok(PlanReport {
        scheme: plan.scheme.clone(),
        prefill_latency: r.prefill_latency,
        decode_latency: r.decode_latency,
        total_latency: r.total_latency,
        throughput: job.total_tokens() as f64 / r.total_latency,
        max_bubble: r.max_bubble_fraction,
        stage_memory: mems,
        mean_bits: plan.bit_assignment().mean_bits(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StagePlan;
    use llmpq_cluster::paper_cluster;
    use llmpq_cost::CostDb;
    use llmpq_model::zoo;
    use llmpq_quant::Bitwidth;
    use llmpq_sim::KernelEnv;
    use llmpq_workload::MicrobatchPlan;

    fn simple_plan(n_layers: usize, n_stages: usize, bits: Bitwidth, scheme: &str) -> ExecutionPlan {
        let per = n_layers / n_stages;
        let stages = (0..n_stages)
            .map(|i| {
                let start = i * per;
                let end = if i + 1 == n_stages { n_layers } else { start + per };
                StagePlan { device: i, layer_start: start, layer_end: end, bits: vec![bits; end - start] }
            })
            .collect();
        ExecutionPlan {
            model: "opt-30b".into(),
            cluster: "cluster-3".into(),
            stages,
            microbatch: MicrobatchPlan { prefill_size: 2, prefill_count: 16, decode_size: 8, decode_count: 4 },
            scheme: scheme.into(),
            kv_bits: 16,
        }
    }

    #[test]
    fn evaluates_feasible_plan() {
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob::paper_default();
        let plan = simple_plan(spec.n_layers, 4, Bitwidth::Int4, "test");
        let r = evaluate_plan(&plan, &cluster, &spec, &db, &job).expect("feasible");
        assert!(r.total_latency > 0.0);
        assert!(r.throughput > 0.0);
        assert_eq!(r.stage_memory.len(), 4);
        assert!((r.mean_bits - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fp16_oom_on_small_cluster() {
        // OPT-30b FP16 cannot fit cluster 3 (3×16 GB + 32 GB) evenly.
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob::paper_default();
        let plan = simple_plan(spec.n_layers, 4, Bitwidth::Fp16, "test");
        match evaluate_plan(&plan, &cluster, &spec, &db, &job) {
            Err(PlanError::Oom { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn invalid_plan_rejected() {
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob::paper_default();
        let mut plan = simple_plan(spec.n_layers, 4, Bitwidth::Int4, "test");
        plan.stages[2].layer_start += 1;
        assert!(matches!(
            evaluate_plan(&plan, &cluster, &spec, &db, &job),
            Err(PlanError::Invalid(_))
        ));
    }

    #[test]
    fn throughput_definition_matches_paper() {
        // Throughput = generated tokens in the batch / end-to-end latency.
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob::paper_default();
        let plan = simple_plan(spec.n_layers, 4, Bitwidth::Int4, "test");
        let r = evaluate_plan(&plan, &cluster, &spec, &db, &job).unwrap();
        assert!((r.throughput - 3200.0 / r.total_latency).abs() < 1e-9);
    }

    #[test]
    fn comm_heavier_on_slow_interconnect() {
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = BatchJob::paper_default();
        let plan = simple_plan(spec.n_layers, 4, Bitwidth::Int4, "t");
        let fast = stage_loads(&plan, &paper_cluster(3), &spec, &db, &job); // 800G
        let slow = stage_loads(&plan, &paper_cluster(4), &spec, &db, &job); // 100G
        // Boundary 2→3 crosses nodes in both clusters 3 and 4.
        assert!(slow[2].comm_prefill > fast[2].comm_prefill);
    }

    #[test]
    fn smaller_prefill_microbatch_reduces_memory() {
        let spec = zoo::opt_30b();
        let job = BatchJob::paper_default();
        let mut plan = simple_plan(spec.n_layers, 4, Bitwidth::Int8, "t");
        plan.microbatch.prefill_size = 32;
        plan.microbatch.prefill_count = 1;
        let big = stage_memories(&plan, &spec, &job);
        plan.microbatch.prefill_size = 1;
        plan.microbatch.prefill_count = 32;
        let small = stage_memories(&plan, &spec, &job);
        assert!(small[1] < big[1]);
    }
}
