//! The paper's ILP (eq. 4–16) as a branch-and-bound MILP.
//!
//! Variables: binaries `z[g][j][b]` (group `g` on device `j` at bits
//! `b`), binaries `used[j]`, and continuous stage-time bounds
//! `T_max_pre`, `T_max_dec`. Objective:
//!
//! ```text
//! α_pre·T_pre_max + α_dec·T_dec_max + Σ z·lin_cost
//! ```
//!
//! subject to one-hot assignment per group (eq. 9–11), per-device memory
//! (eq. 12–13), max-time linearization (eq. 5–8), and pipeline
//! contiguity — expressed compactly as "the device index is
//! non-decreasing over groups", which is equivalent to the paper's
//! pairwise precedence constraints (eq. 15–16).
//!
//! Unlike the DP in `llmpq-solver` (uniform bits within a stage), the
//! ILP mixes precisions *within* a stage, exactly like the paper's
//! formulation — at branch-and-bound cost. Used for small instances and
//! grouped ones (Optimization #2), under a wall-clock limit like the
//! paper's GUROBI runs.

use llmpq_solver::{
    solve_milp, Constraint, LinProg, MilpConfig, MilpResult, MilpSpec, PartitionProblem,
    PartitionSolution,
};

/// Build the MILP for a partition instance.
pub fn build_milp(p: &PartitionProblem) -> MilpSpec {
    let (l, n, nb) = (p.n_groups, p.n_devices, p.n_bits);
    let zi = |g: usize, j: usize, b: usize| (g * n + j) * nb + b;
    let used_i = |j: usize| l * n * nb + j;
    let tp_i = l * n * nb + n;
    let td_i = tp_i + 1;
    let n_vars = td_i + 1;

    let mut objective = vec![0.0f64; n_vars];
    for g in 0..l {
        for j in 0..n {
            for b in 0..nb {
                objective[zi(g, j, b)] = p.lin_cost[zi(g, j, b)];
            }
        }
    }
    objective[tp_i] = p.alpha_pre;
    objective[td_i] = p.alpha_dec;

    let mut lp = LinProg::minimize(objective);
    for g in 0..l {
        for j in 0..n {
            for b in 0..nb {
                lp = lp.bound(zi(g, j, b), 1.0);
            }
        }
    }
    for j in 0..n {
        lp = lp.bound(used_i(j), 1.0);
    }

    // (9) one-hot per group.
    for g in 0..l {
        let coeffs = (0..n)
            .flat_map(|j| (0..nb).map(move |b| (zi(g, j, b), 1.0)))
            .collect();
        lp = lp.with(Constraint::eq(coeffs, 1.0));
    }

    // used_j activation: Σ z ≤ L·used_j.
    for j in 0..n {
        let mut coeffs: Vec<(usize, f64)> = (0..l)
            .flat_map(|g| (0..nb).map(move |b| (zi(g, j, b), 1.0)))
            .collect();
        coeffs.push((used_i(j), -(l as f64)));
        lp = lp.with(Constraint::le(coeffs, 0.0));
    }

    // (5–8) stage times bound T_max per phase.
    for j in 0..n {
        let mut pre: Vec<(usize, f64)> = Vec::new();
        let mut dec: Vec<(usize, f64)> = Vec::new();
        for g in 0..l {
            for b in 0..nb {
                pre.push((zi(g, j, b), p.pre_time[zi(g, j, b)]));
                dec.push((zi(g, j, b), p.dec_time[zi(g, j, b)]));
            }
        }
        pre.push((used_i(j), p.comm_pre[j]));
        pre.push((tp_i, -1.0));
        lp = lp.with(Constraint::le(pre, 0.0));
        dec.push((used_i(j), p.comm_dec[j]));
        dec.push((td_i, -1.0));
        lp = lp.with(Constraint::le(dec, 0.0));
    }

    // (12–13) memory — rescaled so coefficients sit near 1.0 (byte
    // counts at 1e10 would wreck the simplex's absolute tolerances).
    let mem_scale = p
        .capacity
        .iter()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1.0)
        .recip();
    for j in 0..n {
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        for g in 0..l {
            for b in 0..nb {
                coeffs.push((zi(g, j, b), p.mem[zi(g, j, b)] * mem_scale));
            }
        }
        coeffs.push((used_i(j), p.fixed_mem[j] * mem_scale));
        lp = lp.with(Constraint::le(coeffs, p.capacity[j] * mem_scale));
    }

    // (15–16) contiguity: device index non-decreasing over groups.
    for g in 1..l {
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        for j in 0..n {
            for b in 0..nb {
                coeffs.push((zi(g, j, b), j as f64));
                coeffs.push((zi(g - 1, j, b), -(j as f64)));
            }
        }
        lp = lp.with(Constraint::ge(coeffs, 0.0));
    }

    let integers = (0..l * n * nb).chain((0..n).map(used_i)).collect();
    MilpSpec { lp, integers }
}

/// Solve the instance with the ILP path; returns the assignment in the
/// same format as the DP solver, or `None` when infeasible/unknown.
pub fn solve_ilp(p: &PartitionProblem, cfg: &MilpConfig) -> Option<PartitionSolution> {
    let spec = build_milp(p);
    let res = solve_milp(&spec, cfg);
    let sol = match &res {
        MilpResult::Optimal(s) => s,
        MilpResult::Feasible { best, .. } => best,
        _ => return None,
    };
    let (l, n, nb) = (p.n_groups, p.n_devices, p.n_bits);
    let zi = |g: usize, j: usize, b: usize| (g * n + j) * nb + b;
    let mut assignment = Vec::with_capacity(l);
    for g in 0..l {
        let mut found = None;
        for j in 0..n {
            for b in 0..nb {
                if sol.x[zi(g, j, b)] > 0.5 {
                    found = Some((j, b));
                }
            }
        }
        assignment.push(found?);
    }
    // Recompute realized stage times and the exact objective.
    let mut stage_pre = vec![0.0f64; n];
    let mut stage_dec = vec![0.0f64; n];
    let mut lin = 0.0;
    for (g, &(j, b)) in assignment.iter().enumerate() {
        stage_pre[j] += p.pre_time[zi(g, j, b)];
        stage_dec[j] += p.dec_time[zi(g, j, b)];
        lin += p.lin_cost[zi(g, j, b)];
    }
    for j in 0..n {
        if stage_pre[j] > 0.0 || stage_dec[j] > 0.0 {
            stage_pre[j] += p.comm_pre[j];
            stage_dec[j] += p.comm_dec[j];
        }
    }
    let t_max_pre = stage_pre.iter().cloned().fold(0.0, f64::max);
    let t_max_dec = stage_dec.iter().cloned().fold(0.0, f64::max);
    Some(PartitionSolution {
        assignment,
        objective: p.alpha_pre * t_max_pre + p.alpha_dec * t_max_dec + lin,
        t_max_pre,
        t_max_dec,
        stage_pre,
        stage_dec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_solver::solve_partition;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(seed: u64, l: usize, n: usize, b: usize) -> PartitionProblem {
        let mut rng = SmallRng::seed_from_u64(seed);
        let size = l * n * b;
        let gen = |rng: &mut SmallRng, lo: f64, hi: f64| -> Vec<f64> {
            (0..size).map(|_| rng.gen_range(lo..hi)).collect()
        };
        PartitionProblem {
            n_groups: l,
            n_devices: n,
            n_bits: b,
            pre_time: gen(&mut rng, 0.2, 1.0),
            dec_time: gen(&mut rng, 0.02, 0.1),
            mem: gen(&mut rng, 1.0, 4.0),
            lin_cost: gen(&mut rng, 0.0, 1.0),
            capacity: vec![12.0; n],
            fixed_mem: vec![0.5; n],
            comm_pre: vec![0.05; n],
            comm_dec: vec![0.005; n],
            alpha_pre: 5.0,
            alpha_dec: 80.0,
            allow_empty_stages: true,
            grid: None,
        }
    }

    #[test]
    fn ilp_never_worse_than_stage_uniform_dp() {
        // The ILP explores per-layer bit mixing within a stage, a
        // superset of the DP's class — its optimum must be ≤.
        for seed in 0..4 {
            let p = random_problem(seed, 4, 2, 2);
            let ilp = solve_ilp(&p, &MilpConfig::default()).expect("feasible");
            let dp = solve_partition(&p).expect("feasible");
            assert!(
                ilp.objective <= dp.objective + 1e-6,
                "seed {seed}: ilp {} > dp {}",
                ilp.objective,
                dp.objective
            );
        }
    }

    #[test]
    fn ilp_matches_dp_with_single_bit_choice() {
        // With B=1 both solvers optimize the identical space.
        for seed in 10..14 {
            let p = random_problem(seed, 5, 2, 1);
            let ilp = solve_ilp(&p, &MilpConfig::default()).expect("feasible");
            let dp = solve_partition(&p).expect("feasible");
            assert!(
                (ilp.objective - dp.objective).abs() < 1e-6,
                "seed {seed}: ilp {} vs dp {}",
                ilp.objective,
                dp.objective
            );
        }
    }

    #[test]
    fn ilp_assignment_is_contiguous() {
        let p = random_problem(42, 6, 3, 2);
        let sol = solve_ilp(&p, &MilpConfig::default()).unwrap();
        for w in sol.assignment.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn ilp_respects_memory() {
        let mut p = random_problem(7, 5, 2, 2);
        p.capacity = vec![7.0, 9.0];
        if let Some(sol) = solve_ilp(&p, &MilpConfig::default()) {
            let n = p.n_devices;
            let nb = p.n_bits;
            for j in 0..n {
                let used: f64 = sol
                    .assignment
                    .iter()
                    .enumerate()
                    .filter(|(_, (d, _))| *d == j)
                    .map(|(g, (d, b))| p.mem[(g * n + d) * nb + b])
                    .sum();
                let fixed = if used > 0.0 { p.fixed_mem[j] } else { 0.0 };
                assert!(used + fixed <= p.capacity[j] + 1e-6);
            }
        }
    }

    #[test]
    fn ilp_infeasible_when_capacity_zero() {
        let mut p = random_problem(3, 3, 2, 1);
        p.capacity = vec![0.1; 2];
        assert!(solve_ilp(&p, &MilpConfig::default()).is_none());
    }

    #[test]
    fn time_limit_returns_incumbent_or_none() {
        let p = random_problem(9, 6, 3, 2);
        let res = solve_ilp(&p, &MilpConfig { time_limit_s: 0.05, ..Default::default() });
        // Either it found something in time or it degrades gracefully.
        if let Some(sol) = res {
            assert_eq!(sol.assignment.len(), 6);
        }
    }
}
