//! Execution plans — the assigner's output and the runtime's input.
//!
//! Mirrors the paper's strategy file: `llmpq-algo` emits a plan that
//! `llmpq-dist` launches directly. Plans serialize to JSON.

use llmpq_quant::{BitAssignment, Bitwidth};
use llmpq_workload::MicrobatchPlan;
use serde::{Deserialize, Serialize};

/// One pipeline stage: a device and its contiguous shard of layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagePlan {
    /// Index into the cluster's device list.
    pub device: usize,
    /// First decoder layer (inclusive).
    pub layer_start: usize,
    /// One past the last decoder layer.
    pub layer_end: usize,
    /// Precision per owned layer (`layer_end - layer_start` entries).
    pub bits: Vec<Bitwidth>,
}

impl StagePlan {
    /// Number of layers on this stage.
    pub fn n_layers(&self) -> usize {
        self.layer_end - self.layer_start
    }
}

/// A complete serving plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Model id (`"opt-30b"`).
    pub model: String,
    /// Cluster name the plan was made for.
    pub cluster: String,
    /// Stages in pipeline order. The first stage's device co-hosts the
    /// master engine (embedding + logits).
    pub stages: Vec<StagePlan>,
    /// Hybrid micro-batch sizing.
    pub microbatch: MicrobatchPlan,
    /// Scheme label for report tables (`"LLM-PQ"`, `"PipeEdge"`, …).
    pub scheme: String,
    /// KV-cache precision in bits (16 = FP16, 8 = quantized cache — the
    /// KV-quantization extension). Defaults to 16 in older plan files.
    #[serde(default = "default_kv_bits")]
    pub kv_bits: u32,
}

fn default_kv_bits() -> u32 {
    16
}

impl ExecutionPlan {
    /// Validate structural invariants: stages cover `0..n_layers`
    /// contiguously with no overlap and carry matching bit vectors.
    pub fn validate(&self, n_layers: usize) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("plan has no stages".into());
        }
        let mut next = 0usize;
        for (i, s) in self.stages.iter().enumerate() {
            if s.layer_start != next {
                return Err(format!(
                    "stage {i} starts at layer {} but {} expected",
                    s.layer_start, next
                ));
            }
            if s.layer_end <= s.layer_start {
                return Err(format!("stage {i} is empty"));
            }
            if s.bits.len() != s.n_layers() {
                return Err(format!(
                    "stage {i} has {} bit entries for {} layers",
                    s.bits.len(),
                    s.n_layers()
                ));
            }
            next = s.layer_end;
        }
        if next != n_layers {
            return Err(format!("plan covers {next} of {n_layers} layers"));
        }
        Ok(())
    }

    /// Flatten to a per-layer bit assignment.
    pub fn bit_assignment(&self) -> BitAssignment {
        let mut bits = Vec::new();
        for s in &self.stages {
            bits.extend_from_slice(&s.bits);
        }
        BitAssignment { bits }
    }

    /// Total number of decoder layers covered.
    pub fn n_layers(&self) -> usize {
        self.stages.last().map_or(0, |s| s.layer_end)
    }

    /// Device order of the pipeline.
    pub fn device_order(&self) -> Vec<usize> {
        self.stages.iter().map(|s| s.device).collect()
    }

    /// Serialize to the JSON strategy-file format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plans are serializable")
    }

    /// Parse a strategy file.
    pub fn from_json(s: &str) -> Result<ExecutionPlan, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_workload::MicrobatchPlan;

    fn mb() -> MicrobatchPlan {
        MicrobatchPlan { prefill_size: 4, prefill_count: 8, decode_size: 16, decode_count: 2 }
    }

    fn sample_plan() -> ExecutionPlan {
        ExecutionPlan {
            model: "opt-13b".into(),
            cluster: "cluster-3".into(),
            stages: vec![
                StagePlan {
                    device: 0,
                    layer_start: 0,
                    layer_end: 3,
                    bits: vec![Bitwidth::Int4, Bitwidth::Int4, Bitwidth::Int8],
                },
                StagePlan {
                    device: 1,
                    layer_start: 3,
                    layer_end: 5,
                    bits: vec![Bitwidth::Fp16, Bitwidth::Fp16],
                },
            ],
            microbatch: mb(),
            scheme: "LLM-PQ".into(),
            kv_bits: 16,
        }
    }

    #[test]
    fn validates_good_plan() {
        assert!(sample_plan().validate(5).is_ok());
    }

    #[test]
    fn rejects_gap() {
        let mut p = sample_plan();
        p.stages[1].layer_start = 4;
        assert!(p.validate(5).unwrap_err().contains("starts at layer"));
    }

    #[test]
    fn rejects_partial_coverage() {
        assert!(sample_plan().validate(6).unwrap_err().contains("covers"));
    }

    #[test]
    fn rejects_bits_mismatch() {
        let mut p = sample_plan();
        p.stages[0].bits.pop();
        assert!(p.validate(5).unwrap_err().contains("bit entries"));
    }

    #[test]
    fn bit_assignment_flattens_in_order() {
        let p = sample_plan();
        let a = p.bit_assignment();
        assert_eq!(
            a.bits,
            vec![Bitwidth::Int4, Bitwidth::Int4, Bitwidth::Int8, Bitwidth::Fp16, Bitwidth::Fp16]
        );
    }

    #[test]
    fn json_round_trip() {
        let p = sample_plan();
        let s = p.to_json();
        let q = ExecutionPlan::from_json(&s).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(ExecutionPlan::from_json("{not json").is_err());
    }
}
