//! # llm-pq
//!
//! The paper's primary contribution: the **LLM-PQ assigner**, which
//! jointly decides
//!
//! 1. how to partition a decoder-only LLM's layers into pipeline stages
//!    across a *heterogeneous* ordered device chain (phase-aware: both
//!    prefill and decode times drive the balance),
//! 2. which quantization precision each layer runs at (adaptive
//!    mixed-precision guided by the variance indicator), and
//! 3. hybrid micro-batch sizes for the two generative phases,
//!
//! minimizing end-to-end batch latency plus `θ ×` the quality-
//! degradation indicator, under per-device memory constraints
//! (paper eq. 4–16, Algorithms 1 and 2).
//!
//! Modules:
//!
//! * [`plan`] — execution plans (the `llmpq-dist` strategy-file format).
//! * [`config`] — assigner configuration incl. the paper's Table 9 setups.
//! * [`evaluate`] — plan evaluation: stage loads, memory checks, pipeline
//!   simulation, throughput.
//! * [`ilp`] — the paper's exact ILP (eq. 4–16) built for the
//!   branch-and-bound MILP solver; used for small/grouped instances.
//! * [`assigner`] — Algorithm 1: device-order × micro-batch enumeration
//!   around the DP/ILP inner solver.
//! * [`transfer`] — Algorithm 2: the adabits seed + bitwidth-transfer
//!   heuristic.
//! * [`baselines`] — PipeEdge, Uniform, FlexGen(-int8) and pure-adaptive
//!   (adabits) planners for the paper's comparison rows.

pub mod assigner;
pub mod baselines;
pub mod config;
pub mod degrade;
pub mod evaluate;
pub mod ilp;
pub mod incremental;
pub mod plan;
pub mod replan;
pub mod tp;
pub mod transfer;

pub use assigner::{assign, build_problem, device_orderings, solution_to_plan, AssignOutcome};
pub use baselines::{adabits_plan, baseline_report, flexgen_report, pipeedge_plan, uniform_plan, BaselineKind};
pub use config::{AssignerConfig, SolverChoice};
pub use degrade::{degradation_ladder, DegradationLadder, LadderRung, DEFAULT_CAPS};
pub use evaluate::{evaluate_plan, PlanReport};
pub use incremental::{
    cluster_delta, CacheCounters, ClusterDelta, CostCache, EvalCache, IncrementalPlanner,
    PlanOrigin, PlannedOutcome, PlannerStats, ReplanError, WarmStartConfig,
};
pub use plan::{ExecutionPlan, StagePlan};
// Re-exported so downstream crates can construct `ExecutionPlan`s
// without depending on `llmpq-workload` directly.
pub use llmpq_workload::MicrobatchPlan;
pub use replan::{replan_after_loss, ReplanOutcome};
pub use tp::{candidate_tp_widths, plan_with_tp, tp_sweep, TpOutcome};
