//! Algorithm 1: the LLM-PQ assigner.
//!
//! Enumerates device-topology orderings and hybrid (prefill, decode)
//! micro-batch pairs in the pruned search space; for each combination it
//! builds the partition/bitwidth problem from the cost models and the
//! variance indicator and solves it with the configured inner solver
//! (exact DP, per-layer ILP, or the Algorithm-2 heuristic). The best
//! plan by `latency + θ·Σω` wins.

use crate::config::{AssignerConfig, SolverChoice};
use crate::evaluate::{evaluate_plan, representative_past, PlanReport};
use crate::ilp::solve_ilp;
use crate::plan::{ExecutionPlan, StagePlan};
use crate::transfer::heuristic_solve;
use llmpq_cluster::Cluster;
use llmpq_cost::{CostDb, FRAMEWORK_BYTES};
use llmpq_model::{flops, ModelSpec, Phase, PhaseWorkload};
use llmpq_quant::{Bitwidth, IndicatorTable};
use llmpq_sim::layer_workspace_bytes;
use llmpq_solver::{solve_partition, MilpConfig, PartitionProblem, PartitionSolution};
use llmpq_workload::{microbatch_counts, BatchJob, MicrobatchPlan};
use serde::{Deserialize, Serialize};

/// Result of an assignment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssignOutcome {
    /// The winning plan.
    pub plan: ExecutionPlan,
    /// Its evaluation on the job.
    pub report: PlanReport,
    /// θ-weighted indicator total of the plan.
    pub omega_total: f64,
    /// Wall-clock seconds the assigner spent (Table 10's "Overhead").
    pub overhead_s: f64,
    /// Number of (ordering, micro-batch) combinations explored.
    pub combinations: usize,
}

/// Allocator block granularity mirrored from the memory cost model.
const BLOCK: f64 = 2.0 * 1024.0 * 1024.0;

fn round_block(bytes: f64) -> f64 {
    (bytes / BLOCK).ceil() * BLOCK
}

/// Enumerate distinct device orderings (by GPU-type sequence), capped.
/// The paper's `GetDeviceOrder` enumerates orderings because the stage
/// position interacts with both the embedding placement (stage 0 hosts
/// the master) and the interconnect boundaries.
pub fn device_orderings(cluster: &Cluster, cap: usize) -> Vec<Vec<usize>> {
    let n = cluster.len();
    let mut indices: Vec<usize> = (0..n).collect();
    // Canonical start: sort by type so permutations dedupe.
    indices.sort_by_key(|&i| cluster.devices[i].gpu);
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut seen: std::collections::HashSet<Vec<llmpq_cluster::GpuModel>> =
        std::collections::HashSet::new();
    permute(cluster, &mut indices, 0, &mut seen, &mut out, cap);
    out
}

fn permute(
    cluster: &Cluster,
    idx: &mut Vec<usize>,
    k: usize,
    seen: &mut std::collections::HashSet<Vec<llmpq_cluster::GpuModel>>,
    out: &mut Vec<Vec<usize>>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    if k == idx.len() {
        let types: Vec<_> = idx.iter().map(|&i| cluster.devices[i].gpu).collect();
        if seen.insert(types) {
            out.push(idx.clone());
        }
        return;
    }
    let mut used_types = Vec::new();
    for i in k..idx.len() {
        let t = cluster.devices[idx[i]].gpu;
        if used_types.contains(&t) {
            continue; // same type at this position ⇒ duplicate ordering
        }
        used_types.push(t);
        idx.swap(k, i);
        permute(cluster, idx, k + 1, seen, out, cap);
        idx.swap(k, i);
        if out.len() >= cap {
            return;
        }
    }
}

/// Group layers into `ceil(L/group)` contiguous groups.
fn group_sizes(n_layers: usize, group: usize) -> Vec<usize> {
    assert!(group >= 1);
    let mut sizes = Vec::new();
    let mut left = n_layers;
    while left > 0 {
        let take = group.min(left);
        sizes.push(take);
        left -= take;
    }
    sizes
}

/// Build the partition problem for one (ordering, micro-batch) pair.
/// Also returns the θ-scaled quality cost tensor used by the heuristic.
///
/// `bits_set` restricts the candidate precisions (baselines pass a
/// single uniform bitwidth); `phase_aware = false` zeroes the decode
/// terms, turning the solver into a PipeEdge-style single-phase
/// partitioner; `indicator = None` disables the quality term.
#[allow(clippy::too_many_arguments)]
pub fn build_problem(
    cluster: &Cluster,
    ordering: &[usize],
    spec: &ModelSpec,
    job: &BatchJob,
    db: &CostDb,
    indicator: Option<&IndicatorTable>,
    theta: f64,
    mb: &MicrobatchPlan,
    group: usize,
    bits_set: &[Bitwidth],
    phase_aware: bool,
    dp_grid: Option<usize>,
    kv_bits: f64,
) -> (PartitionProblem, Vec<f64>, Vec<usize>) {
    build_problem_with_cache(
        cluster, ordering, spec, job, db, indicator, theta, mb, group, bits_set, phase_aware,
        dp_grid, kv_bits, None,
    )
}

/// [`build_problem`] routed through the incremental planner's memoized
/// cost cache when one is supplied (`None` hits the cost DB directly and
/// is bit-identical to the cold path).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_problem_with_cache(
    cluster: &Cluster,
    ordering: &[usize],
    spec: &ModelSpec,
    job: &BatchJob,
    db: &CostDb,
    indicator: Option<&IndicatorTable>,
    theta: f64,
    mb: &MicrobatchPlan,
    group: usize,
    bits_set: &[Bitwidth],
    phase_aware: bool,
    dp_grid: Option<usize>,
    kv_bits: f64,
    mut cache: Option<&mut crate::incremental::CostCache>,
) -> (PartitionProblem, Vec<f64>, Vec<usize>) {
    let sizes = group_sizes(spec.n_layers, group);
    let l = sizes.len();
    let n = ordering.len();
    let nb = bits_set.len();
    let pre_w = PhaseWorkload::prefill(mb.prefill_size, job.prompt_len);
    let dec_w = PhaseWorkload::decode(mb.decode_size, job.prompt_len, representative_past(job));

    let size = l * n * nb;
    let mut pre = vec![0.0; size];
    let mut dec = vec![0.0; size];
    let mut mem = vec![0.0; size];
    let mut lin = vec![0.0; size];
    let mut quality = vec![0.0; size];

    let kv_per_layer =
        round_block(spec.kv_bytes_per_layer(job.global_batch, job.max_seq(), kv_bits));

    // Per-layer latency depends only on the device *class* (plus phase
    // and bits), per-layer bytes only on bits, and the ω group sum only
    // on (group, bits) — so hoist all three out of the l × n × nb fill
    // loop. At fleet scale this turns ~700k cost-model lookups per
    // build into O(classes × bits), which is what keeps the elastic
    // warm-replan path fast on 100+ device clusters.
    let mut class_lat: Vec<(llmpq_cluster::GpuModel, Vec<(f64, f64)>)> = Vec::new();
    for &dev_idx in ordering {
        let gpu = cluster.devices[dev_idx].gpu;
        if class_lat.iter().any(|(g, _)| *g == gpu) {
            continue;
        }
        let mut rows = Vec::with_capacity(nb);
        for &bits in bits_set {
            let row = match cache.as_deref_mut() {
                Some(c) => (
                    c.layer_latency(db, gpu, spec, &pre_w, bits, kv_bits),
                    c.layer_latency(db, gpu, spec, &dec_w, bits, kv_bits),
                ),
                None => (
                    db.layer_latency_kv(gpu, spec, &pre_w, bits, kv_bits),
                    db.layer_latency_kv(gpu, spec, &dec_w, bits, kv_bits),
                ),
            };
            rows.push(row);
        }
        class_lat.push((gpu, rows));
    }
    let dev_class: Vec<usize> = ordering
        .iter()
        .map(|&dev_idx| {
            let gpu = cluster.devices[dev_idx].gpu;
            class_lat.iter().position(|(g, _)| *g == gpu).expect("class collected above")
        })
        .collect();
    let bytes_per_layer: Vec<f64> = bits_set
        .iter()
        .map(|&bits| {
            let scale_overhead = if bits.is_quantized() {
                spec.quant_scale_bytes(llmpq_model::QUANT_GROUP)
            } else {
                0.0
            };
            round_block(spec.layer_weight_bytes(bits.bits_f64()) + scale_overhead) + kv_per_layer
        })
        .collect();

    let mut layer0 = 0usize;
    for (g, &gsz) in sizes.iter().enumerate() {
        let mut omegas = Vec::with_capacity(nb);
        for &bits in bits_set {
            let omega: f64 = match (indicator, cache.as_deref_mut()) {
                (None, _) => 0.0,
                (Some(ind), Some(c)) => c.omega_sum(ind, layer0, gsz, bits),
                (Some(ind), None) => {
                    (layer0..layer0 + gsz).map(|layer| ind.get(layer, bits)).sum()
                }
            };
            omegas.push(omega);
        }
        for (j, &cls) in dev_class.iter().enumerate() {
            let rows = &class_lat[cls].1;
            for bi in 0..nb {
                let k = (g * n + j) * nb + bi;
                let (lp, ld) = rows[bi];
                pre[k] = gsz as f64 * lp;
                dec[k] = if phase_aware { gsz as f64 * ld } else { 0.0 };
                mem[k] = gsz as f64 * bytes_per_layer[bi];
                quality[k] = theta * omegas[bi];
                lin[k] = pre[k] + dec[k] + quality[k];
            }
        }
        layer0 += gsz;
    }

    // Fixed per-device memory: framework + workspace arena (worst case
    // over precisions and phases at this micro-batch sizing) +
    // embeddings on the master's device (pipeline position 0).
    let workspace = bits_set
        .iter()
        .map(|&b| {
            let pw = layer_workspace_bytes(spec, Phase::Prefill, mb.prefill_size, job.prompt_len, b);
            let dw = layer_workspace_bytes(spec, Phase::Decode, mb.decode_size, job.prompt_len, b);
            pw.max(dw)
        })
        .fold(0.0f64, f64::max);
    let mut fixed_mem = vec![FRAMEWORK_BYTES + round_block(workspace); n];
    fixed_mem[0] += round_block(spec.embedding_bytes());

    let capacity: Vec<f64> =
        ordering.iter().map(|&i| cluster.devices[i].spec().mem_bytes()).collect();

    let mut comm_pre = vec![0.0; n];
    let mut comm_dec = vec![0.0; n];
    for j in 0..n.saturating_sub(1) {
        let link = cluster.link_between(ordering[j], ordering[j + 1]);
        comm_pre[j] = link.transfer_time(flops::boundary_activation_bytes(spec, &pre_w));
        comm_dec[j] = link.transfer_time(flops::boundary_activation_bytes(spec, &dec_w));
    }

    let problem = PartitionProblem {
        n_groups: l,
        n_devices: n,
        n_bits: nb,
        pre_time: pre,
        dec_time: dec,
        mem,
        lin_cost: lin,
        capacity,
        fixed_mem,
        comm_pre,
        comm_dec,
        alpha_pre: (mb.prefill_count.saturating_sub(1)) as f64,
        alpha_dec: if phase_aware {
            ((job.n_generate.saturating_sub(1)) * mb.decode_count).saturating_sub(1) as f64
        } else {
            0.0
        },
        allow_empty_stages: cluster.len() > 1,
        grid: dp_grid,
    };
    (problem, quality, sizes)
}

/// Convert a solver solution into an [`ExecutionPlan`].
#[allow(clippy::too_many_arguments)]
pub fn solution_to_plan(
    cluster: &Cluster,
    ordering: &[usize],
    spec: &ModelSpec,
    sizes: &[usize],
    sol: &PartitionSolution,
    mb: &MicrobatchPlan,
    scheme: &str,
    bits_set: &[Bitwidth],
    kv_bits: u32,
) -> ExecutionPlan {
    let mut stages: Vec<StagePlan> = Vec::new();
    let mut layer = 0usize;
    for (g, &(pos, bi)) in sol.assignment.iter().enumerate() {
        let bits = bits_set[bi];
        let device = ordering[pos];
        let gsz = sizes[g];
        match stages.last_mut() {
            Some(s) if s.device == device => {
                s.layer_end += gsz;
                s.bits.extend(std::iter::repeat_n(bits, gsz));
            }
            _ => stages.push(StagePlan {
                device,
                layer_start: layer,
                layer_end: layer + gsz,
                bits: vec![bits; gsz],
            }),
        }
        layer += gsz;
    }
    ExecutionPlan {
        model: spec.name.clone(),
        cluster: cluster.name.clone(),
        stages,
        microbatch: *mb,
        scheme: scheme.into(),
        kv_bits,
    }
}

/// The bitwidth menu the solver may draw from under `cfg.max_bits`.
pub(crate) fn bit_menu(cfg: &AssignerConfig) -> Result<Vec<Bitwidth>, String> {
    let menu: Vec<Bitwidth> = Bitwidth::ALL
        .into_iter()
        .filter(|b| cfg.max_bits.is_none_or(|cap| b.bits() <= cap.bits()))
        .collect();
    if menu.is_empty() {
        return Err(format!("max_bits cap {:?} leaves no bitwidth candidates", cfg.max_bits));
    }
    Ok(menu)
}

/// Run Algorithm 1 and return the best plan.
pub fn assign(
    cluster: &Cluster,
    spec: &ModelSpec,
    job: &BatchJob,
    db: &CostDb,
    indicator: &IndicatorTable,
    cfg: &AssignerConfig,
) -> Result<AssignOutcome, String> {
    assert_eq!(
        indicator.n_layers(),
        spec.n_layers,
        "indicator must cover every decoder layer"
    );
    let start = std::time::Instant::now();
    // Bitwidth menu the solver may draw from, optionally capped from
    // above (degradation ladders shrink the menu to force lower-bit,
    // lighter plans).
    let menu = bit_menu(cfg)?;
    let orderings = device_orderings(cluster, cfg.max_orderings);
    let mut best: Option<(ExecutionPlan, PlanReport, f64, f64)> = None;
    let mut combos = 0usize;

    let kv_options: Vec<u32> = if cfg.search_kv8 { vec![16, 8] } else { vec![16] };
    for ordering in &orderings {
        let mb_plans = microbatch_counts(job, ordering.len(), cfg.xi);
        for mb in &mb_plans {
            for &kv in &kv_options {
                combos += 1;
                let (group, sol) = match cfg.solver {
                    SolverChoice::Dp { group } => {
                        let (problem, _q, sizes) = build_problem(
                            cluster, ordering, spec, job, db, Some(indicator), cfg.theta, mb,
                            group, &menu, true, cfg.dp_grid, kv as f64,
                        );
                        (sizes, solve_partition(&problem))
                    }
                    SolverChoice::Heuristic => {
                        let (problem, q, sizes) = build_problem(
                            cluster, ordering, spec, job, db, Some(indicator), cfg.theta, mb, 1,
                            &menu, true, cfg.dp_grid, kv as f64,
                        );
                        (sizes, heuristic_solve(&problem, &q, 400))
                    }
                    SolverChoice::Ilp { group, time_limit_s } => {
                        let (problem, _q, sizes) = build_problem(
                            cluster, ordering, spec, job, db, Some(indicator), cfg.theta, mb,
                            group, &menu, true, cfg.dp_grid, kv as f64,
                        );
                        let milp_cfg = MilpConfig { time_limit_s, ..Default::default() };
                        (sizes, solve_ilp(&problem, &milp_cfg))
                    }
                };
                let Some(sol) = sol else { continue };
                let plan = solution_to_plan(
                    cluster, ordering, spec, &group, &sol, mb, "LLM-PQ", &menu, kv,
                );
                let Ok(report) = evaluate_plan(&plan, cluster, spec, db, job) else {
                    continue;
                };
                let omega = indicator.total(&plan.bit_assignment().bits);
                let objective = report.total_latency + cfg.theta * omega;
                if best.as_ref().is_none_or(|(_, _, _, o)| objective < *o) {
                    best = Some((plan, report, omega, objective));
                }
            }
        }
    }

    // Seed candidates the coarse DP grid / heuristic can miss but that
    // the exact ILP's search space trivially contains: even partitions
    // with uniform bits, over every micro-batch plan. This guarantees
    // LLM-PQ never loses to the Uniform baseline, matching the paper's
    // dominance (Uniform's plans are a subset of eq. 4–16's space).
    for mb in microbatch_counts(job, cluster.len(), cfg.xi) {
        for bits in menu.iter().copied() {
            let n = cluster.len();
            let l = spec.n_layers;
            let base = l / n;
            let extra = l % n;
            let mut stages = Vec::with_capacity(n);
            let mut startl = 0usize;
            for j in 0..n {
                let take = base + usize::from(j < extra);
                if take == 0 {
                    continue;
                }
                stages.push(StagePlan {
                    device: j,
                    layer_start: startl,
                    layer_end: startl + take,
                    bits: vec![bits; take],
                });
                startl += take;
            }
            let plan = ExecutionPlan {
                model: spec.name.clone(),
                cluster: cluster.name.clone(),
                stages,
                microbatch: mb,
                scheme: "LLM-PQ".into(),
                kv_bits: 16,
            };
            let Ok(report) = evaluate_plan(&plan, cluster, spec, db, job) else {
                continue;
            };
            let omega = indicator.total(&plan.bit_assignment().bits);
            let objective = report.total_latency + cfg.theta * omega;
            if best.as_ref().is_none_or(|(_, _, _, o)| objective < *o) {
                best = Some((plan, report, omega, objective));
            }
        }
    }

    let (plan, report, omega, _) =
        best.ok_or_else(|| "no feasible plan: model cannot fit this cluster".to_string())?;
    Ok(AssignOutcome {
        plan,
        report,
        omega_total: omega,
        overhead_s: start.elapsed().as_secs_f64(),
        combinations: combos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_cluster::paper_cluster;
    use llmpq_quant::IndicatorTable;
    use llmpq_sim::KernelEnv;
    use llmpq_model::zoo;

    /// A synthetic indicator: sensitivity decays with depth, scaled per
    /// bitwidth like the variance indicator would be.
    fn synthetic_indicator(n_layers: usize) -> IndicatorTable {
        let omega = (0..n_layers)
            .map(|l| {
                let base = 1.0 / (1.0 + l as f64 * 0.15);
                // [int3, int4, int8, fp16]
                [base, base * 0.22, base * 0.01, 0.0]
            })
            .collect();
        IndicatorTable { omega }
    }

    fn quick_cfg() -> AssignerConfig {
        AssignerConfig {
            theta: 0.1,
            solver: SolverChoice::Dp { group: 8 },
            xi: 2,
            max_orderings: 2,
            dp_grid: Some(8),
            search_kv8: false,
            max_bits: None,
        }
    }

    #[test]
    fn orderings_dedupe_by_type() {
        let c = paper_cluster(3); // T4 ×3 + V100 ×1
        let ords = device_orderings(&c, 100);
        // Distinct type sequences of {T,T,T,V} = 4.
        assert_eq!(ords.len(), 4);
        for o in &ords {
            let mut sorted = o.clone();
            sorted.sort();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn ordering_cap_respected() {
        let c = paper_cluster(7); // 4 V100 + 4 A100 → C(8,4)=70 orderings
        let ords = device_orderings(&c, 10);
        assert_eq!(ords.len(), 10);
    }

    #[test]
    fn group_sizes_cover_layers() {
        assert_eq!(group_sizes(10, 3), vec![3, 3, 3, 1]);
        assert_eq!(group_sizes(8, 2), vec![2; 4]);
        assert_eq!(group_sizes(5, 8), vec![5]);
    }

    #[test]
    fn assign_produces_valid_feasible_plan() {
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = llmpq_workload::BatchJob::paper_default();
        let indicator = synthetic_indicator(spec.n_layers);
        let out = assign(&cluster, &spec, &job, &db, &indicator, &quick_cfg()).expect("plan");
        out.plan.validate(spec.n_layers).unwrap();
        assert!(out.report.throughput > 0.0);
        assert!(out.combinations > 0);
        // Must be quantized somewhere: FP16 everywhere cannot fit 30b in 80 GB.
        assert!(out.report.mean_bits < 16.0);
    }

    #[test]
    fn assign_beats_worst_ordering() {
        // The chosen plan should be at least as good as any single
        // arbitrary combination it enumerated.
        let cluster = paper_cluster(4);
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = llmpq_workload::BatchJob::paper_default();
        let indicator = synthetic_indicator(spec.n_layers);
        let mut cfg = quick_cfg();
        cfg.max_orderings = 4;
        let full = assign(&cluster, &spec, &job, &db, &indicator, &cfg).expect("plan");
        cfg.max_orderings = 1;
        let limited = assign(&cluster, &spec, &job, &db, &indicator, &cfg).expect("plan");
        let obj_full = full.report.total_latency + cfg.theta * full.omega_total;
        let obj_lim = limited.report.total_latency + cfg.theta * limited.omega_total;
        assert!(obj_full <= obj_lim + 1e-9);
    }

    #[test]
    fn heuristic_solver_also_produces_plans() {
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = llmpq_workload::BatchJob::paper_default();
        let indicator = synthetic_indicator(spec.n_layers);
        let cfg = AssignerConfig {
            solver: SolverChoice::Heuristic,
            ..quick_cfg()
        };
        let out = assign(&cluster, &spec, &job, &db, &indicator, &cfg).expect("plan");
        out.plan.validate(spec.n_layers).unwrap();
    }

    #[test]
    fn infeasible_cluster_reports_error() {
        // OPT-175b on a single T4 cannot fit even at 3 bits.
        let cluster = llmpq_cluster::Cluster::from_groups(
            "tiny",
            &[(llmpq_cluster::GpuModel::T4_16G, 1)],
            llmpq_cluster::Interconnect::Ethernet100G,
            None,
        );
        let spec = zoo::opt_175b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = llmpq_workload::BatchJob::paper_default();
        let indicator = synthetic_indicator(spec.n_layers);
        assert!(assign(&cluster, &spec, &job, &db, &indicator, &quick_cfg()).is_err());
    }

    #[test]
    fn theta_zero_prefers_throughput() {
        let cluster = paper_cluster(3);
        let spec = zoo::opt_30b();
        let db = CostDb::oracle(&KernelEnv::default());
        let job = llmpq_workload::BatchJob::paper_default();
        let indicator = synthetic_indicator(spec.n_layers);
        let mut cfg = quick_cfg();
        cfg.theta = 0.0;
        let fast = assign(&cluster, &spec, &job, &db, &indicator, &cfg).expect("plan");
        cfg.theta = 10.0;
        let careful = assign(&cluster, &spec, &job, &db, &indicator, &cfg).expect("plan");
        // θ=0 must be at least as fast; θ large must be at least as
        // high-quality (lower ω).
        assert!(fast.report.total_latency <= careful.report.total_latency + 1e-9);
        assert!(careful.omega_total <= fast.omega_total + 1e-9);
    }
}
