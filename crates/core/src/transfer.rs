//! Algorithm 2: adabits seed + bitwidth-transfer heuristic.
//!
//! The scalable replacement for the ILP (paper Optimization #3):
//!
//! 1. **adabits** — drop the latency objective and solve the reduced
//!    problem: an even layer partition plus the quality-greedy bit
//!    assignment that fits memory (lines 1–3 of Algorithm 2). This is
//!    also the "pure adaptive quantization" baseline of Fig 9.
//! 2. **Bitwidth transfer** — repeatedly identify the straggler stage
//!    (largest α-weighted phase time) and apply the best improving
//!    transformation from the rule set C: downgrade a straggler group's
//!    precision, upgrade a pioneer group's precision, or shift a
//!    boundary group between adjacent stages (precision conversion and
//!    layer-partition alteration, §4.3).

use llmpq_solver::{PartitionProblem, PartitionSolution};

/// State of a candidate plan during the heuristic search.
#[derive(Debug, Clone)]
struct State {
    /// `device[g]` — non-decreasing stage index per group.
    device: Vec<usize>,
    /// `bit[g]` — bit index per group.
    bit: Vec<usize>,
}

impl State {
    fn objective(&self, p: &PartitionProblem) -> Option<f64> {
        let n = p.n_devices;
        let mut pre = vec![0.0f64; n];
        let mut dec = vec![0.0f64; n];
        let mut mem = vec![0.0f64; n];
        let mut lin = 0.0;
        for g in 0..p.n_groups {
            let k = (g * n + self.device[g]) * p.n_bits + self.bit[g];
            pre[self.device[g]] += p.pre_time[k];
            dec[self.device[g]] += p.dec_time[k];
            mem[self.device[g]] += p.mem[k];
            lin += p.lin_cost[k];
        }
        for j in 0..n {
            let used = pre[j] > 0.0 || dec[j] > 0.0 || mem[j] > 0.0;
            if used {
                if mem[j] + p.fixed_mem[j] > p.capacity[j] + 1e-6 {
                    return None; // infeasible
                }
                pre[j] += p.comm_pre[j];
                dec[j] += p.comm_dec[j];
            }
        }
        let tp = pre.iter().cloned().fold(0.0, f64::max);
        let td = dec.iter().cloned().fold(0.0, f64::max);
        Some(p.alpha_pre * tp + p.alpha_dec * td + lin)
    }

    fn straggler(&self, p: &PartitionProblem) -> usize {
        let n = p.n_devices;
        let mut pre = vec![0.0f64; n];
        let mut dec = vec![0.0f64; n];
        for g in 0..p.n_groups {
            let k = (g * n + self.device[g]) * p.n_bits + self.bit[g];
            pre[self.device[g]] += p.pre_time[k];
            dec[self.device[g]] += p.dec_time[k];
        }
        (0..n)
            .max_by(|&a, &b| {
                let wa = p.alpha_pre * pre[a] + p.alpha_dec * dec[a];
                let wb = p.alpha_pre * pre[b] + p.alpha_dec * dec[b];
                wa.partial_cmp(&wb).unwrap()
            })
            .unwrap()
    }

    fn to_solution(&self, p: &PartitionProblem) -> PartitionSolution {
        let n = p.n_devices;
        let mut stage_pre = vec![0.0f64; n];
        let mut stage_dec = vec![0.0f64; n];
        let mut lin = 0.0;
        for g in 0..p.n_groups {
            let k = (g * n + self.device[g]) * p.n_bits + self.bit[g];
            stage_pre[self.device[g]] += p.pre_time[k];
            stage_dec[self.device[g]] += p.dec_time[k];
            lin += p.lin_cost[k];
        }
        for j in 0..n {
            if stage_pre[j] > 0.0 || stage_dec[j] > 0.0 {
                stage_pre[j] += p.comm_pre[j];
                stage_dec[j] += p.comm_dec[j];
            }
        }
        let t_max_pre = stage_pre.iter().cloned().fold(0.0, f64::max);
        let t_max_dec = stage_dec.iter().cloned().fold(0.0, f64::max);
        PartitionSolution {
            assignment: self.device.iter().zip(&self.bit).map(|(&d, &b)| (d, b)).collect(),
            objective: p.alpha_pre * t_max_pre + p.alpha_dec * t_max_dec + lin,
            t_max_pre,
            t_max_dec,
            stage_pre,
            stage_dec,
        }
    }
}

/// The adabits seed: even partition, then per-group bits chosen greedily
/// for quality (minimal `quality_cost`) under each stage's memory
/// budget. `quality_cost` is indexed `[g][j][b]` like the problem
/// tensors (typically `θ·ω`, device-independent).
///
/// Returns `None` when even the lowest precision cannot fit.
pub fn adabits_seed(p: &PartitionProblem, quality_cost: &[f64]) -> Option<State2> {
    let n = p.n_devices;
    let l = p.n_groups;
    // Even partition: distribute groups round-robin-contiguously.
    let mut device = vec![0usize; l];
    let base = l / n;
    let extra = l % n;
    let mut g = 0;
    for (j, dev) in (0..n).enumerate() {
        let take = base + usize::from(j < extra);
        for _ in 0..take {
            if g < l {
                device[g] = dev;
                g += 1;
            }
        }
    }
    // Quality-greedy bits per stage: start at the best-quality bit
    // (highest precision = minimal quality cost), then downgrade the
    // cheapest group until the stage fits.
    let mut bit = vec![0usize; l];
    for g in 0..l {
        let j = device[g];
        bit[g] = (0..p.n_bits)
            .min_by(|&a, &b| {
                let ka = (g * n + j) * p.n_bits + a;
                let kb = (g * n + j) * p.n_bits + b;
                quality_cost[ka].partial_cmp(&quality_cost[kb]).unwrap()
            })
            .unwrap();
    }
    for j in 0..n {
        loop {
            let groups: Vec<usize> = (0..l).filter(|&g| device[g] == j).collect();
            if groups.is_empty() {
                break;
            }
            let mem: f64 = groups
                .iter()
                .map(|&g| p.mem[(g * n + j) * p.n_bits + bit[g]])
                .sum();
            if mem + p.fixed_mem[j] <= p.capacity[j] + 1e-6 {
                break;
            }
            // Downgrade the group with the best Δquality/Δmem trade.
            let mut best: Option<(usize, usize, f64)> = None;
            for &g in &groups {
                let cur = (g * n + j) * p.n_bits + bit[g];
                for nb in 0..p.n_bits {
                    let cand = (g * n + j) * p.n_bits + nb;
                    let dmem = p.mem[cur] - p.mem[cand];
                    if dmem <= 1e-9 {
                        continue;
                    }
                    let dq = quality_cost[cand] - quality_cost[cur];
                    let score = dq.max(0.0) / dmem;
                    if best.is_none_or(|(_, _, s)| score < s) {
                        best = Some((g, nb, score));
                    }
                }
            }
            let (g, nb, _) = best?; // no downgrade left ⇒ infeasible
            bit[g] = nb;
        }
    }
    Some(State2 { device, bit })
}

/// Public alias of the internal state so callers (Fig 9 baseline) can
/// convert the adabits seed into a solution.
#[derive(Debug, Clone)]
pub struct State2 {
    /// Stage index per group.
    pub device: Vec<usize>,
    /// Bit index per group.
    pub bit: Vec<usize>,
}

impl State2 {
    fn as_state(&self) -> State {
        State { device: self.device.clone(), bit: self.bit.clone() }
    }

    /// Convert to a [`PartitionSolution`] (panics if infeasible).
    pub fn to_solution(&self, p: &PartitionProblem) -> PartitionSolution {
        self.as_state().to_solution(p)
    }
}

/// Algorithm 2: seed with adabits, then apply bitwidth transfers until
/// no transformation improves the objective (or `max_iters`).
pub fn heuristic_solve(
    p: &PartitionProblem,
    quality_cost: &[f64],
    max_iters: usize,
) -> Option<PartitionSolution> {
    let seed = adabits_seed(p, quality_cost)?;
    let mut state = seed.as_state();
    let mut best_obj = state.objective(p)?;

    for _ in 0..max_iters {
        let straggler = state.straggler(p);
        let mut best_move: Option<(State, f64)> = None;
        let mut consider = |cand: State| {
            if let Some(obj) = cand.objective(p) {
                if obj < best_obj - 1e-12
                    && best_move.as_ref().is_none_or(|(_, o)| obj < *o)
                {
                    best_move = Some((cand, obj));
                }
            }
        };

        let groups_on: Vec<usize> =
            (0..p.n_groups).filter(|&g| state.device[g] == straggler).collect();
        // Rule 1: change a straggler group's precision (any direction —
        // lower bits cut decode time, higher bits cut dequant overhead).
        for &g in &groups_on {
            for nb in 0..p.n_bits {
                if nb == state.bit[g] {
                    continue;
                }
                let mut cand = state.clone();
                cand.bit[g] = nb;
                consider(cand);
            }
        }
        // Rule 2: shift a boundary group off the straggler to the
        // adjacent stage (both directions), optionally retuning its bits.
        if let (Some(&first), Some(&last)) = (groups_on.first(), groups_on.last()) {
            if straggler > 0 {
                for nb in 0..p.n_bits {
                    let mut cand = state.clone();
                    cand.device[first] = straggler - 1;
                    cand.bit[first] = nb;
                    consider(cand);
                }
            }
            if straggler + 1 < p.n_devices && first != last {
                for nb in 0..p.n_bits {
                    let mut cand = state.clone();
                    cand.device[last] = straggler + 1;
                    cand.bit[last] = nb;
                    consider(cand);
                }
            }
        }
        // Rule 3: upgrade the cheapest group on the *pioneer* (fastest)
        // stage — spends its slack on quality.
        let pioneer = (0..p.n_devices)
            .filter(|&j| j != straggler)
            .min_by(|&a, &b| {
                let ta: f64 = (0..p.n_groups)
                    .filter(|&g| state.device[g] == a)
                    .map(|g| p.pre_time[(g * p.n_devices + a) * p.n_bits + state.bit[g]])
                    .sum();
                let tb: f64 = (0..p.n_groups)
                    .filter(|&g| state.device[g] == b)
                    .map(|g| p.pre_time[(g * p.n_devices + b) * p.n_bits + state.bit[g]])
                    .sum();
                ta.partial_cmp(&tb).unwrap()
            });
        if let Some(pi) = pioneer {
            for g in (0..p.n_groups).filter(|&g| state.device[g] == pi) {
                for nb in 0..p.n_bits {
                    if nb == state.bit[g] {
                        continue;
                    }
                    let mut cand = state.clone();
                    cand.bit[g] = nb;
                    consider(cand);
                }
            }
        }

        match best_move {
            Some((cand, obj)) => {
                state = cand;
                best_obj = obj;
            }
            None => break,
        }
    }
    Some(state.to_solution(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_solver::solve_partition;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn problem(seed: u64, l: usize, n: usize, nb: usize) -> (PartitionProblem, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let size = l * n * nb;
        let mut pre = vec![0.0; size];
        let mut dec = vec![0.0; size];
        let mut mem = vec![0.0; size];
        let mut quality = vec![0.0; size];
        for g in 0..l {
            for j in 0..n {
                let speed = 1.0 + (j as f64) * 0.7;
                for b in 0..nb {
                    let bits = [16.0, 8.0, 4.0, 3.0][b.min(3)];
                    let k = (g * n + j) * nb + b;
                    pre[k] = rng.gen_range(0.8..1.2) / speed * (0.7 + bits / 24.0);
                    dec[k] = rng.gen_range(0.08..0.12) / speed * (0.2 + bits / 16.0);
                    mem[k] = bits;
                    quality[k] = (16.0 - bits) * rng.gen_range(0.5..1.5);
                }
            }
        }
        let lin_cost: Vec<f64> =
            (0..size).map(|k| pre[k] + dec[k] + quality[k]).collect();
        let p = PartitionProblem {
            n_groups: l,
            n_devices: n,
            n_bits: nb,
            pre_time: pre,
            dec_time: dec,
            mem,
            lin_cost,
            capacity: vec![16.0 * l as f64 / n as f64 * 0.8; n],
            fixed_mem: vec![0.0; n],
            comm_pre: vec![0.02; n],
            comm_dec: vec![0.002; n],
            alpha_pre: 7.0,
            alpha_dec: 99.0,
            allow_empty_stages: false,
            grid: None,
        };
        (p, quality)
    }

    #[test]
    fn adabits_is_feasible_and_even() {
        let (p, q) = problem(1, 8, 2, 4);
        let seed = adabits_seed(&p, &q).expect("feasible");
        let on0 = seed.device.iter().filter(|&&d| d == 0).count();
        assert_eq!(on0, 4, "even partition");
        // Memory respected.
        for j in 0..2 {
            let mem: f64 = (0..8)
                .filter(|&g| seed.device[g] == j)
                .map(|g| p.mem[(g * 2 + j) * 4 + seed.bit[g]])
                .sum();
            assert!(mem <= p.capacity[j] + 1e-6);
        }
    }

    #[test]
    fn adabits_infeasible_when_too_small() {
        let (mut p, q) = problem(2, 6, 2, 4);
        p.capacity = vec![4.0; 2]; // 3 groups × min 3 units > 4
        assert!(adabits_seed(&p, &q).is_none());
    }

    #[test]
    fn heuristic_improves_on_adabits() {
        for seed in 0..5 {
            let (p, q) = problem(seed, 10, 3, 4);
            let ada = adabits_seed(&p, &q).unwrap().to_solution(&p);
            let heu = heuristic_solve(&p, &q, 300).unwrap();
            assert!(
                heu.objective <= ada.objective + 1e-9,
                "seed {seed}: heuristic {} vs adabits {}",
                heu.objective,
                ada.objective
            );
        }
    }

    #[test]
    fn heuristic_close_to_dp_optimum() {
        // The paper reports the heuristic "effective in most cases";
        // require within 35% of the stage-uniform DP optimum on small
        // instances (it can even beat the DP since it mixes bits within
        // a stage).
        let mut wins = 0;
        for seed in 10..16 {
            let (p, q) = problem(seed, 8, 2, 4);
            let dp = solve_partition(&p).unwrap();
            let heu = heuristic_solve(&p, &q, 300).unwrap();
            assert!(
                heu.objective <= dp.objective * 1.35,
                "seed {seed}: heuristic {} vs dp {}",
                heu.objective,
                dp.objective
            );
            if heu.objective <= dp.objective + 1e-9 {
                wins += 1;
            }
        }
        assert!(wins >= 1, "heuristic should match/beat DP somewhere");
    }

    #[test]
    fn heuristic_respects_memory() {
        let (mut p, q) = problem(3, 9, 3, 4);
        p.capacity = vec![3.0 * 16.0 * 0.5; 3]; // force some quantization
        if let Some(sol) = heuristic_solve(&p, &q, 300) {
            for j in 0..3 {
                let mem: f64 = sol
                    .assignment
                    .iter()
                    .enumerate()
                    .filter(|(_, (d, _))| *d == j)
                    .map(|(g, (d, b))| p.mem[(g * 3 + d) * 4 + b])
                    .sum();
                assert!(mem <= p.capacity[j] + 1e-6, "stage {j} over capacity");
            }
        }
    }

    #[test]
    fn transfer_moves_layers_toward_fast_devices() {
        // Device 1 is much faster; even partition is a bad start and the
        // heuristic should shift work to it.
        let (p, q) = problem(4, 8, 2, 4);
        let heu = heuristic_solve(&p, &q, 300).unwrap();
        let fast = heu.assignment.iter().filter(|(d, _)| *d == 1).count();
        assert!(fast >= 4, "fast device hosts {fast} groups");
    }

    #[test]
    fn solutions_remain_contiguous() {
        let (p, q) = problem(5, 12, 3, 4);
        let heu = heuristic_solve(&p, &q, 500).unwrap();
        for w in heu.assignment.windows(2) {
            assert!(w[1].0 >= w[0].0, "contiguity violated: {:?}", heu.assignment);
        }
    }
}
