//! Synthetic evaluation corpora.
//!
//! Each corpus is a set of token sequences sampled from the FP32 teacher
//! model at a corpus-specific temperature and seed — three corpora
//! standing in for WikiText2, PTB and C4. Lower temperature ⇒ more
//! predictable text ⇒ lower absolute PPL; the *relative* degradation
//! under quantization is what the experiments compare.

use llmpq_model::RefModel;
use serde::{Deserialize, Serialize};

/// A named corpus of token sequences.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Corpus {
    /// Corpus name (`"wikitext2-syn"`, …).
    pub name: String,
    /// Token sequences (each ≥ 2 tokens).
    pub sequences: Vec<Vec<usize>>,
}

impl Corpus {
    /// Sample a corpus of `n_seqs` sequences of `len` tokens from the
    /// teacher at `temperature`.
    pub fn sample(
        name: &str,
        teacher: &RefModel,
        n_seqs: usize,
        len: usize,
        temperature: f32,
        seed: u64,
    ) -> Corpus {
        assert!(len >= 2 && len <= teacher.cfg.max_seq);
        let sequences = (0..n_seqs)
            .map(|i| {
                let start = 1 + (seed as usize + i * 17) % (teacher.cfg.vocab - 1);
                let gen = teacher.generate(&[start], len - 1, temperature, seed ^ (i as u64) << 8);
                let mut s = vec![start];
                s.extend(gen.tokens);
                s
            })
            .collect();
        Corpus { name: name.to_string(), sequences }
    }

    /// Total predicted tokens across the corpus.
    pub fn n_tokens(&self) -> usize {
        self.sequences.iter().map(|s| s.len().saturating_sub(1)).sum()
    }
}

/// The three standard corpora of the paper's evaluation, scaled to the
/// reference model: WikiText2-, PTB- and C4-like.
pub fn standard_corpora(teacher: &RefModel, n_seqs: usize, len: usize) -> Vec<Corpus> {
    vec![
        Corpus::sample("wikitext2-syn", teacher, n_seqs, len, 0.85, 0xA11CE),
        Corpus::sample("ptb-syn", teacher, n_seqs, len, 0.75, 0xB0B),
        Corpus::sample("c4-syn", teacher, n_seqs, len, 1.0, 0xC4),
    ]
}

/// Calibration sequences (the stand-in for "128 random 2048-token C4
/// segments"), sampled like the C4 corpus but from a disjoint seed.
pub fn calibration_set(teacher: &RefModel, n_seqs: usize, len: usize) -> Vec<Vec<usize>> {
    Corpus::sample("calib", teacher, n_seqs, len, 1.0, 0xCA11B).sequences
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_model::{RefConfig, RefModel};

    #[test]
    fn corpora_have_requested_shape() {
        let m = RefModel::new(RefConfig::tiny());
        let cs = standard_corpora(&m, 4, 24);
        assert_eq!(cs.len(), 3);
        for c in &cs {
            assert_eq!(c.sequences.len(), 4);
            assert!(c.sequences.iter().all(|s| s.len() == 24));
            assert_eq!(c.n_tokens(), 4 * 23);
        }
    }

    #[test]
    fn corpora_are_distinct_and_reproducible() {
        let m = RefModel::new(RefConfig::tiny());
        let a = standard_corpora(&m, 3, 16);
        let b = standard_corpora(&m, 3, 16);
        assert_eq!(a, b);
        assert_ne!(a[0].sequences, a[2].sequences);
    }

    #[test]
    fn calibration_disjoint_from_eval() {
        let m = RefModel::new(RefConfig::tiny());
        let calib = calibration_set(&m, 3, 16);
        let eval = &standard_corpora(&m, 3, 16)[2];
        assert_ne!(calib, eval.sequences);
    }

    #[test]
    fn tokens_within_vocab() {
        let m = RefModel::new(RefConfig::tiny());
        for c in standard_corpora(&m, 2, 12) {
            for s in &c.sequences {
                assert!(s.iter().all(|&t| t < m.cfg.vocab));
            }
        }
    }
}
