//! Distributional divergence between a quantized model and its
//! full-precision teacher.
//!
//! Perplexity measures quality against a corpus; these metrics measure
//! *drift from the teacher directly* — per-position KL divergence and
//! top-1 agreement of the next-token distributions — which is the
//! quantity quantization actually perturbs and is corpus-independent.
//! Used by the quality harness as a finer-grained companion to the
//! paper's PPL columns.

use crate::corpus::Corpus;
use llmpq_model::{Matrix, RefModel};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Drift statistics of a model against its teacher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DivergenceReport {
    /// Mean per-position KL(teacher ‖ model), nats.
    pub mean_kl: f64,
    /// Fraction of positions where both models agree on the argmax token.
    pub top1_agreement: f64,
    /// Number of scored positions.
    pub positions: usize,
}

fn softmax(row: &[f32]) -> Vec<f64> {
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v)) as f64;
    let exps: Vec<f64> = row.iter().map(|&v| ((v as f64) - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap()
}

/// Compare `model` to `teacher` over every position of every corpus
/// sequence.
pub fn divergence(teacher: &RefModel, model: &RefModel, corpus: &Corpus) -> DivergenceReport {
    assert_eq!(teacher.cfg.vocab, model.cfg.vocab, "models must share a vocabulary");
    let stats: Vec<(f64, usize, usize)> = corpus
        .sequences
        .par_iter()
        .map(|seq| {
            let (t_logits, _): (Matrix, _) = teacher.prefill(&seq[..seq.len() - 1]);
            let (m_logits, _) = model.prefill(&seq[..seq.len() - 1]);
            let mut kl = 0.0f64;
            let mut agree = 0usize;
            for pos in 0..t_logits.rows {
                let p = softmax(t_logits.row(pos));
                let q = softmax(m_logits.row(pos));
                kl += p
                    .iter()
                    .zip(&q)
                    .map(|(&pi, &qi)| if pi > 0.0 { pi * (pi / qi.max(1e-12)).ln() } else { 0.0 })
                    .sum::<f64>();
                if argmax(t_logits.row(pos)) == argmax(m_logits.row(pos)) {
                    agree += 1;
                }
            }
            (kl, agree, t_logits.rows)
        })
        .collect();
    let total_kl: f64 = stats.iter().map(|s| s.0).sum();
    let total_agree: usize = stats.iter().map(|s| s.1).sum();
    let positions: usize = stats.iter().map(|s| s.2).sum();
    DivergenceReport {
        mean_kl: total_kl / positions as f64,
        top1_agreement: total_agree as f64 / positions as f64,
        positions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::standard_corpora;
    use llmpq_model::{RefConfig, RefModel};
    use llmpq_quant::{quantize_model_uniform, Bitwidth, Rounding};

    fn setup() -> (RefModel, Corpus) {
        let m = RefModel::new(RefConfig::tiny());
        let c = standard_corpora(&m, 4, 20).remove(0);
        (m, c)
    }

    #[test]
    fn self_divergence_is_zero() {
        let (m, c) = setup();
        let r = divergence(&m, &m, &c);
        assert!(r.mean_kl.abs() < 1e-9);
        assert_eq!(r.top1_agreement, 1.0);
        assert_eq!(r.positions, 4 * 19);
    }

    #[test]
    fn kl_grows_as_bits_shrink() {
        // A hotter, larger corpus than setup()'s: the int3 argmax-flip
        // assertion below needs positions where the teacher distribution
        // is flat enough that quantization noise can change the winner.
        let m = RefModel::new(RefConfig::tiny());
        let c = Corpus::sample("kl-ladder", &m, 8, 40, 1.6, 0xD1F);
        let mut prev_kl = 0.0;
        let mut prev_agree = 1.0;
        for bits in [Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int3] {
            let q = quantize_model_uniform(&m, bits, Rounding::Deterministic, 0);
            let r = divergence(&m, &q, &c);
            assert!(r.mean_kl >= prev_kl - 1e-9, "{bits}: KL {:.5} < {prev_kl:.5}", r.mean_kl);
            assert!(
                r.top1_agreement <= prev_agree + 0.05,
                "{bits}: agreement should not recover"
            );
            prev_kl = r.mean_kl;
            prev_agree = r.top1_agreement;
        }
        assert!(prev_kl > 0.0, "int3 must diverge measurably");
        assert!(prev_agree < 1.0, "int3 must flip some argmaxes");
    }

    #[test]
    fn kl_is_nonnegative() {
        let (m, c) = setup();
        let q = quantize_model_uniform(&m, Bitwidth::Int4, Rounding::Stochastic, 3);
        let r = divergence(&m, &q, &c);
        assert!(r.mean_kl >= 0.0);
        assert!((0.0..=1.0).contains(&r.top1_agreement));
    }

    #[test]
    #[should_panic(expected = "share a vocabulary")]
    fn rejects_vocab_mismatch() {
        let (m, c) = setup();
        let other = RefModel::new(RefConfig { vocab: 128, ..RefConfig::tiny() });
        divergence(&m, &other, &c);
    }
}
