//! # llmpq-quality
//!
//! Model-quality measurement for quantization experiments: synthetic
//! corpora, perplexity, and zero-shot multiple-choice accuracy.
//!
//! The paper measures perplexity on WikiText2/PTB/C4 and accuracy on
//! LAMBADA/ARC/PIQA. Those datasets gauge one thing in a quantization
//! study: *how much the quantized model's predictive distribution drifts
//! from the full-precision one*. We reproduce that measurement with
//! corpora sampled from the FP32 reference model itself (so the teacher
//! is by construction the true distribution and quantization can only
//! hurt) and with teacher-derived multiple-choice tasks.

pub mod corpus;
pub mod divergence;
pub mod ppl;
pub mod tasks;

pub use corpus::{standard_corpora, Corpus};
pub use divergence::{divergence, DivergenceReport};
pub use ppl::{mean_nll, perplexity, perplexity_suite};
pub use tasks::{accuracy_suite, task_accuracy, ChoiceTask, TaskSet};
