//! Perplexity evaluation.

use crate::corpus::Corpus;
use llmpq_model::RefModel;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Mean per-token negative log-likelihood of a model over a corpus,
/// parallelized over sequences.
pub fn mean_nll(model: &RefModel, corpus: &Corpus) -> f64 {
    let (total, tokens): (f64, usize) = corpus
        .sequences
        .par_iter()
        .map(|s| (model.nll(s) * (s.len() - 1) as f64, s.len() - 1))
        .reduce(|| (0.0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    total / tokens as f64
}

/// Perplexity: `exp(mean NLL)`. "Smaller PPL means the model is more
/// confident in its prediction" (Fig 4 caption).
pub fn perplexity(model: &RefModel, corpus: &Corpus) -> f64 {
    mean_nll(model, corpus).exp()
}

/// Per-corpus perplexities plus their average — the "Avg. Perplexity"
/// column of Tables 1/4/5/6/7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PplReport {
    /// `(corpus name, PPL)` rows.
    pub per_corpus: Vec<(String, f64)>,
    /// Mean over corpora.
    pub average: f64,
}

/// Evaluate a model on several corpora.
pub fn perplexity_suite(model: &RefModel, corpora: &[Corpus]) -> PplReport {
    assert!(!corpora.is_empty());
    let per_corpus: Vec<(String, f64)> = corpora
        .iter()
        .map(|c| (c.name.clone(), perplexity(model, c)))
        .collect();
    let average = per_corpus.iter().map(|(_, p)| p).sum::<f64>() / per_corpus.len() as f64;
    PplReport { per_corpus, average }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::standard_corpora;
    use llmpq_model::{RefConfig, RefModel};
    use llmpq_quant::{quantize_model_uniform, Bitwidth, Rounding};

    #[test]
    fn teacher_beats_quantized_on_every_corpus() {
        let m = RefModel::new(RefConfig::tiny());
        let corpora = standard_corpora(&m, 4, 24);
        let q3 = quantize_model_uniform(&m, Bitwidth::Int3, Rounding::Deterministic, 0);
        for c in &corpora {
            let base = perplexity(&m, c);
            let quant = perplexity(&q3, c);
            assert!(quant > base, "{}: {quant} should exceed {base}", c.name);
        }
    }

    #[test]
    fn suite_average_is_mean() {
        let m = RefModel::new(RefConfig::tiny());
        let corpora = standard_corpora(&m, 3, 16);
        let r = perplexity_suite(&m, &corpora);
        let mean = r.per_corpus.iter().map(|(_, p)| p).sum::<f64>() / 3.0;
        assert!((r.average - mean).abs() < 1e-12);
        assert_eq!(r.per_corpus.len(), 3);
    }

    #[test]
    fn lower_temperature_corpus_has_lower_ppl() {
        let m = RefModel::new(RefConfig::tiny());
        let corpora = standard_corpora(&m, 6, 24);
        let ppl: Vec<f64> = corpora.iter().map(|c| perplexity(&m, c)).collect();
        // ptb-syn (T=0.75) should be easier than c4-syn (T=1.0).
        assert!(ppl[1] < ppl[2], "ptb {} vs c4 {}", ppl[1], ppl[2]);
    }

    #[test]
    fn nll_weighted_by_sequence_length() {
        let m = RefModel::new(RefConfig::tiny());
        let c = Corpus {
            name: "mixed".into(),
            sequences: vec![vec![1, 2, 3], vec![4, 5, 6, 7, 8, 9]],
        };
        let manual = (m.nll(&c.sequences[0]) * 2.0 + m.nll(&c.sequences[1]) * 5.0) / 7.0;
        assert!((mean_nll(&m, &c) - manual).abs() < 1e-12);
    }
}
