//! Zero-shot multiple-choice accuracy (LAMBADA/ARC/PIQA analogues).
//!
//! Each task item is a context plus `k` candidate continuations, exactly
//! one of which was sampled from the teacher at low temperature (the
//! "natural" continuation); distractors are sampled at high temperature
//! from shuffled contexts. A model answers by picking the continuation
//! with the highest length-normalized log-likelihood — the standard
//! zero-shot protocol. The teacher scores high but below 100% (sampling
//! noise); quantization erodes the margin, so accuracy falls with bits,
//! reproducing Fig 4(b)'s shape.

use llmpq_model::{log_softmax_at, RefModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One multiple-choice item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChoiceTask {
    /// Shared context tokens.
    pub context: Vec<usize>,
    /// Candidate continuations.
    pub choices: Vec<Vec<usize>>,
    /// Index of the correct choice.
    pub answer: usize,
}

/// A named set of tasks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSet {
    /// Benchmark name (`"lambada-syn"`, …).
    pub name: String,
    /// The items.
    pub tasks: Vec<ChoiceTask>,
}

impl TaskSet {
    /// Build a task set from the teacher: `n` items with `n_choices`
    /// candidates, contexts of `ctx_len` tokens, continuations of
    /// `cont_len`.
    pub fn generate(
        name: &str,
        teacher: &RefModel,
        n: usize,
        n_choices: usize,
        ctx_len: usize,
        cont_len: usize,
        seed: u64,
    ) -> TaskSet {
        assert!(n_choices >= 2);
        assert!(ctx_len + cont_len <= teacher.cfg.max_seq);
        let tasks = (0..n)
            .map(|i| {
                let s = seed ^ ((i as u64) << 16);
                // Context: a medium-temperature sample.
                let start = 1 + (i * 37) % (teacher.cfg.vocab - 1);
                let ctx_gen = teacher.generate(&[start], ctx_len - 1, 0.9, s);
                let mut context = vec![start];
                context.extend(ctx_gen.tokens);
                // Correct continuation: low-temperature (natural) sample.
                let correct = teacher
                    .generate(&context, cont_len, 0.3, s ^ 0xC0)
                    .tokens;
                // Distractors must be *hard*: alternating between
                // (a) minimal pairs — the correct continuation with one
                //     token swapped for the teacher's *second choice* at
                //     that position, so the likelihood margin is the gap
                //     between the top-2 next-token probabilities, which
                //     quantization noise readily flips — and
                // (b) plausible same-context samples at a higher
                //     temperature.
                let mut rng = SmallRng::seed_from_u64(s ^ 0xD15);
                let mut choices: Vec<Vec<usize>> = (1..n_choices)
                    .map(|d| {
                        if d % 2 == 1 {
                            let pos = rng.gen_range(0..correct.len());
                            let mut prefix = context.clone();
                            prefix.extend_from_slice(&correct[..pos]);
                            let (logits, _) = teacher.prefill(&prefix);
                            let row = logits.row(logits.rows - 1);
                            let runner_up = row
                                .iter()
                                .enumerate()
                                .filter(|(t, _)| *t != correct[pos])
                                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                                .map(|(t, _)| t)
                                .unwrap();
                            let mut mutated = correct.clone();
                            mutated[pos] = runner_up;
                            mutated
                        } else {
                            teacher.generate(&context, cont_len, 1.1, s ^ (d as u64)).tokens
                        }
                    })
                    .collect();
                // A distractor colliding with the correct answer would
                // make the item ambiguous; nudge its first token.
                for c in &mut choices {
                    if *c == correct {
                        c[0] = (c[0] + 1) % teacher.cfg.vocab;
                    }
                }
                let answer = i % n_choices;
                choices.insert(answer, correct);
                ChoiceTask { context, choices, answer }
            })
            .collect();
        TaskSet { name: name.to_string(), tasks }
    }
}

/// Length-normalized log-likelihood of `continuation` after `context`.
pub fn continuation_logprob(model: &RefModel, context: &[usize], continuation: &[usize]) -> f64 {
    assert!(!context.is_empty() && !continuation.is_empty());
    let mut full = context.to_vec();
    full.extend_from_slice(continuation);
    let (logits, _) = model.prefill(&full[..full.len() - 1]);
    let mut total = 0.0;
    for (k, &tok) in continuation.iter().enumerate() {
        let pos = context.len() + k - 1; // logits row predicting this token
        total += log_softmax_at(logits.row(pos), tok);
    }
    total / continuation.len() as f64
}

/// Accuracy of `model` on a task set.
pub fn task_accuracy(model: &RefModel, set: &TaskSet) -> f64 {
    let correct: usize = set
        .tasks
        .par_iter()
        .map(|t| {
            let best = t
                .choices
                .iter()
                .enumerate()
                .map(|(i, c)| (i, continuation_logprob(model, &t.context, c)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            usize::from(best == t.answer)
        })
        .sum();
    correct as f64 / set.tasks.len() as f64
}

/// The paper's three zero-shot benchmarks, teacher-generated.
pub fn standard_tasks(teacher: &RefModel, n_per_set: usize) -> Vec<TaskSet> {
    vec![
        TaskSet::generate("lambada-syn", teacher, n_per_set, 4, 20, 4, 0x1A),
        TaskSet::generate("arc-syn", teacher, n_per_set, 4, 16, 6, 0xA2C),
        TaskSet::generate("piqa-syn", teacher, n_per_set, 2, 18, 8, 0x919A),
    ]
}

/// Mean accuracy over several task sets — the "Avg. Accuracy" column.
pub fn accuracy_suite(model: &RefModel, sets: &[TaskSet]) -> f64 {
    assert!(!sets.is_empty());
    sets.iter().map(|s| task_accuracy(model, s)).sum::<f64>() / sets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_model::{RefConfig, RefModel};
    use llmpq_quant::{quantize_model_uniform, Bitwidth, Rounding};

    fn teacher() -> RefModel {
        RefModel::new(RefConfig::tiny())
    }

    #[test]
    fn teacher_accuracy_is_high_but_not_perfect_floor() {
        let m = teacher();
        let sets = standard_tasks(&m, 30);
        let acc = accuracy_suite(&m, &sets);
        // The teacher should comfortably beat chance (~0.29 for mixed 4/4/2).
        assert!(acc > 0.55, "teacher accuracy {acc}");
    }

    #[test]
    fn heavy_quantization_hurts_accuracy() {
        let m = teacher();
        let sets = standard_tasks(&m, 30);
        let base = accuracy_suite(&m, &sets);
        let q3 = quantize_model_uniform(&m, Bitwidth::Int3, Rounding::Deterministic, 0);
        let quant = accuracy_suite(&q3, &sets);
        assert!(
            quant <= base + 0.02,
            "int3 accuracy {quant} should not beat fp32 {base}"
        );
    }

    #[test]
    fn continuation_logprob_prefers_natural_text() {
        let m = teacher();
        let ctx = {
            let g = m.generate(&[5], 15, 0.8, 1);
            let mut c = vec![5];
            c.extend(g.tokens);
            c
        };
        let natural = m.generate(&ctx, 5, 0.1, 2).tokens;
        let random: Vec<usize> = vec![11, 73, 2, 90, 41];
        let lp_nat = continuation_logprob(&m, &ctx, &natural);
        let lp_rand = continuation_logprob(&m, &ctx, &random);
        assert!(lp_nat > lp_rand, "natural {lp_nat} vs random {lp_rand}");
    }

    #[test]
    fn answer_positions_are_spread() {
        let m = teacher();
        let set = TaskSet::generate("t", &m, 12, 4, 12, 3, 9);
        let positions: std::collections::HashSet<usize> =
            set.tasks.iter().map(|t| t.answer).collect();
        assert!(positions.len() > 1, "answers must not all share a slot");
        for t in &set.tasks {
            assert_eq!(t.choices.len(), 4);
            assert!(t.answer < 4);
        }
    }

    #[test]
    fn task_generation_reproducible() {
        let m = teacher();
        let a = TaskSet::generate("t", &m, 5, 3, 10, 4, 42);
        let b = TaskSet::generate("t", &m, 5, 3, 10, 4, 42);
        assert_eq!(a, b);
    }
}
