//! Minimal dense linear algebra for the reference transformer.
//!
//! A row-major `f32` matrix with a rayon-parallel GEMM plus the handful of
//! elementwise kernels a decoder layer needs (LayerNorm, softmax, GELU).
//! This is deliberately simple — the reference model exists to propagate
//! real quantization error, not to set GEMM speed records — but the GEMM
//! is cache-aware (ikj loop order) and parallel over output rows per the
//! hpc guide idioms.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix from existing row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Matrix with i.i.d. entries uniform in `[-scale, scale]`, seeded for
    /// reproducibility. `1/sqrt(cols)` scaling mimics trained-weight
    /// magnitudes so activations stay O(1) through the stack.
    pub fn random(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.gen_range(-scale..=scale)).collect();
        Self { rows, cols, data }
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` with a rayon-parallel, ikj-ordered kernel.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        out.data
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, out_row)| {
                let a_row = self.row(i);
                // No value-dependent skip here: a branch per k-step makes
                // GEMM timing input-dependent, which skews calibration.
                for (k, &a) in a_row.iter().enumerate() {
                    let b_row = other.row(k);
                    for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += a * b;
                    }
                }
            });
        out
    }

    /// `self · otherᵀ` — the natural layout for projection weights stored
    /// as `(out_features, in_features)`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.rows);
        let n = other.rows;
        out.data
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, out_row)| {
                let a_row = self.row(i);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = other.row(j);
                    let mut acc = 0.0f32;
                    for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            });
        out
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
    }

    /// Elementwise maximum absolute value.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Mean of all entries.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&x| x as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Population variance of all entries.
    pub fn variance(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        self.data.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / self.data.len() as f64
    }
}

/// In-place LayerNorm over each row: `(x - μ)/σ · γ + β`.
pub fn layer_norm(x: &mut Matrix, gamma: &[f32], beta: &[f32]) {
    assert_eq!(gamma.len(), x.cols);
    assert_eq!(beta.len(), x.cols);
    let cols = x.cols;
    x.data.par_chunks_mut(cols).for_each(|row| {
        let mean = row.iter().sum::<f32>() / cols as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        let inv = 1.0 / (var + 1e-5).sqrt();
        for ((v, &g), &b) in row.iter_mut().zip(gamma).zip(beta) {
            *v = (*v - mean) * inv * g + b;
        }
    });
}

/// In-place numerically-stable softmax over each row.
pub fn softmax_rows(x: &mut Matrix) {
    let cols = x.cols;
    x.data.par_chunks_mut(cols).for_each(|row| {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    });
}

/// In-place GELU (tanh approximation, as used by OPT/BLOOM).
pub fn gelu(x: &mut Matrix) {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    x.data.par_iter_mut().for_each(|v| {
        let u = *v;
        *v = 0.5 * u * (1.0 + (C * (u + 0.044715 * u * u * u)).tanh());
    });
}

/// `a += b` elementwise.
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.cols, b.cols);
    a.data.par_iter_mut().zip(b.data.par_iter()).for_each(|(x, &y)| *x += y);
}

/// Add a bias row vector to every row of `a`.
pub fn add_bias(a: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), a.cols);
    let cols = a.cols;
    a.data.par_chunks_mut(cols).for_each(|row| {
        for (v, &b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let id = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_t_agrees_with_matmul() {
        let a = Matrix::random(5, 7, 1.0, 1);
        let b = Matrix::random(4, 7, 1.0, 2);
        // Build bᵀ explicitly.
        let mut bt = Matrix::zeros(7, 4);
        for i in 0..4 {
            for j in 0..7 {
                bt.data[j * 4 + i] = b.data[i * 7 + j];
            }
        }
        let c1 = a.matmul_t(&b);
        let c2 = a.matmul(&bt);
        for (x, y) in c1.data.iter().zip(c2.data.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::random(6, 10, 3.0, 3);
        softmax_rows(&mut m);
        for r in 0..6 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(m.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut m = Matrix::from_vec(1, 3, vec![1000.0, 1000.0, 999.0]);
        softmax_rows(&mut m);
        assert!(m.data.iter().all(|v| v.is_finite()));
        assert!((m.data[0] - m.data[1]).abs() < 1e-6);
    }

    #[test]
    fn layer_norm_normalizes() {
        let mut m = Matrix::random(3, 64, 5.0, 4);
        let gamma = vec![1.0; 64];
        let beta = vec![0.0; 64];
        layer_norm(&mut m, &gamma, &beta);
        for r in 0..3 {
            let row = m.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 64.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn gelu_fixed_points() {
        let mut m = Matrix::from_vec(1, 3, vec![0.0, 10.0, -10.0]);
        gelu(&mut m);
        assert!(m.data[0].abs() < 1e-6);
        assert!((m.data[1] - 10.0).abs() < 1e-3);
        assert!(m.data[2].abs() < 1e-3);
    }

    #[test]
    fn random_is_reproducible() {
        let a = Matrix::random(4, 4, 1.0, 42);
        let b = Matrix::random(4, 4, 1.0, 42);
        assert_eq!(a, b);
        let c = Matrix::random(4, 4, 1.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn variance_and_mean() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        assert!((m.mean() - 2.5).abs() < 1e-12);
        assert!((m.variance() - 1.25).abs() < 1e-12);
    }
}
