//! The model zoo: published OPT and BLOOM configurations used by the paper.
//!
//! Layer counts and hidden sizes follow the released checkpoints
//! (Zhang et al. 2022 for OPT; Scao et al. 2022 for BLOOM). The paper's
//! evaluation uses OPT-13b/30b/66b and BLOOM-176b for serving, and
//! OPT-1.3b / BLOOM-560m/1b7/3b for quality and cost-model experiments.

use crate::spec::{ModelFamily, ModelSpec};

/// OPT vocabulary size (GPT-2 BPE + specials).
pub const OPT_VOCAB: usize = 50272;
/// OPT maximum sequence length.
pub const OPT_MAX_POS: usize = 2048;
/// BLOOM vocabulary size.
pub const BLOOM_VOCAB: usize = 250_880;
/// BLOOM maximum sequence length (ALiBi extrapolates; this bounds KV).
pub const BLOOM_MAX_POS: usize = 2048;

fn opt(name: &str, layers: usize, hidden: usize, heads: usize) -> ModelSpec {
    ModelSpec::new(ModelFamily::Opt, name, layers, hidden, heads, OPT_VOCAB, OPT_MAX_POS)
}

fn bloom(name: &str, layers: usize, hidden: usize, heads: usize) -> ModelSpec {
    ModelSpec::new(
        ModelFamily::Bloom,
        name,
        layers,
        hidden,
        heads,
        BLOOM_VOCAB,
        BLOOM_MAX_POS,
    )
}

/// OPT-125m (used only in unit tests — smallest published OPT).
pub fn opt_125m() -> ModelSpec {
    opt("opt-125m", 12, 768, 12)
}

/// OPT-1.3b — quality-experiment model (Fig 4b, Table 1).
pub fn opt_1_3b() -> ModelSpec {
    opt("opt-1.3b", 24, 2048, 32)
}

/// OPT-13b — clusters 1 and 2.
pub fn opt_13b() -> ModelSpec {
    opt("opt-13b", 40, 5120, 40)
}

/// OPT-30b — clusters 3, 4, 9.
pub fn opt_30b() -> ModelSpec {
    opt("opt-30b", 48, 7168, 56)
}

/// OPT-66b — clusters 5, 6, 10.
pub fn opt_66b() -> ModelSpec {
    opt("opt-66b", 64, 9216, 72)
}

/// OPT-175b — used in the arithmetic-intensity discussion (§4.1).
pub fn opt_175b() -> ModelSpec {
    opt("opt-175b", 96, 12288, 96)
}

/// BLOOM-560m — cost-model fidelity experiment (Fig 7).
pub fn bloom_560m() -> ModelSpec {
    bloom("bloom-560m", 24, 1024, 16)
}

/// BLOOM-1b7 — cost-model fidelity experiment (Fig 7).
pub fn bloom_1b7() -> ModelSpec {
    bloom("bloom-1b7", 24, 2048, 16)
}

/// BLOOM-3b — quality-experiment model (Fig 4a, Table 1).
pub fn bloom_3b() -> ModelSpec {
    bloom("bloom-3b", 30, 2560, 32)
}

/// BLOOM-176b — clusters 7, 8, 11.
pub fn bloom_176b() -> ModelSpec {
    bloom("bloom-176b", 70, 14336, 112)
}

/// Look a model up by its id (`"opt-30b"`, `"bloom-176b"`, …).
pub fn by_name(name: &str) -> Option<ModelSpec> {
    let all = all_models();
    all.into_iter().find(|m| m.name == name)
}

/// Every model in the zoo.
pub fn all_models() -> Vec<ModelSpec> {
    vec![
        opt_125m(),
        opt_1_3b(),
        opt_13b(),
        opt_30b(),
        opt_66b(),
        opt_175b(),
        bloom_560m(),
        bloom_1b7(),
        bloom_3b(),
        bloom_176b(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published parameter counts (billions) to validate our accounting.
    const EXPECTED: &[(&str, f64)] = &[
        ("opt-1.3b", 1.3e9),
        ("opt-13b", 13e9),
        ("opt-30b", 30e9),
        ("opt-66b", 66e9),
        ("opt-175b", 175e9),
        ("bloom-560m", 0.56e9),
        ("bloom-1b7", 1.7e9),
        ("bloom-3b", 3.0e9),
        ("bloom-176b", 176e9),
    ];

    #[test]
    fn zoo_matches_published_param_counts() {
        for (name, expect) in EXPECTED {
            let spec = by_name(name).unwrap();
            let got = spec.total_params() as f64;
            let err = (got - expect).abs() / expect;
            assert!(
                err < 0.15,
                "{name}: got {got:.3e}, expected {expect:.3e} ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("opt-30b").is_some());
        assert!(by_name("gpt-J").is_none());
    }

    #[test]
    fn all_models_have_unique_names() {
        let models = all_models();
        let mut names: Vec<_> = models.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), models.len());
    }

    #[test]
    fn serving_models_fit_paper_cluster_sizing() {
        // The paper sizes models so FP16 weights ≈ total cluster memory.
        // OPT-30b FP16 ≈ 60 GB, cluster 3 = 3×16 + 32 = 80 GB. Sanity-check
        // the weight-bytes helper at FP16.
        let spec = opt_30b();
        let total_fp16 = spec.n_layers as f64 * spec.layer_weight_bytes(16.0)
            + spec.embedding_bytes();
        let gb = total_fp16 / 1e9;
        assert!(gb > 55.0 && gb < 70.0, "OPT-30b FP16 ≈ {gb:.1} GB");
    }
}
