//! A linear operator that is either a dense `f32` matrix or a packed
//! low-bit weight served by the fused dequant-GEMM.
//!
//! Every projection in [`crate::reference::LayerWeights`] is a
//! [`LinearOp`]. The FP path stores a plain [`Matrix`]; a quantized
//! layer stores a [`PackedMatrix`] and never materializes `f32` weights
//! in memory — [`LinearOp::forward_t`] dequantizes tiles in registers on
//! the way into the multiply. Both variants produce bit-identical
//! outputs to `x.matmul_t(dequantized_weight)`, so swapping the
//! representation never changes served tokens.

use crate::tensor::Matrix;
use llmpq_kernels::{qgemm_t, PackBits, PackedMatrix};
use serde::{Deserialize, Serialize};

/// A linear projection in `(out_features, in_features)` orientation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LinearOp {
    /// Dense `f32` weights (the FP16-stand-in path).
    Dense(Matrix),
    /// Packed low-bit weights served by the fused dequant-GEMM.
    Packed(PackedMatrix),
}

impl LinearOp {
    /// Output features (rows of the `(out, in)` weight).
    pub fn out_features(&self) -> usize {
        match self {
            LinearOp::Dense(m) => m.rows,
            LinearOp::Packed(p) => p.rows,
        }
    }

    /// Input features (the GEMM reduction length).
    pub fn in_features(&self) -> usize {
        match self {
            LinearOp::Dense(m) => m.cols,
            LinearOp::Packed(p) => p.cols,
        }
    }

    /// Whether the operator is stored packed.
    pub fn is_packed(&self) -> bool {
        matches!(self, LinearOp::Packed(_))
    }

    /// Grid precision of a packed operator.
    pub fn pack_bits(&self) -> Option<PackBits> {
        match self {
            LinearOp::Dense(_) => None,
            LinearOp::Packed(p) => Some(p.bits),
        }
    }

    /// `x · wᵀ` — the projection the transformer layers call. Dense
    /// weights run `Matrix::matmul_t`; packed weights run the fused
    /// dequant-GEMM, which is bit-identical to dequantizing first.
    pub fn forward_t(&self, x: &Matrix) -> Matrix {
        match self {
            LinearOp::Dense(m) => x.matmul_t(m),
            LinearOp::Packed(p) => {
                assert_eq!(x.cols, p.cols, "in_features mismatch");
                Matrix { rows: x.rows, cols: p.rows, data: qgemm_t(&x.data, x.rows, p) }
            }
        }
    }

    /// The dense matrix, for calibration/indicator paths that inspect
    /// FP weights. Panics on a packed operator — those paths run before
    /// quantization by construction.
    pub fn dense(&self) -> &Matrix {
        match self {
            LinearOp::Dense(m) => m,
            LinearOp::Packed(p) => panic!(
                "operator is packed ({} {}×{}); dense() is only valid on the FP model",
                p.bits, p.rows, p.cols
            ),
        }
    }

    /// Mutable dense access (same contract as [`LinearOp::dense`]).
    pub fn dense_mut(&mut self) -> &mut Matrix {
        match self {
            LinearOp::Dense(m) => m,
            LinearOp::Packed(p) => panic!(
                "operator is packed ({} {}×{}); dense_mut() is only valid on the FP model",
                p.bits, p.rows, p.cols
            ),
        }
    }

    /// The packed payload, if any.
    pub fn as_packed(&self) -> Option<&PackedMatrix> {
        match self {
            LinearOp::Dense(_) => None,
            LinearOp::Packed(p) => Some(p),
        }
    }

    /// Materialize the operator as a dense matrix (dequantizing if
    /// packed) — value-identical to what [`LinearOp::forward_t`]
    /// multiplies against.
    pub fn to_matrix(&self) -> Matrix {
        match self {
            LinearOp::Dense(m) => m.clone(),
            LinearOp::Packed(p) => Matrix { rows: p.rows, cols: p.cols, data: p.unpack() },
        }
    }

    /// Bytes this operator keeps resident: packed payload + scales/zeros
    /// for the quantized path, `4 · rows · cols` for the dense path.
    pub fn resident_bytes(&self) -> usize {
        match self {
            LinearOp::Dense(m) => m.data.len() * 4,
            LinearOp::Packed(p) => p.resident_bytes(),
        }
    }
}

impl From<Matrix> for LinearOp {
    fn from(m: Matrix) -> Self {
        LinearOp::Dense(m)
    }
}

impl From<PackedMatrix> for LinearOp {
    fn from(p: PackedMatrix) -> Self {
        LinearOp::Packed(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_kernels::quantize_packed;

    #[test]
    fn dense_forward_matches_matmul_t() {
        let x = Matrix::random(3, 16, 0.5, 1);
        let w = Matrix::random(8, 16, 0.5, 2);
        let op = LinearOp::Dense(w.clone());
        assert_eq!(op.forward_t(&x), x.matmul_t(&w));
    }

    #[test]
    fn packed_forward_bit_identical_to_dequant_matmul_t() {
        let x = Matrix::random(2, 24, 0.5, 3);
        let w = Matrix::random(10, 24, 0.5, 4);
        let p = quantize_packed(&w.data, 10, 24, PackBits::Int4, 8);
        let op = LinearOp::Packed(p);
        let fused = op.forward_t(&x);
        let reference = x.matmul_t(&op.to_matrix());
        assert_eq!(fused.rows, 2);
        assert_eq!(fused.cols, 10);
        for (a, b) in fused.data.iter().zip(&reference.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn resident_bytes_shrink_when_packed() {
        let w = Matrix::random(64, 128, 0.5, 5);
        let dense = LinearOp::Dense(w.clone());
        let packed = LinearOp::Packed(quantize_packed(&w.data, 64, 128, PackBits::Int4, 64));
        assert!(packed.resident_bytes() * 4 < dense.resident_bytes());
        assert_eq!(dense.out_features(), packed.out_features());
        assert_eq!(dense.in_features(), packed.in_features());
    }

    #[test]
    #[should_panic(expected = "only valid on the FP model")]
    fn dense_accessor_rejects_packed() {
        let w = Matrix::random(4, 8, 0.5, 6);
        LinearOp::Packed(quantize_packed(&w.data, 4, 8, PackBits::Int8, 8)).dense();
    }
}
