//! A small, runnable decoder-only transformer.
//!
//! This is the live substrate for every quality experiment: it executes
//! real pre-LN attention + MLP math in `f32`, with a per-layer KV cache
//! and the two generative phases (prefill / decode). Quantization
//! experiments swap in really-quantized weight matrices and measure the
//! resulting perplexity change — the quantity Figures 4/8 and Tables 1/6
//! of the paper report.
//!
//! The model is *synthetic* (seeded random weights). Perplexity is
//! measured against corpora sampled from the FP32 model itself (see
//! `llmpq-quality`), so the FP32 model is by construction the true data
//! distribution and quantization degrades PPL monotonically — matching
//! the paper's experimental shape without needing trained checkpoints.

use crate::linear::LinearOp;
use crate::tensor::{add_assign, add_bias, gelu, layer_norm, softmax_rows, Matrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a reference transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefConfig {
    /// Number of decoder layers.
    pub n_layers: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// MLP inner dimension.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length (positional table rows / KV capacity).
    pub max_seq: usize,
    /// Weight-initialization seed.
    pub seed: u64,
    /// Use ALiBi attention biases instead of learned positional
    /// embeddings (the BLOOM family's scheme).
    pub alibi: bool,
}

impl RefConfig {
    /// A tiny config for unit tests.
    pub fn tiny() -> Self {
        Self { n_layers: 2, hidden: 32, n_heads: 4, ffn: 64, vocab: 96, max_seq: 64, seed: 7, alibi: false }
    }

    /// A laptop-scale stand-in preserving a zoo model's *layer count* so
    /// layer-range experiments (Table 1: "layers 0–8 of OPT-1.3b") keep
    /// their meaning, while shrinking width to stay runnable.
    pub fn scaled_like(n_layers: usize, seed: u64) -> Self {
        Self { n_layers, hidden: 64, n_heads: 4, ffn: 128, vocab: 256, max_seq: 128, seed, alibi: false }
    }

    /// A BLOOM-style stand-in: same scale as [`RefConfig::scaled_like`]
    /// but with ALiBi attention and no positional-embedding table.
    pub fn scaled_like_bloom(n_layers: usize, seed: u64) -> Self {
        Self { alibi: true, ..Self::scaled_like(n_layers, seed) }
    }
}

/// Weights of one decoder layer. Projection operators are stored as
/// `(out_features, in_features)`, matching `Matrix::matmul_t`; each is a
/// [`LinearOp`] — dense `f32` on the FP path, packed low-bit after
/// quantization (served by the fused dequant-GEMM, bit-identical to the
/// dense forward over dequantized weights).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWeights {
    /// Query projection, `hidden × hidden`.
    pub wq: LinearOp,
    /// Key projection.
    pub wk: LinearOp,
    /// Value projection.
    pub wv: LinearOp,
    /// Attention output projection.
    pub wo: LinearOp,
    /// MLP up-projection, `ffn × hidden`.
    pub w1: LinearOp,
    /// MLP down-projection, `hidden × ffn`.
    pub w2: LinearOp,
    /// Biases for q/k/v/o (hidden each).
    pub bq: Vec<f32>,
    /// Key bias.
    pub bk: Vec<f32>,
    /// Value bias.
    pub bv: Vec<f32>,
    /// Output bias.
    pub bo: Vec<f32>,
    /// MLP biases.
    pub b1: Vec<f32>,
    /// MLP down bias.
    pub b2: Vec<f32>,
    /// Pre-attention LayerNorm scale/shift.
    pub ln1_g: Vec<f32>,
    /// Pre-attention LayerNorm shift.
    pub ln1_b: Vec<f32>,
    /// Pre-MLP LayerNorm scale.
    pub ln2_g: Vec<f32>,
    /// Pre-MLP LayerNorm shift.
    pub ln2_b: Vec<f32>,
}

impl LayerWeights {
    /// Random init with trained-like magnitudes (`~1/sqrt(fan_in)`).
    pub fn random(cfg: &RefConfig, seed: u64) -> Self {
        let h = cfg.hidden;
        let f = cfg.ffn;
        let sh = 1.0 / (h as f32).sqrt();
        let sf = 1.0 / (f as f32).sqrt();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut bias = |n: usize, s: f32| -> Vec<f32> {
            (0..n).map(|_| rng.gen_range(-s..=s)).collect()
        };
        let bq = bias(h, 0.02);
        let bk = bias(h, 0.02);
        let bv = bias(h, 0.02);
        let bo = bias(h, 0.02);
        let b1 = bias(f, 0.02);
        let b2 = bias(h, 0.02);
        Self {
            wq: LinearOp::Dense(Matrix::random(h, h, sh, seed ^ 0x11)),
            wk: LinearOp::Dense(Matrix::random(h, h, sh, seed ^ 0x22)),
            wv: LinearOp::Dense(Matrix::random(h, h, sh, seed ^ 0x33)),
            wo: LinearOp::Dense(Matrix::random(h, h, sh, seed ^ 0x44)),
            w1: LinearOp::Dense(Matrix::random(f, h, sh, seed ^ 0x55)),
            w2: LinearOp::Dense(Matrix::random(h, f, sf, seed ^ 0x66)),
            bq,
            bk,
            bv,
            bo,
            b1,
            b2,
            ln1_g: vec![1.0; h],
            ln1_b: vec![0.0; h],
            ln2_g: vec![1.0; h],
            ln2_b: vec![0.0; h],
        }
    }

    /// The six linear operators, with stable operator names — the unit
    /// the paper's variance indicator sums over (`O_i` in Proposition 2).
    pub fn linear_operators(&self) -> [(&'static str, &LinearOp); 6] {
        [
            ("wq", &self.wq),
            ("wk", &self.wk),
            ("wv", &self.wv),
            ("wo", &self.wo),
            ("w1", &self.w1),
            ("w2", &self.w2),
        ]
    }

    /// Mutable access to a named linear operator.
    pub fn linear_operator_mut(&mut self, name: &str) -> Option<&mut LinearOp> {
        match name {
            "wq" => Some(&mut self.wq),
            "wk" => Some(&mut self.wk),
            "wv" => Some(&mut self.wv),
            "wo" => Some(&mut self.wo),
            "w1" => Some(&mut self.w1),
            "w2" => Some(&mut self.w2),
            _ => None,
        }
    }

    /// Bytes the layer's projection weights keep resident — packed
    /// payloads count their true (bits-scaled) footprint, dense weights
    /// their full `f32` size. Biases and norm parameters are negligible
    /// and excluded.
    pub fn resident_weight_bytes(&self) -> usize {
        self.linear_operators().iter().map(|(_, op)| op.resident_bytes()).sum()
    }
}

/// Per-layer KV cache for a single sequence.
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    /// Cached keys per layer, each `t × hidden`.
    pub k: Vec<Matrix>,
    /// Cached values per layer.
    pub v: Vec<Matrix>,
}

impl KvCache {
    /// Empty cache for `n_layers` layers of width `hidden`.
    pub fn new(n_layers: usize, hidden: usize) -> Self {
        Self {
            k: (0..n_layers).map(|_| Matrix::zeros(0, hidden)).collect(),
            v: (0..n_layers).map(|_| Matrix::zeros(0, hidden)).collect(),
        }
    }

    /// Number of cached positions (same for every layer).
    pub fn len(&self) -> usize {
        self.k.first().map_or(0, |m| m.rows)
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn append(&mut self, layer: usize, k_new: &Matrix, v_new: &Matrix) {
        let k = &mut self.k[layer];
        k.data.extend_from_slice(&k_new.data);
        k.rows += k_new.rows;
        let v = &mut self.v[layer];
        v.data.extend_from_slice(&v_new.data);
        v.rows += v_new.rows;
    }
}

/// Output of a generation call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationOutput {
    /// The generated token ids (excluding the prompt).
    pub tokens: Vec<usize>,
}

/// The reference model: embeddings + decoder stack + tied LM head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefModel {
    /// Configuration.
    pub cfg: RefConfig,
    /// Token embedding table, `vocab × hidden` (tied LM head).
    pub embed: Matrix,
    /// Positional embedding table, `max_seq × hidden`.
    pub pos: Matrix,
    /// Decoder layers.
    pub layers: Vec<LayerWeights>,
    /// Final LayerNorm scale.
    pub ln_f_g: Vec<f32>,
    /// Final LayerNorm shift.
    pub ln_f_b: Vec<f32>,
}

impl RefModel {
    /// Build a model with seeded random weights.
    pub fn new(cfg: RefConfig) -> Self {
        let layers = (0..cfg.n_layers)
            .map(|i| LayerWeights::random(&cfg, cfg.seed.wrapping_add(1000 + i as u64)))
            .collect();
        Self {
            embed: Matrix::random(cfg.vocab, cfg.hidden, 0.5, cfg.seed ^ 0xE),
            pos: Matrix::random(cfg.max_seq, cfg.hidden, 0.05, cfg.seed ^ 0xF),
            layers,
            ln_f_g: vec![1.0; cfg.hidden],
            ln_f_b: vec![0.0; cfg.hidden],
            cfg,
        }
    }

    /// Embed `tokens` starting at absolute position `start_pos`.
    pub fn embed_tokens(&self, tokens: &[usize], start_pos: usize) -> Matrix {
        let h = self.cfg.hidden;
        let mut x = Matrix::zeros(tokens.len(), h);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < self.cfg.vocab, "token {t} out of vocab");
            let pos = start_pos + i;
            assert!(pos < self.cfg.max_seq, "position {pos} exceeds max_seq");
            let e = self.embed.row(t);
            if self.cfg.alibi {
                x.row_mut(i).copy_from_slice(e);
            } else {
                let p = self.pos.row(pos);
                for (j, v) in x.row_mut(i).iter_mut().enumerate() {
                    *v = e[j] + p[j];
                }
            }
        }
        x
    }

    /// Run one decoder layer over hidden states `x` (t_new × hidden),
    /// appending this step's K/V to `cache` for that layer. `x` may be a
    /// whole prompt (prefill) or a single token (decode); attention is
    /// causal over `cache ++ x`.
    pub fn forward_layer(&self, layer_idx: usize, x: &Matrix, cache: &mut KvCache) -> Matrix {
        forward_layer_alibi(&self.layers[layer_idx], self.cfg.n_heads, layer_idx, x, cache, self.cfg.alibi)
    }

    /// Apply the final LayerNorm and tied LM head, returning logits
    /// (`t × vocab`).
    pub fn project_logits(&self, x: &Matrix) -> Matrix {
        let mut x = x.clone();
        layer_norm(&mut x, &self.ln_f_g, &self.ln_f_b);
        x.matmul_t(&self.embed)
    }

    /// Prefill: run the whole prompt through all layers, returning logits
    /// for every position and the populated KV cache.
    pub fn prefill(&self, tokens: &[usize]) -> (Matrix, KvCache) {
        let mut cache = KvCache::new(self.cfg.n_layers, self.cfg.hidden);
        let mut x = self.embed_tokens(tokens, 0);
        for l in 0..self.cfg.n_layers {
            x = self.forward_layer(l, &x, &mut cache);
        }
        (self.project_logits(&x), cache)
    }

    /// Decode one token given the cache; returns logits for the next token.
    pub fn decode_step(&self, token: usize, cache: &mut KvCache) -> Vec<f32> {
        let pos = cache.len();
        let mut x = self.embed_tokens(&[token], pos);
        for l in 0..self.cfg.n_layers {
            x = self.forward_layer(l, &x, cache);
        }
        self.project_logits(&x).data
    }

    /// Greedy/temperature sampling of `n_new` tokens after `prompt`.
    /// `temperature == 0` means greedy argmax.
    pub fn generate(&self, prompt: &[usize], n_new: usize, temperature: f32, seed: u64) -> GenerationOutput {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(prompt.len() + n_new <= self.cfg.max_seq, "sequence exceeds max_seq");
        let (logits, mut cache) = self.prefill(prompt);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n_new);
        let mut next = sample_from_logits(logits.row(logits.rows - 1), temperature, &mut rng);
        for step in 0..n_new {
            out.push(next);
            if step + 1 == n_new {
                break;
            }
            let logits = self.decode_step(next, &mut cache);
            next = sample_from_logits(&logits, temperature, &mut rng);
        }
        GenerationOutput { tokens: out }
    }

    /// Teacher-forced negative log-likelihood of `tokens` (natural log,
    /// averaged per predicted token). `exp` of this is perplexity.
    pub fn nll(&self, tokens: &[usize]) -> f64 {
        assert!(tokens.len() >= 2, "need at least two tokens for NLL");
        let (logits, _) = self.prefill(&tokens[..tokens.len() - 1]);
        let mut total = 0.0f64;
        for (i, &target) in tokens.iter().enumerate().skip(1) {
            let row = logits.row(i - 1);
            total += -log_softmax_at(row, target);
        }
        total / (tokens.len() - 1) as f64
    }
}

/// Inputs observed at each linear operator during one layer forward —
/// the `X` in the paper's quantization objective ‖WX − W̃X‖² and in the
/// variance indicator's `G(X)` term. Collected by
/// [`forward_layer_taps`] during calibration.
#[derive(Debug, Clone)]
pub struct OperatorTaps {
    /// Input to wq/wk/wv (the post-LN hidden states).
    pub attn_in: Matrix,
    /// Input to wo (concatenated attention heads).
    pub wo_in: Matrix,
    /// Input to w1 (post-LN residual stream).
    pub w1_in: Matrix,
    /// Input to w2 (post-GELU activations).
    pub w2_in: Matrix,
}

impl OperatorTaps {
    /// The tap feeding a named linear operator.
    pub fn input_for(&self, op: &str) -> &Matrix {
        match op {
            "wq" | "wk" | "wv" => &self.attn_in,
            "wo" => &self.wo_in,
            "w1" => &self.w1_in,
            "w2" => &self.w2_in,
            other => panic!("unknown operator {other}"),
        }
    }
}

/// Run one decoder layer given explicit weights — the entry point the
/// pipeline runtime uses so a stage can own only its shard of layers.
pub fn forward_layer_with(
    w: &LayerWeights,
    n_heads: usize,
    layer_idx: usize,
    x: &Matrix,
    cache: &mut KvCache,
) -> Matrix {
    forward_layer_inner(w, n_heads, layer_idx, x, cache, None, false)
}

/// Like [`forward_layer_with`] with an explicit ALiBi switch — the
/// entry point for BLOOM-style stages.
pub fn forward_layer_alibi(
    w: &LayerWeights,
    n_heads: usize,
    layer_idx: usize,
    x: &Matrix,
    cache: &mut KvCache,
    alibi: bool,
) -> Matrix {
    forward_layer_inner(w, n_heads, layer_idx, x, cache, None, alibi)
}

/// The ALiBi slope of attention head `h` out of `n`: `2^(−8(h+1)/n)`
/// (Press et al.), the scheme BLOOM uses.
pub fn alibi_slope(head: usize, n_heads: usize) -> f32 {
    2f32.powf(-8.0 * (head as f32 + 1.0) / n_heads as f32)
}

/// Like [`forward_layer_with`] but also returns the operator-input taps
/// used by quantization calibration.
pub fn forward_layer_taps(
    w: &LayerWeights,
    n_heads: usize,
    layer_idx: usize,
    x: &Matrix,
    cache: &mut KvCache,
) -> (Matrix, OperatorTaps) {
    let mut taps = None;
    let out = forward_layer_inner(w, n_heads, layer_idx, x, cache, Some(&mut taps), false);
    (out, taps.expect("taps requested but not produced"))
}

fn forward_layer_inner(
    w: &LayerWeights,
    n_heads: usize,
    layer_idx: usize,
    x: &Matrix,
    cache: &mut KvCache,
    taps: Option<&mut Option<OperatorTaps>>,
    alibi: bool,
) -> Matrix {
    let h = x.cols;
    let head_dim = h / n_heads;
    let t_new = x.rows;
    let past = cache.k[layer_idx].rows;

    // --- Attention block (pre-LN) ---
    let mut xn = x.clone();
    layer_norm(&mut xn, &w.ln1_g, &w.ln1_b);
    let mut q = w.wq.forward_t(&xn);
    add_bias(&mut q, &w.bq);
    let mut k = w.wk.forward_t(&xn);
    add_bias(&mut k, &w.bk);
    let mut v = w.wv.forward_t(&xn);
    add_bias(&mut v, &w.bv);
    cache.append(layer_idx, &k, &v);
    let k_all = &cache.k[layer_idx];
    let v_all = &cache.v[layer_idx];
    let t_all = k_all.rows;

    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut attn_out = Matrix::zeros(t_new, h);
    for head in 0..n_heads {
        let lo = head * head_dim;
        let hi = lo + head_dim;
        // Scores: (t_new × t_all) for this head, causally masked.
        let mut scores = Matrix::zeros(t_new, t_all);
        let slope = if alibi { alibi_slope(head, n_heads) } else { 0.0 };
        for i in 0..t_new {
            let qi = &q.row(i)[lo..hi];
            let limit = past + i; // may attend to positions 0..=past+i
            for j in 0..t_all {
                let s = if j <= limit {
                    let dot = {
                        let kj = &k_all.row(j)[lo..hi];
                        qi.iter().zip(kj).map(|(&a, &b)| a * b).sum::<f32>() * scale
                    };
                    // ALiBi: penalize distance linearly per head.
                    dot - slope * (limit - j) as f32
                } else {
                    f32::NEG_INFINITY
                };
                scores.data[i * t_all + j] = s;
            }
        }
        softmax_rows(&mut scores);
        for i in 0..t_new {
            let out_row = attn_out.row_mut(i);
            for j in 0..t_all {
                let p = scores.data[i * t_all + j];
                if p == 0.0 {
                    continue;
                }
                let vj = &v_all.row(j)[lo..hi];
                for (d, &vv) in vj.iter().enumerate() {
                    out_row[lo + d] += p * vv;
                }
            }
        }
    }
    let mut attn_proj = w.wo.forward_t(&attn_out);
    add_bias(&mut attn_proj, &w.bo);
    let mut x1 = x.clone();
    add_assign(&mut x1, &attn_proj);

    // --- MLP block (pre-LN) ---
    let mut xn2 = x1.clone();
    layer_norm(&mut xn2, &w.ln2_g, &w.ln2_b);
    let mut hmid = w.w1.forward_t(&xn2);
    add_bias(&mut hmid, &w.b1);
    gelu(&mut hmid);
    let mut out = w.w2.forward_t(&hmid);
    add_bias(&mut out, &w.b2);
    add_assign(&mut out, &x1);

    if let Some(slot) = taps {
        *slot = Some(OperatorTaps {
            attn_in: xn,
            wo_in: attn_out,
            w1_in: xn2,
            w2_in: hmid,
        });
    }
    out
}

/// Log-softmax value at index `target`.
pub fn log_softmax_at(logits: &[f32], target: usize) -> f64 {
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v)) as f64;
    let lse = logits.iter().map(|&v| ((v as f64) - max).exp()).sum::<f64>().ln() + max;
    logits[target] as f64 - lse
}

/// Sample a token from raw logits at `temperature` (0 → argmax).
pub fn sample_from_logits(logits: &[f32], temperature: f32, rng: &mut SmallRng) -> usize {
    if temperature <= 0.0 {
        return logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
    }
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let weights: Vec<f64> = logits.iter().map(|&v| (((v - max) / temperature) as f64).exp()).collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_then_decode_matches_full_prefill() {
        // Decoding token-by-token with the cache must produce the same
        // logits as prefilling the whole sequence — the KV-cache
        // correctness invariant.
        let model = RefModel::new(RefConfig::tiny());
        let seq = [3usize, 17, 42, 8, 25];
        let (full_logits, _) = model.prefill(&seq);

        let (_, mut cache) = model.prefill(&seq[..2]);
        let mut last = Vec::new();
        for &t in &seq[2..] {
            last = model.decode_step(t, &mut cache);
        }
        let want = full_logits.row(full_logits.rows - 1);
        for (a, b) in want.iter().zip(last.iter()) {
            assert!((a - b).abs() < 1e-3, "prefill {a} vs decode {b}");
        }
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let model = RefModel::new(RefConfig::tiny());
        let a = model.generate(&[1, 2, 3], 10, 0.8, 99);
        let b = model.generate(&[1, 2, 3], 10, 0.8, 99);
        assert_eq!(a, b);
        let c = model.generate(&[1, 2, 3], 10, 0.8, 100);
        // Overwhelmingly likely to differ somewhere.
        assert!(a != c || a.tokens.iter().all(|&t| t < model.cfg.vocab));
    }

    #[test]
    fn greedy_generation_temperature_zero() {
        let model = RefModel::new(RefConfig::tiny());
        let a = model.generate(&[5, 6], 8, 0.0, 1);
        let b = model.generate(&[5, 6], 8, 0.0, 2);
        assert_eq!(a, b, "greedy decoding ignores the sampling seed");
    }

    #[test]
    fn nll_is_finite_and_positive() {
        let model = RefModel::new(RefConfig::tiny());
        let toks = model.generate(&[1], 20, 1.0, 5).tokens;
        let mut seq = vec![1usize];
        seq.extend(toks);
        let nll = model.nll(&seq);
        assert!(nll.is_finite() && nll > 0.0);
        // PPL can't beat uniform better than vocab size allows.
        assert!(nll < (model.cfg.vocab as f64).ln() * 2.0);
    }

    #[test]
    fn model_prefers_its_own_samples() {
        // Sequences sampled from the model should have lower NLL than
        // uniform-random sequences — the property the quality experiments
        // rely on.
        let model = RefModel::new(RefConfig::tiny());
        let own = {
            let toks = model.generate(&[7], 30, 0.9, 11).tokens;
            let mut s = vec![7usize];
            s.extend(toks);
            model.nll(&s)
        };
        let mut rng = SmallRng::seed_from_u64(13);
        let rand_seq: Vec<usize> = (0..31).map(|_| rng.gen_range(0..model.cfg.vocab)).collect();
        let random = model.nll(&rand_seq);
        assert!(own < random, "own {own:.3} vs random {random:.3}");
    }

    #[test]
    fn perturbing_weights_raises_nll_on_own_corpus() {
        // The core mechanism behind every PPL-vs-bitwidth figure.
        let model = RefModel::new(RefConfig::tiny());
        let toks = model.generate(&[2], 40, 0.9, 21).tokens;
        let mut seq = vec![2usize];
        seq.extend(toks);
        let base = model.nll(&seq);

        let mut noisy = model.clone();
        let mut rng = SmallRng::seed_from_u64(3);
        for l in &mut noisy.layers {
            let (wq, w2) = (l.wq.dense_mut(), l.w2.dense_mut());
            for v in wq.data.iter_mut().chain(w2.data.iter_mut()) {
                *v += rng.gen_range(-0.15..0.15);
            }
        }
        let worse = noisy.nll(&seq);
        assert!(worse > base, "noise should hurt: {base:.4} -> {worse:.4}");
    }

    #[test]
    fn forward_layer_shapes() {
        let cfg = RefConfig::tiny();
        let model = RefModel::new(cfg);
        let mut cache = KvCache::new(cfg.n_layers, cfg.hidden);
        let x = model.embed_tokens(&[1, 2, 3], 0);
        let y = model.forward_layer(0, &x, &mut cache);
        assert_eq!(y.rows, 3);
        assert_eq!(y.cols, cfg.hidden);
        assert_eq!(cache.k[0].rows, 3);
        assert_eq!(cache.k[1].rows, 0, "only layer 0 was run");
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn rejects_out_of_vocab_tokens() {
        let model = RefModel::new(RefConfig::tiny());
        model.prefill(&[10_000]);
    }

    #[test]
    fn alibi_model_prefill_decode_equivalence() {
        // The KV-cache invariant must hold under ALiBi too: the bias
        // depends only on absolute key distance, which the cache encodes.
        let cfg = RefConfig { alibi: true, ..RefConfig::tiny() };
        let model = RefModel::new(cfg);
        let seq = [3usize, 17, 42, 8, 25, 61];
        let (full_logits, _) = model.prefill(&seq);
        let (_, mut cache) = model.prefill(&seq[..2]);
        let mut last = Vec::new();
        for &t in &seq[2..] {
            last = model.decode_step(t, &mut cache);
        }
        for (a, b) in full_logits.row(full_logits.rows - 1).iter().zip(last.iter()) {
            assert!((a - b).abs() < 1e-3, "prefill {a} vs decode {b}");
        }
    }

    #[test]
    fn alibi_changes_attention_behaviour() {
        let base = RefModel::new(RefConfig::tiny());
        let alibi = RefModel::new(RefConfig { alibi: true, ..RefConfig::tiny() });
        // Same weights (same seed), different positional scheme ⇒
        // different logits on a multi-token prompt.
        let (a, _) = base.prefill(&[1, 2, 3, 4, 5]);
        let (b, _) = alibi.prefill(&[1, 2, 3, 4, 5]);
        assert_ne!(a.data, b.data);
    }

    #[test]
    fn alibi_slopes_decay_geometrically() {
        let s: Vec<f32> = (0..4).map(|h| alibi_slope(h, 4)).collect();
        assert!((s[0] - 0.25).abs() < 1e-6);
        for w in s.windows(2) {
            assert!((w[1] / w[0] - 0.25).abs() < 1e-6, "ratio 2^-2 per head");
        }
    }

    #[test]
    fn alibi_embedding_skips_positional_table() {
        let cfg = RefConfig { alibi: true, ..RefConfig::tiny() };
        let model = RefModel::new(cfg);
        // The same token at two positions embeds identically under ALiBi.
        let a = model.embed_tokens(&[5], 0);
        let b = model.embed_tokens(&[5], 10);
        assert_eq!(a, b);
        // …but not under learned positions.
        let base = RefModel::new(RefConfig::tiny());
        assert_ne!(base.embed_tokens(&[5], 0), base.embed_tokens(&[5], 10));
    }

    #[test]
    fn log_softmax_normalizes() {
        let logits = vec![0.5f32, -1.0, 2.0, 0.0];
        let total: f64 = (0..4).map(|i| log_softmax_at(&logits, i).exp()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
