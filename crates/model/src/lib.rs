//! # llmpq-model
//!
//! Decoder-only transformer model descriptions and a small, runnable
//! reference implementation.
//!
//! This crate provides the two model-side substrates the LLM-PQ paper
//! depends on:
//!
//! 1. **Architecture metadata** ([`ModelSpec`], [`zoo`]) for the OPT and
//!    BLOOM families the paper evaluates (OPT-1.3b … 175b, BLOOM-560m …
//!    176b), together with exact per-layer parameter, FLOP and memory-
//!    operation accounting ([`flops`]). The assigner and the cost models
//!    consume only this metadata — they never need real weights.
//! 2. **A real, runnable reference transformer** ([`mod@reference`]) with
//!    pre-allocated KV cache and the two generative phases (prefill and
//!    decode). It is small enough to run on a laptop but numerically
//!    faithful: quantization-quality experiments (perplexity vs. bitwidth,
//!    layer sensitivity) run real attention/MLP math through really
//!    quantized weights.
//!
//! The split mirrors the paper's system: planning happens on metadata,
//! quality measurement happens on a live model.

pub mod checkpoint;
pub mod flops;
pub mod linear;
pub mod phase;
pub mod reference;
pub mod spec;
pub mod tensor;
pub mod zoo;

pub use checkpoint::{load_checkpoint, save_checkpoint};
pub use flops::{LayerCost, PhaseWorkload};
pub use linear::LinearOp;
pub use phase::Phase;
pub use reference::{
    alibi_slope, forward_layer_alibi, forward_layer_taps, forward_layer_with, log_softmax_at,
    sample_from_logits,
    GenerationOutput, KvCache, LayerWeights, OperatorTaps, RefConfig, RefModel,
};
pub use spec::{ModelFamily, ModelSpec};
pub use tensor::Matrix;

/// Group length of the packed quantized layout the serving path uses;
/// re-exported so planners can account scale/zero metadata without
/// depending on `llmpq-kernels` directly.
pub use llmpq_kernels::DEFAULT_GROUP as QUANT_GROUP;
