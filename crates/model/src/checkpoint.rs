//! Checkpoint persistence for the reference model.
//!
//! The paper's runtime loads HuggingFace checkpoints from disk through
//! the on-the-fly quantizer; here the checkpoint format is a JSON dump
//! of the FP32 reference model, so `llmpq-dist` can serve a *specific*
//! model rather than regenerating one from a seed.

use crate::reference::RefModel;
use std::path::Path;

/// Serialize a model to a checkpoint file.
pub fn save_checkpoint(model: &RefModel, path: &Path) -> Result<(), String> {
    let json = serde_json::to_string(model).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("{}: {e}", path.display()))
}

/// Load a model from a checkpoint file.
pub fn load_checkpoint(path: &Path) -> Result<RefModel, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let model: RefModel = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    // Structural sanity: the config must match the tensors.
    if model.layers.len() != model.cfg.n_layers {
        return Err(format!(
            "checkpoint corrupt: {} layers vs config {}",
            model.layers.len(),
            model.cfg.n_layers
        ));
    }
    if model.embed.rows != model.cfg.vocab || model.embed.cols != model.cfg.hidden {
        return Err("checkpoint corrupt: embedding shape mismatch".into());
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::RefConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("llmpq-ckpt-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn checkpoint_round_trip_preserves_generation() {
        let model = RefModel::new(RefConfig::tiny());
        let path = tmp("roundtrip");
        save_checkpoint(&model, &path).unwrap();
        let loaded = load_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            model.generate(&[1, 2, 3], 8, 0.0, 0),
            loaded.generate(&[1, 2, 3], 8, 0.0, 0),
            "loaded checkpoint must generate identically"
        );
    }

    #[test]
    fn corrupt_layer_count_rejected() {
        let mut model = RefModel::new(RefConfig::tiny());
        model.layers.pop();
        let path = tmp("corrupt");
        save_checkpoint(&model, &path).unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("corrupt"), "{err}");
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_checkpoint(Path::new("/nonexistent/ckpt.json")).is_err());
    }
}
