//! The two phases of generative LLM inference.

use serde::{Deserialize, Serialize};

/// Generative inference proceeds in two phases with very different
/// computational characteristics (paper §2.1):
///
/// * **Prefill** — the whole prompt is processed at once, producing the
///   initial key/value cache. Compute-bound (arithmetic intensity in the
///   thousands).
/// * **Decode** — tokens are generated one at a time against the stored
///   KV cache. Memory-bound (arithmetic intensity in the tens).
///
/// Phase-awareness — modelling both phases when partitioning a pipeline —
/// is Opportunity 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Prompt processing: sequence-parallel, compute-bound.
    Prefill,
    /// Token generation: one token per step, memory-bound.
    Decode,
}

impl Phase {
    /// Both phases, in execution order.
    pub const ALL: [Phase; 2] = [Phase::Prefill, Phase::Decode];

    /// Short lowercase name used in reports and plan files.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Prefill => "prefill",
            Phase::Decode => "decode",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names() {
        assert_eq!(Phase::Prefill.name(), "prefill");
        assert_eq!(Phase::Decode.name(), "decode");
        assert_eq!(Phase::ALL.len(), 2);
    }

    #[test]
    fn phase_display_matches_name() {
        for p in Phase::ALL {
            assert_eq!(format!("{p}"), p.name());
        }
    }

    #[test]
    fn phase_ordering_prefill_first() {
        assert!(Phase::Prefill < Phase::Decode);
    }
}
