//! Architecture metadata for decoder-only transformer models.
//!
//! The LLM-PQ assigner never touches real weights: partition and
//! quantization decisions are made from architecture metadata alone
//! (hidden size, layer count, vocabulary size…), exactly like the paper's
//! analytical memory model (§4.1). [`ModelSpec`] is that metadata.

use serde::{Deserialize, Serialize};

/// The model family. The paper evaluates the OPT and BLOOM families;
/// they differ in positional-encoding scheme and embedding layout, which
/// affects the memory model of the embedding stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Meta's OPT family: learned positional embeddings, tied LM head.
    Opt,
    /// BigScience BLOOM family: ALiBi attention (no positional embedding
    /// table), embedding LayerNorm.
    Bloom,
}

impl ModelFamily {
    /// Whether the family carries a learned positional-embedding table.
    pub fn has_positional_embedding(self) -> bool {
        matches!(self, ModelFamily::Opt)
    }
}

/// Static description of a decoder-only transformer.
///
/// All byte-size helpers take an explicit `bits_per_param` so the same
/// spec serves FP16, INT8 and 3/4-bit weight-only quantization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Family (OPT / BLOOM).
    pub family: ModelFamily,
    /// Human-readable name, e.g. `"opt-30b"`.
    pub name: String,
    /// Number of decoder layers (`L` in the paper).
    pub n_layers: usize,
    /// Hidden dimension (`h1` in the paper's notation table).
    pub hidden: usize,
    /// Number of attention heads.
    pub n_heads: usize,
    /// Feed-forward (MLP) inner dimension; 4·hidden for both families.
    pub ffn_hidden: usize,
    /// Vocabulary size (`vocab_s`).
    pub vocab: usize,
    /// Maximum position embeddings (`d_t` rows of the position table).
    pub max_positions: usize,
}

impl ModelSpec {
    /// Construct a spec with the conventional `ffn = 4·hidden` expansion.
    pub fn new(
        family: ModelFamily,
        name: impl Into<String>,
        n_layers: usize,
        hidden: usize,
        n_heads: usize,
        vocab: usize,
        max_positions: usize,
    ) -> Self {
        assert!(hidden.is_multiple_of(n_heads), "hidden must divide evenly by heads");
        Self {
            family,
            name: name.into(),
            n_layers,
            hidden,
            n_heads,
            ffn_hidden: 4 * hidden,
            vocab,
            max_positions,
        }
    }

    /// Dimension of one attention head.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.n_heads
    }

    /// Parameter count of **one decoder layer**: QKV/output projections
    /// (4·h²), the two MLP projections (2·h·ffn), their biases, and two
    /// LayerNorms. These are the only parameters the paper's memory model
    /// counts inside a decoder layer ("only linear and layer norm layers
    /// contribute", §4.1).
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let f = self.ffn_hidden as u64;
        let attn = 4 * h * h + 4 * h; // Wq,Wk,Wv,Wo + biases
        let mlp = h * f + f + f * h + h; // W1+b1, W2+b2
        let norms = 2 * 2 * h; // two LayerNorms, scale+shift each
        attn + mlp + norms
    }

    /// Parameter count of the linear (matmul) weights of one decoder
    /// layer — the portion that weight-only quantization compresses.
    pub fn linear_params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let f = self.ffn_hidden as u64;
        4 * h * h + 2 * h * f
    }

    /// Parameter count of the embedding stage: token embeddings
    /// (`vocab × h`), positional embeddings when the family has them
    /// (`max_positions × h`), and the final LayerNorm. The LM head is
    /// tied to the token embedding in both families.
    pub fn embedding_params(&self) -> u64 {
        let h = self.hidden as u64;
        let tok = self.vocab as u64 * h;
        let pos = if self.family.has_positional_embedding() {
            self.max_positions as u64 * h
        } else {
            0
        };
        tok + pos + 2 * h
    }

    /// Total parameter count (decoder stack + embeddings).
    pub fn total_params(&self) -> u64 {
        self.n_layers as u64 * self.params_per_layer() + self.embedding_params()
    }

    /// Bytes of weight storage for one decoder layer when its linear
    /// weights are stored at `bits_per_param` bits; non-linear parameters
    /// (norms, biases) always stay FP16 as in GPTQ-style serving.
    pub fn layer_weight_bytes(&self, bits_per_param: f64) -> f64 {
        let linear = self.linear_params_per_layer() as f64 * bits_per_param / 8.0;
        let rest = (self.params_per_layer() - self.linear_params_per_layer()) as f64 * 2.0;
        linear + rest
    }

    /// Bytes of the embedding stage, always held in FP16 (the paper never
    /// quantizes embeddings).
    pub fn embedding_bytes(&self) -> f64 {
        self.embedding_params() as f64 * 2.0
    }

    /// Bytes of group-wise quantization metadata for one decoder layer's
    /// linear weights: one FP32 scale plus one INT8 zero-point per
    /// `group` input elements of every output row, mirroring the packed
    /// layout `llmpq-kernels` serves. Four attention projections are
    /// `hidden × hidden`, W1 is `ffn × hidden`, W2 is `hidden × ffn`.
    pub fn quant_scale_bytes(&self, group: usize) -> f64 {
        let h = self.hidden as f64;
        let f = self.ffn_hidden as f64;
        let gpr = |cols: f64| (cols / group as f64).ceil();
        5.0 * (4.0 * h * gpr(h) + f * gpr(h) + h * gpr(f))
    }

    /// KV-cache bytes for **one decoder layer**, for `batch` sequences of
    /// reserved length `seq_len` (prompt + generated tokens, as LLM-PQ
    /// pre-allocates the maximum sentence length), with each cache element
    /// stored at `kv_bits` bits.
    pub fn kv_bytes_per_layer(&self, batch: usize, seq_len: usize, kv_bits: f64) -> f64 {
        // K and V each store `hidden` values per token.
        2.0 * batch as f64 * seq_len as f64 * self.hidden as f64 * kv_bits / 8.0
    }

    /// A short identifier such as `opt-30b` suitable for file names.
    pub fn id(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt_1p3b() -> ModelSpec {
        ModelSpec::new(ModelFamily::Opt, "opt-1.3b", 24, 2048, 32, 50272, 2048)
    }

    #[test]
    fn param_count_matches_published_size() {
        // OPT-1.3b has ~1.3e9 parameters; our accounting should land within 10%.
        let spec = opt_1p3b();
        let total = spec.total_params() as f64;
        assert!(
            (total - 1.3e9).abs() / 1.3e9 < 0.10,
            "got {total:.3e} params"
        );
    }

    #[test]
    fn linear_params_are_a_subset() {
        let spec = opt_1p3b();
        assert!(spec.linear_params_per_layer() < spec.params_per_layer());
    }

    #[test]
    fn quantized_layer_is_smaller() {
        let spec = opt_1p3b();
        let fp16 = spec.layer_weight_bytes(16.0);
        let int8 = spec.layer_weight_bytes(8.0);
        let int4 = spec.layer_weight_bytes(4.0);
        let int3 = spec.layer_weight_bytes(3.0);
        assert!(fp16 > int8 && int8 > int4 && int4 > int3);
        // Linear weights dominate, so INT8 should be close to half of FP16.
        assert!((int8 / fp16 - 0.5).abs() < 0.02);
    }

    #[test]
    fn kv_cache_scales_linearly() {
        let spec = opt_1p3b();
        let a = spec.kv_bytes_per_layer(8, 612, 16.0);
        let b = spec.kv_bytes_per_layer(16, 612, 16.0);
        assert!((b / a - 2.0).abs() < 1e-12);
        let c = spec.kv_bytes_per_layer(8, 612, 8.0);
        assert!((a / c - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bloom_has_no_positional_table() {
        let bloom = ModelSpec::new(ModelFamily::Bloom, "bloom-3b", 30, 2560, 32, 250880, 2048);
        let opt = opt_1p3b();
        assert!(!bloom.family.has_positional_embedding());
        assert!(opt.family.has_positional_embedding());
        assert_eq!(
            bloom.embedding_params(),
            250880 * 2560 + 2 * 2560,
            "BLOOM embedding = token table + final norm"
        );
    }

    #[test]
    #[should_panic(expected = "hidden must divide")]
    fn rejects_indivisible_heads() {
        ModelSpec::new(ModelFamily::Opt, "bad", 2, 100, 3, 1000, 128);
    }
}
