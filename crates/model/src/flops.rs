//! FLOP and memory-operation (MOP) accounting per decoder layer and phase.
//!
//! The paper's latency cost model (§4.1) observes that GEMM dominates
//! (>80% of latency) and that workload "can be shaped and scaled" by
//! FLOPs and MOPs. This module provides the exact counts the roofline
//! simulator executes against and the features the regression cost model
//! fits on. The headline asymmetry it must reproduce: *prefill is
//! compute-bound* (arithmetic intensity in the thousands) while *decode is
//! memory-bound* (intensity in the tens) — paper §4.1 quotes intensities
//! of 9553/6354 (prefill) vs 48/43 (decode) for OPT-175b/30b.

use crate::phase::Phase;
use crate::spec::ModelSpec;
use serde::{Deserialize, Serialize};

/// Shape of the work a single pipeline stage sees for one micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseWorkload {
    /// Which generative phase.
    pub phase: Phase,
    /// Micro-batch size (number of sequences).
    pub batch: usize,
    /// Prompt length `s` (tokens processed in prefill).
    pub prompt_len: usize,
    /// Context length already in the KV cache when a decode step runs
    /// (prompt + previously generated tokens). Ignored for prefill.
    pub past_len: usize,
}

impl PhaseWorkload {
    /// A prefill step over `batch` prompts of length `prompt_len`.
    pub fn prefill(batch: usize, prompt_len: usize) -> Self {
        Self { phase: Phase::Prefill, batch, prompt_len, past_len: 0 }
    }

    /// A decode step for `batch` sequences with `past_len` cached tokens.
    pub fn decode(batch: usize, prompt_len: usize, past_len: usize) -> Self {
        Self { phase: Phase::Decode, batch, prompt_len, past_len }
    }

    /// Tokens processed by this step per sequence.
    pub fn tokens_per_seq(&self) -> usize {
        match self.phase {
            Phase::Prefill => self.prompt_len,
            Phase::Decode => 1,
        }
    }
}

/// FLOPs and byte-traffic of one decoder layer for a given workload.
///
/// Byte traffic is split by source because quantization scales the three
/// components differently: weight traffic shrinks with the bitwidth,
/// KV traffic with the KV-cache precision, activation traffic not at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Floating-point operations (multiply-accumulate counted as 2).
    pub flops: f64,
    /// Bytes of weight reads at FP16 (scale by `bits/16` for quantized).
    pub weight_bytes_fp16: f64,
    /// Bytes of activation reads+writes (always FP16 at serving time).
    pub act_bytes: f64,
    /// Bytes of KV-cache traffic at FP16.
    pub kv_bytes_fp16: f64,
}

impl LayerCost {
    /// Total memory traffic for linear weights stored at `bits` bits and
    /// KV cache at `kv_bits` bits.
    pub fn total_bytes(&self, bits: f64, kv_bits: f64) -> f64 {
        self.weight_bytes_fp16 * (bits / 16.0) + self.act_bytes + self.kv_bytes_fp16 * (kv_bits / 16.0)
    }

    /// Arithmetic intensity (FLOPs per byte) at the given precisions.
    pub fn arithmetic_intensity(&self, bits: f64, kv_bits: f64) -> f64 {
        self.flops / self.total_bytes(bits, kv_bits)
    }
}

/// Compute the FLOPs/MOPs of **one decoder layer** under `w`.
pub fn layer_cost(spec: &ModelSpec, w: &PhaseWorkload) -> LayerCost {
    let h = spec.hidden as f64;
    let f = spec.ffn_hidden as f64;
    let b = w.batch as f64;
    match w.phase {
        Phase::Prefill => {
            let s = w.prompt_len as f64;
            // Projections: QKV + O (4 GEMMs of h×h) and MLP (h×f, f×h).
            let proj_flops = 2.0 * b * s * (4.0 * h * h + 2.0 * h * f);
            // Attention score + context GEMMs: QKᵀ and AV, each 2·b·s²·h.
            let attn_flops = 4.0 * b * s * s * h;
            let weight_bytes = (4.0 * h * h + 2.0 * h * f) * 2.0;
            // Activations: read+write around each of the 6 projections plus
            // attention intermediates (scores are s×s per head).
            let act_bytes = 2.0 * b * s * (8.0 * h + 2.0 * f) + 4.0 * b * s * s * spec.n_heads as f64;
            // KV write for the whole prompt.
            let kv_bytes = 2.0 * b * s * h * 2.0;
            LayerCost {
                flops: proj_flops + attn_flops,
                weight_bytes_fp16: weight_bytes,
                act_bytes,
                kv_bytes_fp16: kv_bytes,
            }
        }
        Phase::Decode => {
            let p = w.past_len.max(1) as f64;
            let proj_flops = 2.0 * b * (4.0 * h * h + 2.0 * h * f);
            // Attention against the cached context: QKᵀ and AV over p keys.
            let attn_flops = 4.0 * b * p * h;
            let weight_bytes = (4.0 * h * h + 2.0 * h * f) * 2.0;
            let act_bytes = 2.0 * b * (8.0 * h + 2.0 * f);
            // Read the whole KV cache, append one token.
            let kv_bytes = 2.0 * b * p * h * 2.0 + 2.0 * b * h * 2.0;
            LayerCost {
                flops: proj_flops + attn_flops,
                weight_bytes_fp16: weight_bytes,
                act_bytes,
                kv_bytes_fp16: kv_bytes,
            }
        }
    }
}

/// Cost of the embedding stage (token lookup + LM-head GEMM), executed by
/// the master engine. The lookup is pure memory traffic; the head is a
/// `(b·t) × h × vocab` GEMM.
pub fn embedding_cost(spec: &ModelSpec, w: &PhaseWorkload) -> LayerCost {
    let h = spec.hidden as f64;
    let v = spec.vocab as f64;
    let b = w.batch as f64;
    let t = w.tokens_per_seq() as f64;
    let head_flops = 2.0 * b * t * h * v;
    LayerCost {
        flops: head_flops,
        weight_bytes_fp16: v * h * 2.0,
        act_bytes: 2.0 * b * t * (h + v),
        kv_bytes_fp16: 0.0,
    }
}

/// Bytes of activation handed between adjacent pipeline stages for one
/// micro-batch (the hidden-state tensor, FP16 on the wire).
pub fn boundary_activation_bytes(spec: &ModelSpec, w: &PhaseWorkload) -> f64 {
    w.batch as f64 * w.tokens_per_seq() as f64 * spec.hidden as f64 * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn prefill_is_compute_bound_decode_is_memory_bound() {
        // Reproduce the paper's §4.1 arithmetic-intensity contrast for
        // OPT-175b and OPT-30b at batch 32, prompt 512.
        for spec in [zoo::opt_175b(), zoo::opt_30b()] {
            let pre = layer_cost(&spec, &PhaseWorkload::prefill(32, 512));
            let dec = layer_cost(&spec, &PhaseWorkload::decode(32, 512, 512));
            let ai_pre = pre.arithmetic_intensity(16.0, 16.0);
            let ai_dec = dec.arithmetic_intensity(16.0, 16.0);
            assert!(ai_pre > 1000.0, "{}: prefill AI {ai_pre:.0}", spec.name);
            assert!(ai_dec < 100.0, "{}: decode AI {ai_dec:.0}", spec.name);
            assert!(ai_pre / ai_dec > 50.0);
        }
    }

    #[test]
    fn decode_flops_independent_of_prompt_except_attention() {
        let spec = zoo::opt_1_3b();
        let short = layer_cost(&spec, &PhaseWorkload::decode(8, 128, 128));
        let long = layer_cost(&spec, &PhaseWorkload::decode(8, 512, 512));
        // Longer context only adds attention FLOPs, which are small next to
        // the projections at this scale.
        assert!(long.flops > short.flops);
        assert!(long.flops / short.flops < 1.5);
        // But KV traffic scales ~linearly with context.
        assert!(long.kv_bytes_fp16 / short.kv_bytes_fp16 > 3.0);
    }

    #[test]
    fn quantization_shrinks_weight_traffic_only() {
        let spec = zoo::opt_30b();
        let c = layer_cost(&spec, &PhaseWorkload::decode(32, 512, 512));
        let fp16 = c.total_bytes(16.0, 16.0);
        let int4 = c.total_bytes(4.0, 16.0);
        assert!(int4 < fp16);
        assert!(int4 > c.act_bytes + c.kv_bytes_fp16, "act/KV unchanged");
        let saved = fp16 - int4;
        assert!((saved - c.weight_bytes_fp16 * 0.75).abs() / saved < 1e-9);
    }

    #[test]
    fn prefill_flops_scale_with_prompt_length() {
        let spec = zoo::opt_13b();
        let a = layer_cost(&spec, &PhaseWorkload::prefill(8, 128));
        let b = layer_cost(&spec, &PhaseWorkload::prefill(8, 512));
        // Linear term dominates: 4× tokens → slightly more than 4× FLOPs
        // (attention quadratic term grows 16×but is small at s=512).
        let ratio = b.flops / a.flops;
        assert!(ratio > 4.0 && ratio < 5.5, "ratio {ratio}");
    }

    #[test]
    fn embedding_head_dominated_by_vocab_gemm() {
        let spec = zoo::opt_1_3b();
        let c = embedding_cost(&spec, &PhaseWorkload::decode(32, 512, 512));
        assert!(c.flops > 0.0 && c.weight_bytes_fp16 > 0.0);
        // LM head GEMM = 2·b·h·v.
        let expect = 2.0 * 32.0 * 2048.0 * 50272.0;
        assert!((c.flops - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn boundary_bytes_match_hidden_state() {
        let spec = zoo::opt_1_3b();
        let pre = boundary_activation_bytes(&spec, &PhaseWorkload::prefill(4, 100));
        assert_eq!(pre, 4.0 * 100.0 * 2048.0 * 2.0);
        let dec = boundary_activation_bytes(&spec, &PhaseWorkload::decode(4, 100, 150));
        assert_eq!(dec, 4.0 * 2048.0 * 2.0);
    }
}
