//! Tensor-parallel execution model (paper §7, "Search for Tensor
//! Parallelization").
//!
//! The paper observes that a TP group can be folded into the 1-D
//! pipeline search "as a new device with larger memory and different
//! kernel performance (as tensor-parallel will introduce some
//! communication overhead)". This module provides that new device's
//! kernel model: a decoder layer sharded Megatron-style across `width`
//! GPUs — column-parallel QKV/W1, row-parallel Wo/W2 — runs its FLOPs
//! and weight traffic at `1/width` per GPU and pays two all-reduces of
//! the activations per layer.

use crate::kernel::{layer_latency, KernelEnv};
use llmpq_cluster::{DeviceSpec, Link};
use llmpq_model::{flops, ModelSpec, PhaseWorkload};
use llmpq_quant::Bitwidth;
use serde::{Deserialize, Serialize};

/// A tensor-parallel group acting as one pipeline device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpGroup {
    /// GPUs in the group (1 = plain device).
    pub width: usize,
    /// Intra-group link (NVLink within a node in the paper's clusters).
    pub link: Link,
    /// Sharding efficiency: fraction of ideal 1/width compute scaling
    /// actually achieved (kernel fragmentation at small per-GPU shards).
    pub efficiency: f64,
}

impl TpGroup {
    /// A single-GPU "group" — exactly the plain kernel model.
    pub fn solo() -> Self {
        Self { width: 1, link: Link { bandwidth_bps: f64::INFINITY, latency_s: 0.0 }, efficiency: 1.0 }
    }

    /// An NVLink-connected group of `width` GPUs.
    pub fn nvlink(width: usize) -> Self {
        assert!(width >= 1);
        Self {
            width,
            link: llmpq_cluster::Interconnect::NvLink.link(),
            // Megatron-style sharding keeps ~92% efficiency per doubling
            // at serving-scale hidden sizes.
            efficiency: 0.92f64.powf((width as f64).log2()),
        }
    }

    /// Memory capacity multiplier of the group.
    pub fn mem_multiplier(&self) -> f64 {
        self.width as f64
    }
}

/// Ring all-reduce time for `bytes` over `width` ranks on `link`.
pub fn allreduce_time(link: &Link, width: usize, bytes: f64) -> f64 {
    if width <= 1 {
        return 0.0;
    }
    // Ring: 2(w−1)/w of the data crosses each link, 2(w−1) latency hops.
    let w = width as f64;
    2.0 * (w - 1.0) * link.latency_s + 2.0 * (w - 1.0) / w * bytes / link.bandwidth_bps
}

/// Latency of one decoder layer executed by a TP group.
pub fn tp_layer_latency(
    dev: &DeviceSpec,
    env: &KernelEnv,
    group: &TpGroup,
    spec: &ModelSpec,
    w: &PhaseWorkload,
    bits: Bitwidth,
    kv_bits: f64,
) -> f64 {
    if group.width == 1 {
        return layer_latency(dev, env, spec, w, bits, kv_bits);
    }
    // Per-GPU shard: FLOPs, weight and KV traffic divide by width
    // (heads and MLP columns are split); activations stay full-size.
    // Model this by scaling the device up rather than the model down —
    // identical arithmetic, no fractional model dims needed.
    let scaled = DeviceSpec {
        fp16_tflops: dev.fp16_tflops * group.width as f64 * group.efficiency,
        mem_bw_gbs: dev.mem_bw_gbs * group.width as f64 * group.efficiency,
        ..*dev
    };
    let compute = layer_latency(&scaled, env, spec, w, bits, kv_bits);
    // Two all-reduces (post-attention, post-MLP) of the hidden states.
    let act_bytes = flops::boundary_activation_bytes(spec, w);
    compute + 2.0 * allreduce_time(&group.link, group.width, act_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_cluster::GpuModel;
    use llmpq_model::zoo;

    fn env() -> KernelEnv {
        KernelEnv::default()
    }

    #[test]
    fn solo_group_matches_plain_kernel() {
        let dev = GpuModel::A100_40G.spec();
        let spec = zoo::opt_30b();
        let w = PhaseWorkload::prefill(8, 512);
        let plain = layer_latency(&dev, &env(), &spec, &w, Bitwidth::Fp16, 16.0);
        let tp = tp_layer_latency(&dev, &env(), &TpGroup::solo(), &spec, &w, Bitwidth::Fp16, 16.0);
        assert_eq!(plain, tp);
    }

    #[test]
    fn tp_speeds_up_compute_bound_prefill() {
        let dev = GpuModel::V100_32G.spec();
        let spec = zoo::opt_66b();
        let w = PhaseWorkload::prefill(8, 512);
        let t1 = tp_layer_latency(&dev, &env(), &TpGroup::nvlink(1), &spec, &w, Bitwidth::Fp16, 16.0);
        let t2 = tp_layer_latency(&dev, &env(), &TpGroup::nvlink(2), &spec, &w, Bitwidth::Fp16, 16.0);
        let t4 = tp_layer_latency(&dev, &env(), &TpGroup::nvlink(4), &spec, &w, Bitwidth::Fp16, 16.0);
        assert!(t2 < t1 && t4 < t2, "{t1} {t2} {t4}");
        // Sublinear: communication + efficiency losses.
        assert!(t4 > t1 / 4.0);
    }

    #[test]
    fn tp_gains_shrink_for_tiny_decode_batches() {
        // Decode at batch 1 is latency/overhead bound: the all-reduce tax
        // eats most of the sharding gain.
        let dev = GpuModel::A100_40G.spec();
        let spec = zoo::opt_13b();
        let dec = PhaseWorkload::decode(1, 512, 512);
        let pre = PhaseWorkload::prefill(8, 512);
        let gain = |w: &PhaseWorkload| {
            let t1 = tp_layer_latency(&dev, &env(), &TpGroup::nvlink(1), &spec, w, Bitwidth::Fp16, 16.0);
            let t4 = tp_layer_latency(&dev, &env(), &TpGroup::nvlink(4), &spec, w, Bitwidth::Fp16, 16.0);
            t1 / t4
        };
        assert!(gain(&pre) > gain(&dec), "prefill gain {} vs decode gain {}", gain(&pre), gain(&dec));
    }

    #[test]
    fn allreduce_scales_with_width_and_bytes() {
        let link = llmpq_cluster::Interconnect::NvLink.link();
        assert_eq!(allreduce_time(&link, 1, 1e9), 0.0);
        let t2 = allreduce_time(&link, 2, 1e9);
        let t8 = allreduce_time(&link, 8, 1e9);
        assert!(t8 > t2);
        let tb = allreduce_time(&link, 2, 2e9);
        assert!(tb > t2);
    }

    #[test]
    fn group_memory_multiplier() {
        assert_eq!(TpGroup::nvlink(4).mem_multiplier(), 4.0);
        assert!(TpGroup::nvlink(4).efficiency < 1.0);
        assert_eq!(TpGroup::nvlink(1).efficiency, 1.0);
    }
}
