//! Allocator-level "measured" peak memory of a model shard.
//!
//! This is the real-system side of the Fig 7 fidelity experiment: it
//! walks an actual serving timeline (load weights → pre-allocate KV →
//! run prefill → run decode) with caching-allocator behaviour (block
//! rounding, workspace reuse), which the analytical cost model in
//! `llmpq-cost` then has to predict.

use llmpq_model::{ModelSpec, Phase};
use llmpq_quant::Bitwidth;

/// CUDA caching allocators hand out memory in 2 MiB blocks.
const BLOCK: f64 = 2.0 * 1024.0 * 1024.0;

fn round_block(bytes: f64) -> f64 {
    (bytes / BLOCK).ceil() * BLOCK
}

/// Peak temporary (workspace) bytes of one decoder layer in `phase`:
/// the largest live intermediate — MLP activations and attention scores
/// in FP16, plus a dequantization scratch for weight-only kernels.
pub fn layer_workspace_bytes(
    spec: &ModelSpec,
    phase: Phase,
    batch: usize,
    prompt_len: usize,
    bits: Bitwidth,
) -> f64 {
    let h = spec.hidden as f64;
    let f = spec.ffn_hidden as f64;
    let b = batch as f64;
    let tokens = match phase {
        Phase::Prefill => prompt_len as f64,
        Phase::Decode => 1.0,
    };
    let mlp_act = b * tokens * f * 2.0;
    let attn_scores = match phase {
        Phase::Prefill => b * spec.n_heads as f64 * (prompt_len as f64) * (prompt_len as f64) * 2.0,
        Phase::Decode => b * spec.n_heads as f64 * (prompt_len as f64) * 2.0,
    };
    // Weight-only kernels dequantize one projection tile into FP16.
    let dequant_scratch = if bits.is_quantized() && bits != Bitwidth::Int8 {
        h * f * 2.0
    } else {
        0.0
    };
    let residuals = 3.0 * b * tokens * h * 2.0;
    mlp_act + attn_scores + dequant_scratch + residuals
}

/// Walk the serving timeline of a stage holding `layer_bits` (one entry
/// per layer) and report the allocator-level peak, in bytes.
///
/// * `kv_batch` is the **global** batch size: every stage keeps KV for
///   all sequences of the job, reserved at `prompt_len + n_generate`
///   (LLM-PQ pre-allocates the maximum sentence length).
/// * `micro_batch` is the largest micro-batch that flows through at
///   once; it sizes the temporary workspace — which is how LLM-PQ's
///   micro-batch sizing "reduces the peak temporary memory needed by the
///   model" (the cluster-1 result in Table 4).
/// * `with_embedding` adds the FP16 embedding tables — needed on the
///   device co-hosting the master engine, the imbalance §2.2 warns about.
#[allow(clippy::too_many_arguments)]
pub fn measured_peak_memory(
    spec: &ModelSpec,
    layer_bits: &[Bitwidth],
    kv_batch: usize,
    micro_batch: usize,
    prompt_len: usize,
    n_generate: usize,
    kv_bits: f64,
    with_embedding: bool,
) -> f64 {
    assert!(!layer_bits.is_empty(), "stage must own at least one layer");
    let seq = prompt_len + n_generate;

    // Weights: payload + per-channel scales for quantized layers.
    let mut weights = 0.0;
    for &bits in layer_bits {
        let base = spec.layer_weight_bytes(bits.bits_f64());
        let scale_overhead = if bits.is_quantized() {
            // group-wise scale + zero-point per (row, group), as packed
            spec.quant_scale_bytes(llmpq_model::QUANT_GROUP)
        } else {
            0.0
        };
        weights += round_block(base + scale_overhead);
    }
    if with_embedding {
        weights += round_block(spec.embedding_bytes());
    }

    // KV cache pre-allocated at the maximum sentence length.
    let kv: f64 = layer_bits
        .iter()
        .map(|_| round_block(spec.kv_bytes_per_layer(kv_batch, seq, kv_bits)))
        .sum();

    // Workspace: the caching allocator reuses one arena sized by the
    // worst layer over both phases.
    let workspace = layer_bits
        .iter()
        .map(|&b| {
            let pre = layer_workspace_bytes(spec, Phase::Prefill, micro_batch, prompt_len, b);
            let dec = layer_workspace_bytes(spec, Phase::Decode, micro_batch, prompt_len, b);
            pre.max(dec)
        })
        .fold(0.0f64, f64::max);
    let workspace = round_block(workspace);

    // CUDA context + cuBLAS handles etc.
    let context = 600e6;

    weights + kv + workspace + context
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_model::zoo;

    #[test]
    fn peak_grows_with_batch_and_sequence() {
        let spec = zoo::opt_13b();
        let bits = vec![Bitwidth::Fp16; 8];
        let a = measured_peak_memory(&spec, &bits, 8, 8, 512, 100, 16.0, false);
        let b = measured_peak_memory(&spec, &bits, 16, 16, 512, 100, 16.0, false);
        let c = measured_peak_memory(&spec, &bits, 8, 8, 512, 500, 16.0, false);
        assert!(b > a && c > a);
    }

    #[test]
    fn quantization_reduces_peak() {
        let spec = zoo::opt_13b();
        let fp16 = measured_peak_memory(&spec, &[Bitwidth::Fp16; 10], 8, 8, 512, 100, 16.0, false);
        let int4 = measured_peak_memory(&spec, &[Bitwidth::Int4; 10], 8, 8, 512, 100, 16.0, false);
        assert!(int4 < fp16 * 0.6, "int4 {int4:.2e} vs fp16 {fp16:.2e}");
    }

    #[test]
    fn embedding_adds_meaningful_memory() {
        let spec = zoo::opt_13b();
        let base = measured_peak_memory(&spec, &[Bitwidth::Int8; 4], 8, 8, 512, 100, 16.0, false);
        let with = measured_peak_memory(&spec, &[Bitwidth::Int8; 4], 8, 8, 512, 100, 16.0, true);
        // OPT-13b embeddings ≈ (50272+2048)·5120·2 ≈ 0.54 GB.
        assert!(with - base > 0.4e9);
    }

    #[test]
    fn opt13b_int8_fits_v100_but_fp16_does_not() {
        // The cluster-1 story (Table 4): OPT-13b FP16 ≈ 26 GB of weights
        // + KV + embeddings exceeds a 32 GB V100, while INT8 fits.
        // Batch 28: group-wise scale/zero metadata (~1 GB at group 64,
        // now counted faithfully to the packed layout) eats the slack the
        // old per-channel approximation left at batch 32.
        let spec = zoo::opt_13b();
        let v100 = 32e9;
        let all = spec.n_layers;
        let fp16 =
            measured_peak_memory(&spec, &vec![Bitwidth::Fp16; all], 28, 28, 512, 100, 16.0, true);
        let int8 =
            measured_peak_memory(&spec, &vec![Bitwidth::Int8; all], 28, 28, 512, 100, 16.0, true);
        assert!(fp16 > v100, "fp16 {:.1} GB should exceed 32 GB", fp16 / 1e9);
        assert!(int8 < v100, "int8 {:.1} GB should fit in 32 GB", int8 / 1e9);
    }

    #[test]
    fn prefill_workspace_dominates_decode() {
        let spec = zoo::opt_13b();
        let pre = layer_workspace_bytes(&spec, Phase::Prefill, 8, 512, Bitwidth::Fp16);
        let dec = layer_workspace_bytes(&spec, Phase::Decode, 8, 512, Bitwidth::Fp16);
        assert!(pre > 10.0 * dec);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_empty_stage() {
        measured_peak_memory(&zoo::opt_13b(), &[], 8, 8, 512, 100, 16.0, false);
    }
}
