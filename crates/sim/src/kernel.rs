//! Roofline execution model for a single decoder layer.
//!
//! Latency of a layer = projection part (the six linear kernels, whose
//! precision follows the layer's bitwidth) + attention part (softmax /
//! context GEMMs, always FP16 with the KV cache) + fixed kernel-launch
//! overhead. Each part is `max(compute-time, memory-time)` under the
//! device's efficiency tables.
//!
//! This model reproduces the planning-relevant phenomena of Figs 3 and 5:
//!
//! * prefill is compute-bound, decode memory-bound;
//! * INT8 helps on T4/A100 (tensor cores) and *hurts* on V100/P100;
//! * 3/4-bit weight-only kernels win decode (weight traffic ∝ bits/16)
//!   but can lose prefill (dequant compute tax);
//! * the P100/V100 latency gap differs by phase (14.5× vs 3–4×), which is
//!   exactly why single-phase partitioning mis-balances stages.

use llmpq_cluster::DeviceSpec;
use llmpq_model::{flops, ModelSpec, Phase, PhaseWorkload};
use llmpq_quant::Bitwidth;
use serde::{Deserialize, Serialize};

/// Execution environment for kernel timing.
///
/// Compute efficiency is a *flat* MFU ceiling: a kernel that cannot keep
/// the ALUs busy is, by definition, limited by the memory term of the
/// roofline (weights don't amortize over a small batch) or by the fixed
/// launch overhead — both of which the model carries explicitly, so an
/// extra batch-dependent compute penalty would double-count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelEnv {
    /// Fraction of peak FLOPs reachable by large GEMMs (MFU ceiling).
    pub max_mfu: f64,
    /// MFU ceiling for attention kernels (softmax-bound, less regular).
    pub attn_mfu: f64,
    /// Number of kernel launches per decoder layer (fixed overhead).
    pub kernels_per_layer: f64,
}

impl Default for KernelEnv {
    fn default() -> Self {
        Self { max_mfu: 0.62, attn_mfu: 0.31, kernels_per_layer: 12.0 }
    }
}

/// Split a layer's FLOPs into projection (precision-dependent) and
/// attention (always FP16) parts.
fn split_flops(spec: &ModelSpec, w: &PhaseWorkload) -> (f64, f64) {
    let h = spec.hidden as f64;
    let b = w.batch as f64;
    let attn = match w.phase {
        Phase::Prefill => 4.0 * b * (w.prompt_len as f64) * (w.prompt_len as f64) * h,
        Phase::Decode => 4.0 * b * (w.past_len.max(1) as f64) * h,
    };
    let total = flops::layer_cost(spec, w).flops;
    (total - attn, attn)
}

/// Latency (seconds) of one decoder layer of `spec` on `dev`, serving
/// workload `w` with linear weights at `bits` and the KV cache at
/// `kv_bits`.
pub fn layer_latency(
    dev: &DeviceSpec,
    env: &KernelEnv,
    spec: &ModelSpec,
    w: &PhaseWorkload,
    bits: Bitwidth,
    kv_bits: f64,
) -> f64 {
    let cost = flops::layer_cost(spec, w);
    let (proj_flops, attn_flops) = split_flops(spec, w);

    // --- Projection kernels at the layer's precision ---
    let peak = dev.fp16_tflops * 1e12;
    let proj_compute = proj_flops / (peak * env.max_mfu * dev.compute_efficiency(bits));
    let proj_bytes = cost.weight_bytes_fp16 * (bits.bits_f64() / 16.0) + cost.act_bytes;
    let proj_memory = proj_bytes / (dev.mem_bw_gbs * 1e9 * dev.memory_efficiency(bits));
    let proj = proj_compute.max(proj_memory);

    // --- Attention kernels, always FP16, lower utilization ---
    let attn_compute = attn_flops / (peak * env.attn_mfu);
    let attn_bytes = cost.kv_bytes_fp16 * (kv_bits / 16.0);
    let attn_memory = attn_bytes / (dev.mem_bw_gbs * 1e9 * dev.memory_efficiency(Bitwidth::Fp16));
    let attn = attn_compute.max(attn_memory);

    proj + attn + env.kernels_per_layer * dev.kernel_launch_us * 1e-6
}

/// Latency of the embedding stage (token lookup + LM head) on `dev`.
/// Embeddings are never quantized.
pub fn embedding_latency(dev: &DeviceSpec, env: &KernelEnv, spec: &ModelSpec, w: &PhaseWorkload) -> f64 {
    let cost = flops::embedding_cost(spec, w);
    let compute = cost.flops / (dev.fp16_tflops * 1e12 * env.max_mfu);
    let bytes = cost.weight_bytes_fp16 + cost.act_bytes;
    let memory = bytes / (dev.mem_bw_gbs * 1e9 * dev.memory_efficiency(Bitwidth::Fp16));
    compute.max(memory) + 4.0 * dev.kernel_launch_us * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_cluster::GpuModel;
    use llmpq_model::zoo;

    fn env() -> KernelEnv {
        KernelEnv::default()
    }

    #[test]
    fn prefill_much_slower_than_one_decode_step() {
        let dev = GpuModel::V100_32G.spec();
        let spec = zoo::opt_13b();
        let pre = layer_latency(&dev, &env(), &spec, &PhaseWorkload::prefill(8, 512), Bitwidth::Fp16, 16.0);
        let dec = layer_latency(&dev, &env(), &spec, &PhaseWorkload::decode(8, 512, 512), Bitwidth::Fp16, 16.0);
        assert!(pre > 10.0 * dec, "prefill {pre} vs decode {dec}");
    }

    #[test]
    fn p100_v100_gap_differs_by_phase() {
        // Fig 3: the P100/V100 ratio in prefill (compute-bound) is far
        // larger than in decode (bandwidth-bound) — P100's FLOPs deficit
        // (6×) dwarfs its bandwidth deficit (1.6×).
        let p100 = GpuModel::P100_12G.spec();
        let v100 = GpuModel::V100_32G.spec();
        let spec = zoo::opt_13b();
        let wl_p = PhaseWorkload::prefill(8, 512);
        let wl_d = PhaseWorkload::decode(8, 512, 512);
        let ratio_pre = layer_latency(&p100, &env(), &spec, &wl_p, Bitwidth::Fp16, 16.0)
            / layer_latency(&v100, &env(), &spec, &wl_p, Bitwidth::Fp16, 16.0);
        let ratio_dec = layer_latency(&p100, &env(), &spec, &wl_d, Bitwidth::Fp16, 16.0)
            / layer_latency(&v100, &env(), &spec, &wl_d, Bitwidth::Fp16, 16.0);
        assert!(
            ratio_pre > 2.0 * ratio_dec,
            "phase gap: prefill ratio {ratio_pre:.2}, decode ratio {ratio_dec:.2}"
        );
    }

    #[test]
    fn int8_fast_on_t4_slow_on_v100_in_prefill() {
        let spec = zoo::opt_30b();
        let wl = PhaseWorkload::prefill(8, 512);
        let t4 = GpuModel::T4_16G.spec();
        let v100 = GpuModel::V100_32G.spec();
        let t4_ratio = layer_latency(&t4, &env(), &spec, &wl, Bitwidth::Int8, 16.0)
            / layer_latency(&t4, &env(), &spec, &wl, Bitwidth::Fp16, 16.0);
        let v100_ratio = layer_latency(&v100, &env(), &spec, &wl, Bitwidth::Int8, 16.0)
            / layer_latency(&v100, &env(), &spec, &wl, Bitwidth::Fp16, 16.0);
        assert!(t4_ratio < 1.05, "T4 int8/fp16 prefill ratio {t4_ratio:.2}");
        assert!(v100_ratio > 1.2, "V100 int8/fp16 prefill ratio {v100_ratio:.2}");
    }

    #[test]
    fn low_bits_speed_up_decode_via_weight_traffic() {
        // Decode is weight-bandwidth-bound: 4-bit should clearly beat
        // FP16 on every device (Fig 5's decode panels).
        let spec = zoo::opt_30b();
        let wl = PhaseWorkload::decode(8, 512, 512);
        for gpu in GpuModel::ALL {
            let dev = gpu.spec();
            let fp16 = layer_latency(&dev, &env(), &spec, &wl, Bitwidth::Fp16, 16.0);
            let int4 = layer_latency(&dev, &env(), &spec, &wl, Bitwidth::Int4, 16.0);
            assert!(int4 < fp16, "{gpu}: int4 {int4} >= fp16 {fp16}");
        }
    }

    #[test]
    fn fp16_can_win_prefill_over_low_bits() {
        // Fig 5: "FP16 precision leads to the fastest inference in many
        // cases" — in compute-bound prefill the dequant tax makes 3-bit
        // slower than FP16 on an A100.
        let spec = zoo::opt_30b();
        let dev = GpuModel::A100_40G.spec();
        let wl = PhaseWorkload::prefill(32, 512);
        let fp16 = layer_latency(&dev, &env(), &spec, &wl, Bitwidth::Fp16, 16.0);
        let int3 = layer_latency(&dev, &env(), &spec, &wl, Bitwidth::Int3, 16.0);
        assert!(fp16 < int3, "fp16 {fp16} should beat int3 {int3} in prefill");
    }

    #[test]
    fn decode_latency_grows_with_batch_sublinearly() {
        // Weight reads amortize across the batch: doubling the decode
        // batch must far less than double latency (why large decode
        // micro-batches are efficient — Optimization #1).
        let spec = zoo::opt_30b();
        let dev = GpuModel::V100_32G.spec();
        let t8 = layer_latency(&dev, &env(), &spec, &PhaseWorkload::decode(8, 512, 512), Bitwidth::Fp16, 16.0);
        let t16 = layer_latency(&dev, &env(), &spec, &PhaseWorkload::decode(16, 512, 512), Bitwidth::Fp16, 16.0);
        assert!(t16 < 1.5 * t8, "batch 16 {t16} vs batch 8 {t8}");
    }

    #[test]
    fn embedding_latency_positive_and_phase_scaled() {
        let spec = zoo::opt_13b();
        let dev = GpuModel::A100_40G.spec();
        let pre = embedding_latency(&dev, &env(), &spec, &PhaseWorkload::prefill(8, 512));
        let dec = embedding_latency(&dev, &env(), &spec, &PhaseWorkload::decode(8, 512, 512));
        assert!(pre > dec && dec > 0.0);
    }

    #[test]
    fn latency_monotone_in_prompt_length() {
        let spec = zoo::opt_13b();
        let dev = GpuModel::T4_16G.spec();
        let mut prev = 0.0;
        for s in [64, 128, 256, 512, 1024] {
            let t = layer_latency(&dev, &env(), &spec, &PhaseWorkload::prefill(4, s), Bitwidth::Fp16, 16.0);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn quantized_kv_reduces_decode_time() {
        let spec = zoo::opt_66b();
        let dev = GpuModel::V100_32G.spec();
        let wl = PhaseWorkload::decode(32, 512, 600);
        let full = layer_latency(&dev, &env(), &spec, &wl, Bitwidth::Int4, 16.0);
        let half = layer_latency(&dev, &env(), &spec, &wl, Bitwidth::Int4, 8.0);
        assert!(half < full);
    }
}
