//! FlexGen-style offloading executor (baseline for Tables 4, 5, 7).
//!
//! When a model shard does not fit in GPU memory, FlexGen stores the
//! overflow on CPU RAM and NVMe and streams it in during execution,
//! overlapping transfers with compute (zig-zag block schedule). The
//! throughput of such a stage is bounded by
//! `max(compute, overflow-traffic / interconnect-bandwidth)` per token
//! step — swapping overhead is what makes FlexGen lose to LLM-PQ whenever
//! the cluster can hold a quantized model entirely in GPU memory.

use crate::kernel::{layer_latency, KernelEnv};
use llmpq_cluster::DeviceSpec;
use llmpq_model::{ModelSpec, PhaseWorkload};
use llmpq_quant::Bitwidth;
use serde::{Deserialize, Serialize};

/// Offloading environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadConfig {
    /// Host↔device (PCIe) bandwidth, bytes/s.
    pub pcie_bps: f64,
    /// CPU RAM available for weights, bytes.
    pub cpu_ram_bytes: f64,
    /// NVMe read bandwidth, bytes/s ("GB/s SSD" in the paper's testbed).
    pub nvme_bps: f64,
    /// Fraction of transfer hidden behind compute (zig-zag overlap).
    pub overlap: f64,
}

impl Default for OffloadConfig {
    fn default() -> Self {
        Self { pcie_bps: 16e9, cpu_ram_bytes: 64e9, nvme_bps: 3e9, overlap: 0.7 }
    }
}

/// Result of evaluating one offloading stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadReport {
    /// Bytes of weights resident on the GPU.
    pub gpu_resident_bytes: f64,
    /// Bytes streamed from CPU RAM per pass over the layers.
    pub cpu_stream_bytes: f64,
    /// Bytes streamed from NVMe per pass.
    pub nvme_stream_bytes: f64,
    /// Seconds per prefill micro-batch on this stage.
    pub prefill_time: f64,
    /// Seconds per decode micro-batch step on this stage.
    pub decode_time: f64,
}

/// Evaluate one stage that owns `n_layers` layers of `spec` at uniform
/// `bits` on `dev`, with `reserved_bytes` (KV cache + temporaries +
/// embeddings) already claimed on the GPU.
#[allow(clippy::too_many_arguments)]
pub fn offload_stage(
    dev: &DeviceSpec,
    env: &KernelEnv,
    cfg: &OffloadConfig,
    spec: &ModelSpec,
    n_layers: usize,
    bits: Bitwidth,
    reserved_bytes: f64,
    prefill: &PhaseWorkload,
    decode: &PhaseWorkload,
) -> OffloadReport {
    let per_layer = spec.layer_weight_bytes(bits.bits_f64());
    let total = per_layer * n_layers as f64;
    let gpu_budget = (dev.mem_bytes() - reserved_bytes).max(0.0);
    let gpu_resident = total.min(gpu_budget);
    let overflow = total - gpu_resident;
    let cpu_stream = overflow.min(cfg.cpu_ram_bytes);
    let nvme_stream = (overflow - cpu_stream).max(0.0);

    // Per pass over the stage's layers, the overflow must cross PCIe
    // (and possibly come off NVMe first — the slower of the two paths
    // gates the stream).
    let stream_time = cpu_stream / cfg.pcie_bps + nvme_stream / cfg.nvme_bps.min(cfg.pcie_bps);
    let visible_stream = stream_time * (1.0 - cfg.overlap);

    let compute_pre: f64 =
        (0..n_layers).map(|_| layer_latency(dev, env, spec, prefill, bits, 16.0)).sum();
    let compute_dec: f64 =
        (0..n_layers).map(|_| layer_latency(dev, env, spec, decode, bits, 16.0)).sum();

    OffloadReport {
        gpu_resident_bytes: gpu_resident,
        cpu_stream_bytes: cpu_stream,
        nvme_stream_bytes: nvme_stream,
        prefill_time: compute_pre.max(stream_time * cfg.overlap) + visible_stream,
        decode_time: compute_dec.max(stream_time * cfg.overlap) + visible_stream,
    }
}

/// Convenience: decode-phase token throughput (tokens/s) of a single
/// offloading device running the whole model — FlexGen's headline metric.
pub fn offload_throughput(
    dev: &DeviceSpec,
    env: &KernelEnv,
    cfg: &OffloadConfig,
    spec: &ModelSpec,
    bits: Bitwidth,
    reserved_bytes: f64,
    decode: &PhaseWorkload,
) -> f64 {
    let r = offload_stage(
        dev,
        env,
        cfg,
        spec,
        spec.n_layers,
        bits,
        reserved_bytes,
        &PhaseWorkload::prefill(decode.batch, decode.prompt_len),
        decode,
    );
    decode.batch as f64 / r.decode_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_cluster::GpuModel;
    use llmpq_model::zoo;

    fn env() -> KernelEnv {
        KernelEnv::default()
    }

    #[test]
    fn fitting_model_pays_no_stream_cost() {
        let dev = GpuModel::A100_40G.spec();
        let spec = zoo::opt_13b();
        let r = offload_stage(
            &dev,
            &env(),
            &OffloadConfig::default(),
            &spec,
            spec.n_layers,
            Bitwidth::Fp16,
            2e9,
            &PhaseWorkload::prefill(8, 512),
            &PhaseWorkload::decode(8, 512, 512),
        );
        assert_eq!(r.cpu_stream_bytes, 0.0);
        assert_eq!(r.nvme_stream_bytes, 0.0);
    }

    #[test]
    fn overflowing_model_streams_and_slows() {
        // OPT-30b FP16 (~60 GB) on a 16 GB T4: heavy swapping.
        let dev = GpuModel::T4_16G.spec();
        let spec = zoo::opt_30b();
        let cfg = OffloadConfig::default();
        let pre = PhaseWorkload::prefill(8, 512);
        let dec = PhaseWorkload::decode(8, 512, 512);
        let r = offload_stage(&dev, &env(), &cfg, &spec, spec.n_layers, Bitwidth::Fp16, 2e9, &pre, &dec);
        assert!(r.cpu_stream_bytes > 0.0);
        let fit_dec: f64 = (0..spec.n_layers)
            .map(|_| layer_latency(&dev, &env(), &spec, &dec, Bitwidth::Fp16, 16.0))
            .sum();
        assert!(
            r.decode_time > 3.0 * fit_dec,
            "swap {} should dwarf pure compute {}",
            r.decode_time,
            fit_dec
        );
    }

    #[test]
    fn int8_reduces_swap_traffic() {
        // FlexGen-int8 consistently beats FlexGen-fp16 in the paper's
        // memory-constrained rows because it halves the stream.
        let dev = GpuModel::T4_16G.spec();
        let spec = zoo::opt_30b();
        let cfg = OffloadConfig::default();
        let dec = PhaseWorkload::decode(8, 512, 512);
        let t_fp16 = offload_throughput(&dev, &env(), &cfg, &spec, Bitwidth::Fp16, 2e9, &dec);
        let t_int8 = offload_throughput(&dev, &env(), &cfg, &spec, Bitwidth::Int8, 2e9, &dec);
        assert!(t_int8 > t_fp16, "int8 {t_int8} vs fp16 {t_fp16}");
    }

    #[test]
    fn nvme_spill_is_slower_than_ram_spill() {
        let dev = GpuModel::T4_16G.spec();
        let spec = zoo::opt_66b(); // ~132 GB FP16: spills past 64 GB RAM
        let cfg = OffloadConfig::default();
        let pre = PhaseWorkload::prefill(8, 512);
        let dec = PhaseWorkload::decode(8, 512, 512);
        let r = offload_stage(&dev, &env(), &cfg, &spec, spec.n_layers, Bitwidth::Fp16, 2e9, &pre, &dec);
        assert!(r.nvme_stream_bytes > 0.0, "should spill to NVMe");
        let big_ram = OffloadConfig { cpu_ram_bytes: 1e12, ..cfg };
        let r2 = offload_stage(&dev, &env(), &big_ram, &spec, spec.n_layers, Bitwidth::Fp16, 2e9, &pre, &dec);
        assert!(r2.decode_time < r.decode_time, "RAM-only spill must be faster");
    }

    #[test]
    fn reserved_bytes_shrink_residency() {
        let dev = GpuModel::V100_32G.spec();
        let spec = zoo::opt_30b();
        let cfg = OffloadConfig::default();
        let pre = PhaseWorkload::prefill(8, 512);
        let dec = PhaseWorkload::decode(8, 512, 512);
        let a = offload_stage(&dev, &env(), &cfg, &spec, 24, Bitwidth::Fp16, 0.0, &pre, &dec);
        let b = offload_stage(&dev, &env(), &cfg, &spec, 24, Bitwidth::Fp16, 20e9, &pre, &dec);
        assert!(b.gpu_resident_bytes < a.gpu_resident_bytes);
    }
}
