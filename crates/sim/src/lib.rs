//! # llmpq-sim
//!
//! The execution substrate standing in for the paper's GPU testbed.
//!
//! * [`kernel`] — a roofline model of single-layer execution on a given
//!   GPU at a given precision: `t = max(compute, memory) + overhead`,
//!   with per-device per-bitwidth efficiency tables from `llmpq-cluster`.
//!   This is the *ground truth* the profiler samples and the regression
//!   cost model approximates.
//! * [`pipeline`] — a discrete-event simulation of pipeline-parallel
//!   generative serving: prefill micro-batches streaming through stages,
//!   then autoregressive decode steps with the real inter-token
//!   dependency (token *t* of a micro-batch cannot enter stage 0 before
//!   token *t−1* left the last stage).
//! * [`offload`] — a FlexGen-style CPU/NVMe offloading executor for the
//!   baseline rows of Tables 4, 5 and 7.
//! * [`memory`] — an allocator-level "measured" peak-memory accounting
//!   used as the real-system side of the Fig 7 fidelity experiment.

pub mod kernel;
pub mod memory;
pub mod offload;
pub mod pipeline;
pub mod tp;

pub use kernel::{embedding_latency, layer_latency, KernelEnv};
pub use memory::{layer_workspace_bytes, measured_peak_memory};
pub use offload::{offload_stage, offload_throughput, OffloadConfig, OffloadReport};
pub use pipeline::{
    analytical_latency, recovery_cost, simulate_pipeline, FailureModel, PipelineReport,
    PipelineWorkload, RecoveryReport, StageLoad,
};
pub use tp::{allreduce_time, tp_layer_latency, TpGroup};
