//! Discrete-event simulation of pipeline-parallel generative serving.
//!
//! Models exactly the execution the paper's runtime performs on an
//! offline batch job: the master engine embeds micro-batches and feeds
//! them through the stage pipeline; prefill micro-batches stream freely
//! (GPipe-style), while decode steps carry the autoregressive dependency
//! — token *t* of a micro-batch enters stage 0 only after token *t−1*
//! finished the last stage and its logits were processed.
//!
//! Because LLM-PQ sizes micro-batches *per phase* (hybrid micro-batch
//! sizing), the global batch is re-chunked at the prefill→decode
//! boundary, which acts as a barrier.

use serde::{Deserialize, Serialize};

/// Per-stage execution profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageLoad {
    /// Time to process one *prefill* micro-batch on this stage (s).
    pub prefill_time: f64,
    /// Time to process one *decode* micro-batch token-step (s).
    pub decode_time: f64,
    /// Time to ship a prefill activation to the next stage (s).
    pub comm_prefill: f64,
    /// Time to ship a decode activation to the next stage (s).
    pub comm_decode: f64,
}

/// Workload shape for one batch job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineWorkload {
    /// Number of prefill micro-batches (global batch / prefill µ-size).
    pub prefill_microbatches: usize,
    /// Number of decode micro-batches.
    pub decode_microbatches: usize,
    /// Tokens generated per sequence (`n`); the first comes from prefill
    /// logits, the remaining `n−1` from decode steps.
    pub n_tokens: usize,
    /// Master-engine time per prefill micro-batch (embedding + logits).
    pub master_prefill: f64,
    /// Master-engine time per decode micro-batch step.
    pub master_decode: f64,
}

/// Result of a pipeline simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Wall-clock until the last prefill logits were produced (s).
    pub prefill_latency: f64,
    /// Wall-clock of the decode phase (s).
    pub decode_latency: f64,
    /// End-to-end latency of the batch (s).
    pub total_latency: f64,
    /// Busy seconds per stage.
    pub stage_busy: Vec<f64>,
    /// 1 − busy/total of the most idle stage during decode.
    pub max_bubble_fraction: f64,
}

/// Simulate one batch job. `stages` orders pipeline stages from input to
/// output.
#[allow(clippy::needless_range_loop)]
pub fn simulate_pipeline(stages: &[StageLoad], w: &PipelineWorkload) -> PipelineReport {
    assert!(!stages.is_empty(), "need at least one stage");
    assert!(w.prefill_microbatches > 0, "need at least one prefill micro-batch");
    assert!(w.n_tokens >= 1, "must generate at least one token");
    if w.n_tokens > 1 {
        assert!(w.decode_microbatches > 0, "decode requires micro-batches");
    }
    let n_stages = stages.len();
    let mut stage_free = vec![0.0f64; n_stages];
    let mut stage_busy = vec![0.0f64; n_stages];
    let mut master_free;

    // --- Prefill: free-streaming micro-batches ---
    // The master prioritizes feeding the pipeline: it embeds every
    // micro-batch back to back (they are all ready at t=0), then handles
    // logits jobs as stage outputs arrive.
    let half_master = w.master_prefill / 2.0;
    let mut prefill_end = 0.0f64;
    let embed_done: Vec<f64> = (0..w.prefill_microbatches)
        .map(|m| (m + 1) as f64 * half_master)
        .collect();
    master_free = w.prefill_microbatches as f64 * half_master;
    let mut stage_out = vec![0.0f64; w.prefill_microbatches];
    for (m, out) in stage_out.iter_mut().enumerate() {
        let mut t = embed_done[m];
        for (s, st) in stages.iter().enumerate() {
            let start = t.max(stage_free[s]);
            let done = start + st.prefill_time;
            stage_free[s] = done;
            stage_busy[s] += st.prefill_time;
            t = done + if s + 1 < n_stages { st.comm_prefill } else { 0.0 };
        }
        *out = t;
    }
    // Stage outputs complete in micro-batch order (stage occupancy is
    // FIFO), so processing logits in that order is arrival order.
    for &out in &stage_out {
        let start = out.max(master_free);
        let done = start + half_master;
        master_free = done;
        prefill_end = prefill_end.max(done);
    }

    // --- Decode: autoregressive steps with re-chunk barrier ---
    let decode_busy_start: Vec<f64> = stage_busy.clone();
    let mut decode_end = prefill_end;
    if w.n_tokens > 1 {
        for s in 0..n_stages {
            stage_free[s] = stage_free[s].max(prefill_end);
        }
        master_free = master_free.max(prefill_end);
        let half_dec = w.master_decode / 2.0;
        // Event-driven FIFO scheduling. Each micro-batch walks the chain
        //   master-embed → stage 0 → … → stage k−1 → master-logits
        // once per token step; every resource (master, each stage) is a
        // single FIFO server. Requests are served in ready-time order.
        //
        // `pos`: 0 = master embed, 1..=k = stage pos−1, k+1 = logits.
        #[derive(Debug, Clone, Copy)]
        struct Req {
            ready: f64,
            m: usize,
            step: usize,
            pos: usize,
        }
        let mut heap: Vec<Req> = (0..w.decode_microbatches)
            .map(|m| Req { ready: prefill_end, m, step: 1, pos: 0 })
            .collect();
        // Binary min-heap over (ready, step, m) for deterministic order.
        let before = |a: &Req, b: &Req| {
            (a.ready, a.step, a.m, a.pos) < (b.ready, b.step, b.m, b.pos)
        };
        let pop_min = |heap: &mut Vec<Req>| -> Req {
            let mut best = 0;
            for i in 1..heap.len() {
                if before(&heap[i], &heap[best]) {
                    best = i;
                }
            }
            heap.swap_remove(best)
        };
        while !heap.is_empty() {
            let req = pop_min(&mut heap);
            let last_pos = n_stages + 1;
            let (start, done) = if req.pos == 0 || req.pos == last_pos {
                let start = req.ready.max(master_free);
                let done = start + half_dec;
                master_free = done;
                (start, done)
            } else {
                let s = req.pos - 1;
                let start = req.ready.max(stage_free[s]);
                let done = start + stages[s].decode_time;
                stage_free[s] = done;
                stage_busy[s] += stages[s].decode_time;
                (start, done)
            };
            let _ = start;
            if req.pos == last_pos {
                decode_end = decode_end.max(done);
                if req.step + 1 < w.n_tokens {
                    heap.push(Req { ready: done, m: req.m, step: req.step + 1, pos: 0 });
                }
            } else {
                let comm = if req.pos >= 1 && req.pos < n_stages {
                    stages[req.pos - 1].comm_decode
                } else {
                    0.0
                };
                heap.push(Req { ready: done + comm, m: req.m, step: req.step, pos: req.pos + 1 });
            }
        }
    }

    let decode_span = (decode_end - prefill_end).max(f64::MIN_POSITIVE);
    let max_bubble = if w.n_tokens > 1 {
        (0..n_stages)
            .map(|s| 1.0 - (stage_busy[s] - decode_busy_start[s]) / decode_span)
            .fold(0.0f64, f64::max)
    } else {
        0.0
    };

    PipelineReport {
        prefill_latency: prefill_end,
        decode_latency: decode_end - prefill_end,
        total_latency: decode_end,
        stage_busy,
        max_bubble_fraction: max_bubble.clamp(0.0, 1.0),
    }
}

/// MTTF/MTTR failure model for a pipeline run, quantifying what the
/// runtime supervisor's recovery paths cost in expectation.
///
/// Transient faults (worker crash, hang, dropped message) strike each
/// stage as a Poisson process with mean time to failure `mttf_s`; each
/// costs a detection+restart round trip plus the
/// re-prefill of the lock-step checkpoint. A *permanent* device loss
/// additionally forces a replan: Algorithm 1 on the survivors plus the
/// on-the-fly reload, after which the remaining tokens run at the
/// degraded plan's (usually slower) rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Mean time to (transient) failure per stage, seconds.
    pub mttf_s: f64,
    /// Mean time to detect + repair a transient failure (heartbeat
    /// timeout, backoff, worker respawn), seconds.
    pub mttr_s: f64,
    /// Fixed overhead per restart beyond `mttr_s` (channel teardown,
    /// KV-cache reallocation), seconds.
    pub restart_overhead_s: f64,
    /// Replan cost on permanent loss: assigner wall-clock plus the
    /// on-the-fly quantizing reload of re-homed shards, seconds.
    pub replan_overhead_s: f64,
    /// Latency multiplier (≥ 1) of the replanned pipeline relative to
    /// the original — the price of running on fewer devices.
    pub replan_slowdown: f64,
}

impl Default for FailureModel {
    fn default() -> Self {
        Self {
            mttf_s: 24.0 * 3600.0,
            mttr_s: 5.0,
            restart_overhead_s: 1.0,
            replan_overhead_s: 30.0,
            replan_slowdown: 1.5,
        }
    }
}

/// Expected cost of the supervisor's recovery paths for one batch job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Fault-free batch latency (s).
    pub fault_free_latency: f64,
    /// Expected number of transient failures during the run (over all
    /// stages).
    pub expected_transient_failures: f64,
    /// Expected latency with restart-based recovery of transient
    /// failures (s).
    pub restart_latency: f64,
    /// Latency when one device is lost permanently mid-run and the
    /// supervisor replans onto the survivors (s).
    pub replan_latency: f64,
    /// Latency under restart-only recovery when the loss is permanent:
    /// infinite, since the same plan can never complete.
    pub restart_only_permanent_latency: f64,
    /// `(restart_latency − fault_free) / fault_free`.
    pub transient_overhead_fraction: f64,
}

/// Quantify recovery cost for a pipeline described by `stages`/`w` under
/// failure model `fm`.
///
/// Work lost per failure is one re-prefill of the checkpointed context
/// (lock-step checkpointing truncates to the last complete token, and
/// resume replays prompt + prefix through the pipeline once), which the
/// fault-free prefill latency approximates. The permanent loss is
/// assumed to strike at the half-way point of the run.
pub fn recovery_cost(stages: &[StageLoad], w: &PipelineWorkload, fm: &FailureModel) -> RecoveryReport {
    assert!(fm.mttf_s > 0.0, "mttf must be positive");
    assert!(fm.replan_slowdown >= 1.0, "a replanned pipeline cannot be faster");
    let base = simulate_pipeline(stages, w);
    let t0 = base.total_latency;
    let lost_per_failure = base.prefill_latency;
    let n_fail = t0 / fm.mttf_s * stages.len() as f64;
    let restart_latency =
        t0 + n_fail * (fm.mttr_s + fm.restart_overhead_s + lost_per_failure);
    let tau = t0 / 2.0;
    let replan_latency =
        tau + fm.mttr_s + fm.replan_overhead_s + lost_per_failure + (t0 - tau) * fm.replan_slowdown;
    RecoveryReport {
        fault_free_latency: t0,
        expected_transient_failures: n_fail,
        restart_latency,
        replan_latency,
        restart_only_permanent_latency: f64::INFINITY,
        transient_overhead_fraction: (restart_latency - t0) / t0,
    }
}

/// The paper's closed-form objective (eq. 4): pipeline latency
/// `(µ_pre −1)·T_max_pre + ΣT_pre + ((n−1)·µ_dec −1)·T_max_dec + ΣT_dec`,
/// with per-stage times including outgoing communication. The ILP
/// minimizes this; the DES above validates it.
pub fn analytical_latency(stages: &[StageLoad], w: &PipelineWorkload) -> f64 {
    let pre: Vec<f64> = stages.iter().map(|s| s.prefill_time + s.comm_prefill).collect();
    let dec: Vec<f64> = stages.iter().map(|s| s.decode_time + s.comm_decode).collect();
    let t_max_pre = pre.iter().cloned().fold(w.master_prefill, f64::max);
    let t_max_dec = dec.iter().cloned().fold(w.master_decode, f64::max);
    let sum_pre: f64 = pre.iter().sum::<f64>() + w.master_prefill;
    let sum_dec: f64 = dec.iter().sum::<f64>() + w.master_decode;
    let prefill = (w.prefill_microbatches as f64 - 1.0) * t_max_pre + sum_pre;
    let decode_steps = (w.n_tokens.saturating_sub(1) * w.decode_microbatches) as f64;
    let decode = if decode_steps > 0.0 {
        (decode_steps - 1.0) * t_max_dec + sum_dec
    } else {
        0.0
    };
    prefill + decode
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_stages(n: usize, pre: f64, dec: f64) -> Vec<StageLoad> {
        vec![
            StageLoad { prefill_time: pre, decode_time: dec, comm_prefill: 0.0, comm_decode: 0.0 };
            n
        ]
    }

    fn wl(mu_p: usize, mu_d: usize, n: usize) -> PipelineWorkload {
        PipelineWorkload {
            prefill_microbatches: mu_p,
            decode_microbatches: mu_d,
            n_tokens: n,
            master_prefill: 0.0,
            master_decode: 0.0,
        }
    }

    #[test]
    fn single_stage_single_microbatch() {
        let stages = uniform_stages(1, 2.0, 0.1);
        let r = simulate_pipeline(&stages, &wl(1, 1, 11));
        assert!((r.prefill_latency - 2.0).abs() < 1e-9);
        assert!((r.decode_latency - 1.0).abs() < 1e-9);
        assert!((r.total_latency - 3.0).abs() < 1e-9);
    }

    #[test]
    fn pipelining_overlaps_microbatches() {
        // 4 stages × 1s each; 4 micro-batches: perfect pipeline finishes
        // in 4 (fill) + 3 (drain) = 7s, far below serial 16s.
        let stages = uniform_stages(4, 1.0, 0.0);
        let r = simulate_pipeline(&stages, &wl(4, 1, 1));
        assert!((r.prefill_latency - 7.0).abs() < 1e-9, "got {}", r.prefill_latency);
    }

    #[test]
    fn slowest_stage_bounds_throughput() {
        let mut stages = uniform_stages(3, 1.0, 0.0);
        stages[1].prefill_time = 3.0; // straggler
        let r = simulate_pipeline(&stages, &wl(8, 1, 1));
        // Steady state: one micro-batch per 3s through the straggler.
        let expect = analytical_latency(&stages, &wl(8, 1, 1));
        assert!((r.prefill_latency - expect).abs() / expect < 0.05, "{} vs {expect}", r.prefill_latency);
    }

    #[test]
    fn matches_analytical_formula_when_saturated() {
        let stages = uniform_stages(4, 2.0, 0.2);
        let w = wl(8, 4, 50);
        let des = simulate_pipeline(&stages, &w).total_latency;
        let ana = analytical_latency(&stages, &w);
        let err = (des - ana).abs() / ana;
        assert!(err < 0.10, "DES {des:.2} vs analytical {ana:.2} ({:.1}%)", err * 100.0);
    }

    #[test]
    fn decode_dependency_serializes_single_microbatch() {
        // With one decode micro-batch, steps cannot overlap: each token
        // must traverse the whole pipeline before the next starts.
        let stages = uniform_stages(3, 1.0, 0.5);
        let r = simulate_pipeline(&stages, &wl(1, 1, 11));
        // 10 decode steps × 3 stages × 0.5s
        assert!((r.decode_latency - 15.0).abs() < 1e-9, "got {}", r.decode_latency);
        assert!(r.max_bubble_fraction > 0.5, "pipeline mostly idle per stage");
    }

    #[test]
    fn more_decode_microbatches_fill_bubbles() {
        let stages = uniform_stages(4, 1.0, 0.5);
        let one = simulate_pipeline(&stages, &wl(1, 1, 21));
        let four = simulate_pipeline(&stages, &wl(1, 4, 21));
        // 4 µ-batches of work is 4× the tokens, but overlap means far
        // less than 4× the time.
        assert!(four.decode_latency < 2.0 * one.decode_latency);
        assert!(four.max_bubble_fraction < one.max_bubble_fraction);
    }

    #[test]
    fn comm_time_extends_latency() {
        let mut stages = uniform_stages(2, 1.0, 0.1);
        let base = simulate_pipeline(&stages, &wl(2, 2, 10)).total_latency;
        stages[0].comm_prefill = 0.5;
        stages[0].comm_decode = 0.5;
        let slow = simulate_pipeline(&stages, &wl(2, 2, 10)).total_latency;
        assert!(slow > base);
    }

    #[test]
    fn master_engine_is_a_serial_resource() {
        let stages = uniform_stages(2, 1.0, 0.1);
        let mut w = wl(4, 2, 5);
        w.master_prefill = 2.0; // master slower than the stages
        let r = simulate_pipeline(&stages, &w);
        // Master alone needs 4 × 2s just for prefill pre/post-processing.
        assert!(r.prefill_latency >= 8.0);
    }

    #[test]
    fn stage_busy_accounts_all_work() {
        let stages = uniform_stages(3, 1.0, 0.25);
        let w = wl(4, 2, 9);
        let r = simulate_pipeline(&stages, &w);
        for s in 0..3 {
            let expect = 4.0 * 1.0 + (2 * 8) as f64 * 0.25;
            assert!((r.stage_busy[s] - expect).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn rejects_empty_pipeline() {
        simulate_pipeline(&[], &wl(1, 1, 1));
    }

    #[test]
    fn n_tokens_one_skips_decode() {
        let stages = uniform_stages(2, 1.0, 9.0);
        let r = simulate_pipeline(&stages, &wl(2, 0, 1));
        assert_eq!(r.decode_latency, 0.0);
    }

    #[test]
    fn reliable_cluster_has_negligible_recovery_overhead() {
        let stages = uniform_stages(3, 1.0, 0.1);
        let w = wl(4, 2, 10);
        let fm = FailureModel { mttf_s: 1e9, ..FailureModel::default() };
        let r = recovery_cost(&stages, &w, &fm);
        assert!(r.expected_transient_failures < 1e-6);
        assert!((r.restart_latency - r.fault_free_latency) / r.fault_free_latency < 1e-6);
        assert!(r.transient_overhead_fraction < 1e-6);
    }

    #[test]
    fn flaky_cluster_pays_for_restarts() {
        let stages = uniform_stages(3, 1.0, 0.1);
        let w = wl(4, 2, 10);
        let good = recovery_cost(&stages, &w, &FailureModel { mttf_s: 1e6, ..FailureModel::default() });
        let bad = recovery_cost(&stages, &w, &FailureModel { mttf_s: 30.0, ..FailureModel::default() });
        assert!(bad.expected_transient_failures > good.expected_transient_failures);
        assert!(bad.restart_latency > good.restart_latency);
        assert!(bad.transient_overhead_fraction > 0.1);
    }

    #[test]
    fn replan_is_finite_where_restart_is_not() {
        let stages = uniform_stages(3, 1.0, 0.1);
        let w = wl(4, 2, 10);
        let r = recovery_cost(&stages, &w, &FailureModel::default());
        assert!(r.restart_only_permanent_latency.is_infinite());
        assert!(r.replan_latency.is_finite());
        assert!(
            r.replan_latency > r.fault_free_latency,
            "recovery is never free: {} vs {}",
            r.replan_latency,
            r.fault_free_latency
        );
    }

    #[test]
    fn slower_replanned_pipeline_costs_more() {
        let stages = uniform_stages(3, 1.0, 0.1);
        let w = wl(4, 2, 10);
        let mild = recovery_cost(&stages, &w, &FailureModel { replan_slowdown: 1.1, ..FailureModel::default() });
        let harsh = recovery_cost(&stages, &w, &FailureModel { replan_slowdown: 3.0, ..FailureModel::default() });
        assert!(harsh.replan_latency > mild.replan_latency);
    }

    #[test]
    #[should_panic(expected = "mttf must be positive")]
    fn rejects_nonpositive_mttf() {
        let stages = uniform_stages(1, 1.0, 0.1);
        recovery_cost(&stages, &wl(1, 1, 2), &FailureModel { mttf_s: 0.0, ..FailureModel::default() });
    }
}
