//! Property-based tests for the execution simulator.

use llmpq_cluster::GpuModel;
use llmpq_model::{zoo, PhaseWorkload};
use llmpq_quant::Bitwidth;
use llmpq_sim::{
    layer_latency, measured_peak_memory, simulate_pipeline, KernelEnv, PipelineWorkload, StageLoad,
};
use proptest::prelude::*;

fn any_gpu() -> impl Strategy<Value = GpuModel> {
    prop_oneof![
        Just(GpuModel::P100_12G),
        Just(GpuModel::T4_16G),
        Just(GpuModel::V100_32G),
        Just(GpuModel::A100_40G),
        Just(GpuModel::A800_80G),
    ]
}

fn any_bits() -> impl Strategy<Value = Bitwidth> {
    prop_oneof![
        Just(Bitwidth::Int3),
        Just(Bitwidth::Int4),
        Just(Bitwidth::Int8),
        Just(Bitwidth::Fp16),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kernel latency is positive, finite, and monotone in batch size
    /// and prompt length for every device × precision.
    #[test]
    fn kernel_latency_monotone(
        gpu in any_gpu(),
        bits in any_bits(),
        batch in 1usize..32,
        s in 32usize..512,
    ) {
        let dev = gpu.spec();
        let env = KernelEnv::default();
        let spec = zoo::opt_13b();
        let t = layer_latency(&dev, &env, &spec, &PhaseWorkload::prefill(batch, s), bits, 16.0);
        prop_assert!(t.is_finite() && t > 0.0);
        let t_bigger_batch =
            layer_latency(&dev, &env, &spec, &PhaseWorkload::prefill(batch + 1, s), bits, 16.0);
        prop_assert!(t_bigger_batch >= t - 1e-12);
        let t_longer =
            layer_latency(&dev, &env, &spec, &PhaseWorkload::prefill(batch, s + 64), bits, 16.0);
        prop_assert!(t_longer >= t - 1e-12);
    }

    /// Decode latency never decreases with context length.
    #[test]
    fn decode_latency_monotone_in_context(
        gpu in any_gpu(),
        bits in any_bits(),
        past in 16usize..1024,
    ) {
        let dev = gpu.spec();
        let env = KernelEnv::default();
        let spec = zoo::opt_30b();
        let a = layer_latency(&dev, &env, &spec, &PhaseWorkload::decode(8, 512, past), bits, 16.0);
        let b = layer_latency(&dev, &env, &spec, &PhaseWorkload::decode(8, 512, past + 64), bits, 16.0);
        prop_assert!(b >= a - 1e-12);
    }

    /// Pipeline latency is monotone: slowing any stage cannot finish the
    /// batch earlier.
    #[test]
    fn pipeline_monotone_in_stage_time(
        n_stages in 1usize..5,
        victim in 0usize..5,
        pre in 0.1f64..1.0,
        dec in 0.01f64..0.1,
        extra in 0.01f64..1.0,
        mu_p in 1usize..4,
        mu_d in 1usize..4,
    ) {
        let victim = victim % n_stages;
        let base = vec![StageLoad { prefill_time: pre, decode_time: dec, comm_prefill: 0.0, comm_decode: 0.0 }; n_stages];
        let w = PipelineWorkload {
            prefill_microbatches: mu_p,
            decode_microbatches: mu_d,
            n_tokens: 10,
            master_prefill: 0.0,
            master_decode: 0.0,
        };
        let t0 = simulate_pipeline(&base, &w).total_latency;
        let mut slower = base.clone();
        slower[victim].prefill_time += extra;
        slower[victim].decode_time += extra / 10.0;
        let t1 = simulate_pipeline(&slower, &w).total_latency;
        prop_assert!(t1 >= t0 - 1e-9, "slowing stage {victim} sped up: {t0} -> {t1}");
    }

    /// Peak memory is monotone in every workload dimension and in bits.
    #[test]
    fn memory_monotone(
        n_layers in 1usize..12,
        batch in 1usize..32,
        s in 64usize..512,
        n_gen in 10usize..300,
    ) {
        let spec = zoo::opt_13b();
        let bits = vec![Bitwidth::Int4; n_layers];
        let m = measured_peak_memory(&spec, &bits, batch, batch, s, n_gen, 16.0, false);
        prop_assert!(m > 0.0);
        let more_layers = measured_peak_memory(&spec, &vec![Bitwidth::Int4; n_layers + 1], batch, batch, s, n_gen, 16.0, false);
        prop_assert!(more_layers > m);
        let more_batch = measured_peak_memory(&spec, &bits, batch + 1, batch + 1, s, n_gen, 16.0, false);
        prop_assert!(more_batch >= m);
        let higher_bits = measured_peak_memory(&spec, &vec![Bitwidth::Fp16; n_layers], batch, batch, s, n_gen, 16.0, false);
        prop_assert!(higher_bits > m);
        let kv8 = measured_peak_memory(&spec, &bits, batch, batch, s, n_gen, 8.0, false);
        prop_assert!(kv8 <= m);
    }

    /// Stage busy time in the DES exactly equals the scheduled work.
    #[test]
    fn pipeline_busy_accounting(
        n_stages in 1usize..4,
        mu_p in 1usize..4,
        mu_d in 1usize..4,
        n_tokens in 2usize..12,
    ) {
        let stages = vec![StageLoad { prefill_time: 0.7, decode_time: 0.03, comm_prefill: 0.01, comm_decode: 0.002 }; n_stages];
        let w = PipelineWorkload {
            prefill_microbatches: mu_p,
            decode_microbatches: mu_d,
            n_tokens,
            master_prefill: 0.05,
            master_decode: 0.004,
        };
        let r = simulate_pipeline(&stages, &w);
        for s in 0..n_stages {
            let expect = mu_p as f64 * 0.7 + (mu_d * (n_tokens - 1)) as f64 * 0.03;
            prop_assert!((r.stage_busy[s] - expect).abs() < 1e-9);
        }
    }
}
