//! Property tests for the packed-weight subsystem: pack/unpack identity
//! across odd shapes and group sizes, and bit-exactness of the fused
//! dequant-GEMM against the scalar dequantize-then-`matmul_t` reference.

use llmpq_kernels::{qgemm_t, quantize_packed, PackBits, PackedMatrix};
use proptest::prelude::*;

fn any_pack_bits() -> impl Strategy<Value = PackBits> {
    prop_oneof![Just(PackBits::Int3), Just(PackBits::Int4), Just(PackBits::Int8)]
}

fn pseudo(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

fn pseudo_grid(n: usize, qmax: i32, seed: u64) -> Vec<i8> {
    let mut s = seed.wrapping_add(0xD1B54A32D192ED03);
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (((s >> 33) as i64 % (2 * qmax as i64 + 1)) - qmax as i64) as i8
        })
        .collect()
}

/// The repo's `Matrix::matmul_t` accumulation, applied to a dequantized
/// copy of the packed weight: per output, ascending-k `acc += a * b`.
fn dequant_then_matmul_t(x: &[f32], m: usize, w: &PackedMatrix) -> Vec<f32> {
    let dq = w.unpack();
    let (k, n) = (w.cols, w.rows);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += x[i * k + kk] * dq[j * k + kk];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pack → unpack reproduces the row-wise quantizer's dequantization
    /// bit-for-bit, for every grid, odd shape, and group size.
    #[test]
    fn rowwise_round_trip_identity(
        bits in any_pack_bits(),
        rows in 1usize..12,
        cols in 1usize..70,
        group in 1usize..40,
        seed in 0u64..1000,
    ) {
        let q = pseudo_grid(rows * cols, bits.qmax(), seed);
        let scales = pseudo(rows, seed ^ 0xABCD).iter().map(|v| v.abs() + 1e-3).collect::<Vec<_>>();
        let p = PackedMatrix::from_rowwise(rows, cols, bits, group, &q, &scales);
        let dq = p.unpack();
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(p.get_q(r, c), q[r * cols + c], "grid value at ({}, {})", r, c);
                let want = q[r * cols + c] as f32 * scales[r];
                prop_assert_eq!(dq[r * cols + c].to_bits(), want.to_bits(),
                    "dequant at ({}, {})", r, c);
            }
        }
    }

    /// Fused qgemm_t is bit-identical to scalar dequantize-then-matmul_t
    /// on random matrices, across grids, shapes (including lane-tile
    /// tails), and group sizes.
    #[test]
    fn qgemm_bit_identical_to_scalar_reference(
        bits in any_pack_bits(),
        m in 1usize..5,
        n in 1usize..40,
        k in 1usize..50,
        group in 1usize..24,
        seed in 0u64..1000,
    ) {
        let w = quantize_packed(&pseudo(n * k, seed), n, k, bits, group);
        let x = pseudo(m * k, seed ^ 0x5151);
        let fused = qgemm_t(&x, m, &w);
        let reference = dequant_then_matmul_t(&x, m, &w);
        for (i, (f, r)) in fused.iter().zip(&reference).enumerate() {
            prop_assert_eq!(f.to_bits(), r.to_bits(), "output {}: {} vs {}", i, f, r);
        }
    }

    /// Odd `in_features` leave a dangling high nibble; it must encode an
    /// exact zero and never leak into values, dequantization, or GEMM.
    #[test]
    fn nibble_odd_tail_is_inert(
        bits in prop_oneof![Just(PackBits::Int3), Just(PackBits::Int4)],
        n in 1usize..16,
        half_k in 0usize..20,
        group in 1usize..16,
        seed in 0u64..500,
    ) {
        let k = 2 * half_k + 1; // always odd
        let q = pseudo_grid(n * k, bits.qmax(), seed);
        let scales = vec![0.017f32; n];
        let p = PackedMatrix::from_rowwise(n, k, bits, group, &q, &scales);
        prop_assert_eq!(p.row_stride(), k / 2 + 1);
        // The padding nibble decodes to grid value 0.
        for r in 0..n {
            let last = p.payload[r * p.row_stride() + p.row_stride() - 1];
            prop_assert_eq!(last >> 4, 8u8, "row {} tail nibble must encode 0", r);
        }
        // And the fused GEMM over the odd-k weight still matches.
        let x = pseudo(k, seed ^ 0x77);
        let fused = qgemm_t(&x, 1, &p);
        let reference = dequant_then_matmul_t(&x, 1, &p);
        for (f, r) in fused.iter().zip(&reference) {
            prop_assert_eq!(f.to_bits(), r.to_bits());
        }
    }

    /// Native group-wise quantization keeps every element within half a
    /// step of its group's scale.
    #[test]
    fn native_quantization_error_bounded(
        bits in any_pack_bits(),
        n in 1usize..10,
        k in 1usize..50,
        group in 1usize..32,
        seed in 0u64..500,
    ) {
        let data = pseudo(n * k, seed);
        let p = quantize_packed(&data, n, k, bits, group);
        let dq = p.unpack();
        for r in 0..n {
            for c in 0..k {
                let s = p.scale(r, c / group);
                let err = (data[r * k + c] - dq[r * k + c]).abs();
                prop_assert!(err <= 0.5 * s + 1e-6,
                    "({}, {}): err {} exceeds half-step {}", r, c, err, 0.5 * s);
            }
        }
    }
}
