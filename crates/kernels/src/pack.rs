//! Packed low-bit weight storage: group-wise int8 and nibble-packed
//! int4/int3 with per-group scales and zero points.
//!
//! ## Layout
//!
//! A [`PackedMatrix`] stores an `(out_features × in_features)` weight in
//! row-major order — one contiguous run of payload bytes per output
//! feature, ascending along `k` (the GEMM's reduction axis), so the
//! fused kernel's inner loop streams each lane's bytes sequentially:
//!
//! ```text
//! payload  row 0: [k=0, 1, 2, …, cols-1]   int8   → 1 byte / weight
//!          row 1: [k=0, 1, 2, …, cols-1]   int4/3 → 1 byte / 2 weights
//!          …                                        (lo nibble = even k)
//! scales   row-major `rows × groups_per_row`, one f32 per (row, group)
//! zeros    row-major `rows × groups_per_row`, one i8 per (row, group)
//! ```
//!
//! Each row is divided into `ceil(cols / group)` groups of `group`
//! consecutive `k` positions (the last group may be short). A stored
//! grid value `q` dequantizes as `((q − zero) as f32) * scale`; the
//! symmetric packers set every zero point to 0, which makes the
//! dequantized value bit-identical to the repo's row-wise
//! `quantize→dequantize` reference (`q as f32 * scale` — the i8→i32→f32
//! and i8→f32 conversions are both exact).
//!
//! Int3 shares the nibble layout with int4 (a 3-bit value fits in a
//! nibble); it spends 4 payload bits per weight instead of the ideal 3,
//! a deliberate trade for byte-aligned, branch-free unpacking.

use serde::{Deserialize, Serialize};

/// Default quantization group length along `k` (input features).
///
/// 64 keeps per-group metadata (4 B scale + 1 B zero) under 2 % of an
/// int4 group's payload while the group's packed bytes (32) still fit
/// in a single cache line.
pub const DEFAULT_GROUP: usize = 64;

/// Integer grids the packed format supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PackBits {
    /// 3-bit symmetric grid, stored in a nibble.
    Int3,
    /// 4-bit symmetric grid, two weights per byte.
    Int4,
    /// 8-bit symmetric grid, one byte per weight.
    Int8,
}

impl PackBits {
    /// Largest representable magnitude on the signed grid.
    pub fn qmax(self) -> i32 {
        match self {
            PackBits::Int3 => 3,
            PackBits::Int4 => 7,
            PackBits::Int8 => 127,
        }
    }

    /// Nominal bits per weight of the *grid* (3, 4, 8).
    pub fn bits(self) -> u32 {
        match self {
            PackBits::Int3 => 3,
            PackBits::Int4 => 4,
            PackBits::Int8 => 8,
        }
    }

    /// Payload bits actually spent per weight (int3 rides the nibble
    /// layout: 4 bits stored for a 3-bit grid).
    pub fn payload_bits(self) -> u32 {
        match self {
            PackBits::Int3 | PackBits::Int4 => 4,
            PackBits::Int8 => 8,
        }
    }

    /// Whether the payload is nibble-packed (two weights per byte).
    pub fn is_nibble(self) -> bool {
        matches!(self, PackBits::Int3 | PackBits::Int4)
    }
}

impl std::fmt::Display for PackBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackBits::Int3 => write!(f, "int3"),
            PackBits::Int4 => write!(f, "int4"),
            PackBits::Int8 => write!(f, "int8"),
        }
    }
}

/// Bias added when storing a signed nibble value: `q ∈ [-8, 7]` maps to
/// `u = q + 8 ∈ [0, 15]`.
const NIBBLE_BIAS: i32 = 8;

/// A weight matrix stored on its integer grid: packed payload plus
/// per-group scales and zero points. See the module docs for layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedMatrix {
    /// Output features (rows of the logical `(out, in)` matrix).
    pub rows: usize,
    /// Input features (the GEMM reduction length `k`).
    pub cols: usize,
    /// Grid precision of the payload.
    pub bits: PackBits,
    /// Group length along `k`; the last group of a row may be short.
    pub group: usize,
    /// Packed payload, row-major (see module docs).
    pub payload: Vec<u8>,
    /// One scale per `(row, group)`, row-major.
    pub scales: Vec<f32>,
    /// One zero point per `(row, group)`, row-major. All zero for the
    /// symmetric packers.
    pub zeros: Vec<i8>,
}

impl PackedMatrix {
    /// Number of groups along one row.
    pub fn groups_per_row(&self) -> usize {
        self.cols.div_ceil(self.group)
    }

    /// Payload bytes per row.
    pub fn row_stride(&self) -> usize {
        row_stride(self.cols, self.bits)
    }

    /// Pack raw grid values with explicit per-group scales and zeros.
    ///
    /// `q` is row-major `rows × cols` on the signed grid of `bits`;
    /// `scales`/`zeros` are row-major `rows × ceil(cols/group)`.
    pub fn from_i8(
        rows: usize,
        cols: usize,
        bits: PackBits,
        group: usize,
        q: &[i8],
        scales: &[f32],
        zeros: &[i8],
    ) -> Self {
        assert!(group > 0, "group must be at least 1");
        assert_eq!(q.len(), rows * cols, "grid shape mismatch");
        let gpr = cols.div_ceil(group);
        assert_eq!(scales.len(), rows * gpr, "one scale per (row, group)");
        assert_eq!(zeros.len(), rows * gpr, "one zero per (row, group)");
        let qmax = bits.qmax();
        let stride = row_stride(cols, bits);
        let mut payload = vec![0u8; rows * stride];
        for r in 0..rows {
            let src = &q[r * cols..(r + 1) * cols];
            let dst = &mut payload[r * stride..(r + 1) * stride];
            match bits {
                PackBits::Int8 => {
                    for (d, &v) in dst.iter_mut().zip(src) {
                        debug_assert!((v as i32).abs() <= qmax, "value off the int8 grid");
                        *d = v as u8;
                    }
                }
                PackBits::Int3 | PackBits::Int4 => {
                    for (c, &v) in src.iter().enumerate() {
                        let v = v as i32;
                        assert!(v.abs() <= qmax, "value {v} off the {bits} grid");
                        let u = (v + NIBBLE_BIAS) as u8;
                        if c % 2 == 0 {
                            dst[c / 2] = u; // low nibble; high filled by the odd pass
                        } else {
                            dst[c / 2] |= u << 4;
                        }
                    }
                    if cols % 2 == 1 {
                        // Odd tail: the dangling high nibble encodes 0.
                        dst[stride - 1] |= (NIBBLE_BIAS as u8) << 4;
                    }
                }
            }
        }
        Self { rows, cols, bits, group, payload, scales: scales.to_vec(), zeros: zeros.to_vec() }
    }

    /// Pack raw grid values that carry one scale per *row* (the repo's
    /// symmetric per-output-channel quantizer): the row scale is
    /// replicated into every group and all zero points are 0, so
    /// `unpack()` reproduces the row-wise dequantization bit-for-bit.
    pub fn from_rowwise(
        rows: usize,
        cols: usize,
        bits: PackBits,
        group: usize,
        q: &[i8],
        row_scales: &[f32],
    ) -> Self {
        assert_eq!(row_scales.len(), rows, "one scale per row");
        let gpr = cols.div_ceil(group);
        let mut scales = Vec::with_capacity(rows * gpr);
        for &s in row_scales {
            scales.extend(std::iter::repeat_n(s, gpr));
        }
        let zeros = vec![0i8; rows * gpr];
        Self::from_i8(rows, cols, bits, group, q, &scales, &zeros)
    }

    /// Raw grid value at `(r, c)`.
    pub fn get_q(&self, r: usize, c: usize) -> i8 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        let stride = self.row_stride();
        match self.bits {
            PackBits::Int8 => self.payload[r * stride + c] as i8,
            PackBits::Int3 | PackBits::Int4 => {
                let byte = self.payload[r * stride + c / 2];
                let u = if c.is_multiple_of(2) { byte & 0x0F } else { byte >> 4 };
                (u as i32 - NIBBLE_BIAS) as i8
            }
        }
    }

    /// Scale of `(row, group)`.
    pub fn scale(&self, r: usize, g: usize) -> f32 {
        self.scales[r * self.groups_per_row() + g]
    }

    /// Zero point of `(row, group)`.
    pub fn zero(&self, r: usize, g: usize) -> i8 {
        self.zeros[r * self.groups_per_row() + g]
    }

    /// Dequantized value at `(r, c)`: `((q − zero) as f32) * scale`.
    pub fn dequant(&self, r: usize, c: usize) -> f32 {
        let g = c / self.group;
        ((self.get_q(r, c) as i32 - self.zero(r, g) as i32) as f32) * self.scale(r, g)
    }

    /// Dequantize the whole matrix to row-major `f32`, value-identical
    /// to what the fused GEMM multiplies against.
    pub fn unpack(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            let row = &mut out[r * self.cols..(r + 1) * self.cols];
            for (c, slot) in row.iter_mut().enumerate() {
                let g = c / self.group;
                *slot = ((self.get_q(r, c) as i32 - self.zero(r, g) as i32) as f32)
                    * self.scale(r, g);
            }
        }
        out
    }

    /// Resident bytes of this matrix: payload + scales + zeros.
    pub fn resident_bytes(&self) -> usize {
        self.payload.len() + self.scales.len() * 4 + self.zeros.len()
    }

    /// Bytes the same matrix occupies dequantized to `f32` — what the
    /// pre-kernel runtime actually kept resident.
    pub fn f32_bytes(&self) -> usize {
        self.rows * self.cols * 4
    }
}

fn row_stride(cols: usize, bits: PackBits) -> usize {
    match bits {
        PackBits::Int8 => cols,
        PackBits::Int3 | PackBits::Int4 => cols.div_ceil(2),
    }
}

/// Quantize a row-major `f32` matrix directly to the packed format with
/// *native group-wise* scales: each `(row, group)` gets `absmax/qmax`
/// (zero point 0), round-to-nearest onto the grid.
///
/// This is the standalone entry the benches and property tests use; the
/// model path instead packs the output of the repo's row-wise quantizer
/// via [`PackedMatrix::from_rowwise`] to preserve its exact numerics.
pub fn quantize_packed(data: &[f32], rows: usize, cols: usize, bits: PackBits, group: usize) -> PackedMatrix {
    assert_eq!(data.len(), rows * cols, "shape mismatch");
    assert!(group > 0, "group must be at least 1");
    let qmax = bits.qmax() as f32;
    let gpr = cols.div_ceil(group);
    let mut q = vec![0i8; rows * cols];
    let mut scales = vec![0.0f32; rows * gpr];
    for r in 0..rows {
        let src = &data[r * cols..(r + 1) * cols];
        for g in 0..gpr {
            let lo = g * group;
            let hi = (lo + group).min(cols);
            let absmax = src[lo..hi].iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let s = if absmax == 0.0 { 1.0 } else { absmax / qmax };
            scales[r * gpr + g] = s;
            for c in lo..hi {
                q[r * cols + c] = (src[c] / s).round().clamp(-qmax, qmax) as i8;
            }
        }
    }
    let zeros = vec![0i8; rows * gpr];
    PackedMatrix::from_i8(rows, cols, bits, group, &q, &scales, &zeros)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(rows: usize, cols: usize, qmax: i32, seed: u64) -> Vec<i8> {
        // Simple splitmix-style generator; no rand dependency down here.
        let mut s = seed;
        (0..rows * cols)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (((s >> 33) as i64 % (2 * qmax as i64 + 1)) - qmax as i64) as i8
            })
            .collect()
    }

    #[test]
    fn int8_round_trip_exact() {
        let q = grid(5, 37, 127, 1);
        let scales: Vec<f32> = (0..5).map(|r| 0.01 + r as f32 * 0.003).collect();
        let p = PackedMatrix::from_rowwise(5, 37, PackBits::Int8, 16, &q, &scales);
        for r in 0..5 {
            for c in 0..37 {
                assert_eq!(p.get_q(r, c), q[r * 37 + c]);
                let want = q[r * 37 + c] as f32 * scales[r];
                assert_eq!(p.dequant(r, c).to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn int4_round_trip_odd_cols() {
        let q = grid(3, 9, 7, 2);
        let scales = vec![0.02f32; 3];
        let p = PackedMatrix::from_rowwise(3, 9, PackBits::Int4, 4, &q, &scales);
        assert_eq!(p.row_stride(), 5, "9 nibbles round up to 5 bytes");
        for r in 0..3 {
            for c in 0..9 {
                assert_eq!(p.get_q(r, c), q[r * 9 + c], "({r},{c})");
            }
        }
    }

    #[test]
    fn int3_shares_nibble_layout() {
        let q = grid(2, 7, 3, 3);
        let p = PackedMatrix::from_rowwise(2, 7, PackBits::Int3, 3, &q, &[0.1, 0.2]);
        assert_eq!(p.payload.len(), 2 * 4);
        for r in 0..2 {
            for c in 0..7 {
                assert_eq!(p.get_q(r, c), q[r * 7 + c]);
            }
        }
    }

    #[test]
    fn resident_bytes_scale_with_bits() {
        let q8 = grid(64, 128, 127, 4);
        let q4 = grid(64, 128, 7, 4);
        let s = vec![0.01f32; 64];
        let p8 = PackedMatrix::from_rowwise(64, 128, PackBits::Int8, 64, &q8, &s);
        let p4 = PackedMatrix::from_rowwise(64, 128, PackBits::Int4, 64, &q4, &s);
        assert_eq!(p8.payload.len(), 64 * 128);
        assert_eq!(p4.payload.len(), 64 * 64);
        assert!(p8.resident_bytes() < p8.f32_bytes() / 3);
        // ~4 bits/weight payload + per-group scale/zero metadata lands
        // just above f32/7 at group 64; f32/6 is the honest bound.
        assert!(p4.resident_bytes() < p4.f32_bytes() / 6);
        assert!(p4.resident_bytes() < p8.resident_bytes() * 6 / 10);
    }

    #[test]
    fn native_groupwise_quantization_bounds_error() {
        let data: Vec<f32> = (0..6 * 50).map(|i| ((i * 37 % 101) as f32 - 50.0) / 50.0).collect();
        for bits in [PackBits::Int3, PackBits::Int4, PackBits::Int8] {
            let p = quantize_packed(&data, 6, 50, bits, 16);
            let dq = p.unpack();
            for r in 0..6 {
                for c in 0..50 {
                    let s = p.scale(r, c / 16);
                    let err = (data[r * 50 + c] - dq[r * 50 + c]).abs();
                    assert!(err <= s * 0.5 + 1e-6, "{bits} ({r},{c}): {err} > {}", s * 0.5);
                }
            }
        }
    }

    #[test]
    fn groupwise_scales_tighter_than_rowwise() {
        // A row with one huge group and one tiny group: group-wise scales
        // give the tiny group a finer grid.
        let mut data = vec![0.0f32; 64];
        for (i, v) in data.iter_mut().enumerate() {
            *v = if i < 32 { 10.0 } else { 0.01 } * ((i % 5) as f32 - 2.0);
        }
        let p = quantize_packed(&data, 1, 64, PackBits::Int4, 32);
        assert!(p.scale(0, 1) < p.scale(0, 0) / 100.0);
    }

    #[test]
    #[should_panic(expected = "off the int4 grid")]
    fn rejects_values_off_grid() {
        PackedMatrix::from_rowwise(1, 2, PackBits::Int4, 2, &[8, 0], &[1.0]);
    }

    #[test]
    fn zero_points_shift_dequant() {
        let p = PackedMatrix::from_i8(1, 2, PackBits::Int4, 2, &[1, 3], &[0.5], &[1]);
        assert_eq!(p.dequant(0, 0), 0.0);
        assert_eq!(p.dequant(0, 1), 1.0);
    }
}
