//! # llmpq-kernels
//!
//! Packed low-bit weight storage and the fused dequant-GEMM that serves
//! from it — the subsystem that makes a bitwidth decision change memory
//! *traffic*, not just memory *accounting*.
//!
//! Before this crate the reference runtime stored every quantized
//! operator as a dequantized `f32` matrix: an int4 layer occupied (and
//! streamed) exactly as many bytes per token as an fp16 one, so the
//! adaptive-bitwidth planner was optimizing numbers that the execution
//! engine never realized. Here a quantized operator stays packed —
//! group-wise int8 bytes or nibble-packed int4/int3 — and the GEMM
//! dequantizes tiles in registers on the way into the multiply, so
//! resident bytes and per-token weight traffic both scale with
//! `bits/32` of the dense-f32 path.
//!
//! Two invariants shape every design choice:
//!
//! 1. **Bit-exactness.** [`qgemm_t`] produces results bit-identical to
//!    dequantize-then-`matmul_t`-style scalar GEMM: each output
//!    accumulates `x[k] * (q[k] as f32 * scale)` in ascending-`k` order
//!    with the same two f32 roundings. Register tiling parallelizes
//!    across *outputs* (independent accumulator chains), never within
//!    one output's reduction, so serving tokens are unchanged when a
//!    layer flips from the dense to the packed representation.
//! 2. **Sequential k-access.** The payload is laid out row-major per
//!    output feature, so the hot k-loop streams each lane's bytes in
//!    order and per-group scales are hoisted out of the inner loop
//!    (Opt4GPTQ's layout/loop co-design, scalar-CPU edition).
//!
//! The crate is dependency-free (vendored `rayon`/`serde` only) so it
//! sits *below* `llmpq-model` in the workspace graph: the reference
//! transformer's `LinearOp` wraps [`PackedMatrix`] directly.

pub mod gemm;
pub mod pack;

pub use gemm::{qgemm_t, qgemm_t_into};
pub use pack::{quantize_packed, PackBits, PackedMatrix, DEFAULT_GROUP};
