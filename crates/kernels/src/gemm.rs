//! Fused dequant-GEMM over [`PackedMatrix`] weights.
//!
//! [`qgemm_t`] computes `out = x · wᵀ` for an activation block `x`
//! (`m × k`, row-major) against a packed weight (`n × k`, i.e. the
//! `(out_features, in_features)` orientation of the repo's `matmul_t`),
//! dequantizing weight tiles in registers on the way into the multiply —
//! the weight is never materialized as `f32` in memory.
//!
//! ## Loop structure
//!
//! ```text
//! par over output tiles (m == 1: j-tiles of the one row; m > 1: rows of out)
//!   for each lane-tile of LANES = 8 output features   ← f32x8-style unroll
//!     acc[LANES] = 0
//!     for each quant group g along k:                 ← scale/zero hoisted here
//!       dequantize the group's LANES × glen tile into registers/stack
//!       for kk in group:                              ← sequential k
//!         for lane: acc[lane] += x[kk] * wt[kk][lane]
//!     store acc
//! ```
//!
//! The eight accumulator chains are *independent outputs*, which is what
//! lets the CPU overlap f32 add latency — parallelism is never introduced
//! within a single output's reduction.
//!
//! ## Bit-exactness
//!
//! For every output `(i, j)` the accumulation is `acc += x[i][k] * w[j][k]`
//! for `k = 0, 1, …` where `w[j][k] = ((q − z) as f32) * s` — exactly the
//! roundings of dequantizing the whole matrix first and running the scalar
//! `matmul_t` reference. Group boundaries, lane tiling, and the LUT change
//! only *where* the dequantized value comes from, not its bit pattern or
//! the order it enters the sum, so the fused result is bit-identical.
//!
//! Nibble precisions unpack two elements per payload byte with branch-free
//! shifts/masks (`wt = ((u − 8 − z) as f32) * s`), keeping the dequant loop
//! vectorizable — so int4/int3 cost no more per element than int8's
//! convert-and-multiply while moving half the payload bytes, and the fused
//! kernel's effective weight throughput ordering (int4 ≥ int8 ≥ dense-f32)
//! holds even when the CPU, not DRAM, is the bottleneck.

use crate::pack::{PackBits, PackedMatrix};
use rayon::prelude::*;

/// Output features processed per register tile: eight independent f32
/// accumulator chains, the stable-Rust stand-in for one `f32x8` vector.
const LANES: usize = 8;

/// Longest dequantized tile kept on the stack: one quant group across
/// [`LANES`] outputs. Groups longer than this are processed in
/// `MAX_GROUP_TILE / LANES`-sized k-chunks (still ascending k).
const MAX_GROUP_TILE: usize = 128 * LANES;

const NIBBLE_BIAS: i32 = 8;

/// `out = x · wᵀ`, freshly allocated (`m × w.rows`, row-major).
///
/// `x` is `m × k` row-major with `k == w.cols`.
pub fn qgemm_t(x: &[f32], m: usize, w: &PackedMatrix) -> Vec<f32> {
    let mut out = vec![0.0f32; m * w.rows];
    qgemm_t_into(x, m, w, &mut out);
    out
}

/// [`qgemm_t`] into a caller-provided buffer of length `m * w.rows`.
pub fn qgemm_t_into(x: &[f32], m: usize, w: &PackedMatrix, out: &mut [f32]) {
    let k = w.cols;
    let n = w.rows;
    assert_eq!(x.len(), m * k, "activation shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if m == 1 {
        // Decode shape: one activation row, parallelize over j-tiles of
        // the single contiguous output row. Tile size is a multiple of
        // LANES so every parallel chunk starts lane-aligned.
        const J_TILE: usize = 32 * LANES;
        out.par_chunks_mut(J_TILE).enumerate().for_each(|(t, chunk)| {
            row_block(x, w, t * J_TILE, chunk);
        });
    } else {
        // Prefill shape: parallelize over activation rows.
        out.par_chunks_mut(n).enumerate().for_each(|(i, orow)| {
            row_block(&x[i * k..(i + 1) * k], w, 0, orow);
        });
    }
}

/// Compute outputs `[j0, j0 + orow.len())` for one activation row.
fn row_block(xrow: &[f32], w: &PackedMatrix, j0: usize, orow: &mut [f32]) {
    let mut j = 0;
    while j + LANES <= orow.len() {
        let mut acc = [0.0f32; LANES];
        lane_tile::<LANES>(xrow, w, j0 + j, &mut acc);
        orow[j..j + LANES].copy_from_slice(&acc);
        j += LANES;
    }
    // Tail outputs (n % LANES): single-lane tiles — same ascending-k
    // accumulation per output, so still bit-identical.
    while j < orow.len() {
        let mut acc = [0.0f32; 1];
        lane_tile::<1>(xrow, w, j0 + j, &mut acc);
        orow[j] = acc[0];
        j += 1;
    }
}

/// Accumulate `NL` consecutive output features starting at row `j` of
/// `w`, walking k in ascending order one quant group at a time.
fn lane_tile<const NL: usize>(xrow: &[f32], w: &PackedMatrix, j: usize, acc: &mut [f32; NL]) {
    let k = w.cols;
    let group = w.group;
    let gpr = w.groups_per_row();
    let stride = w.row_stride();
    let mut wt = [0.0f32; MAX_GROUP_TILE];
    let chunk_k = MAX_GROUP_TILE / NL;
    for g in 0..gpr {
        let g_lo = g * group;
        let g_hi = (g_lo + group).min(k);
        // Hoisted per-(lane, group) dequant state.
        let mut scale = [0.0f32; NL];
        let mut zero = [0i32; NL];
        for lane in 0..NL {
            scale[lane] = w.scales[(j + lane) * gpr + g];
            zero[lane] = w.zeros[(j + lane) * gpr + g] as i32;
        }
        let mut k_lo = g_lo;
        while k_lo < g_hi {
            let k_hi = (k_lo + chunk_k).min(g_hi);
            let klen = k_hi - k_lo;
            match w.bits {
                PackBits::Int8 => {
                    // Dequantize the NL × klen tile, k-major:
                    // wt[kk * NL + lane].
                    for lane in 0..NL {
                        let row = &w.payload[(j + lane) * stride..];
                        for kk in 0..klen {
                            let q = row[k_lo + kk] as i8 as i32;
                            wt[kk * NL + lane] = ((q - zero[lane]) as f32) * scale[lane];
                        }
                    }
                    mac_tile::<NL>(xrow, &wt, k_lo, klen, acc);
                }
                PackBits::Int3 | PackBits::Int4 => {
                    // `wt = ((u − bias − z) as f32) * s` — the identical
                    // rounding chain to int8's convert-and-multiply.
                    if k_lo.is_multiple_of(2) && klen.is_multiple_of(2) {
                        // Byte-aligned fast path: de-interleave each
                        // payload byte's two nibbles into a lo half
                        // (even k) and a hi half (odd k) of the tile.
                        // Each pass has int8's exact load/store shape
                        // (contiguous byte loads, stride-NL stores), so
                        // it vectorizes the same way; stride-16 stores
                        // from an interleaved unpack would not.
                        let pairs = klen / 2;
                        for lane in 0..NL {
                            let row = &w.payload[(j + lane) * stride..];
                            let s = scale[lane];
                            let zb = NIBBLE_BIAS + zero[lane];
                            let bytes = &row[k_lo / 2..k_lo / 2 + pairs];
                            for (p, &byte) in bytes.iter().enumerate() {
                                let lo = (byte & 0x0F) as i32;
                                wt[p * NL + lane] = ((lo - zb) as f32) * s;
                            }
                            for (p, &byte) in bytes.iter().enumerate() {
                                let hi = (byte >> 4) as i32;
                                wt[(pairs + p) * NL + lane] = ((hi - zb) as f32) * s;
                            }
                        }
                        // Paired MAC: pair p contributes k = k_lo + 2p
                        // then k_lo + 2p + 1 — per-lane accumulation
                        // order is still strictly ascending in k.
                        for p in 0..pairs {
                            let xv0 = xrow[k_lo + 2 * p];
                            for lane in 0..NL {
                                acc[lane] += xv0 * wt[p * NL + lane];
                            }
                            let xv1 = xrow[k_lo + 2 * p + 1];
                            for lane in 0..NL {
                                acc[lane] += xv1 * wt[(pairs + p) * NL + lane];
                            }
                        }
                    } else {
                        // Unaligned head/odd tail: scalar unpack.
                        for lane in 0..NL {
                            let row = &w.payload[(j + lane) * stride..];
                            let s = scale[lane];
                            let zb = NIBBLE_BIAS + zero[lane];
                            for kk in 0..klen {
                                let c = k_lo + kk;
                                let byte = row[c / 2];
                                let u = if c.is_multiple_of(2) { byte & 0x0F } else { byte >> 4 } as i32;
                                wt[kk * NL + lane] = ((u - zb) as f32) * s;
                            }
                        }
                        mac_tile::<NL>(xrow, &wt, k_lo, klen, acc);
                    }
                }
            }
            k_lo = k_hi;
        }
    }
}

/// MAC over a k-major tile: ascending k, one independent chain per lane.
#[inline]
fn mac_tile<const NL: usize>(xrow: &[f32], wt: &[f32], k_lo: usize, klen: usize, acc: &mut [f32; NL]) {
    for kk in 0..klen {
        let xv = xrow[k_lo + kk];
        for lane in 0..NL {
            acc[lane] += xv * wt[kk * NL + lane];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::quantize_packed;

    fn pseudo(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    /// Scalar dequantize-then-matmul_t reference: the exact accumulation
    /// order the repo's `Matrix::matmul_t` uses on a dequantized weight.
    fn reference(x: &[f32], m: usize, w: &PackedMatrix) -> Vec<f32> {
        let dq = w.unpack();
        let (k, n) = (w.cols, w.rows);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += x[i * k + kk] * dq[j * k + kk];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn assert_bit_identical(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (l, r)) in a.iter().zip(b).enumerate() {
            assert_eq!(l.to_bits(), r.to_bits(), "index {i}: {l} vs {r}");
        }
    }

    #[test]
    fn matches_reference_across_shapes_and_bits() {
        for &(m, n, k, group) in
            &[(1, 8, 16, 16), (1, 19, 33, 8), (3, 24, 40, 16), (2, 7, 5, 3), (4, 300, 65, 64)]
        {
            for bits in [PackBits::Int3, PackBits::Int4, PackBits::Int8] {
                let data = pseudo(n * k, 7 + m as u64);
                let w = quantize_packed(&data, n, k, bits, group);
                let x = pseudo(m * k, 11 + n as u64);
                assert_bit_identical(&qgemm_t(&x, m, &w), &reference(&x, m, &w));
            }
        }
    }

    #[test]
    fn decode_path_crosses_parallel_tile_boundary() {
        // n > J_TILE (256) so the m == 1 path spans multiple par chunks.
        let (n, k) = (600, 96);
        let w = quantize_packed(&pseudo(n * k, 21), n, k, PackBits::Int4, 32);
        let x = pseudo(k, 22);
        assert_bit_identical(&qgemm_t(&x, 1, &w), &reference(&x, 1, &w));
    }

    #[test]
    fn into_variant_matches_alloc_variant() {
        let (m, n, k) = (2, 30, 48);
        let w = quantize_packed(&pseudo(n * k, 31), n, k, PackBits::Int8, 16);
        let x = pseudo(m * k, 32);
        let mut out = vec![f32::NAN; m * n];
        qgemm_t_into(&x, m, &w, &mut out);
        assert_bit_identical(&out, &qgemm_t(&x, m, &w));
    }

    #[test]
    fn long_groups_are_chunked_in_order() {
        // group (512) > MAX_GROUP_TILE / LANES (128): exercises the
        // in-group k-chunking path.
        let (n, k) = (16, 512);
        let w = quantize_packed(&pseudo(n * k, 41), n, k, PackBits::Int8, 512);
        let x = pseudo(k, 42);
        assert_bit_identical(&qgemm_t(&x, 1, &w), &reference(&x, 1, &w));
    }

    #[test]
    fn empty_inputs_are_fine() {
        let w = quantize_packed(&pseudo(8 * 4, 51), 8, 4, PackBits::Int4, 4);
        assert!(qgemm_t(&[], 0, &w).is_empty());
    }
}
