//! `llmpq-profile`: produce a per-device profiling artifact.
//!
//! ```text
//! llmpq-profile --device V100 --model-name opt --model_size 13b -o v100.profile.json
//! ```
//!
//! Mirrors the paper's profiler, which measures single-decoder-layer
//! latencies per (precision, phase, shape) on each GPU once and feeds
//! the samples to the cost fitter.

use llmpq_cli::Args;
use llmpq_cluster::GpuModel;
use llmpq_cost::{profile_device, ProfileFile, ProfilerConfig};
use llmpq_model::zoo;
use llmpq_sim::KernelEnv;

const USAGE: &str =
    "usage: llmpq-profile --device <P100|T4|V100|A100|A800> --model-name <opt|bloom> --model_size <13b|...> [-o out.json]";

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("error: {e}\n{USAGE}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), String> {
    let dev_name = args.required("device").map_err(|e| e.to_string())?.to_ascii_uppercase();
    let gpu = GpuModel::ALL
        .into_iter()
        .find(|g| g.spec().name.to_ascii_uppercase().starts_with(&dev_name))
        .ok_or(format!("unknown device '{dev_name}'"))?;
    let family = args.required("model-name").map_err(|e| e.to_string())?;
    let size = args.required("model_size").map_err(|e| e.to_string())?;
    let model_id = format!("{family}-{size}");
    let spec = zoo::by_name(&model_id).ok_or(format!("unknown model '{model_id}'"))?;

    eprintln!("profiling one {model_id} decoder layer on {gpu}…");
    let samples = profile_device(&gpu.spec(), &KernelEnv::default(), &spec, &ProfilerConfig::default());
    eprintln!("collected {} samples", samples.len());
    let file = ProfileFile { gpu, model: spec.name.clone(), samples };
    let json = file.to_json();
    match args.get("o") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("profile written to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}
