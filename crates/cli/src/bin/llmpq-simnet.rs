//! `llmpq-simnet`: exhaustive fault-schedule exploration of the
//! distributed runtime under deterministic simulation.
//!
//! ```text
//! # sweep 500 seeded random fault schedules over master + 2 stages
//! llmpq-simnet --seeds 500
//!
//! # replay a minimized counterexample exactly
//! llmpq-simnet --schedule counterexample.json --trace
//! ```
//!
//! Every run executes the *real* master engine and stage-worker loops
//! over a simulated network on a virtual clock: same seed ⇒
//! byte-identical event trace. After each run the invariant checker
//! verifies token output against the fault-free oracle, admission
//! conservation, deadlock freedom and the restart bound. Any violation
//! is shrunk to a minimal reproducing schedule and written as
//! replayable JSON (`--out`), and the process exits nonzero.

use llmpq_cli::Args;
use llmpq_runtime::{
    elastic_seed_sweep, run_elastic, run_serving_chaos, run_sim, seed_sweep, serving_seed_sweep,
    shrink_elastic_plan, shrink_fault_plan, shrink_serving_plan, ElasticChurnPlan,
    ElasticSimConfig, FaultPlan, ServingChaosConfig, SimConfig, SimFaultPlan,
};
use std::process::ExitCode;

const USAGE: &str = "usage: llmpq-simnet
    [--seeds 500]            number of consecutive seeds to sweep
    [--seed 0]               first seed of the sweep
    [--stages 2]             pipeline stages in the simulated protocol
    [--n-generate 4]         tokens generated per prompt
    [--max-restarts 3]       recovery bound per run
    [--schedule plan.json]   replay one fault schedule instead of sweeping
    [--out minimized.json]   where to write a shrunk counterexample
    [--migrations]           live-migration mode: every run schedules a hot
                             precision/partition swap and faults are drawn
                             inside the prepare/commit window
    [--serving]              serving-chaos mode: run the continuous-batching
                             scheduler on the distributed step engine under a
                             seeded arrival trace, seeded live swap and a
                             migration-biased fault schedule, checked against
                             the local-engine oracle (crash/hang/drop faults;
                             --schedule replays a FaultPlan JSON instead)
    [--requests 6]           serving mode: requests per arrival trace
    [--no-swaps]             serving mode: disable the seeded live swaps
    [--elastic]              elastic-fleet mode: drive the autoscaling
                             controller through seeded membership churn
                             (joins/leaves/degrades/flap bursts, leaves biased
                             into migration windows) against diurnal + bursty
                             arrivals; checks the elasticity invariants
                             (committed plans reference only live devices, no
                             request lost or double-served across scale
                             events; --schedule replays a churn-plan JSON)
    [--devices 3]            elastic mode: devices live at t=0
    [--pool 6]               elastic mode: total device ids churn draws from
    [--inject-bug]           dev hook: break admission conservation on purpose
                             (elastic mode: double-serve the first request)
    [--trace]                print the deterministic event trace(s)";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => return fail(&e.to_string()),
    };
    if args.switch("help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut cfg = SimConfig::default();
    cfg.n_stages = match args.get_parse("stages", cfg.n_stages) {
        Ok(v) => v,
        Err(e) => return fail(&e.to_string()),
    };
    cfg.n_generate = match args.get_parse("n-generate", cfg.n_generate) {
        Ok(v) => v,
        Err(e) => return fail(&e.to_string()),
    };
    cfg.max_restarts = match args.get_parse("max-restarts", cfg.max_restarts) {
        Ok(v) => v,
        Err(e) => return fail(&e.to_string()),
    };
    cfg.inject_conservation_bug = args.switch("inject-bug");
    if args.switch("migrations") {
        let stages = cfg.n_stages;
        let n_generate = cfg.n_generate.max(SimConfig::migration_default().n_generate);
        let max_restarts = cfg.max_restarts;
        let inject = cfg.inject_conservation_bug;
        cfg = SimConfig {
            n_stages: stages,
            n_generate,
            max_restarts,
            inject_conservation_bug: inject,
            ..SimConfig::migration_default()
        };
    }
    let out_path = args.get("out").unwrap_or("sim-counterexample.json").to_string();

    let n_seeds: u64 = match args.get_parse("seeds", 500) {
        Ok(v) => v,
        Err(e) => return fail(&e.to_string()),
    };
    let start_seed: u64 = match args.get_parse("seed", 0) {
        Ok(v) => v,
        Err(e) => return fail(&e.to_string()),
    };

    if args.switch("elastic") {
        let mut ecfg = ElasticSimConfig::default();
        ecfg.n_requests = match args.get_parse("requests", ecfg.n_requests) {
            Ok(v) => v,
            Err(e) => return fail(&e.to_string()),
        };
        ecfg.n_devices = match args.get_parse("devices", ecfg.n_devices) {
            Ok(v) => v,
            Err(e) => return fail(&e.to_string()),
        };
        ecfg.device_pool = match args.get_parse("pool", ecfg.device_pool) {
            Ok(v) => v,
            Err(e) => return fail(&e.to_string()),
        };
        if ecfg.device_pool < ecfg.n_devices {
            return fail("--pool must be at least --devices");
        }
        ecfg.inject_double_serve = args.switch("inject-bug");
        if let Some(path) = args.get("schedule") {
            return elastic_replay(&ecfg, path, start_seed);
        }
        return elastic_sweep(&ecfg, start_seed, n_seeds, &out_path);
    }

    if args.switch("serving") {
        let mut scfg = ServingChaosConfig::default();
        scfg.n_requests = match args.get_parse("requests", scfg.n_requests) {
            Ok(v) => v,
            Err(e) => return fail(&e.to_string()),
        };
        scfg.max_restarts = match args.get_parse("max-restarts", scfg.max_restarts) {
            Ok(v) => v,
            Err(e) => return fail(&e.to_string()),
        };
        scfg.migration = !args.switch("no-swaps");
        if let Some(path) = args.get("schedule") {
            return serving_replay(&scfg, path, start_seed);
        }
        return serving_sweep(&scfg, start_seed, n_seeds, &out_path);
    }

    if let Some(path) = args.get("schedule") {
        return replay(&cfg, path, args.switch("trace"));
    }

    let report = seed_sweep(&cfg, start_seed, n_seeds);
    println!(
        "swept {} seeds ({}..{}) over master + {} stage(s): {} schedules carried faults, \
         {} runs recovered via restart, {} failed over after exhausting restarts",
        report.n_seeds,
        report.start_seed,
        report.start_seed + report.n_seeds,
        cfg.n_stages,
        report.runs_with_faults,
        report.runs_with_restarts,
        report.runs_failed_over,
    );
    if cfg.migration.is_some() {
        println!(
            "plan swaps: {} committed, {} aborted back to the old plan",
            report.runs_committed, report.runs_aborted
        );
    }
    if report.ok() {
        println!("all invariants held on every schedule");
        return ExitCode::SUCCESS;
    }
    for f in &report.failures {
        eprintln!(
            "seed {} violated: {} (shrunk to {} event(s))",
            f.seed,
            f.violations.join("; "),
            f.minimized.event_count()
        );
        if args.switch("trace") {
            let rerun = run_sim(&cfg, &f.minimized);
            eprintln!("--- minimized trace (seed {}) ---\n{}", f.seed, rerun.trace_text());
        }
    }
    let first = &report.failures[0];
    match std::fs::write(&out_path, &first.minimized_json) {
        Ok(()) => eprintln!(
            "minimized counterexample for seed {} written to {out_path} — replay with: \
             llmpq-simnet --schedule {out_path}",
            first.seed
        ),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    ExitCode::FAILURE
}

/// Serving-chaos sweep: the continuous-batching scheduler on the
/// distributed engine, one seeded trace + swap + fault schedule per
/// seed, token-checked against the local-engine oracle.
fn serving_sweep(
    cfg: &ServingChaosConfig,
    start_seed: u64,
    n_seeds: u64,
    out_path: &str,
) -> ExitCode {
    let report = serving_seed_sweep(cfg, start_seed, n_seeds);
    println!(
        "served {} seeds ({}..{}) through the distributed ring: {} schedules carried faults, \
         {} runs recovered via restart ({} in-flight sequences requeued), {} live swaps committed",
        report.n_seeds,
        report.start_seed,
        report.start_seed + report.n_seeds,
        report.runs_with_faults,
        report.runs_with_restarts,
        report.sequences_recovered,
        report.runs_committed,
    );
    if report.ok() {
        println!("all serving invariants held on every schedule (token equality vs local \
                  oracle, admission conservation incl. recovered leg, restart bound)");
        return ExitCode::SUCCESS;
    }
    for f in &report.failures {
        eprintln!(
            "seed {} violated: {} (shrunk to {} event(s))",
            f.seed,
            f.violations.join("; "),
            f.minimized.events.len()
        );
    }
    let first = &report.failures[0];
    match std::fs::write(out_path, &first.minimized_json) {
        Ok(()) => eprintln!(
            "minimized counterexample for seed {} written to {out_path} — replay with: \
             llmpq-simnet --serving --seed {} --schedule {out_path}",
            first.seed, first.seed
        ),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    ExitCode::FAILURE
}

/// Elastic-fleet sweep: the autoscaling controller under seeded churn
/// and seeded diurnal/bursty arrivals, one schedule per seed.
fn elastic_sweep(
    cfg: &ElasticSimConfig,
    start_seed: u64,
    n_seeds: u64,
    out_path: &str,
) -> ExitCode {
    let report = elastic_seed_sweep(cfg, start_seed, n_seeds);
    println!(
        "churned {} seeds ({}..{}) through the fleet controller: {} runs committed replans, \
         {} aborted a migration mid-barrier, {} quarantined a flapping device, {} hit the \
         typed-infeasible path, {} in-flight request(s) recovered off dying devices",
        report.n_seeds,
        report.start_seed,
        report.start_seed + report.n_seeds,
        report.runs_with_commits,
        report.runs_with_aborts,
        report.runs_with_suppressions,
        report.runs_infeasible,
        report.requests_recovered,
    );
    if report.ok() {
        println!(
            "all elasticity invariants held on every schedule (committed plans reference only \
             live devices; no request lost or double-served across scale events)"
        );
        return ExitCode::SUCCESS;
    }
    for f in &report.failures {
        eprintln!(
            "seed {} violated: {} (shrunk to {} event(s))",
            f.seed,
            f.violations.join("; "),
            f.minimized.events.len()
        );
    }
    let first = &report.failures[0];
    match std::fs::write(out_path, &first.minimized_json) {
        Ok(()) => eprintln!(
            "minimized counterexample for seed {} written to {out_path} — replay with: \
             llmpq-simnet --elastic --seed {} --schedule {out_path}",
            first.seed, first.seed
        ),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    ExitCode::FAILURE
}

/// Replay one churn schedule (an [`ElasticChurnPlan`] JSON) at `seed`.
fn elastic_replay(cfg: &ElasticSimConfig, path: &str, seed: u64) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let plan = match ElasticChurnPlan::from_json(&text) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let run = run_elastic(cfg, seed, &plan);
    println!(
        "replayed {} churn event(s) at seed {seed}: {} replan(s) committed, {} migration(s) \
         aborted, {} event(s) flap-suppressed, {} infeasible alarm(s); {}/{} requests served \
         ({} shed, {} recovered)",
        run.churn_events,
        run.commits,
        run.aborts,
        run.suppressed,
        run.infeasible,
        run.served,
        run.offered,
        run.shed,
        run.recovered,
    );
    if run.violations.is_empty() {
        println!("all elasticity invariants held");
        ExitCode::SUCCESS
    } else {
        for v in &run.violations {
            eprintln!("violation: {v}");
        }
        let minimized = shrink_elastic_plan(cfg, seed, &plan);
        if minimized.events.len() < plan.events.len() {
            eprintln!(
                "shrinks further to {} event(s):\n{}",
                minimized.events.len(),
                minimized.to_json()
            );
        }
        ExitCode::FAILURE
    }
}

/// Replay one serving fault schedule (a [`FaultPlan`] JSON) at `seed`.
fn serving_replay(cfg: &ServingChaosConfig, path: &str, seed: u64) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let plan = match FaultPlan::from_json(&text) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let run = run_serving_chaos(cfg, seed, &plan);
    println!(
        "replayed {} fault event(s) at seed {seed}: {} restart(s), {} sequence(s) requeued, \
         final epoch {}{}",
        run.fault_events,
        run.restarts,
        run.recovered,
        run.epoch,
        run.swap_at.map_or(String::new(), |i| format!(", swap scheduled at iteration {i}")),
    );
    if run.violations.is_empty() {
        println!("all serving invariants held");
        ExitCode::SUCCESS
    } else {
        for v in &run.violations {
            eprintln!("violation: {v}");
        }
        let minimized = shrink_serving_plan(cfg, seed, &plan);
        if minimized.events.len() < plan.events.len() {
            eprintln!(
                "shrinks further to {} event(s):\n{}",
                minimized.events.len(),
                minimized.to_json()
            );
        }
        ExitCode::FAILURE
    }
}

fn replay(cfg: &SimConfig, path: &str, show_trace: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let plan = match SimFaultPlan::from_json(&text) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let report = run_sim(cfg, &plan);
    if show_trace {
        println!("{}", report.trace_text());
    }
    println!(
        "replayed {} fault event(s): {} restart(s), {} stale frame(s) rejected, {} corrupt \
         frame(s) detected, finished at {}µs virtual",
        plan.event_count(),
        report.restarts,
        report.stale_drops,
        report.corrupt_detected,
        report.final_virtual_us
    );
    if report.ok() {
        println!("all invariants held");
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!("violation: {v}");
        }
        let minimized = shrink_fault_plan(cfg, &plan);
        if minimized.event_count() < plan.event_count() {
            eprintln!("shrinks further to {} event(s):\n{}", minimized.event_count(), minimized.to_json());
        }
        ExitCode::FAILURE
    }
}
