//! `llmpq-omega`: the paper's Indicator Generator as a CLI — produce the
//! ω file `llmpq-algo` consumes.
//!
//! ```text
//! llmpq-omega --model-name opt --model_size 30b [--method variance|hessian|random]
//!     [--rounding det|stoch] [-o omega.json]
//! ```

use llmpq_cli::Args;
use llmpq_model::{zoo, RefConfig, RefModel};
use llmpq_quant::{build_indicator, IndicatorKind, Rounding};

const USAGE: &str = "usage: llmpq-omega --model-name <opt|bloom> --model_size <13b|...>
    [--method variance|hessian|random] [--rounding det|stoch] [-o omega.json]";

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("error: {e}\n{USAGE}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), String> {
    let family = args.required("model-name").map_err(|e| e.to_string())?;
    let size = args.required("model_size").map_err(|e| e.to_string())?;
    let model_id = format!("{family}-{size}");
    let spec = zoo::by_name(&model_id).ok_or(format!("unknown model '{model_id}'"))?;

    let rounding = match args.get("rounding").unwrap_or("det") {
        "det" | "deterministic" => Rounding::Deterministic,
        "stoch" | "stochastic" => Rounding::Stochastic,
        other => return Err(format!("unknown rounding '{other}'")),
    };
    let kind = match args.get("method").unwrap_or("variance") {
        "variance" => IndicatorKind::Variance(rounding),
        "hessian" => IndicatorKind::Hessian(rounding),
        "random" => IndicatorKind::Random { seed: 99 },
        other => return Err(format!("unknown method '{other}'")),
    };

    let teacher = if spec.family == llmpq_model::ModelFamily::Bloom {
        RefModel::new(RefConfig::scaled_like_bloom(spec.n_layers, 1))
    } else {
        RefModel::new(RefConfig::scaled_like(spec.n_layers, 1))
    };
    let calib: Vec<Vec<usize>> = (0..4)
        .map(|i| (0..32).map(|j| (i * 37 + j * 11) % teacher.cfg.vocab).collect())
        .collect();
    let (table, overhead) = build_indicator(kind, &teacher, &calib);
    let table = table.normalized_budget(1.0);
    eprintln!(
        "built {:?} indicator for {model_id} ({} layers) in {overhead:.3}s",
        kind,
        table.n_layers()
    );
    let json = serde_json::to_string_pretty(&table).expect("indicator serializes");
    match args.get("o") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("omega file written to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}
