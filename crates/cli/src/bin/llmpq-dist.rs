//! `llmpq-dist`: execute a strategy file on the pipeline runtime (§5).
//!
//! ```text
//! llmpq-dist --strat_file_name strategy.json [--n-generate 16]
//!     [--batch 4] [--prompt-len 12] [--seed 0] [--fault-plan faults.json]
//!     [--trace-out trace.json] [--metrics-out metrics.txt]
//!     [--online-rate 2.0] [--online-failure 0.1]
//! ```
//!
//! The paper's `llmpq-dist` launches the distributed PyTorch runtime;
//! here the runtime is the in-process threaded pipeline executing the
//! scaled stand-in checkpoint (same layer count as the planned model),
//! which demonstrates the full flow and verifies the generated tokens
//! against sequential execution.
//!
//! With `--fault-plan`, the run executes under the fault-tolerance
//! supervisor: the JSON file (see `FaultPlan`) schedules worker crashes,
//! hangs, stragglers, message drops/duplicates and permanent device
//! losses; the supervisor detects them via heartbeats, restarts with
//! backoff, and replans around lost devices (folding their layers into
//! surviving stages), resuming from the lock-step token checkpoint.
//!
//! With `--trace-out` / `--metrics-out`, the run is observed by the
//! telemetry layer: `--trace-out` writes a Chrome `trace_event` JSON
//! (open in `chrome://tracing` or Perfetto) of every micro-batch's
//! wait/compute/send lifecycle per stage, and `--metrics-out` writes a
//! plain-text snapshot with per-stage p50/p95/p99 latency, queue peaks,
//! KV occupancy, restart counters — and a cost-model cross-check
//! comparing each stage's observed busy time against the analytical §4.1
//! prediction.
//!
//! With `--online-rate`, the plan's cost profile additionally serves a
//! Poisson online workload (paper §7) after the run, and the end-of-run
//! summary surfaces the online stats — including batches that failed and
//! were `retried` (tune with `--online-failure`).

use llm_pq::evaluate::stage_loads;
use llm_pq::ExecutionPlan;
use llmpq_cli::Args;
use llmpq_cluster::paper_cluster;
use llmpq_cost::{predicted_stage_seconds, stage_crosscheck, CostDb, StageCrosscheck};
use llmpq_model::{zoo, RefConfig, RefModel};
use llmpq_quant::Rounding;
use llmpq_runtime::{
    run_pipeline_observed, run_pipeline_supervised_observed, FaultPlan, FoldReplanner,
    SupervisorConfig, Telemetry,
};
use llmpq_sim::{KernelEnv, PipelineWorkload};
use llmpq_workload::{simulate_online, BatchJob, OnlineConfig, PromptLengthModel};

const USAGE: &str = "usage: llmpq-dist --strat_file_name <strategy.json>
    [--checkpoint model.ckpt.json] [--n-generate 16] [--batch 4] [--prompt-len 12] [--seed 0]
    [--fault-plan faults.json] [--trace-out trace.json] [--metrics-out metrics.txt]
    [--online-rate req_per_s] [--online-requests 150] [--online-failure 0.0]";

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.switch("help") {
        println!("{USAGE}");
        return;
    }
    if let Err(e) = run(&args) {
        eprintln!("error: {e}\n{USAGE}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), String> {
    let path = args.required("strat_file_name").map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let plan = ExecutionPlan::from_json(&text)?;
    let n_layers = plan.n_layers();
    eprintln!(
        "loaded plan for {} on {}: {} stages over {n_layers} layers",
        plan.model,
        plan.cluster,
        plan.stages.len()
    );

    // Build the stand-in checkpoint with the planned layer count.
    let seed = args.get_parse("seed", 0u64).map_err(|e| e.to_string())?;
    if let Some(spec) = zoo::by_name(&plan.model) {
        if spec.n_layers != n_layers {
            return Err(format!(
                "plan covers {n_layers} layers but {} has {}",
                plan.model, spec.n_layers
            ));
        }
    }
    let checkpoint = match args.get("checkpoint") {
        Some(path) => {
            let m = llmpq_model::load_checkpoint(std::path::Path::new(path))?;
            if m.cfg.n_layers != n_layers {
                return Err(format!(
                    "checkpoint has {} layers but the plan covers {n_layers}",
                    m.cfg.n_layers
                ));
            }
            m
        }
        None => RefModel::new(RefConfig::scaled_like(n_layers, 0xD157 ^ seed)),
    };

    let n_generate = args.get_parse("n-generate", 16usize).map_err(|e| e.to_string())?;
    let batch = args.get_parse("batch", 4usize).map_err(|e| e.to_string())?;
    let prompt_len = args.get_parse("prompt-len", 12usize).map_err(|e| e.to_string())?;
    let prompts: Vec<Vec<usize>> = (0..batch)
        .map(|i| (0..prompt_len).map(|j| (i * 41 + j * 17 + seed as usize) % checkpoint.cfg.vocab).collect())
        .collect();

    let faults = match args.get("fault-plan") {
        Some(fp) => {
            let text = std::fs::read_to_string(fp).map_err(|e| format!("{fp}: {e}"))?;
            let plan = FaultPlan::from_json(&text)?;
            eprintln!("fault plan: {} scheduled events", plan.events.len());
            Some(plan)
        }
        None => None,
    };

    let trace_out = args.get("trace-out");
    let metrics_out = args.get("metrics-out");
    let telemetry = (trace_out.is_some() || metrics_out.is_some())
        .then(|| Telemetry::new(plan.stages.len()));

    let (out, restarts, replans) = match &faults {
        Some(fp) => {
            let sup = run_pipeline_supervised_observed(
                &checkpoint,
                &plan,
                &prompts,
                n_generate,
                Rounding::Deterministic,
                seed,
                &SupervisorConfig::default(),
                Some(fp),
                Some(&FoldReplanner),
                telemetry.clone(),
            )
            .map_err(|e| e.to_string())?;
            for ev in &sup.events {
                eprintln!(
                    "attempt {}: {} -> {:?} (checkpointed {} tokens)",
                    ev.attempt, ev.error, ev.action, ev.checkpointed_tokens
                );
            }
            eprintln!(
                "supervisor: {} restarts, {} replans, final plan has {} stages",
                sup.restarts,
                sup.replans,
                sup.final_plan.stages.len()
            );
            (sup.output, sup.restarts, sup.replans)
        }
        None => {
            let out = run_pipeline_observed(
                &checkpoint,
                &plan,
                &prompts,
                n_generate,
                Rounding::Deterministic,
                seed,
                None,
                telemetry.clone(),
            )
            .map_err(|e| e.to_string())?;
            (out, 0, 0)
        }
    };

    // Cost-model cross-check: analytical per-stage prediction vs the busy
    // time the run actually observed. Only resolvable for the paper
    // clusters ("cluster-N") and zoo models; custom plans skip it.
    let crosscheck = resolve_crosscheck(&plan, batch, prompt_len, n_generate, &out.stage_metrics);

    if let (Some(path), Some(t)) = (trace_out, &telemetry) {
        std::fs::write(path, t.to_chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    if let (Some(path), Some(t)) = (metrics_out, &telemetry) {
        let mut text = t.metrics_text();
        text.push_str(&render_crosscheck(&crosscheck));
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote metrics snapshot to {path}");
    }

    // Optional §7 online-serving pass over the plan's cost profile.
    let online = args
        .get_parse("online-rate", f64::NAN)
        .map_err(|e| e.to_string())?
        .is_finite()
        .then(|| {
            let rate = args.get_parse("online-rate", 1.0).unwrap_or(1.0);
            let n_requests = args.get_parse("online-requests", 150usize).unwrap_or(150);
            let failure = args.get_parse("online-failure", 0.0f64).unwrap_or(0.0);
            run_online(&plan, rate, n_requests, failure, seed)
        })
        .transpose()?;

    println!(
        "generated {} tokens x {} sequences in {:.3}s wall ({} restarts, {} replans)",
        n_generate, batch, out.wall_s, restarts, replans
    );
    if let Some(stats) = &online {
        println!(
            "online: {} batches served, {} retried after failures, p50 {:.2}s p95 {:.2}s, {:.1} tok/s",
            stats.batches, stats.retried, stats.p50_latency, stats.p95_latency, stats.throughput
        );
    }
    for (i, toks) in out.tokens.iter().enumerate() {
        println!("seq {i}: {toks:?}");
    }
    for (i, s) in out.loader_stats.iter().enumerate() {
        eprintln!(
            "stage {i}: {} modules ({} quantized), peak staging {} B",
            s.modules, s.quantized_modules, s.peak_staging_bytes
        );
    }
    if let Some(rows) = &crosscheck {
        for r in rows {
            eprintln!(
                "stage {}: cost model predicted {:.4}s / observed {:.4}s busy (share err {:.1}pp)",
                r.stage,
                r.predicted_s,
                r.observed_s,
                r.share_err * 100.0
            );
        }
    }
    Ok(())
}

/// Analytical-vs-observed per-stage cross-check; `None` when the plan's
/// cluster or model cannot be resolved, or a replan changed the stage
/// count mid-run.
fn resolve_crosscheck(
    plan: &ExecutionPlan,
    batch: usize,
    prompt_len: usize,
    n_generate: usize,
    stage_metrics: &[llmpq_runtime::worker::StageMetrics],
) -> Option<Vec<StageCrosscheck>> {
    let n: usize = plan.cluster.strip_prefix("cluster-")?.parse().ok()?;
    if !(1..=11).contains(&n) {
        return None;
    }
    let cluster = paper_cluster(n);
    let spec = zoo::by_name(&plan.model)?;
    let db = CostDb::oracle(&KernelEnv::default());
    let job = BatchJob { global_batch: batch, prompt_len, n_generate };
    // Clamp micro-batch sizing to the actual run's batch.
    let mut p = plan.clone();
    p.microbatch.prefill_size = p.microbatch.prefill_size.min(batch).max(1);
    p.microbatch.prefill_count = batch.div_ceil(p.microbatch.prefill_size);
    p.microbatch.decode_size = p.microbatch.decode_size.min(batch).max(1);
    p.microbatch.decode_count = batch.div_ceil(p.microbatch.decode_size);
    let loads = stage_loads(&p, &cluster, &spec, &db, &job);
    let wl = PipelineWorkload {
        prefill_microbatches: p.microbatch.prefill_count,
        decode_microbatches: p.microbatch.decode_count,
        n_tokens: n_generate,
        master_prefill: 0.0,
        master_decode: 0.0,
    };
    let predicted = predicted_stage_seconds(&loads, &wl);
    let observed: Vec<f64> = stage_metrics.iter().map(|m| m.busy_s).collect();
    if predicted.len() != observed.len() {
        return None; // a replan shrank the pipeline mid-run
    }
    Some(stage_crosscheck(&predicted, &observed))
}

/// Render the cross-check as a metrics-snapshot section.
fn render_crosscheck(rows: &Option<Vec<StageCrosscheck>>) -> String {
    let mut out = String::from("# cost-model cross-check (predicted vs observed stage busy time)\n");
    match rows {
        None => {
            out.push_str("(skipped: cluster/model not resolvable or stage count changed)\n");
        }
        Some(rows) => {
            for r in rows {
                out.push_str(&format!(
                    "stage {}: predicted_s={:.4} observed_s={:.4} rel_err={:.1}% \
                     share_pred={:.1}% share_obs={:.1}% share_err={:.1}pp\n",
                    r.stage,
                    r.predicted_s,
                    r.observed_s,
                    r.rel_err * 100.0,
                    r.predicted_share * 100.0,
                    r.observed_share * 100.0,
                    r.share_err * 100.0,
                ));
            }
        }
    }
    out
}

/// Serve a Poisson online workload (paper §7) through the plan's cost
/// profile, so the summary can surface queueing, padding and retry
/// behavior of the offline plan under live traffic.
fn run_online(
    plan: &ExecutionPlan,
    rate: f64,
    n_requests: usize,
    failure_rate: f64,
    seed: u64,
) -> Result<llmpq_workload::OnlineStats, String> {
    let n: usize = plan
        .cluster
        .strip_prefix("cluster-")
        .and_then(|s| s.parse().ok())
        .filter(|n| (1..=11).contains(n))
        .ok_or_else(|| format!("--online-rate needs a paper cluster plan, got '{}'", plan.cluster))?;
    let cluster = paper_cluster(n);
    let spec = zoo::by_name(&plan.model)
        .ok_or_else(|| format!("--online-rate needs a zoo model, got '{}'", plan.model))?;
    let db = CostDb::oracle(&KernelEnv::default());
    let plan = plan.clone();
    let batch_cost = move |s: usize, ngen: usize, b: usize| -> f64 {
        let job = BatchJob { global_batch: b, prompt_len: s, n_generate: ngen };
        let mut p = plan.clone();
        p.microbatch.prefill_size = p.microbatch.prefill_size.min(b).max(1);
        p.microbatch.prefill_count = b.div_ceil(p.microbatch.prefill_size);
        p.microbatch.decode_size = p.microbatch.decode_size.min(b).max(1);
        p.microbatch.decode_count = b.div_ceil(p.microbatch.decode_size);
        let loads = stage_loads(&p, &cluster, &spec, &db, &job);
        let wl = PipelineWorkload {
            prefill_microbatches: p.microbatch.prefill_count,
            decode_microbatches: p.microbatch.decode_count,
            n_tokens: ngen,
            master_prefill: 0.0,
            master_decode: 0.0,
        };
        llmpq_sim::simulate_pipeline(&loads, &wl).total_latency
    };
    let cfg = OnlineConfig {
        arrival_rate: rate,
        n_requests,
        failure_rate,
        seed,
        ..OnlineConfig::default()
    };
    Ok(simulate_online(&cfg, &PromptLengthModel::default(), &batch_cost))
}
