//! `llmpq-dist`: execute a strategy file on the pipeline runtime (§5).
//!
//! ```text
//! llmpq-dist --strat_file_name strategy.json [--n-generate 16]
//!     [--batch 4] [--prompt-len 12] [--seed 0] [--fault-plan faults.json]
//!     [--trace-out trace.json] [--metrics-out metrics.txt]
//!     [--online-rate 2.0] [--online-failure 0.1]
//! ```
//!
//! The paper's `llmpq-dist` launches the distributed PyTorch runtime;
//! here the runtime is the in-process threaded pipeline executing the
//! scaled stand-in checkpoint (same layer count as the planned model),
//! which demonstrates the full flow and verifies the generated tokens
//! against sequential execution.
//!
//! With `--fault-plan`, the run executes under the fault-tolerance
//! supervisor: the JSON file (see `FaultPlan`) schedules worker crashes,
//! hangs, stragglers, message drops/duplicates and permanent device
//! losses; the supervisor detects them via heartbeats, restarts with
//! backoff, and replans around lost devices (folding their layers into
//! surviving stages), resuming from the lock-step token checkpoint.
//!
//! With `--trace-out` / `--metrics-out`, the run is observed by the
//! telemetry layer: `--trace-out` writes a Chrome `trace_event` JSON
//! (open in `chrome://tracing` or Perfetto) of every micro-batch's
//! wait/compute/send lifecycle per stage, and `--metrics-out` writes a
//! plain-text snapshot with per-stage p50/p95/p99 latency, queue peaks,
//! KV occupancy, restart counters — and a cost-model cross-check
//! comparing each stage's observed busy time against the analytical §4.1
//! prediction.
//!
//! With `--online-rate`, the plan's cost profile additionally serves a
//! Poisson online workload (paper §7) after the run, and the end-of-run
//! summary surfaces the online stats — including batches that failed and
//! were `retried` (tune with `--online-failure`).
//!
//! ## Multi-process mode
//!
//! With `--listen`, the same binary becomes one node of a *real*
//! multi-process pipeline over TCP (the paper's deployment shape: a
//! master plus one worker process per stage):
//!
//! ```text
//! # one process per stage (any order; they retry until the master is up)
//! llmpq-dist --strat_file_name s.json --stage 0 --listen 127.0.0.1:0 --connect 127.0.0.1:7000
//! llmpq-dist --strat_file_name s.json --stage 1 --listen 127.0.0.1:0 --connect 127.0.0.1:7000
//! # the master (no --stage): drives generation, prints the tokens
//! llmpq-dist --strat_file_name s.json --listen 127.0.0.1:7000
//! ```
//!
//! All processes must be given the same strategy file, seed, batch and
//! prompt length: the handshake carries a plan fingerprint and refuses
//! mismatched peers. Tokens are bit-identical to the in-process run.
//! `--wire-fault` injects transport faults (delayed / dropped /
//! duplicated / corrupted frames, connection drops) from a JSON plan;
//! the master's supervisor restarts the attempt on a lost connection.

use llm_pq::evaluate::stage_loads;
use llm_pq::{
    degradation_ladder, replan_after_loss, AssignerConfig, DegradationLadder, ExecutionPlan,
    SolverChoice, DEFAULT_CAPS,
};
use llmpq_cli::Args;
use llmpq_cluster::paper_cluster;
use llmpq_cost::{
    link_crosscheck, predicted_stage_seconds, stage_crosscheck, CostDb, LinkObservation,
    StageCrosscheck,
};
use llmpq_model::{zoo, RefConfig, RefModel};
use llmpq_quant::{random_indicator, Rounding};
use llmpq_runtime::{
    poisson_requests, run_master, run_pipeline_observed, run_pipeline_supervised_observed,
    run_pipeline_with_swap, run_stage, serve, AdmissionConfig, AdmissionPolicy, DistMasterConfig,
    DistStageConfig, FaultPlan, FoldReplanner, Replanner, ServeConfig, SimEngine,
    SupervisorConfig, SwapRequest, Telemetry, WireFaultPlan,
};
use llmpq_sim::{KernelEnv, PipelineWorkload};
use llmpq_workload::{simulate_online, BatchJob, OnlineConfig, PromptLengthModel};

const USAGE: &str = "usage: llmpq-dist --strat_file_name <strategy.json>
    [--checkpoint model.ckpt.json] [--n-generate 16] [--batch 4] [--prompt-len 12] [--seed 0]
    [--fault-plan faults.json] [--trace-out trace.json] [--metrics-out metrics.txt]
    [--online-rate req_per_s] [--online-requests 150] [--online-failure 0.0]
    [--max-queue N] [--admission reject|deadline|timeout] [--deadline-ms 2000]
    [--degrade-ladder auto|ladder.json]
    [--swap-at N] [--swap-to target.json]
        live plan migration: at generated-token boundary N, hot-swap to the
        target plan (default: every layer at Int4, one layer moved to the next
        stage) with KV handoff — requests stay in flight across the swap

multi-process mode (one OS process per stage + a master, TCP loopback or LAN):
  master:  llmpq-dist --strat_file_name s.json --listen HOST:PORT
           [--wire-fault wire.json] [--metrics-out metrics.txt] [--trace-out trace.json]
  stage:   llmpq-dist --strat_file_name s.json --stage I --listen HOST:0 --connect MASTER
           [--wire-fault wire.json]
  (same strategy file / seed / batch / prompt-len everywhere; the master prints
   'listening on HOST:PORT' on stdout once ready)";

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.switch("help") {
        println!("{USAGE}");
        return;
    }
    if let Err(e) = run(&args) {
        eprintln!("error: {e}\n{USAGE}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), String> {
    let path = args.required("strat_file_name").map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let plan = ExecutionPlan::from_json(&text)?;
    let n_layers = plan.n_layers();
    eprintln!(
        "loaded plan for {} on {}: {} stages over {n_layers} layers",
        plan.model,
        plan.cluster,
        plan.stages.len()
    );

    // Build the stand-in checkpoint with the planned layer count.
    let seed = args.get_parse("seed", 0u64).map_err(|e| e.to_string())?;
    if let Some(spec) = zoo::by_name(&plan.model) {
        if spec.n_layers != n_layers {
            return Err(format!(
                "plan covers {n_layers} layers but {} has {}",
                plan.model, spec.n_layers
            ));
        }
    }
    let checkpoint = match args.get("checkpoint") {
        Some(path) => {
            let m = llmpq_model::load_checkpoint(std::path::Path::new(path))?;
            if m.cfg.n_layers != n_layers {
                return Err(format!(
                    "checkpoint has {} layers but the plan covers {n_layers}",
                    m.cfg.n_layers
                ));
            }
            m
        }
        None => RefModel::new(RefConfig::scaled_like(n_layers, 0xD157 ^ seed)),
    };

    let n_generate = args.get_parse("n-generate", 16usize).map_err(|e| e.to_string())?;
    let batch = args.get_parse("batch", 4usize).map_err(|e| e.to_string())?;
    let prompt_len = args.get_parse("prompt-len", 12usize).map_err(|e| e.to_string())?;
    let prompts: Vec<Vec<usize>> = (0..batch)
        .map(|i| (0..prompt_len).map(|j| (i * 41 + j * 17 + seed as usize) % checkpoint.cfg.vocab).collect())
        .collect();

    // Multi-process mode: `--stage I` makes this process serve pipeline
    // stage I; `--listen` without `--stage` makes it the master. Both
    // derive the identical stand-in checkpoint and prompt set from the
    // shared flags, which is what makes the distributed tokens
    // bit-comparable to the in-process engine.
    if args.get("stage").is_some() {
        return run_stage_process(args, &plan, &checkpoint, batch);
    }
    if args.get("listen").is_some() {
        return run_master_process(args, &plan, &checkpoint, &prompts, n_generate);
    }

    let faults = match args.get("fault-plan") {
        Some(fp) => {
            let text = std::fs::read_to_string(fp).map_err(|e| format!("{fp}: {e}"))?;
            let plan = FaultPlan::from_json(&text)?;
            eprintln!("fault plan: {} scheduled events", plan.events.len());
            Some(plan)
        }
        None => None,
    };

    let trace_out = args.get("trace-out");
    let metrics_out = args.get("metrics-out");
    let telemetry = (trace_out.is_some() || metrics_out.is_some())
        .then(|| Telemetry::new(plan.stages.len()));

    if args.get("swap-at").is_some() {
        return run_with_swap(args, &plan, &checkpoint, &prompts, n_generate, seed, faults.as_ref());
    }

    // `--max-queue` bounds every inter-stage channel so a slow stage
    // backpressures the master instead of queueing without limit; it is
    // also the admission queue bound of the overload pass below.
    let max_queue = match args.get("max-queue") {
        Some(_) => Some(args.get_parse("max-queue", 64usize).map_err(|e| e.to_string())?),
        None => None,
    };
    let sup_cfg = SupervisorConfig { max_queue, ..SupervisorConfig::default() };

    let replanner = DistReplanner::new(
        &plan,
        BatchJob { global_batch: batch, prompt_len, n_generate },
        telemetry.clone(),
    );
    let (out, restarts, replans) = if faults.is_some() || max_queue.is_some() {
        // Bounded queues ride on the supervised path, which owns the
        // backpressure-aware master send loop.
        let sup = run_pipeline_supervised_observed(
            &checkpoint,
            &plan,
            &prompts,
            n_generate,
            Rounding::Deterministic,
            seed,
            &sup_cfg,
            faults.as_ref(),
            Some(&replanner),
            telemetry.clone(),
        )
        .map_err(|e| e.to_string())?;
        for ev in &sup.events {
            eprintln!(
                "attempt {}: {} -> {:?} (checkpointed {} tokens)",
                ev.attempt, ev.error, ev.action, ev.checkpointed_tokens
            );
        }
        eprintln!(
            "supervisor: {} restarts, {} replans, final plan has {} stages",
            sup.restarts,
            sup.replans,
            sup.final_plan.stages.len()
        );
        (sup.output, sup.restarts, sup.replans)
    } else {
        let out = run_pipeline_observed(
            &checkpoint,
            &plan,
            &prompts,
            n_generate,
            Rounding::Deterministic,
            seed,
            None,
            telemetry.clone(),
        )
        .map_err(|e| e.to_string())?;
        (out, 0, 0)
    };

    // Cost-model cross-check: analytical per-stage prediction vs the busy
    // time the run actually observed. Only resolvable for the paper
    // clusters ("cluster-N") and zoo models; custom plans skip it.
    let crosscheck = resolve_crosscheck(&plan, batch, prompt_len, n_generate, &out.stage_metrics);

    if let (Some(path), Some(t)) = (trace_out, &telemetry) {
        std::fs::write(path, t.to_chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    if let (Some(path), Some(t)) = (metrics_out, &telemetry) {
        let mut text = t.metrics_text();
        text.push_str(&render_crosscheck(&crosscheck));
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote metrics snapshot to {path}");
    }

    // Optional §7 online-serving pass over the plan's cost profile.
    let has_online = args
        .get_parse("online-rate", f64::NAN)
        .map_err(|e| e.to_string())?
        .is_finite();
    let online = has_online
        .then(|| {
            let rate = args.get_parse("online-rate", 1.0).unwrap_or(1.0);
            let n_requests = args.get_parse("online-requests", 150usize).unwrap_or(150);
            let failure = args.get_parse("online-failure", 0.0f64).unwrap_or(0.0);
            run_online(&plan, rate, n_requests, failure, seed)
        })
        .transpose()?;

    // Optional overload pass: the admission + degradation serving loop
    // over the plan's cost profile, driven past capacity if the rate
    // says so.
    if let Some(policy) = args.get("admission") {
        if !has_online {
            return Err("--admission needs --online-rate to set the arrival rate".into());
        }
        let policy: AdmissionPolicy = policy.parse()?;
        let rate = args.get_parse("online-rate", 1.0).unwrap_or(1.0);
        let n_requests = args.get_parse("online-requests", 150usize).unwrap_or(150);
        let deadline_ms = args.get_parse("deadline-ms", 2_000u64).map_err(|e| e.to_string())?;
        run_overload(
            &plan,
            policy,
            rate,
            n_requests,
            max_queue.unwrap_or(64),
            deadline_ms,
            args.get("degrade-ladder"),
            batch,
            prompt_len,
            n_generate,
            seed,
        )?;
    }

    println!(
        "generated {} tokens x {} sequences in {:.3}s wall ({} restarts, {} replans)",
        n_generate, batch, out.wall_s, restarts, replans
    );
    let origins = replanner.origins();
    if !origins.is_empty() {
        // Provenance of every replan: exact solver ("ilp"), Algorithm-2
        // fallback ("heuristic"), structural fold, or a typed-infeasible
        // refusal that kept the old plan.
        println!("replan origins: {}", origins.join(", "));
    }
    if let Some(stats) = &online {
        println!(
            "online: {} batches served, {} retried after failures, p50 {:.2}s p95 {:.2}s, {:.1} tok/s",
            stats.batches, stats.retried, stats.p50_latency, stats.p95_latency, stats.throughput
        );
    }
    for (i, toks) in out.tokens.iter().enumerate() {
        println!("seq {i}: {toks:?}");
    }
    for (i, s) in out.loader_stats.iter().enumerate() {
        eprintln!(
            "stage {i}: {} modules ({} quantized), peak staging {} B",
            s.modules, s.quantized_modules, s.peak_staging_bytes
        );
    }
    if let Some(rows) = &crosscheck {
        for r in rows {
            eprintln!(
                "stage {}: cost model predicted {:.4}s / observed {:.4}s busy (share err {:.1}pp)",
                r.stage,
                r.predicted_s,
                r.observed_s,
                r.share_err * 100.0
            );
        }
    }
    Ok(())
}

/// Context for re-running Algorithm 1 on the surviving sub-cluster,
/// resolvable only for paper-cluster ("cluster-N") plans over zoo
/// models.
struct ResolvedPlanner {
    cluster: llmpq_cluster::Cluster,
    spec: llmpq_model::ModelSpec,
    job: BatchJob,
    db: CostDb,
    indicator: llmpq_quant::IndicatorTable,
    cfg: AssignerConfig,
}

/// Production-shaped replanner with provenance. When the plan's
/// cluster and model resolve, permanent device loss re-runs Algorithm 1
/// on the survivors (`llm_pq::replan_after_loss`) and records where
/// each installed plan came from — the exact solver, or the Algorithm-2
/// heuristic after a solver failure — instead of falling back
/// silently. Unresolvable plans use the structural [`FoldReplanner`]
/// (recorded as such). Origins feed telemetry (`plan_origin` in the
/// metrics snapshot) and the end-of-run summary.
struct DistReplanner {
    resolved: Option<ResolvedPlanner>,
    origins: std::sync::Mutex<Vec<String>>,
    telemetry: Option<std::sync::Arc<Telemetry>>,
}

impl DistReplanner {
    fn new(plan: &ExecutionPlan, job: BatchJob, telemetry: Option<std::sync::Arc<Telemetry>>) -> Self {
        let resolved = plan
            .cluster
            .strip_prefix("cluster-")
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|n| (1..=11).contains(n))
            .and_then(|n| zoo::by_name(&plan.model).map(|spec| (n, spec)))
            .map(|(n, spec)| ResolvedPlanner {
                cluster: paper_cluster(n),
                indicator: random_indicator(spec.n_layers, 0xA11CE, 1.0),
                spec,
                job,
                db: CostDb::oracle(&KernelEnv::default()),
                // Recovery-path sizing: a lighter search than offline
                // planning, so the pipeline is back before the
                // heartbeat budget runs out.
                cfg: AssignerConfig {
                    theta: 0.1,
                    solver: SolverChoice::Dp { group: 8 },
                    xi: 2,
                    max_orderings: 4,
                    dp_grid: Some(12),
                    ..AssignerConfig::default()
                },
            });
        Self { resolved, origins: std::sync::Mutex::new(Vec::new()), telemetry }
    }

    fn origins(&self) -> Vec<String> {
        self.origins.lock().unwrap().clone()
    }
}

impl Replanner for DistReplanner {
    fn replan(&self, old: &ExecutionPlan, lost: &[usize]) -> Result<ExecutionPlan, String> {
        let Some(r) = &self.resolved else {
            let plan = FoldReplanner.replan(old, lost)?;
            if let Some(t) = &self.telemetry {
                t.note_plan_origin("heuristic");
            }
            self.origins.lock().unwrap().push("fold".into());
            return Ok(plan);
        };
        match replan_after_loss(&r.cluster, lost, &r.spec, &r.job, &r.db, &r.indicator, &r.cfg) {
            Ok(out) => {
                let origin = out.origin.to_string();
                if let Some(t) = &self.telemetry {
                    t.note_plan_origin(&origin);
                }
                self.origins.lock().unwrap().push(origin);
                Ok(out.plan)
            }
            Err(e) => {
                // Typed infeasibility: the survivors cannot hold the
                // model at any rung. The supervisor keeps the old plan;
                // surface the alarm rather than panicking.
                if let Some(t) = &self.telemetry {
                    t.note_fleet_infeasible();
                }
                self.origins.lock().unwrap().push(format!("infeasible ({e})"));
                Err(e.to_string())
            }
        }
    }
}

/// The default `--swap-at` target: every layer at Int4 and, when some
/// stage has layers to spare, one layer moved across the first movable
/// stage boundary so the commit exercises the KV handoff.
fn default_swap_target(base: &ExecutionPlan) -> ExecutionPlan {
    let mut cuts: Vec<(usize, usize)> =
        base.stages.iter().map(|s| (s.layer_start, s.layer_end)).collect();
    for i in 0..cuts.len().saturating_sub(1) {
        if cuts[i + 1].1 - cuts[i + 1].0 >= 2 {
            cuts[i].1 += 1;
            cuts[i + 1].0 += 1;
            break;
        }
        if cuts[i].1 - cuts[i].0 >= 2 {
            cuts[i].1 -= 1;
            cuts[i + 1].0 -= 1;
            break;
        }
    }
    let stages = cuts
        .iter()
        .zip(&base.stages)
        .map(|(&(lo, hi), s)| llm_pq::StagePlan {
            device: s.device,
            layer_start: lo,
            layer_end: hi,
            bits: vec![llmpq_quant::Bitwidth::Int4; hi - lo],
        })
        .collect();
    ExecutionPlan { stages, ..base.clone() }
}

/// `--swap-at N`: run the pipeline with a live plan migration scheduled
/// at token boundary N — two-phase prepare/commit, KV handoff for
/// re-partitioned layers, abort back to the old plan on any failure
/// inside the prepare window.
fn run_with_swap(
    args: &Args,
    plan: &ExecutionPlan,
    checkpoint: &RefModel,
    prompts: &[Vec<usize>],
    n_generate: usize,
    seed: u64,
    faults: Option<&FaultPlan>,
) -> Result<(), String> {
    let at_token = args.get_parse("swap-at", 1usize).map_err(|e| e.to_string())?;
    let target = match args.get("swap-to") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            ExecutionPlan::from_json(&text)?
        }
        None => default_swap_target(plan),
    };
    // Compact per-stage layout: a uniform stage collapses to one
    // bitwidth name, a mixed stage lists its distinct bitwidths.
    let describe = |s: &llm_pq::StagePlan| {
        let mut kinds: Vec<String> = Vec::new();
        for b in &s.bits {
            let name = format!("{b:?}");
            if !kinds.contains(&name) {
                kinds.push(name);
            }
        }
        format!("L{}..{} {}", s.layer_start, s.layer_end, kinds.join("/"))
    };
    let old_bits: Vec<String> = plan.stages.iter().map(describe).collect();
    let new_bits: Vec<String> = target.stages.iter().map(describe).collect();
    eprintln!("swap scheduled at token {at_token}:");
    eprintln!("  from: {}", old_bits.join(" | "));
    eprintln!("  to:   {}", new_bits.join(" | "));

    let swaps = vec![SwapRequest { at_token, plan: target }];
    let out = run_pipeline_with_swap(
        checkpoint,
        plan,
        prompts,
        n_generate,
        Rounding::Deterministic,
        seed,
        &swaps,
        &SupervisorConfig::default(),
        faults,
        None,
    )
    .map_err(|e| e.to_string())?;

    for (i, r) in out.swaps.iter().enumerate() {
        if r.committed {
            println!(
                "swap {i} (epoch {}) at token {}: committed in {} µs, {} KV bytes shipped",
                r.epoch, r.at_token, r.latency_us, r.kv_bytes
            );
        } else {
            println!(
                "swap {i} (epoch {}) at token {}: aborted back to the old plan ({})",
                r.epoch,
                r.at_token,
                r.reason.as_deref().unwrap_or("unknown")
            );
        }
    }
    println!(
        "generated {} tokens x {} sequences in {:.3}s wall ({} restarts), zero dropped requests",
        n_generate,
        prompts.len(),
        out.output.wall_s,
        out.restarts
    );
    for (i, toks) in out.output.tokens.iter().enumerate() {
        println!("seq {i}: {toks:?}");
    }
    Ok(())
}

/// Load `--wire-fault` (transport-level fault plan) if given.
fn load_wire_faults(args: &Args) -> Result<WireFaultPlan, String> {
    match args.get("wire-fault") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let plan = WireFaultPlan::from_json(&text)?;
            eprintln!("wire-fault plan: {} scheduled events", plan.events.len());
            Ok(plan)
        }
        None => Ok(WireFaultPlan::none()),
    }
}

/// `--listen` without `--stage`: run the distributed master. Prints
/// `listening on HOST:PORT` to stdout once bound (scripts and tests
/// parse this to learn the ephemeral port), then blocks until all stage
/// processes check in and generation completes.
fn run_master_process(
    args: &Args,
    plan: &ExecutionPlan,
    checkpoint: &RefModel,
    prompts: &[Vec<usize>],
    n_generate: usize,
) -> Result<(), String> {
    use std::io::Write as _;
    let listen = args.required("listen").map_err(|e| e.to_string())?;
    let wire_faults = load_wire_faults(args)?;
    let listener =
        std::net::TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();
    eprintln!("master: waiting for {} stage process(es) to check in", plan.stages.len());

    let telemetry = Telemetry::new(plan.stages.len());
    let cfg = DistMasterConfig {
        supervisor: SupervisorConfig::default(),
        wire_faults,
        telemetry: Some(telemetry.clone()),
    };
    let out =
        run_master(checkpoint, plan, prompts, n_generate, &listener, &cfg).map_err(|e| e.to_string())?;

    if let Some(path) = args.get("trace-out") {
        std::fs::write(path, telemetry.to_chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
    }

    // Interconnect-model cross-check: the α-β loopback link vs the
    // transfer time the transport actually observed per link.
    let obs: Vec<LinkObservation> = out
        .link_stats
        .iter()
        .enumerate()
        .map(|(i, l)| LinkObservation {
            link: i,
            bytes: l.bytes_tx.max(l.bytes_rx) as f64,
            frames: l.frames_tx.max(l.frames_rx),
            observed_s: l.comm_s(),
        })
        .collect();
    let rows = link_crosscheck(&llmpq_cluster::interconnect::Link::loopback(), &obs);

    if let Some(path) = args.get("metrics-out") {
        let mut text = telemetry.metrics_text();
        text.push_str(&render_link_crosscheck(&rows));
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote metrics snapshot to {path}");
    }

    println!(
        "generated {} tokens x {} sequences in {:.3}s wall ({} restarts)",
        n_generate,
        prompts.len(),
        out.wall_s,
        out.restarts
    );
    println!(
        "admission: offered {} served {} shed {} expired {} (conserved={})",
        out.admission.offered,
        out.admission.served,
        out.admission.shed,
        out.admission.expired,
        out.admission.conserves(0)
    );
    for (i, toks) in out.tokens.iter().enumerate() {
        println!("seq {i}: {toks:?}");
    }
    for (i, l) in out.link_stats.iter().enumerate() {
        eprintln!(
            "link {i}: {} B tx / {} B rx, {} frames, {:.4}s comm, {} corrupt",
            l.bytes_tx,
            l.bytes_rx,
            l.frames_tx.max(l.frames_rx),
            l.comm_s(),
            l.corrupt_frames
        );
    }
    for r in &rows {
        eprintln!(
            "link {}: α-β predicted {:.6}s / observed {:.6}s transfer (rel err {})",
            r.link,
            r.predicted_s,
            r.observed_s,
            if r.rel_err.is_finite() { format!("{:.1}%", r.rel_err * 100.0) } else { "n/a".into() }
        );
    }
    Ok(())
}

/// Render the link cross-check as a metrics-snapshot section.
fn render_link_crosscheck(rows: &[llmpq_cost::LinkCrosscheck]) -> String {
    let mut out =
        String::from("# interconnect cross-check (α-β loopback model vs observed transfer)\n");
    for r in rows {
        out.push_str(&format!(
            "link {}: predicted_s={:.6} observed_s={:.6} rel_err={}\n",
            r.link,
            r.predicted_s,
            r.observed_s,
            if r.rel_err.is_finite() { format!("{:.1}%", r.rel_err * 100.0) } else { "n/a".into() }
        ));
    }
    out
}

/// `--stage I --listen DATA --connect MASTER`: serve one pipeline stage
/// until the master says goodbye.
fn run_stage_process(
    args: &Args,
    plan: &ExecutionPlan,
    checkpoint: &RefModel,
    batch: usize,
) -> Result<(), String> {
    let stage = args.get_parse("stage", 0usize).map_err(|e| e.to_string())?;
    let seed = args.get_parse("seed", 0u64).map_err(|e| e.to_string())?;
    let cfg = DistStageConfig {
        stage,
        listen: args.get("listen").unwrap_or("127.0.0.1:0").to_string(),
        master: args.required("connect").map_err(|e| e.to_string())?.to_string(),
        rounding: Rounding::Deterministic,
        seed,
        wire_faults: load_wire_faults(args)?,
        tick: std::time::Duration::from_millis(2),
    };
    eprintln!("stage {stage}: dialing master at {}", cfg.master);
    let summary = run_stage(checkpoint, plan, batch, &cfg).map_err(|e| e.to_string())?;
    println!(
        "stage {stage}: served {} attempt(s), {} items, rx {} B, tx {} B",
        summary.attempts_served,
        summary.metrics.items,
        summary.rx_link.bytes_rx,
        summary.tx_link.bytes_tx
    );
    Ok(())
}

/// Analytical-vs-observed per-stage cross-check; `None` when the plan's
/// cluster or model cannot be resolved, or a replan changed the stage
/// count mid-run.
fn resolve_crosscheck(
    plan: &ExecutionPlan,
    batch: usize,
    prompt_len: usize,
    n_generate: usize,
    stage_metrics: &[llmpq_runtime::worker::StageMetrics],
) -> Option<Vec<StageCrosscheck>> {
    let n: usize = plan.cluster.strip_prefix("cluster-")?.parse().ok()?;
    if !(1..=11).contains(&n) {
        return None;
    }
    let cluster = paper_cluster(n);
    let spec = zoo::by_name(&plan.model)?;
    let db = CostDb::oracle(&KernelEnv::default());
    let job = BatchJob { global_batch: batch, prompt_len, n_generate };
    // Clamp micro-batch sizing to the actual run's batch.
    let mut p = plan.clone();
    p.microbatch.prefill_size = p.microbatch.prefill_size.min(batch).max(1);
    p.microbatch.prefill_count = batch.div_ceil(p.microbatch.prefill_size);
    p.microbatch.decode_size = p.microbatch.decode_size.min(batch).max(1);
    p.microbatch.decode_count = batch.div_ceil(p.microbatch.decode_size);
    let loads = stage_loads(&p, &cluster, &spec, &db, &job);
    let wl = PipelineWorkload {
        prefill_microbatches: p.microbatch.prefill_count,
        decode_microbatches: p.microbatch.decode_count,
        n_tokens: n_generate,
        master_prefill: 0.0,
        master_decode: 0.0,
    };
    let predicted = predicted_stage_seconds(&loads, &wl);
    let observed: Vec<f64> = stage_metrics.iter().map(|m| m.busy_s).collect();
    if predicted.len() != observed.len() {
        return None; // a replan shrank the pipeline mid-run
    }
    Some(stage_crosscheck(&predicted, &observed))
}

/// Render the cross-check as a metrics-snapshot section.
fn render_crosscheck(rows: &Option<Vec<StageCrosscheck>>) -> String {
    let mut out = String::from("# cost-model cross-check (predicted vs observed stage busy time)\n");
    match rows {
        None => {
            out.push_str("(skipped: cluster/model not resolvable or stage count changed)\n");
        }
        Some(rows) => {
            for r in rows {
                out.push_str(&format!(
                    "stage {}: predicted_s={:.4} observed_s={:.4} rel_err={:.1}% \
                     share_pred={:.1}% share_obs={:.1}% share_err={:.1}pp\n",
                    r.stage,
                    r.predicted_s,
                    r.observed_s,
                    r.rel_err * 100.0,
                    r.predicted_share * 100.0,
                    r.observed_share * 100.0,
                    r.share_err * 100.0,
                ));
            }
        }
    }
    out
}

/// Serve a Poisson online workload (paper §7) through the plan's cost
/// profile, so the summary can surface queueing, padding and retry
/// behavior of the offline plan under live traffic.
fn run_online(
    plan: &ExecutionPlan,
    rate: f64,
    n_requests: usize,
    failure_rate: f64,
    seed: u64,
) -> Result<llmpq_workload::OnlineStats, String> {
    let n: usize = plan
        .cluster
        .strip_prefix("cluster-")
        .and_then(|s| s.parse().ok())
        .filter(|n| (1..=11).contains(n))
        .ok_or_else(|| format!("--online-rate needs a paper cluster plan, got '{}'", plan.cluster))?;
    let cluster = paper_cluster(n);
    let spec = zoo::by_name(&plan.model)
        .ok_or_else(|| format!("--online-rate needs a zoo model, got '{}'", plan.model))?;
    let db = CostDb::oracle(&KernelEnv::default());
    let plan = plan.clone();
    let batch_cost = move |s: usize, ngen: usize, b: usize| -> f64 {
        let job = BatchJob { global_batch: b, prompt_len: s, n_generate: ngen };
        let mut p = plan.clone();
        p.microbatch.prefill_size = p.microbatch.prefill_size.min(b).max(1);
        p.microbatch.prefill_count = b.div_ceil(p.microbatch.prefill_size);
        p.microbatch.decode_size = p.microbatch.decode_size.min(b).max(1);
        p.microbatch.decode_count = b.div_ceil(p.microbatch.decode_size);
        let loads = stage_loads(&p, &cluster, &spec, &db, &job);
        let wl = PipelineWorkload {
            prefill_microbatches: p.microbatch.prefill_count,
            decode_microbatches: p.microbatch.decode_count,
            n_tokens: ngen,
            master_prefill: 0.0,
            master_decode: 0.0,
        };
        llmpq_sim::simulate_pipeline(&loads, &wl).total_latency
    };
    let cfg = OnlineConfig {
        arrival_rate: rate,
        n_requests,
        failure_rate,
        seed,
        ..OnlineConfig::default()
    };
    simulate_online(&cfg, &PromptLengthModel::default(), &batch_cost).map_err(|e| e.to_string())
}

/// Predicted end-to-end latency of `plan` serving a batch of `b`
/// sequences, from the cost profile (the same path `run_online` uses).
fn plan_batch_cost(
    plan: &ExecutionPlan,
    cluster: &llmpq_cluster::Cluster,
    spec: &llmpq_model::ModelSpec,
    db: &CostDb,
    prompt_len: usize,
    n_generate: usize,
    b: usize,
) -> f64 {
    let job = BatchJob { global_batch: b, prompt_len, n_generate };
    let mut p = plan.clone();
    p.microbatch.prefill_size = p.microbatch.prefill_size.min(b).max(1);
    p.microbatch.prefill_count = b.div_ceil(p.microbatch.prefill_size);
    p.microbatch.decode_size = p.microbatch.decode_size.min(b).max(1);
    p.microbatch.decode_count = b.div_ceil(p.microbatch.decode_size);
    let loads = stage_loads(&p, cluster, spec, db, &job);
    let wl = PipelineWorkload {
        prefill_microbatches: p.microbatch.prefill_count,
        decode_microbatches: p.microbatch.decode_count,
        n_tokens: n_generate,
        master_prefill: 0.0,
        master_decode: 0.0,
    };
    llmpq_sim::simulate_pipeline(&loads, &wl).total_latency
}

/// The `--admission` overload pass: drive the plan's cost profile with a
/// Poisson arrival stream through the runtime's admission + KV-guard +
/// degradation serving loop, and print shed/expired/goodput and the
/// ladder's rung trajectory.
#[allow(clippy::too_many_arguments)]
fn run_overload(
    plan: &ExecutionPlan,
    policy: AdmissionPolicy,
    rate: f64,
    n_requests: usize,
    max_queue: usize,
    deadline_ms: u64,
    ladder_arg: Option<&str>,
    batch: usize,
    prompt_len: usize,
    n_generate: usize,
    seed: u64,
) -> Result<(), String> {
    let n: usize = plan
        .cluster
        .strip_prefix("cluster-")
        .and_then(|s| s.parse().ok())
        .filter(|n| (1..=11).contains(n))
        .ok_or_else(|| format!("--admission needs a paper cluster plan, got '{}'", plan.cluster))?;
    let cluster = paper_cluster(n);
    let spec = zoo::by_name(&plan.model)
        .ok_or_else(|| format!("--admission needs a zoo model, got '{}'", plan.model))?;
    let db = CostDb::oracle(&KernelEnv::default());

    // Rung plans: just this plan, a precomputed ladder file, or a fresh
    // ladder solved here (`auto`; synthetic indicator — profile-backed
    // ladders should be precomputed offline and passed as a file).
    let rung_plans: Vec<ExecutionPlan> = match ladder_arg {
        None => vec![plan.clone()],
        Some("auto") => {
            let job = BatchJob { global_batch: batch, prompt_len, n_generate };
            let indicator = random_indicator(spec.n_layers, 0xA11CE, 1.0);
            let cfg = AssignerConfig {
                max_orderings: 4,
                dp_grid: Some(8),
                ..AssignerConfig::paper_setup(n)
            };
            let ladder =
                degradation_ladder(&cluster, &spec, &job, &db, &indicator, &cfg, &DEFAULT_CAPS)?;
            eprintln!("degradation ladder (auto): {} rungs", ladder.len());
            for r in &ladder.rungs {
                eprintln!(
                    "  rung {}: predicted {:.3}s, quality cost {:.3}, mean {:.1} bits",
                    r.label, r.predicted_latency_s, r.quality_cost, r.mean_bits
                );
            }
            ladder.rungs.into_iter().map(|r| r.plan).collect()
        }
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let ladder = DegradationLadder::from_json(&text, plan.n_layers())?;
            eprintln!("degradation ladder ({path}): {} rungs", ladder.len());
            ladder.rungs.into_iter().map(|r| r.plan).collect()
        }
    };

    // Affine per-rung batch cost fitted from the cost profile.
    let max_batch = batch.max(1);
    let rung_cost_s: Vec<(f64, f64)> = rung_plans
        .iter()
        .map(|p| {
            let c1 = plan_batch_cost(p, &cluster, &spec, &db, prompt_len, n_generate, 1);
            let cb = plan_batch_cost(p, &cluster, &spec, &db, prompt_len, n_generate, max_batch);
            let per = if max_batch > 1 { (cb - c1) / (max_batch - 1) as f64 } else { 0.0 };
            (c1.max(0.0), per.max(0.0))
        })
        .collect();

    let mut engine = SimEngine::new(rung_cost_s, max_batch, 1.0);
    let requests = poisson_requests(n_requests, rate, prompt_len, n_generate, seed)?;
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            policy,
            max_queue,
            default_deadline_s: Some(deadline_ms as f64 / 1000.0),
            queue_timeout_s: deadline_ms as f64 / 1000.0,
        },
        ..ServeConfig::default()
    };
    let rep = serve(&mut engine, &requests, &cfg, None);
    println!(
        "overload[{policy}]: offered {} served {} shed {} expired {} | goodput {:.2} req/s, \
         p50 {:.2}s p99 {:.2}s | rung final {} peak {} ({} transitions)",
        rep.stats.offered,
        rep.stats.served,
        rep.stats.shed,
        rep.stats.expired,
        rep.goodput_rps,
        rep.p50_sojourn_s,
        rep.p99_sojourn_s,
        rep.final_rung,
        rep.peak_rung,
        rep.transitions.len(),
    );
    for tr in &rep.transitions {
        eprintln!(
            "  t={:.2}s rung {} -> {} (pressure {:.2})",
            tr.at_s, tr.from, tr.to, tr.pressure
        );
    }
    Ok(())
}
