//! `llmpq-dist`: execute a strategy file on the pipeline runtime (§5).
//!
//! ```text
//! llmpq-dist --strat_file_name strategy.json [--n-generate 16]
//!     [--batch 4] [--prompt-len 12] [--seed 0] [--fault-plan faults.json]
//! ```
//!
//! The paper's `llmpq-dist` launches the distributed PyTorch runtime;
//! here the runtime is the in-process threaded pipeline executing the
//! scaled stand-in checkpoint (same layer count as the planned model),
//! which demonstrates the full flow and verifies the generated tokens
//! against sequential execution.
//!
//! With `--fault-plan`, the run executes under the fault-tolerance
//! supervisor: the JSON file (see `FaultPlan`) schedules worker crashes,
//! hangs, stragglers, message drops/duplicates and permanent device
//! losses; the supervisor detects them via heartbeats, restarts with
//! backoff, and replans around lost devices (folding their layers into
//! surviving stages), resuming from the lock-step token checkpoint.

use llm_pq::ExecutionPlan;
use llmpq_cli::Args;
use llmpq_model::{zoo, RefConfig, RefModel};
use llmpq_quant::Rounding;
use llmpq_runtime::{
    run_pipeline, run_pipeline_supervised, FaultPlan, FoldReplanner, SupervisorConfig,
};

const USAGE: &str = "usage: llmpq-dist --strat_file_name <strategy.json>
    [--checkpoint model.ckpt.json] [--n-generate 16] [--batch 4] [--prompt-len 12] [--seed 0]
    [--fault-plan faults.json]";

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.switch("help") {
        println!("{USAGE}");
        return;
    }
    if let Err(e) = run(&args) {
        eprintln!("error: {e}\n{USAGE}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), String> {
    let path = args.required("strat_file_name").map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let plan = ExecutionPlan::from_json(&text)?;
    let n_layers = plan.n_layers();
    eprintln!(
        "loaded plan for {} on {}: {} stages over {n_layers} layers",
        plan.model,
        plan.cluster,
        plan.stages.len()
    );

    // Build the stand-in checkpoint with the planned layer count.
    let seed = args.get_parse("seed", 0u64).map_err(|e| e.to_string())?;
    if let Some(spec) = zoo::by_name(&plan.model) {
        if spec.n_layers != n_layers {
            return Err(format!(
                "plan covers {n_layers} layers but {} has {}",
                plan.model, spec.n_layers
            ));
        }
    }
    let checkpoint = match args.get("checkpoint") {
        Some(path) => {
            let m = llmpq_model::load_checkpoint(std::path::Path::new(path))?;
            if m.cfg.n_layers != n_layers {
                return Err(format!(
                    "checkpoint has {} layers but the plan covers {n_layers}",
                    m.cfg.n_layers
                ));
            }
            m
        }
        None => RefModel::new(RefConfig::scaled_like(n_layers, 0xD157 ^ seed)),
    };

    let n_generate = args.get_parse("n-generate", 16usize).map_err(|e| e.to_string())?;
    let batch = args.get_parse("batch", 4usize).map_err(|e| e.to_string())?;
    let prompt_len = args.get_parse("prompt-len", 12usize).map_err(|e| e.to_string())?;
    let prompts: Vec<Vec<usize>> = (0..batch)
        .map(|i| (0..prompt_len).map(|j| (i * 41 + j * 17 + seed as usize) % checkpoint.cfg.vocab).collect())
        .collect();

    let faults = match args.get("fault-plan") {
        Some(fp) => {
            let text = std::fs::read_to_string(fp).map_err(|e| format!("{fp}: {e}"))?;
            let plan = FaultPlan::from_json(&text)?;
            eprintln!("fault plan: {} scheduled events", plan.events.len());
            Some(plan)
        }
        None => None,
    };

    let out = match &faults {
        Some(fp) => {
            let sup = run_pipeline_supervised(
                &checkpoint,
                &plan,
                &prompts,
                n_generate,
                Rounding::Deterministic,
                seed,
                &SupervisorConfig::default(),
                Some(fp),
                Some(&FoldReplanner),
            )
            .map_err(|e| e.to_string())?;
            for ev in &sup.events {
                eprintln!(
                    "attempt {}: {} -> {:?} (checkpointed {} tokens)",
                    ev.attempt, ev.error, ev.action, ev.checkpointed_tokens
                );
            }
            eprintln!(
                "supervisor: {} restarts, {} replans, final plan has {} stages",
                sup.restarts,
                sup.replans,
                sup.final_plan.stages.len()
            );
            sup.output
        }
        None => run_pipeline(&checkpoint, &plan, &prompts, n_generate, Rounding::Deterministic, seed, None)
            .map_err(|e| e.to_string())?,
    };
    println!(
        "generated {} tokens x {} sequences in {:.3}s wall",
        n_generate,
        batch,
        out.wall_s
    );
    for (i, toks) in out.tokens.iter().enumerate() {
        println!("seq {i}: {toks:?}");
    }
    for (i, s) in out.loader_stats.iter().enumerate() {
        eprintln!(
            "stage {i}: {} modules ({} quantized), peak staging {} B",
            s.modules, s.quantized_modules, s.peak_staging_bytes
        );
    }
    Ok(())
}
