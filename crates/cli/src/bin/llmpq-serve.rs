//! `llmpq-serve`: the online-serving front end — continuous batching
//! over the paged KV pool, exposed three ways.
//!
//! ```text
//! # real HTTP server (OpenAI-ish /v1/completions, /metrics, /healthz)
//! llmpq-serve --mode serve --addr 127.0.0.1:8080
//!
//! # virtual-clock trace run: 10k concurrent requests, exact invariants
//! llmpq-serve --mode drive --requests 10000 --rate 5000
//!
//! # continuous vs static on the same trace (the ablation in miniature)
//! llmpq-serve --mode drive --requests 2000 --rate 200 --compare-static
//!
//! # self-contained HTTP soak: real sockets at ~2x capacity, asserts
//! # conservation + zero dropped connections, exits nonzero on failure
//! llmpq-serve --mode soak --clients 16 --per-client 25
//! ```
//!
//! `drive` replays a Poisson trace (either the runtime's synthetic
//! `poisson_requests` or the workload crate's ShareGPT-like arrival
//! sampler via `--workload sharegpt`) under the virtual clock and prints a
//! `ContinuousReport` as JSON — the same struct `ablation_serving`
//! aggregates. `soak` is the CI job: it starts the real server on an
//! ephemeral port, floods it from real client sockets, and checks that
//! every connection got an answer and every request is accounted for
//! (`offered == served + shed + expired`).

use llm_pq::{ExecutionPlan, StagePlan};
use llmpq_cli::Args;
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{BitAssignment, Bitwidth, Rounding};
use llmpq_runtime::{
    poisson_requests, real_clock, serve_continuous, serve_static, AdmissionConfig,
    AdmissionPolicy, ContinuousConfig, ContinuousReport, DistServeConfig, DistStepEngine,
    HttpServerConfig, IterCost, KvPoolConfig, ModelStepEngine, PhasePolicy, Request, RungSwap,
    SimStepEngine, StepEngine, Telemetry,
};
use llmpq_workload::{
    sample_arrivals, sample_arrivals_for_duration, MicrobatchPlan, OnlineConfig, PromptLengthModel,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: llmpq-serve --mode serve|drive|soak
  engine (all modes):
    [--engine sim|model|dist] analytic cost model, real quantized transformer, or the
                             distributed ring engine (in-process stages; default sim)
    [--rungs 3]              degradation ladder depth (model/dist: Fp16>Int8>Int4>Int3)
    [--blocks 4096]          KV pool blocks
    [--block-tokens 16]      tokens per KV block
    [--mem-budget-mb 0]      model engine: unified memory budget; packed weights are
                             subtracted, the rest becomes KV blocks (0 = use --blocks)
    [--vocab 97]             sim-engine vocabulary
    [--seed 42]              engine + trace seed
  scheduler (all modes):
    [--token-budget 256]     prefill+decode tokens per iteration
    [--max-batch 32]         max sequences in flight
    [--prefill-chunk 64]     chunked-prefill granularity
    [--policy decode-first]  decode-first|prefill-first|mixed:<frac>
    [--max-queue 256]        admission queue bound
    [--admission reject]     reject|deadline-shed|queue-timeout
    [--queue-timeout-s 1.0]  bound for queue-timeout admission
    [--deadline-ms 0]        per-request SLO (0 = none)
    [--degrade]              enable graceful degradation over the rung ladder
    [--swap-at 0]            live plan swap after this iteration (0 = never)
    [--swap-rung 1]          target rung for --swap-at
  serve:
    [--addr 127.0.0.1:8080]  listen address
    [--max-tokens-cap 256]   largest max_tokens a request may ask
  drive:
    [--requests 2000]        trace length
    [--rate 200]             Poisson arrival rate (req/s, virtual)
    [--workload poisson]     poisson (short prompts) | sharegpt (length mixture)
    [--duration 0]           keep only sharegpt arrivals within this window, seconds
                             (an empty window is a hard error, not an empty run)
    [--prompt-len 24]        max prompt length for the poisson trace
    [--gen 8]                tokens generated per request (poisson trace)
    [--compare-static]       also run the static-batching baseline
    [--batch-size 8]         static baseline batch size
    [--max-wait-s 0.5]       static baseline batch window
    [--keep-outputs]         keep per-request outputs in the JSON (large)
  soak:
    [--clients 16]           concurrent client connections
    [--per-client 25]        requests per client (keep-alive)
    (every 429/503 must carry a parseable Retry-After or the soak fails)
    [--help]";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

macro_rules! get {
    ($args:expr, $name:expr, $default:expr) => {
        match $args.get_parse($name, $default) {
            Ok(v) => v,
            Err(e) => return fail(&e.to_string()),
        }
    };
}

enum Engine {
    Sim(Box<SimStepEngine>),
    Model(Box<ModelStepEngine>),
    Dist(Box<DistStepEngine>),
}

struct EngineParams {
    kind: String,
    rungs: usize,
    pool: KvPoolConfig,
    vocab: usize,
    seed: u64,
    /// Worker-side sequence slots for the dist engine (covers the
    /// scheduler's max batch).
    slots: usize,
    /// Unified device memory budget in MiB for the model engine
    /// (0 = size the pool from `--blocks` instead). Packed weights are
    /// subtracted first; the remainder becomes KV blocks.
    mem_budget_mb: usize,
}

fn build_engine(p: &EngineParams) -> Result<(Engine, usize), String> {
    match p.kind.as_str() {
        "sim" => {
            let e = SimStepEngine::new(
                p.pool,
                IterCost::default_ladder(p.rungs),
                p.vocab,
                p.seed,
            );
            Ok((Engine::Sim(Box::new(e)), p.vocab))
        }
        "model" => {
            let cfg = RefConfig::scaled_like(4, p.seed);
            let vocab = cfg.vocab;
            let checkpoint = RefModel::new(cfg);
            let all = [Bitwidth::Fp16, Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int3];
            let ladder: Vec<BitAssignment> = all
                .iter()
                .take(p.rungs.clamp(1, all.len()))
                .map(|b| BitAssignment::uniform(checkpoint.cfg.n_layers, *b))
                .collect();
            let e = if p.mem_budget_mb > 0 {
                ModelStepEngine::new_with_budget(
                    &checkpoint,
                    &ladder,
                    Rounding::Deterministic,
                    p.seed,
                    p.pool.block_tokens,
                    p.mem_budget_mb * 1024 * 1024,
                )?
            } else {
                ModelStepEngine::new(&checkpoint, &ladder, Rounding::Deterministic, p.seed, p.pool)?
            };
            Ok((Engine::Model(Box::new(e)), vocab))
        }
        "dist" => {
            // The same checkpoint/ladder as `model`, but executed
            // through the two-stage in-process serving ring — the CLI
            // face of the distributed continuous-serving path (with
            // live `--swap-at` migration and supervisor restarts).
            let cfg = RefConfig::scaled_like(4, p.seed);
            let vocab = cfg.vocab;
            let checkpoint = RefModel::new(cfg);
            let n_layers = checkpoint.cfg.n_layers;
            let cut = n_layers / 2;
            let all = [Bitwidth::Fp16, Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int3];
            let plans: Vec<ExecutionPlan> = all
                .iter()
                .take(p.rungs.clamp(1, all.len()))
                .map(|b| ExecutionPlan {
                    model: "llmpq-serve".into(),
                    cluster: "in-process".into(),
                    stages: vec![
                        StagePlan {
                            device: 0,
                            layer_start: 0,
                            layer_end: cut,
                            bits: vec![*b; cut],
                        },
                        StagePlan {
                            device: 1,
                            layer_start: cut,
                            layer_end: n_layers,
                            bits: vec![*b; n_layers - cut],
                        },
                    ],
                    microbatch: MicrobatchPlan {
                        prefill_size: 1,
                        prefill_count: 1,
                        decode_size: 1,
                        decode_count: 1,
                    },
                    scheme: "LLM-PQ".into(),
                    kv_bits: 16,
                })
                .collect();
            let e = DistStepEngine::over_channels(
                &checkpoint,
                plans,
                Rounding::Deterministic,
                p.seed,
                DistServeConfig { n_slots: p.slots, pool: p.pool, ..DistServeConfig::default() },
                None,
            )?;
            Ok((Engine::Dist(Box::new(e)), vocab))
        }
        other => Err(format!("unknown engine '{other}' (sim|model|dist)")),
    }
}

fn scheduler_cfg(args: &Args) -> Result<ContinuousConfig, String> {
    let policy: PhasePolicy = args
        .get("policy")
        .unwrap_or("decode-first")
        .parse()
        .map_err(|e: String| e)?;
    let admission: AdmissionPolicy = args
        .get("admission")
        .unwrap_or("reject")
        .parse()
        .map_err(|e: String| e)?;
    let deadline_ms = args.get_parse("deadline-ms", 0u64).map_err(|e| e.to_string())?;
    Ok(ContinuousConfig {
        admission: AdmissionConfig {
            policy: admission,
            max_queue: args.get_parse("max-queue", 256usize).map_err(|e| e.to_string())?,
            default_deadline_s: (deadline_ms > 0).then_some(deadline_ms as f64 / 1000.0),
            queue_timeout_s: args.get_parse("queue-timeout-s", 1.0f64).map_err(|e| e.to_string())?,
        },
        token_budget: args.get_parse("token-budget", 256usize).map_err(|e| e.to_string())?,
        max_batch: args.get_parse("max-batch", 32usize).map_err(|e| e.to_string())?,
        prefill_chunk: args.get_parse("prefill-chunk", 64usize).map_err(|e| e.to_string())?,
        policy,
        degradation: args.switch("degrade").then(Default::default),
        swaps: {
            let at = args.get_parse("swap-at", 0u64).map_err(|e| e.to_string())?;
            let rung = args.get_parse("swap-rung", 1usize).map_err(|e| e.to_string())?;
            (at > 0).then_some(RungSwap { at_iteration: at, rung }).into_iter().collect()
        },
    })
}

/// Deterministic prompt tokens for a sampled arrival (the trace only
/// fixes lengths; tokens come from a seeded hash so reruns match).
fn fill_prompt(i: usize, len: usize, vocab: usize, seed: u64) -> Vec<usize> {
    let mut x = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % vocab as u64) as usize
        })
        .collect()
}

fn sharegpt_trace(
    n: usize,
    rate: f64,
    seed: u64,
    vocab: usize,
    max_seq: usize,
    deadline_ms: u64,
    duration_s: Option<f64>,
) -> Result<Vec<Request>, String> {
    let cfg = OnlineConfig {
        arrival_rate: rate,
        n_requests: n,
        n_generate: (4, 24),
        seed,
        ..OnlineConfig::default()
    };
    let model = PromptLengthModel::default();
    // A window that holds zero arrivals is a typed OnlineError — the
    // drive mode surfaces it instead of serving an empty trace.
    let arrivals = match duration_s {
        Some(d) => sample_arrivals_for_duration(&cfg, &model, d),
        None => sample_arrivals(&cfg, &model),
    }
    .map_err(|e| e.to_string())?;
    Ok(arrivals
        .iter()
        .enumerate()
        .map(|(i, a)| {
            // Clamp into the engine context so length dispersion stresses
            // the scheduler, not the feasibility check.
            let plen = a.prompt_len.min(max_seq.saturating_sub(a.n_generate + 1)).max(1);
            Request {
                id: i,
                arrival_s: a.arrival_s,
                prompt: fill_prompt(i, plen, vocab, seed),
                n_generate: a.n_generate,
                deadline_s: (deadline_ms > 0)
                    .then(|| a.arrival_s + deadline_ms as f64 / 1000.0),
                priority: a.priority,
            }
        })
        .collect())
}

fn report_json(mut r: ContinuousReport, keep_outputs: bool) -> String {
    if !keep_outputs {
        r.outputs.clear();
    }
    serde_json::to_string_pretty(&r).unwrap_or_else(|e| format!("{{\"error\":{e:?}}}"))
}

fn run_drive(args: &Args, cfg: ContinuousConfig, params: &EngineParams) -> Result<ExitCode, String> {
    let n = args.get_parse("requests", 2000usize).map_err(|e| e.to_string())?;
    let rate = args.get_parse("rate", 200.0f64).map_err(|e| e.to_string())?;
    let prompt_len = args.get_parse("prompt-len", 24usize).map_err(|e| e.to_string())?;
    let gen = args.get_parse("gen", 8usize).map_err(|e| e.to_string())?;
    let deadline_ms = args.get_parse("deadline-ms", 0u64).map_err(|e| e.to_string())?;
    let duration = args.get_parse("duration", 0.0f64).map_err(|e| e.to_string())?;
    let duration_s = (duration != 0.0).then_some(duration);
    let trace_kind = args.get("workload").unwrap_or("poisson");
    let (engine, vocab) = build_engine(params)?;
    let max_seq = match &engine {
        Engine::Sim(e) => e.max_seq(),
        Engine::Model(e) => e.max_seq(),
        Engine::Dist(e) => e.max_seq(),
    };
    let mut requests = match trace_kind {
        "poisson" => {
            if duration_s.is_some() {
                return Err("--duration requires --workload sharegpt".into());
            }
            let mut reqs = poisson_requests(n, rate, prompt_len, gen, params.seed)?;
            if deadline_ms > 0 {
                for r in &mut reqs {
                    r.deadline_s = Some(r.arrival_s + deadline_ms as f64 / 1000.0);
                }
            }
            reqs
        }
        "sharegpt" => {
            sharegpt_trace(n, rate, params.seed, vocab, max_seq, deadline_ms, duration_s)?
        }
        other => return Err(format!("unknown workload '{other}' (poisson|sharegpt)")),
    };
    for r in &mut requests {
        for t in &mut r.prompt {
            *t %= vocab.max(1);
        }
    }
    let keep = args.switch("keep-outputs");
    let report = match engine {
        Engine::Sim(e) => serve_continuous(e, &requests, cfg.clone(), None)?,
        Engine::Model(e) => serve_continuous(e, &requests, cfg.clone(), None)?,
        Engine::Dist(e) => serve_continuous(e, &requests, cfg.clone(), None)?,
    };
    let conserves = report.conserves();
    if !args.switch("compare-static") {
        println!("{}", report_json(report, keep));
        return Ok(if conserves { ExitCode::SUCCESS } else { ExitCode::from(1) });
    }
    let batch_size = args.get_parse("batch-size", 8usize).map_err(|e| e.to_string())?;
    let max_wait = args.get_parse("max-wait-s", 0.5f64).map_err(|e| e.to_string())?;
    let (engine2, _) = build_engine(params)?;
    let baseline = match engine2 {
        Engine::Sim(e) => serve_static(e, &requests, cfg, batch_size, max_wait)?,
        Engine::Model(e) => serve_static(e, &requests, cfg, batch_size, max_wait)?,
        Engine::Dist(e) => serve_static(e, &requests, cfg, batch_size, max_wait)?,
    };
    let both_ok = conserves && baseline.conserves();
    println!(
        "{{\n\"continuous\": {},\n\"static\": {}\n}}",
        report_json(report, keep),
        report_json(baseline, keep)
    );
    Ok(if both_ok { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn run_serve(args: &Args, cfg: ContinuousConfig, params: &EngineParams) -> Result<ExitCode, String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080");
    let deadline_ms = args.get_parse("deadline-ms", 0u64).map_err(|e| e.to_string())?;
    let (engine, vocab) = build_engine(params)?;
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let http_cfg = HttpServerConfig {
        vocab,
        max_tokens_cap: args.get_parse("max-tokens-cap", 256usize).map_err(|e| e.to_string())?,
        default_deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
        ..HttpServerConfig::default()
    };
    let telemetry = Telemetry::new(0);
    match engine {
        Engine::Sim(e) => {
            llmpq_runtime::run_http_server(listener, e, cfg, http_cfg, telemetry, real_clock())?
        }
        Engine::Model(e) => {
            llmpq_runtime::run_http_server(listener, e, cfg, http_cfg, telemetry, real_clock())?
        }
        Engine::Dist(e) => {
            llmpq_runtime::run_http_server(listener, e, cfg, http_cfg, telemetry, real_clock())?
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// A 429/503 answer must tell the client when to come back; a missing
/// or unparseable `Retry-After` counts against the soak.
fn retry_after_ok(resp: &str) -> bool {
    resp.lines()
        .find(|l| l.to_ascii_lowercase().starts_with("retry-after:"))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .is_some()
}

fn soak_client(
    addr: std::net::SocketAddr,
    client: usize,
    per_client: usize,
    vocab: usize,
    answered: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
    bad_retry: Arc<AtomicU64>,
) -> Vec<u16> {
    let mut codes = Vec::with_capacity(per_client);
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => {
            dropped.fetch_add(per_client as u64, Ordering::Relaxed);
            return codes;
        }
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    for i in 0..per_client {
        let tok = (client * 31 + i * 7) % vocab.max(1);
        let body = format!("{{\"prompt\":[{tok}],\"max_tokens\":4,\"priority\":{}}}", i % 4);
        let raw = format!(
            "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        if stream.write_all(raw.as_bytes()).is_err() {
            dropped.fetch_add((per_client - i) as u64, Ordering::Relaxed);
            return codes;
        }
        // Read one full response (headers + Content-Length body).
        let mut resp = String::new();
        let mut buf = [0u8; 4096];
        let code = loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break None,
                Ok(n) => {
                    resp.push_str(&String::from_utf8_lossy(&buf[..n]));
                    if let Some(done) = body_complete(&resp) {
                        if done {
                            break resp
                                .split_whitespace()
                                .nth(1)
                                .and_then(|c| c.parse::<u16>().ok());
                        }
                    }
                }
            }
        };
        match code {
            Some(c) => {
                answered.fetch_add(1, Ordering::Relaxed);
                if (c == 429 || c == 503) && !retry_after_ok(&resp) {
                    bad_retry.fetch_add(1, Ordering::Relaxed);
                }
                codes.push(c);
            }
            None => {
                dropped.fetch_add((per_client - i) as u64, Ordering::Relaxed);
                return codes;
            }
        }
    }
    codes
}

fn body_complete(resp: &str) -> Option<bool> {
    let head_end = resp.find("\r\n\r\n")?;
    let len = resp[..head_end]
        .lines()
        .find(|l| l.to_ascii_lowercase().starts_with("content-length:"))?
        .split(':')
        .nth(1)?
        .trim()
        .parse::<usize>()
        .ok()?;
    Some(resp.len() >= head_end + 4 + len)
}

fn run_soak(args: &Args, cfg: ContinuousConfig, params: &EngineParams) -> Result<ExitCode, String> {
    let clients = args.get_parse("clients", 16usize).map_err(|e| e.to_string())?;
    let per_client = args.get_parse("per-client", 25usize).map_err(|e| e.to_string())?;
    let (engine, vocab) = build_engine(params)?;
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let http_cfg = HttpServerConfig { vocab, ..HttpServerConfig::default() };
    let telemetry = Telemetry::new(0);
    let server = match engine {
        Engine::Sim(e) => llmpq_runtime::HttpServer::start(
            listener, e, cfg, http_cfg, telemetry, real_clock(),
        )?,
        Engine::Model(e) => llmpq_runtime::HttpServer::start(
            listener, e, cfg, http_cfg, telemetry, real_clock(),
        )?,
        Engine::Dist(e) => llmpq_runtime::HttpServer::start(
            listener, e, cfg, http_cfg, telemetry, real_clock(),
        )?,
    };
    let addr = server.addr;
    let answered = Arc::new(AtomicU64::new(0));
    let client_dropped = Arc::new(AtomicU64::new(0));
    let bad_retry = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let (a, d, b) = (answered.clone(), client_dropped.clone(), bad_retry.clone());
            std::thread::spawn(move || soak_client(addr, c, per_client, vocab, a, d, b))
        })
        .collect();
    let mut codes: Vec<u16> = Vec::new();
    for t in threads {
        codes.extend(t.join().map_err(|_| "client thread panicked".to_string())?);
    }
    let server_dropped = server.stats().dropped.load(Ordering::Relaxed);
    let report = server.shutdown()?;
    let total = (clients * per_client) as u64;
    let got = answered.load(Ordering::Relaxed);
    let lost = client_dropped.load(Ordering::Relaxed);
    let count = |code: u16| codes.iter().filter(|c| **c == code).count();
    let no_retry = bad_retry.load(Ordering::Relaxed);
    let ok = report.conserves()
        && server_dropped == 0
        && lost == 0
        && got == total
        && no_retry == 0;
    println!(
        "{{\"offered\":{},\"answered\":{got},\"expected\":{total},\"dropped_server\":{server_dropped},\"dropped_client\":{lost},\"retry_after_missing\":{no_retry},\"status_200\":{},\"status_429\":{},\"status_504\":{},\"completed\":{},\"shed\":{},\"expired\":{},\"preemptions\":{},\"conserves\":{},\"ok\":{ok}}}",
        report.stats.offered,
        count(200),
        count(429),
        count(504),
        report.completed,
        report.stats.shed,
        report.stats.expired,
        report.preemptions,
        report.conserves(),
    );
    Ok(if ok { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => return fail(&e.to_string()),
    };
    if args.switch("help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let params = EngineParams {
        kind: args.get("engine").unwrap_or("sim").to_string(),
        rungs: get!(args, "rungs", 3usize),
        pool: KvPoolConfig {
            n_blocks: get!(args, "blocks", 4096usize),
            block_tokens: get!(args, "block-tokens", 16usize),
        },
        vocab: get!(args, "vocab", 97usize),
        seed: get!(args, "seed", 42u64),
        slots: get!(args, "max-batch", 32usize),
        mem_budget_mb: get!(args, "mem-budget-mb", 0usize),
    };
    let cfg = match scheduler_cfg(&args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let mode = args.get("mode").unwrap_or("drive");
    let out = match mode {
        "drive" => run_drive(&args, cfg, &params),
        "serve" => run_serve(&args, cfg, &params),
        "soak" => run_soak(&args, cfg, &params),
        other => Err(format!("unknown mode '{other}' (serve|drive|soak)")),
    };
    match out {
        Ok(code) => code,
        Err(e) => fail(&e),
    }
}
