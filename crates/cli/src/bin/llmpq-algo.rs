//! `llmpq-algo`: the paper's plan-generation entry point (§5).
//!
//! ```text
//! llmpq-algo --model-name opt --model_size 30b --cluster 3 \
//!     --global_bz 32 --s 512 --n 100 --theta 1 --group 2 \
//!     [--shaq-efficient] [--fit | --use_profiler_prediction] [--kv8] \
//!     [-o strategy.json]
//! ```
//!
//! Either `--cluster <1..11>` (Table 3) or `--device-names`/
//! `--device-numbers` describe the hardware. Prints the plan summary and
//! writes the strategy file for `llmpq-dist`.

use llm_pq::{assign, AssignerConfig, SolverChoice};
use llmpq_cli::Args;
use llmpq_cluster::{paper_cluster, Cluster, GpuModel, Interconnect};
use llmpq_cost::{CostDb, ProfilerConfig};
use llmpq_model::zoo;
use llmpq_quant::{calibrate, variance_indicator, Rounding};
use llmpq_model::{RefConfig, RefModel};
use llmpq_sim::KernelEnv;
use llmpq_workload::BatchJob;

const USAGE: &str = "usage: llmpq-algo --model-name <opt|bloom> --model_size <13b|30b|66b|176b|...>
    (--cluster <1..11> | --cluster_file spec.json | --device-names <T4 V100 ...> --device-numbers <k1 k2 ...>)
    [--global_bz 32] [--s 512] [--n 100] [--theta 1.0] [--group 1]
    [--shaq-efficient] [--fit | --use_profiler_prediction] [--kv8]
    [--omega_file indicator.json] [-o strategy.json]";

fn gpu_by_name(name: &str) -> Option<GpuModel> {
    let n = name.to_ascii_uppercase();
    GpuModel::ALL
        .into_iter()
        .find(|g| g.spec().name.to_ascii_uppercase().starts_with(&n))
}

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.switch("help") {
        println!("{USAGE}");
        return;
    }
    match run(&args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(1);
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    // --- Model ---
    let family = args.required("model-name").map_err(|e| e.to_string())?;
    let size = args.required("model_size").map_err(|e| e.to_string())?;
    let model_id = format!("{family}-{size}");
    let spec = zoo::by_name(&model_id).ok_or(format!("unknown model '{model_id}'"))?;

    // --- Cluster ---
    let cluster: Cluster = if let Some(path) = args.get("cluster_file") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        llmpq_cluster::ClusterSpec::from_json(&text)?.to_cluster()?
    } else if let Some(c) = args.get("cluster") {
        let n: usize = c.parse().map_err(|_| format!("bad cluster '{c}'"))?;
        if !(1..=11).contains(&n) {
            return Err(format!("cluster must be 1..11, got {n}"));
        }
        paper_cluster(n)
    } else {
        let names = args.get_all("device-names");
        let numbers = args.get_all("device-numbers");
        if names.is_empty() || names.len() != numbers.len() {
            return Err("--device-names and --device-numbers must match".into());
        }
        let mut groups = Vec::new();
        for (name, num) in names.iter().zip(numbers) {
            let gpu = gpu_by_name(name).ok_or(format!("unknown device '{name}'"))?;
            let k: usize = num.parse().map_err(|_| format!("bad device count '{num}'"))?;
            groups.push((gpu, k));
        }
        Cluster::from_groups("custom", &groups, Interconnect::Ethernet100G, None)
    };

    // --- Workload ---
    let job = BatchJob {
        global_batch: args.get_parse("global_bz", 32usize).map_err(|e| e.to_string())?,
        prompt_len: args.get_parse("s", 512usize).map_err(|e| e.to_string())?,
        n_generate: args.get_parse("n", 100usize).map_err(|e| e.to_string())?,
    };

    // --- Assigner config ---
    let theta: f64 = args.get_parse("theta", 1.0).map_err(|e| e.to_string())?;
    let group: usize = args.get_parse("group", 2usize).map_err(|e| e.to_string())?;
    let solver = if args.switch("shaq-efficient") {
        SolverChoice::Heuristic
    } else {
        SolverChoice::Dp { group }
    };
    let cfg = AssignerConfig {
        theta,
        solver,
        search_kv8: args.switch("kv8"),
        max_bits: None,
        max_orderings: 6,
        dp_grid: Some(12),
        ..Default::default()
    };

    // --- Cost database: --fit trains the regression; the default
    //     (--use_profiler_prediction) queries the profiler directly. ---
    let env = KernelEnv::default();
    let db = if args.switch("fit") {
        let specs: Vec<_> = cluster.model_counts().iter().map(|(g, _)| g.spec()).collect();
        CostDb::fit(&specs, &env, &spec, &ProfilerConfig::default())
    } else {
        CostDb::oracle(&env)
    };

    // --- Indicator: from --omega_file or generated on the fly. ---
    let indicator = if let Some(path) = args.get("omega_file") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?
    } else {
        eprintln!("note: no --omega_file given; generating the variance indicator");
        let teacher = RefModel::new(RefConfig::scaled_like(spec.n_layers, 1));
        let calib: Vec<Vec<usize>> = (0..4)
            .map(|i| (0..32).map(|j| (i * 37 + j * 11) % teacher.cfg.vocab).collect())
            .collect();
        let report = calibrate(&teacher, &calib);
        variance_indicator(&teacher, &report, Rounding::Deterministic).normalized_budget(1.0)
    };

    // --- Solve ---
    let out = assign(&cluster, &spec, &job, &db, &indicator, &cfg)?;
    eprintln!(
        "plan: {} stages, {:.1} mean bits, kv{}, predicted {:.1} tok/s ({:.2}s/batch), solved in {:.2}s over {} combos",
        out.plan.stages.len(),
        out.report.mean_bits,
        out.plan.kv_bits,
        out.report.throughput,
        out.report.total_latency,
        out.overhead_s,
        out.combinations,
    );
    for (i, s) in out.plan.stages.iter().enumerate() {
        eprintln!(
            "  stage {i}: {} layers {}..{} ({})",
            cluster.devices[s.device].gpu,
            s.layer_start,
            s.layer_end,
            s.bits.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(",")
        );
    }
    let json = out.plan.to_json();
    match args.get("o") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("strategy written to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}
