//! # llmpq-cli
//!
//! Command-line entry points mirroring the paper's §5 interface:
//!
//! ```text
//! llmpq-algo --model-name opt --model-size 30b \
//!     --cluster 3                # or --device-names T4 V100 --device-numbers 3 1
//!     --global_bz 32 --s 512 --n 100 \
//!     --theta 1 --group 2 --shaq-efficient \
//!     --fit                      # or --use_profiler_prediction
//!     -o strategy.json
//!
//! llmpq-dist --strat_file_name strategy.json --n-generate 16
//! ```
//!
//! `llmpq-algo` produces the strategy file; `llmpq-dist` executes one on
//! the in-process pipeline runtime with a scaled stand-in checkpoint.

pub mod args;

pub use args::{ArgError, Args};
