//! A small dependency-free `--flag value` argument parser.

use std::collections::BTreeMap;

/// Argument-parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A flag that expects a value appeared last.
    MissingValue(String),
    /// A value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending text.
        value: String,
    },
    /// A required flag was absent.
    Required(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "flag --{k} expects a value"),
            ArgError::BadValue { flag, value } => write!(f, "bad value '{value}' for --{flag}"),
            ArgError::Required(k) => write!(f, "missing required flag --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed arguments: `--key value...` pairs (multi-valued) and bare
/// `--switch` flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    values: BTreeMap<String, Vec<String>>,
    switches: Vec<String>,
}

/// Flags that take no value (everything else consumes the following
/// non-flag tokens).
const SWITCHES: &[&str] = &[
    "shaq-efficient",
    "fit",
    "use_profiler_prediction",
    "no_auto",
    "kv8",
    "help",
    "inject-bug",
    "trace",
    "migrations",
    "serving",
    "elastic",
    "no-swaps",
    "compare-static",
    "keep-outputs",
    "degrade",
];

impl Args {
    /// Parse a token stream (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let toks: Vec<String> = tokens.into_iter().collect();
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            let key = t.trim_start_matches('-').to_string();
            if !t.starts_with('-') {
                return Err(ArgError::BadValue { flag: "<positional>".into(), value: t.clone() });
            }
            if SWITCHES.contains(&key.as_str()) {
                out.switches.push(key);
                i += 1;
                continue;
            }
            // Consume one or more values until the next flag. A token
            // starting with '-' counts as a flag unless it is a negative
            // number.
            let is_flag = |t: &str| {
                t.starts_with('-')
                    && !t[1..].chars().next().is_some_and(|c| c.is_ascii_digit() || c == '.')
            };
            let mut vals = Vec::new();
            let mut j = i + 1;
            while j < toks.len() && !is_flag(&toks[j]) {
                vals.push(toks[j].clone());
                j += 1;
            }
            if vals.is_empty() {
                return Err(ArgError::MissingValue(key));
            }
            out.values.entry(key).or_default().extend(vals);
            i = j;
        }
        Ok(out)
    }

    /// Whether a bare switch was present.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// First value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).and_then(|v| v.first()).map(String::as_str)
    }

    /// All values of a flag.
    pub fn get_all(&self, name: &str) -> &[String] {
        self.values.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Required string flag.
    pub fn required(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name).ok_or_else(|| ArgError::Required(name.into()))
    }

    /// Typed flag with default.
    pub fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue { flag: name.into(), value: v.into() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn parses_paper_style_command_line() {
        let a = parse(
            "--model-name opt --model_size 30b --device-names T4 V100 --device-numbers 3 1 \
             --global_bz 32 --s 512 --n 100 --theta 1 --group 2 --shaq-efficient --fit",
        )
        .unwrap();
        assert_eq!(a.get("model-name"), Some("opt"));
        assert_eq!(a.get_all("device-names"), &["T4".to_string(), "V100".to_string()]);
        assert_eq!(a.get_all("device-numbers"), &["3".to_string(), "1".to_string()]);
        assert_eq!(a.get_parse("global_bz", 0usize).unwrap(), 32);
        assert_eq!(a.get_parse("theta", 0.0f64).unwrap(), 1.0);
        assert!(a.switch("shaq-efficient"));
        assert!(a.switch("fit"));
        assert!(!a.switch("use_profiler_prediction"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(parse("--s").unwrap_err(), ArgError::MissingValue("s".into()));
    }

    #[test]
    fn required_flag_reported() {
        let a = parse("--s 512").unwrap();
        assert!(matches!(a.required("model-name"), Err(ArgError::Required(_))));
        assert_eq!(a.required("s").unwrap(), "512");
    }

    #[test]
    fn bad_typed_value_reported() {
        let a = parse("--s twelve").unwrap();
        assert!(matches!(a.get_parse("s", 0usize), Err(ArgError::BadValue { .. })));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("--s 512").unwrap();
        assert_eq!(a.get_parse("n", 100usize).unwrap(), 100);
    }

    #[test]
    fn positional_tokens_rejected() {
        assert!(parse("oops --s 512").is_err());
    }
}
