//! Dense two-phase primal simplex.
//!
//! Solves `min cᵀx  s.t.  Ax {≤,=,≥} b,  0 ≤ x ≤ u` with a classic
//! tableau implementation: upper bounds become explicit rows, phase 1
//! drives artificial variables out of the basis, phase 2 optimizes the
//! real objective. Bland's rule breaks ties, guaranteeing termination.
//!
//! Built for the assigner's MILP relaxations (hundreds of variables /
//! constraints), not for industrial scale — clarity and correctness over
//! sparsity tricks.

use serde::{Deserialize, Serialize};

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// A sparse linear constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs.
    pub coeffs: Vec<(usize, f64)>,
    /// Comparison operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// `Σ coeffs ≤ rhs`.
    pub fn le(coeffs: Vec<(usize, f64)>, rhs: f64) -> Self {
        Self { coeffs, op: ConstraintOp::Le, rhs }
    }

    /// `Σ coeffs = rhs`.
    pub fn eq(coeffs: Vec<(usize, f64)>, rhs: f64) -> Self {
        Self { coeffs, op: ConstraintOp::Eq, rhs }
    }

    /// `Σ coeffs ≥ rhs`.
    pub fn ge(coeffs: Vec<(usize, f64)>, rhs: f64) -> Self {
        Self { coeffs, op: ConstraintOp::Ge, rhs }
    }
}

/// A linear program: minimize `objective · x` subject to `constraints`,
/// with `x ≥ 0` and optional per-variable upper bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinProg {
    /// Number of decision variables.
    pub n_vars: usize,
    /// Objective coefficients (minimization).
    pub objective: Vec<f64>,
    /// Linear constraints.
    pub constraints: Vec<Constraint>,
    /// Optional upper bound per variable (`None` = unbounded above).
    pub upper_bounds: Vec<Option<f64>>,
}

impl LinProg {
    /// An LP with `n_vars` non-negative variables and the given
    /// minimization objective.
    pub fn minimize(objective: Vec<f64>) -> Self {
        let n = objective.len();
        Self { n_vars: n, objective, constraints: Vec::new(), upper_bounds: vec![None; n] }
    }

    /// Add a constraint (builder style).
    pub fn with(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// Set an upper bound on a variable.
    pub fn bound(mut self, var: usize, upper: f64) -> Self {
        self.upper_bounds[var] = Some(upper);
        self
    }
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Primal values.
    pub x: Vec<f64>,
    /// Objective value.
    pub objective: f64,
}

/// LP solve outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LpResult {
    /// Optimum found.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
}

const EPS: f64 = 1e-9;

struct Tableau {
    /// rows × (n_total + 1); last column is RHS.
    a: Vec<Vec<f64>>,
    basis: Vec<usize>,
    n_total: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.a[row][col];
        debug_assert!(p.abs() > EPS);
        let inv = 1.0 / p;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.a[row].clone();
        for (r, arow) in self.a.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let f = arow[col];
            if f.abs() > EPS {
                for (v, pv) in arow.iter_mut().zip(pivot_row.iter()) {
                    *v -= f * pv;
                }
            }
        }
        self.basis[row] = col;
    }

    /// Primal simplex iterations on reduced costs `z` (length n_total+1,
    /// last entry = −objective). Returns false if unbounded.
    ///
    /// Pricing: Dantzig's rule (most negative reduced cost) for speed,
    /// falling back to Bland's rule after a run of degenerate pivots so
    /// termination stays guaranteed.
    fn optimize(&mut self, z: &mut [f64], allowed: &[bool]) -> bool {
        let mut degenerate_run = 0usize;
        const BLAND_AFTER: usize = 40;
        loop {
            let mut enter = None;
            if degenerate_run < BLAND_AFTER {
                // Dantzig: most negative reduced cost.
                let mut best = -EPS;
                for j in 0..self.n_total {
                    if allowed[j] && z[j] < best {
                        best = z[j];
                        enter = Some(j);
                    }
                }
            } else {
                // Bland: smallest index (anti-cycling).
                for j in 0..self.n_total {
                    if allowed[j] && z[j] < -EPS {
                        enter = Some(j);
                        break;
                    }
                }
            }
            let Some(col) = enter else { return true };
            // Ratio test, smallest basis index breaking ties.
            let mut leave: Option<(usize, f64)> = None;
            for (r, arow) in self.a.iter().enumerate() {
                if arow[col] > EPS {
                    let ratio = arow[self.n_total] / arow[col];
                    match leave {
                        None => leave = Some((r, ratio)),
                        Some((lr, lratio)) => {
                            if ratio < lratio - EPS
                                || (ratio < lratio + EPS && self.basis[r] < self.basis[lr])
                            {
                                leave = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, ratio)) = leave else { return false };
            if ratio.abs() <= EPS {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }
            self.pivot(row, col);
            // Update reduced-cost row.
            let f = z[col];
            for (zv, av) in z.iter_mut().zip(self.a[row].iter()) {
                *zv -= f * av;
            }
        }
    }
}

/// A normalized constraint row: `(coefficients, op, rhs)`.
type Row = (Vec<(usize, f64)>, ConstraintOp, f64);

/// Solve a linear program with the two-phase simplex.
#[allow(clippy::needless_range_loop)]
pub fn solve_lp(lp: &LinProg) -> LpResult {
    // Assemble rows: user constraints plus upper-bound rows.
    let mut rows: Vec<Row> = lp
        .constraints
        .iter()
        .map(|c| (c.coeffs.clone(), c.op, c.rhs))
        .collect();
    for (v, ub) in lp.upper_bounds.iter().enumerate() {
        if let Some(u) = ub {
            rows.push((vec![(v, 1.0)], ConstraintOp::Le, *u));
        }
    }

    let m = rows.len();
    let n = lp.n_vars;
    // Column layout: [vars | slacks/surplus | artificials]
    let mut n_slack = 0usize;
    for (_, op, _) in &rows {
        if *op != ConstraintOp::Eq {
            n_slack += 1;
        }
    }
    let mut n_art = 0usize;
    // Decide per-row artificial need after normalizing RHS sign.
    let n_total_guess = n + n_slack + m;
    let mut a = vec![vec![0.0f64; n_total_guess + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n;
    let mut art_cols: Vec<usize> = Vec::new();

    for (r, (coeffs, op, rhs)) in rows.iter().enumerate() {
        let mut rhs = *rhs;
        let mut sign = 1.0;
        if rhs < 0.0 {
            rhs = -rhs;
            sign = -1.0;
        }
        for &(v, c) in coeffs {
            assert!(v < n, "constraint references variable {v} out of range");
            a[r][v] += sign * c;
        }
        a[r][n_total_guess] = rhs;
        let op = match (op, sign < 0.0) {
            (ConstraintOp::Le, false) | (ConstraintOp::Ge, true) => ConstraintOp::Le,
            (ConstraintOp::Ge, false) | (ConstraintOp::Le, true) => ConstraintOp::Ge,
            (ConstraintOp::Eq, _) => ConstraintOp::Eq,
        };
        match op {
            ConstraintOp::Le => {
                a[r][slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            ConstraintOp::Ge => {
                a[r][slack_idx] = -1.0;
                slack_idx += 1;
                let art = n + n_slack + n_art;
                a[r][art] = 1.0;
                basis[r] = art;
                art_cols.push(art);
                n_art += 1;
            }
            ConstraintOp::Eq => {
                let art = n + n_slack + n_art;
                a[r][art] = 1.0;
                basis[r] = art;
                art_cols.push(art);
                n_art += 1;
            }
        }
    }
    let n_total = n + n_slack + n_art;
    // Shrink rows to actual width (artificial guess was m).
    for row in a.iter_mut() {
        let rhs = row[n_total_guess];
        row.truncate(n_total);
        row.push(rhs);
    }

    let mut t = Tableau { a, basis, n_total };

    // --- Phase 1: minimize sum of artificials ---
    if n_art > 0 {
        let mut z = vec![0.0f64; n_total + 1];
        for &c in &art_cols {
            z[c] = 1.0;
        }
        // Express z in terms of non-basic variables (price out basics).
        for (r, &b) in t.basis.iter().enumerate() {
            if z[b].abs() > EPS {
                let f = z[b];
                for (zv, av) in z.iter_mut().zip(t.a[r].iter()) {
                    *zv -= f * av;
                }
            }
        }
        let allowed = vec![true; n_total];
        let ok = t.optimize(&mut z, &allowed);
        debug_assert!(ok, "phase 1 cannot be unbounded");
        let phase1_obj = -z[n_total];
        if phase1_obj > 1e-7 {
            return LpResult::Infeasible;
        }
        // Drive any remaining artificial out of the basis.
        for r in 0..m {
            if art_cols.contains(&t.basis[r]) {
                let col = (0..n + n_slack).find(|&j| t.a[r][j].abs() > EPS);
                if let Some(c) = col {
                    t.pivot(r, c);
                }
                // If the whole row is zero it is redundant; leave it.
            }
        }
    }

    // --- Phase 2: minimize the real objective, artificials forbidden ---
    let mut z = vec![0.0f64; n_total + 1];
    for (j, &c) in lp.objective.iter().enumerate() {
        z[j] = c;
    }
    for (r, &b) in t.basis.iter().enumerate() {
        if z[b].abs() > EPS {
            let f = z[b];
            for (zv, av) in z.iter_mut().zip(t.a[r].iter()) {
                *zv -= f * av;
            }
        }
    }
    let mut allowed = vec![true; n_total];
    for &c in &art_cols {
        allowed[c] = false;
    }
    if !t.optimize(&mut z, &allowed) {
        return LpResult::Unbounded;
    }

    let mut x = vec![0.0f64; n];
    for (r, &b) in t.basis.iter().enumerate() {
        if b < n {
            x[b] = t.a[r][n_total];
        }
    }
    let objective = lp.objective.iter().zip(x.iter()).map(|(c, v)| c * v).sum();
    LpResult::Optimal(LpSolution { x, objective })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_opt(res: &LpResult, obj: f64) -> &LpSolution {
        match res {
            LpResult::Optimal(s) => {
                assert!((s.objective - obj).abs() < 1e-6, "objective {} != {obj}", s.objective);
                s
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), 36.
        let lp = LinProg::minimize(vec![-3.0, -5.0])
            .with(Constraint::le(vec![(0, 1.0)], 4.0))
            .with(Constraint::le(vec![(1, 2.0)], 12.0))
            .with(Constraint::le(vec![(0, 3.0), (1, 2.0)], 18.0));
        let s = solve_lp(&lp);
        let sol = assert_opt(&s, -36.0);
        assert!((sol.x[0] - 2.0).abs() < 1e-6);
        assert!((sol.x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + 2y s.t. x + y = 10, x ≥ 3 → (10−y…) optimum x=10,y=0? x≥3:
        // min at y=0, x=10 → 10. But check x≥3 active case: obj prefers x.
        let lp = LinProg::minimize(vec![1.0, 2.0])
            .with(Constraint::eq(vec![(0, 1.0), (1, 1.0)], 10.0))
            .with(Constraint::ge(vec![(0, 1.0)], 3.0));
        let sol = assert_opt(&solve_lp(&lp), 10.0).clone();
        assert!((sol.x[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let lp = LinProg::minimize(vec![1.0])
            .with(Constraint::ge(vec![(0, 1.0)], 5.0))
            .with(Constraint::le(vec![(0, 1.0)], 3.0));
        assert_eq!(solve_lp(&lp), LpResult::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let lp = LinProg::minimize(vec![-1.0]).with(Constraint::ge(vec![(0, 1.0)], 1.0));
        assert_eq!(solve_lp(&lp), LpResult::Unbounded);
    }

    #[test]
    fn upper_bounds_respected() {
        let lp = LinProg::minimize(vec![-1.0, -1.0])
            .bound(0, 2.5)
            .bound(1, 1.5)
            .with(Constraint::le(vec![(0, 1.0), (1, 1.0)], 10.0));
        let sol = assert_opt(&solve_lp(&lp), -4.0).clone();
        assert!((sol.x[0] - 2.5).abs() < 1e-6);
        assert!((sol.x[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x − y ≥ −2 with min x at y=0 → x=0 feasible (0 ≥ −2).
        let lp = LinProg::minimize(vec![1.0, 0.0])
            .with(Constraint::ge(vec![(0, 1.0), (1, -1.0)], -2.0));
        assert_opt(&solve_lp(&lp), 0.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic cycling candidate; Bland's rule must terminate.
        let lp = LinProg::minimize(vec![-0.75, 150.0, -0.02, 6.0])
            .with(Constraint::le(vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)], 0.0))
            .with(Constraint::le(vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)], 0.0))
            .with(Constraint::le(vec![(2, 1.0)], 1.0));
        match solve_lp(&lp) {
            LpResult::Optimal(s) => assert!((s.objective + 0.05).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transportation_structure() {
        // 2 sources (supply 3, 4) × 2 sinks (demand 5, 2), costs [[1,4],[2,1]].
        // Optimum: x00=3, x10=2, x11=2 → 3+4+2 = 9.
        let idx = |i: usize, j: usize| i * 2 + j;
        let lp = LinProg::minimize(vec![1.0, 4.0, 2.0, 1.0])
            .with(Constraint::le(vec![(idx(0, 0), 1.0), (idx(0, 1), 1.0)], 3.0))
            .with(Constraint::le(vec![(idx(1, 0), 1.0), (idx(1, 1), 1.0)], 4.0))
            .with(Constraint::eq(vec![(idx(0, 0), 1.0), (idx(1, 0), 1.0)], 5.0))
            .with(Constraint::eq(vec![(idx(0, 1), 1.0), (idx(1, 1), 1.0)], 2.0));
        assert_opt(&solve_lp(&lp), 9.0);
    }

    #[test]
    fn zero_variable_lp() {
        let lp = LinProg::minimize(vec![]);
        match solve_lp(&lp) {
            LpResult::Optimal(s) => assert_eq!(s.objective, 0.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn redundant_equalities_ok() {
        let lp = LinProg::minimize(vec![1.0, 1.0])
            .with(Constraint::eq(vec![(0, 1.0), (1, 1.0)], 4.0))
            .with(Constraint::eq(vec![(0, 2.0), (1, 2.0)], 8.0));
        assert_opt(&solve_lp(&lp), 4.0);
    }
}
