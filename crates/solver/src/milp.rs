//! Branch-and-bound mixed-integer linear programming.
//!
//! Depth-first branch and bound over the [`crate::simplex`] LP
//! relaxation: most-fractional branching, best-bound pruning against the
//! incumbent, and the node/wall-clock limits the paper applies to GUROBI
//! (60 s in Table 8). Integer variables must carry finite upper bounds
//! (they are binaries in the assigner's formulation).

use crate::simplex::{solve_lp, Constraint, LinProg, LpResult, LpSolution};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A MILP: an LP plus a set of integer-constrained variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MilpSpec {
    /// The relaxation.
    pub lp: LinProg,
    /// Indices of integer variables.
    pub integers: Vec<usize>,
}

/// Solver limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MilpConfig {
    /// Wall-clock limit, seconds.
    pub time_limit_s: f64,
    /// Maximum branch-and-bound nodes.
    pub max_nodes: usize,
    /// Accept incumbents within this relative gap of the best bound.
    pub rel_gap: f64,
}

impl Default for MilpConfig {
    fn default() -> Self {
        Self { time_limit_s: 60.0, max_nodes: 200_000, rel_gap: 1e-6 }
    }
}

/// Solve outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MilpResult {
    /// Proven optimal.
    Optimal(LpSolution),
    /// Limits hit; best incumbent returned with the proven lower bound.
    Feasible {
        /// Best integer solution found.
        best: LpSolution,
        /// Proven lower bound on the optimum.
        bound: f64,
    },
    /// No integer-feasible point.
    Infeasible,
    /// Limits hit with no incumbent.
    Unknown,
}

impl MilpResult {
    /// The incumbent solution, if any.
    pub fn solution(&self) -> Option<&LpSolution> {
        match self {
            MilpResult::Optimal(s) => Some(s),
            MilpResult::Feasible { best, .. } => Some(best),
            _ => None,
        }
    }
}

const INT_EPS: f64 = 1e-6;

fn most_fractional(x: &[f64], integers: &[usize]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64)> = None; // (var, value, dist)
    for &v in integers {
        let val = x[v];
        let frac = (val - val.round()).abs();
        if frac > INT_EPS {
            let dist = (val - val.floor() - 0.5).abs(); // 0 = most fractional
            match best {
                None => best = Some((v, val, dist)),
                Some((_, _, bd)) if dist < bd => best = Some((v, val, dist)),
                _ => {}
            }
        }
    }
    best.map(|(v, val, _)| (v, val))
}

/// Solve a MILP by branch and bound.
pub fn solve_milp(spec: &MilpSpec, cfg: &MilpConfig) -> MilpResult {
    let start = Instant::now();
    let mut incumbent: Option<LpSolution> = None;
    let mut nodes_explored = 0usize;
    let mut exhausted = true;
    // Stack of subproblems (DFS). Each node owns its LP copy with the
    // branching constraints applied.
    let mut stack = vec![spec.lp.clone()];
    let mut global_bound = f64::NEG_INFINITY;
    let mut root_bound: Option<f64> = None;

    while let Some(lp) = stack.pop() {
        if start.elapsed().as_secs_f64() > cfg.time_limit_s || nodes_explored >= cfg.max_nodes {
            exhausted = false;
            break;
        }
        nodes_explored += 1;
        let relax = match solve_lp(&lp) {
            LpResult::Optimal(s) => s,
            LpResult::Infeasible => continue,
            LpResult::Unbounded => {
                // Unbounded relaxation at the root means an unbounded or
                // ill-posed MILP; deeper nodes inherit the issue.
                return MilpResult::Unknown;
            }
        };
        if root_bound.is_none() {
            root_bound = Some(relax.objective);
            global_bound = relax.objective;
        }
        // Prune by bound.
        if let Some(inc) = &incumbent {
            if relax.objective >= inc.objective - cfg.rel_gap * inc.objective.abs().max(1.0) {
                continue;
            }
        }
        match most_fractional(&relax.x, &spec.integers) {
            None => {
                // Integer feasible.
                let mut sol = relax;
                for &v in &spec.integers {
                    sol.x[v] = sol.x[v].round();
                }
                if incumbent.as_ref().is_none_or(|i| sol.objective < i.objective) {
                    incumbent = Some(sol);
                }
            }
            Some((var, val)) => {
                // Branch: x ≤ floor, x ≥ ceil. Push the "down" branch
                // last so DFS dives toward smaller values first (binaries
                // often want 0).
                let mut up = lp.clone();
                up.constraints.push(Constraint::ge(vec![(var, 1.0)], val.ceil()));
                stack.push(up);
                let mut down = lp;
                down.constraints.push(Constraint::le(vec![(var, 1.0)], val.floor()));
                stack.push(down);
            }
        }
    }

    match (incumbent, exhausted) {
        (Some(best), true) => MilpResult::Optimal(best),
        (Some(best), false) => MilpResult::Feasible { best, bound: global_bound },
        (None, true) => MilpResult::Infeasible,
        (None, false) => MilpResult::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::LinProg;

    fn cfg() -> MilpConfig {
        MilpConfig::default()
    }

    #[test]
    fn integer_knapsack() {
        // max 10a + 6b + 4c s.t. a+b+c ≤ 2, binaries → a,b → 16.
        let lp = LinProg::minimize(vec![-10.0, -6.0, -4.0])
            .bound(0, 1.0)
            .bound(1, 1.0)
            .bound(2, 1.0)
            .with(Constraint::le(vec![(0, 1.0), (1, 1.0), (2, 1.0)], 2.0));
        let spec = MilpSpec { lp, integers: vec![0, 1, 2] };
        match solve_milp(&spec, &cfg()) {
            MilpResult::Optimal(s) => {
                assert!((s.objective + 16.0).abs() < 1e-6);
                assert!((s.x[0] - 1.0).abs() < 1e-6);
                assert!((s.x[1] - 1.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fractional_relaxation_gets_branched() {
        // max 2x + y s.t. 3x + 2y ≤ 4, binaries.
        // LP relaxation: x=1, y=0.5 → 2.5; integer optimum → 2.
        let lp = LinProg::minimize(vec![-2.0, -1.0])
            .bound(0, 1.0)
            .bound(1, 1.0)
            .with(Constraint::le(vec![(0, 3.0), (1, 2.0)], 4.0));
        let spec = MilpSpec { lp, integers: vec![0, 1] };
        match solve_milp(&spec, &cfg()) {
            MilpResult::Optimal(s) => assert!((s.objective + 2.0).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infeasible_milp() {
        // 0.4 ≤ x ≤ 0.6 admits no integer.
        let lp = LinProg::minimize(vec![1.0])
            .bound(0, 1.0)
            .with(Constraint::ge(vec![(0, 1.0)], 0.4))
            .with(Constraint::le(vec![(0, 1.0)], 0.6));
        let spec = MilpSpec { lp, integers: vec![0] };
        assert_eq!(solve_milp(&spec, &cfg()), MilpResult::Infeasible);
    }

    #[test]
    fn assignment_with_one_hot_rows() {
        // 3 items × 2 bins, each item to exactly one bin, bin capacity 2,
        // costs chosen so the optimum is forced — the shape of the
        // assigner's z[i,j,b] formulation in miniature.
        let idx = |i: usize, j: usize| i * 2 + j;
        let costs = vec![1.0, 5.0, 5.0, 1.0, 1.0, 5.0];
        let mut lp = LinProg::minimize(costs);
        for v in 0..6 {
            lp = lp.bound(v, 1.0);
        }
        for i in 0..3 {
            lp = lp.with(Constraint::eq(vec![(idx(i, 0), 1.0), (idx(i, 1), 1.0)], 1.0));
        }
        for j in 0..2 {
            lp = lp.with(Constraint::le((0..3).map(|i| (idx(i, j), 1.0)).collect(), 2.0));
        }
        let spec = MilpSpec { lp, integers: (0..6).collect() };
        match solve_milp(&spec, &cfg()) {
            MilpResult::Optimal(s) => {
                assert!((s.objective - 3.0).abs() < 1e-6);
                assert!((s.x[idx(0, 0)] - 1.0).abs() < 1e-6);
                assert!((s.x[idx(1, 1)] - 1.0).abs() < 1e-6);
                assert!((s.x[idx(2, 0)] - 1.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let n = 12;
        let values: Vec<f64> = (0..n).map(|i| -((i % 5 + 1) as f64)).collect();
        let mut lp = LinProg::minimize(values);
        for v in 0..n {
            lp = lp.bound(v, 1.0);
        }
        lp = lp.with(Constraint::le((0..n).map(|i| (i, (i % 3 + 1) as f64)).collect(), 6.0));
        let spec = MilpSpec { lp, integers: (0..n).collect() };
        let res = solve_milp(&spec, &MilpConfig { max_nodes: 1, ..cfg() });
        assert!(matches!(res, MilpResult::Feasible { .. } | MilpResult::Unknown));
    }

    #[test]
    fn continuous_variables_stay_continuous() {
        // min −x − 10y, y binary, x ≤ 1.5 continuous, x + y ≤ 2.
        let lp = LinProg::minimize(vec![-1.0, -10.0])
            .bound(0, 1.5)
            .bound(1, 1.0)
            .with(Constraint::le(vec![(0, 1.0), (1, 1.0)], 2.0));
        let spec = MilpSpec { lp, integers: vec![1] };
        match solve_milp(&spec, &cfg()) {
            MilpResult::Optimal(s) => {
                assert!((s.x[1] - 1.0).abs() < 1e-6);
                assert!((s.x[0] - 1.0).abs() < 1e-6);
                assert!((s.objective + 11.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bound_tracks_optimum() {
        let lp = LinProg::minimize(vec![-3.0, -2.0])
            .bound(0, 1.0)
            .bound(1, 1.0)
            .with(Constraint::le(vec![(0, 2.0), (1, 2.0)], 3.0));
        let spec = MilpSpec { lp, integers: vec![0, 1] };
        match solve_milp(&spec, &cfg()) {
            MilpResult::Optimal(s) => assert!((s.objective + 3.0).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }
}
