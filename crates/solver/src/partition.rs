//! Exact DP solver for pipeline partition + bitwidth assignment.
//!
//! The assigner's inner problem (paper eq. 4–16): place `L` contiguous
//! layer groups onto `N` ordered devices and pick a quantization
//! precision, minimizing
//!
//! ```text
//! α_pre·T_max_pre + α_dec·T_max_dec + Σ_g lin_cost(g, device(g), bits(g))
//! ```
//!
//! subject to per-device memory capacities, where `T_max_phase` is the
//! largest per-stage time (compute + outgoing communication). The `α`
//! weights carry the micro-batch counts of the pipeline-latency formula
//! and `lin_cost` carries the per-layer latency sums and the θ-weighted
//! quality indicator.
//!
//! This solver is exact over the class of plans that use **one bitwidth
//! per stage** (mixed precision across stages, uniform within a stage).
//! The paper's per-layer mixing inside a stage is recovered afterwards by
//! the bitwidth-transfer refinement (Algorithm 2, in `llm-pq`); the
//! branch-and-bound MILP covers full per-layer mixing for small/grouped
//! instances. Strategy: enumerate a candidate grid of
//! `(T_max_pre, T_max_dec)` bounds drawn from the achievable stage times
//! and run an `O(N·L²·B)` feasibility DP per candidate pair.

use serde::{Deserialize, Serialize};

/// Problem instance. All tensors are flattened `[g][j][b]` row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionProblem {
    /// Number of contiguous layer groups `L`.
    pub n_groups: usize,
    /// Number of ordered devices `N`.
    pub n_devices: usize,
    /// Number of candidate bitwidths `B`.
    pub n_bits: usize,
    /// Prefill-time contribution of group `g` on device `j` at bits `b`.
    pub pre_time: Vec<f64>,
    /// Decode-time contribution.
    pub dec_time: Vec<f64>,
    /// Memory bytes of the group's weights + KV on that device.
    pub mem: Vec<f64>,
    /// Linear objective term (latency sums + θ·ω), same indexing.
    pub lin_cost: Vec<f64>,
    /// Memory capacity per device, bytes.
    pub capacity: Vec<f64>,
    /// Fixed memory per device if it hosts at least one group
    /// (framework overhead; embeddings on the master's device).
    pub fixed_mem: Vec<f64>,
    /// Outgoing-boundary communication added to a non-empty stage's
    /// prefill time.
    pub comm_pre: Vec<f64>,
    /// Same for decode.
    pub comm_dec: Vec<f64>,
    /// Weight on `T_max_pre` (e.g. `µ_pre − 1`).
    pub alpha_pre: f64,
    /// Weight on `T_max_dec` (e.g. `(n−1)·µ_dec − 1`).
    pub alpha_dec: f64,
    /// Whether a device may be left without layers.
    pub allow_empty_stages: bool,
    /// Candidate-grid size per phase; `None` = exhaustive (exact).
    pub grid: Option<usize>,
}

impl PartitionProblem {
    #[inline]
    fn idx(&self, g: usize, j: usize, b: usize) -> usize {
        (g * self.n_devices + j) * self.n_bits + b
    }
}

/// A solved plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSolution {
    /// Per group: `(device, bit index)`. Devices are non-decreasing.
    pub assignment: Vec<(usize, usize)>,
    /// Total objective value.
    pub objective: f64,
    /// Realized max prefill stage time (incl. comm).
    pub t_max_pre: f64,
    /// Realized max decode stage time (incl. comm).
    pub t_max_dec: f64,
    /// Realized per-stage prefill times (empty stages are 0).
    pub stage_pre: Vec<f64>,
    /// Realized per-stage decode times.
    pub stage_dec: Vec<f64>,
}

/// Prefix sums per (device, bits) for O(1) segment queries.
struct Prefix {
    pre: Vec<f64>,
    dec: Vec<f64>,
    mem: Vec<f64>,
    cost: Vec<f64>,
    n_groups: usize,
    n_bits: usize,
}

impl Prefix {
    fn build(p: &PartitionProblem) -> Vec<Prefix> {
        (0..p.n_devices)
            .map(|j| {
                let mut pre = vec![0.0; (p.n_groups + 1) * p.n_bits];
                let mut dec = pre.clone();
                let mut mem = pre.clone();
                let mut cost = pre.clone();
                for b in 0..p.n_bits {
                    for g in 0..p.n_groups {
                        let src = p.idx(g, j, b);
                        let dst = (g + 1) * p.n_bits + b;
                        let prev = g * p.n_bits + b;
                        pre[dst] = pre[prev] + p.pre_time[src];
                        dec[dst] = dec[prev] + p.dec_time[src];
                        mem[dst] = mem[prev] + p.mem[src];
                        cost[dst] = cost[prev] + p.lin_cost[src];
                    }
                }
                Prefix { pre, dec, mem, cost, n_groups: p.n_groups, n_bits: p.n_bits }
            })
            .collect()
    }

    #[inline]
    fn seg(&self, v: &[f64], g0: usize, g1: usize, b: usize) -> f64 {
        debug_assert!(g0 <= g1 && g1 <= self.n_groups);
        v[g1 * self.n_bits + b] - v[g0 * self.n_bits + b]
    }
}

/// Collect candidate `T` values per phase from achievable stage times.
fn candidates(p: &PartitionProblem, prefix: &[Prefix], decode: bool) -> Vec<f64> {
    let mut vals = Vec::new();
    for (j, pf) in prefix.iter().enumerate() {
        let comm = if decode { p.comm_dec[j] } else { p.comm_pre[j] };
        let v = if decode { &pf.dec } else { &pf.pre };
        for b in 0..p.n_bits {
            for g0 in 0..p.n_groups {
                for g1 in g0 + 1..=p.n_groups {
                    vals.push(pf.seg(v, g0, g1, b) + comm);
                }
            }
        }
    }
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    vals.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    if let Some(k) = p.grid {
        if vals.len() > k {
            // Quantile subsample, always keeping the extremes.
            let n = vals.len();
            let mut picked: Vec<f64> =
                (0..k).map(|i| vals[(i * (n - 1)) / (k - 1).max(1)]).collect();
            picked.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            return picked;
        }
    }
    vals
}

const INF: f64 = f64::INFINITY;

/// Solve the partition problem. Returns `None` when no feasible plan
/// exists (e.g. the model cannot fit even at the lowest precision).
pub fn solve_partition(p: &PartitionProblem) -> Option<PartitionSolution> {
    assert_eq!(p.pre_time.len(), p.n_groups * p.n_devices * p.n_bits);
    assert_eq!(p.dec_time.len(), p.pre_time.len());
    assert_eq!(p.mem.len(), p.pre_time.len());
    assert_eq!(p.lin_cost.len(), p.pre_time.len());
    assert_eq!(p.capacity.len(), p.n_devices);
    assert!(p.n_groups > 0 && p.n_devices > 0 && p.n_bits > 0);

    let prefix = Prefix::build(p);
    let tp_cands = candidates(p, &prefix, false);
    let td_cands = candidates(p, &prefix, true);

    let mut best: Option<PartitionSolution> = None;
    // Pruning: remember the best pure-linear cost seen per (tp, td) —
    // monotone: loosening bounds can only decrease the DP value. Iterate
    // tp ascending; for each tp iterate td ascending and stop early when
    // α-weighted bound already exceeds the incumbent.
    for &tp in &tp_cands {
        for &td in &td_cands {
            if let Some(b) = &best {
                // Lower bound on this candidate's objective: the α terms
                // alone (DP cost ≥ 0 is not guaranteed since lin_cost
                // could be 0, so use 0 as DP bound).
                if p.alpha_pre * tp + p.alpha_dec * td >= b.objective {
                    continue;
                }
            }
            if let Some(sol) = dp_for_bounds(p, &prefix, tp, td) {
                if best.as_ref().is_none_or(|b| sol.objective < b.objective) {
                    best = Some(sol);
                }
            }
        }
    }
    best
}

/// Feasibility DP for fixed stage-time bounds. Returns the realized
/// solution (with *actual* maxima, which may beat the bounds).
#[allow(clippy::needless_range_loop)]
fn dp_for_bounds(
    p: &PartitionProblem,
    prefix: &[Prefix],
    tp: f64,
    td: f64,
) -> Option<PartitionSolution> {
    let l = p.n_groups;
    let n = p.n_devices;
    // dp[j][i]: min linear cost covering first i groups with devices 0..j.
    let mut dp = vec![vec![INF; l + 1]; n + 1];
    // parent[j][i] = (i0, bit) — groups i0..i on device j−1; bit==usize::MAX → skipped device.
    let mut parent = vec![vec![(usize::MAX, usize::MAX); l + 1]; n + 1];
    dp[0][0] = 0.0;
    for j in 1..=n {
        let pf = &prefix[j - 1];
        let cap = p.capacity[j - 1] - p.fixed_mem[j - 1];
        for i in 0..=l {
            // Skip this device entirely.
            if p.allow_empty_stages && dp[j - 1][i] < dp[j][i] {
                dp[j][i] = dp[j - 1][i];
                parent[j][i] = (i, usize::MAX);
            }
            // Assign groups i0..i (non-empty) to device j−1.
            for i0 in 0..i {
                if dp[j - 1][i0] == INF {
                    continue;
                }
                for b in 0..p.n_bits {
                    let seg_pre = pf.seg(&pf.pre, i0, i, b) + p.comm_pre[j - 1];
                    if seg_pre > tp + 1e-12 {
                        continue;
                    }
                    let seg_dec = pf.seg(&pf.dec, i0, i, b) + p.comm_dec[j - 1];
                    if seg_dec > td + 1e-12 {
                        continue;
                    }
                    let seg_mem = pf.seg(&pf.mem, i0, i, b);
                    if seg_mem > cap + 1e-6 {
                        continue;
                    }
                    let cost = dp[j - 1][i0] + pf.seg(&pf.cost, i0, i, b);
                    if cost < dp[j][i] {
                        dp[j][i] = cost;
                        parent[j][i] = (i0, b);
                    }
                }
            }
        }
    }
    if dp[n][l] == INF {
        return None;
    }

    // Reconstruct.
    let mut assignment = vec![(usize::MAX, usize::MAX); l];
    let mut stage_pre = vec![0.0; n];
    let mut stage_dec = vec![0.0; n];
    let mut i = l;
    for j in (1..=n).rev() {
        let (i0, b) = parent[j][i];
        if b == usize::MAX {
            i = i0;
            continue;
        }
        let pf = &prefix[j - 1];
        stage_pre[j - 1] = pf.seg(&pf.pre, i0, i, b) + p.comm_pre[j - 1];
        stage_dec[j - 1] = pf.seg(&pf.dec, i0, i, b) + p.comm_dec[j - 1];
        for g in i0..i {
            assignment[g] = (j - 1, b);
        }
        i = i0;
    }
    debug_assert_eq!(i, 0, "reconstruction must consume all groups");

    let t_max_pre = stage_pre.iter().cloned().fold(0.0, f64::max);
    let t_max_dec = stage_dec.iter().cloned().fold(0.0, f64::max);
    let objective = p.alpha_pre * t_max_pre + p.alpha_dec * t_max_dec + dp[n][l];
    Some(PartitionSolution { assignment, objective, t_max_pre, t_max_dec, stage_pre, stage_dec })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force reference: enumerate all contiguous partitions and
    /// per-stage bit choices.
    fn brute_force(p: &PartitionProblem) -> Option<f64> {
        let mut best: Option<f64> = None;
        // boundaries: 0 = b0 ≤ b1 ≤ … ≤ bn = l; device j gets [b_{j}, b_{j+1})
        fn rec(
            p: &PartitionProblem,
            j: usize,
            start: usize,
            stage_pre: &mut Vec<f64>,
            stage_dec: &mut Vec<f64>,
            lin: f64,
            best: &mut Option<f64>,
        ) {
            let l = p.n_groups;
            let n = p.n_devices;
            if j == n {
                if start == l {
                    let tp = stage_pre.iter().cloned().fold(0.0, f64::max);
                    let td = stage_dec.iter().cloned().fold(0.0, f64::max);
                    let obj = p.alpha_pre * tp + p.alpha_dec * td + lin;
                    if best.is_none_or(|b| obj < b) {
                        *best = Some(obj);
                    }
                }
                return;
            }
            let min_end = if p.allow_empty_stages { start } else { start + 1 };
            for end in min_end..=l {
                if end == start {
                    stage_pre.push(0.0);
                    stage_dec.push(0.0);
                    rec(p, j + 1, end, stage_pre, stage_dec, lin, best);
                    stage_pre.pop();
                    stage_dec.pop();
                    continue;
                }
                for b in 0..p.n_bits {
                    let mut pre = p.comm_pre[j];
                    let mut dec = p.comm_dec[j];
                    let mut mem = p.fixed_mem[j];
                    let mut cost = 0.0;
                    for g in start..end {
                        let k = (g * p.n_devices + j) * p.n_bits + b;
                        pre += p.pre_time[k];
                        dec += p.dec_time[k];
                        mem += p.mem[k];
                        cost += p.lin_cost[k];
                    }
                    if mem > p.capacity[j] + 1e-9 {
                        continue;
                    }
                    stage_pre.push(pre);
                    stage_dec.push(dec);
                    rec(p, j + 1, end, stage_pre, stage_dec, lin + cost, best);
                    stage_pre.pop();
                    stage_dec.pop();
                }
            }
        }
        rec(p, 0, 0, &mut Vec::new(), &mut Vec::new(), 0.0, &mut best);
        best
    }

    fn random_problem(seed: u64, l: usize, n: usize, b: usize, tight_mem: bool) -> PartitionProblem {
        let mut rng = SmallRng::seed_from_u64(seed);
        let size = l * n * b;
        let mut pre = vec![0.0; size];
        let mut dec = vec![0.0; size];
        let mut mem = vec![0.0; size];
        let mut cost = vec![0.0; size];
        for g in 0..l {
            for j in 0..n {
                let speed = 1.0 + j as f64; // later devices faster
                for bi in 0..b {
                    let k = (g * n + j) * b + bi;
                    let bits = [3.0, 4.0, 8.0, 16.0][bi % 4];
                    pre[k] = rng.gen_range(0.5..1.5) / speed * (0.8 + bits / 32.0);
                    dec[k] = rng.gen_range(0.05..0.15) / speed * (bits / 16.0 + 0.3);
                    mem[k] = bits * (1.0 + g as f64 * 0.1);
                    cost[k] = rng.gen_range(0.0..0.5) * (16.0 - bits);
                }
            }
        }
        let cap = if tight_mem { 40.0 } else { 1e9 };
        PartitionProblem {
            n_groups: l,
            n_devices: n,
            n_bits: b,
            pre_time: pre,
            dec_time: dec,
            mem,
            lin_cost: cost,
            capacity: vec![cap; n],
            fixed_mem: vec![0.0; n],
            comm_pre: vec![0.01; n],
            comm_dec: vec![0.001; n],
            alpha_pre: 3.0,
            alpha_dec: 50.0,
            allow_empty_stages: false,
            grid: None,
        }
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        for seed in 0..8 {
            let p = random_problem(seed, 5, 2, 2, false);
            let dp = solve_partition(&p).expect("feasible");
            let bf = brute_force(&p).expect("feasible");
            assert!(
                (dp.objective - bf).abs() < 1e-9,
                "seed {seed}: dp {} vs brute {bf}",
                dp.objective
            );
        }
    }

    #[test]
    fn matches_brute_force_with_memory_pressure() {
        for seed in 20..26 {
            let p = random_problem(seed, 4, 3, 3, true);
            let dp = solve_partition(&p);
            let bf = brute_force(&p);
            match (dp, bf) {
                (Some(d), Some(b)) => {
                    assert!((d.objective - b).abs() < 1e-9, "seed {seed}")
                }
                (None, None) => {}
                (d, b) => panic!("seed {seed}: dp {d:?} vs brute {b:?}"),
            }
        }
    }

    #[test]
    fn assignment_is_contiguous_and_complete() {
        let p = random_problem(3, 8, 3, 2, false);
        let sol = solve_partition(&p).unwrap();
        assert_eq!(sol.assignment.len(), 8);
        for w in sol.assignment.windows(2) {
            assert!(w[1].0 >= w[0].0, "devices must be non-decreasing");
        }
        // Same device ⇒ same bits (per-stage uniform class).
        for w in sol.assignment.windows(2) {
            if w[0].0 == w[1].0 {
                assert_eq!(w[0].1, w[1].1);
            }
        }
    }

    #[test]
    fn memory_constraint_is_respected() {
        let p = random_problem(40, 6, 2, 2, true);
        if let Some(sol) = solve_partition(&p) {
            for j in 0..p.n_devices {
                let used: f64 = sol
                    .assignment
                    .iter()
                    .enumerate()
                    .filter(|(_, (d, _))| *d == j)
                    .map(|(g, (d, b))| p.mem[(g * p.n_devices + d) * p.n_bits + b])
                    .sum();
                assert!(used <= p.capacity[j] + 1e-6, "device {j} over capacity");
            }
        }
    }

    #[test]
    fn infeasible_when_memory_too_small() {
        let mut p = random_problem(5, 4, 2, 1, false);
        p.capacity = vec![1.0; 2]; // nothing fits
        assert!(solve_partition(&p).is_none());
    }

    #[test]
    fn empty_stages_allow_fewer_devices_than_needed() {
        let mut p = random_problem(6, 2, 4, 2, false);
        p.allow_empty_stages = true;
        let sol = solve_partition(&p).unwrap();
        let used: std::collections::HashSet<usize> =
            sol.assignment.iter().map(|(d, _)| *d).collect();
        assert!(used.len() <= 2, "2 groups can use at most 2 devices");
    }

    #[test]
    fn grid_subsampling_stays_close_to_exact() {
        let exact_p = random_problem(9, 6, 3, 3, false);
        let exact = solve_partition(&exact_p).unwrap();
        let mut coarse_p = exact_p.clone();
        coarse_p.grid = Some(12);
        let coarse = solve_partition(&coarse_p).unwrap();
        assert!(coarse.objective >= exact.objective - 1e-9);
        assert!(
            coarse.objective <= exact.objective * 1.2,
            "coarse {} vs exact {}",
            coarse.objective,
            exact.objective
        );
    }

    #[test]
    fn straggler_penalty_moves_layers_to_fast_device() {
        // Device 1 is much faster; with a large decode α the solver must
        // give it most groups.
        let mut p = random_problem(13, 8, 2, 1, false);
        for g in 0..8 {
            let k_slow = g * 2;
            let k_fast = g * 2 + 1;
            p.pre_time[k_slow] = 1.0;
            p.pre_time[k_fast] = 0.2;
            p.dec_time[k_slow] = 0.1;
            p.dec_time[k_fast] = 0.02;
            p.lin_cost[k_slow] = 0.0;
            p.lin_cost[k_fast] = 0.0;
        }
        let sol = solve_partition(&p).unwrap();
        let fast_count = sol.assignment.iter().filter(|(d, _)| *d == 1).count();
        assert!(fast_count > 4, "fast device should host the majority, got {fast_count}");
    }
}
