//! Exact DP solver for pipeline partition + bitwidth assignment.
//!
//! The assigner's inner problem (paper eq. 4–16): place `L` contiguous
//! layer groups onto `N` ordered devices and pick a quantization
//! precision, minimizing
//!
//! ```text
//! α_pre·T_max_pre + α_dec·T_max_dec + Σ_g lin_cost(g, device(g), bits(g))
//! ```
//!
//! subject to per-device memory capacities, where `T_max_phase` is the
//! largest per-stage time (compute + outgoing communication). The `α`
//! weights carry the micro-batch counts of the pipeline-latency formula
//! and `lin_cost` carries the per-layer latency sums and the θ-weighted
//! quality indicator.
//!
//! This solver is exact over the class of plans that use **one bitwidth
//! per stage** (mixed precision across stages, uniform within a stage).
//! The paper's per-layer mixing inside a stage is recovered afterwards by
//! the bitwidth-transfer refinement (Algorithm 2, in `llm-pq`); the
//! branch-and-bound MILP covers full per-layer mixing for small/grouped
//! instances. Strategy: enumerate a candidate grid of
//! `(T_max_pre, T_max_dec)` bounds drawn from the achievable stage times
//! and run an `O(N·L²·B)` feasibility DP per candidate pair.

use serde::{Deserialize, Serialize};

/// Problem instance. All tensors are flattened `[g][j][b]` row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionProblem {
    /// Number of contiguous layer groups `L`.
    pub n_groups: usize,
    /// Number of ordered devices `N`.
    pub n_devices: usize,
    /// Number of candidate bitwidths `B`.
    pub n_bits: usize,
    /// Prefill-time contribution of group `g` on device `j` at bits `b`.
    pub pre_time: Vec<f64>,
    /// Decode-time contribution.
    pub dec_time: Vec<f64>,
    /// Memory bytes of the group's weights + KV on that device.
    pub mem: Vec<f64>,
    /// Linear objective term (latency sums + θ·ω), same indexing.
    pub lin_cost: Vec<f64>,
    /// Memory capacity per device, bytes.
    pub capacity: Vec<f64>,
    /// Fixed memory per device if it hosts at least one group
    /// (framework overhead; embeddings on the master's device).
    pub fixed_mem: Vec<f64>,
    /// Outgoing-boundary communication added to a non-empty stage's
    /// prefill time.
    pub comm_pre: Vec<f64>,
    /// Same for decode.
    pub comm_dec: Vec<f64>,
    /// Weight on `T_max_pre` (e.g. `µ_pre − 1`).
    pub alpha_pre: f64,
    /// Weight on `T_max_dec` (e.g. `(n−1)·µ_dec − 1`).
    pub alpha_dec: f64,
    /// Whether a device may be left without layers.
    pub allow_empty_stages: bool,
    /// Candidate-grid size per phase; `None` = exhaustive (exact).
    pub grid: Option<usize>,
}

impl PartitionProblem {
    #[inline]
    fn idx(&self, g: usize, j: usize, b: usize) -> usize {
        (g * self.n_devices + j) * self.n_bits + b
    }
}

/// A solved plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSolution {
    /// Per group: `(device, bit index)`. Devices are non-decreasing.
    pub assignment: Vec<(usize, usize)>,
    /// Total objective value.
    pub objective: f64,
    /// Realized max prefill stage time (incl. comm).
    pub t_max_pre: f64,
    /// Realized max decode stage time (incl. comm).
    pub t_max_dec: f64,
    /// Realized per-stage prefill times (empty stages are 0).
    pub stage_pre: Vec<f64>,
    /// Realized per-stage decode times.
    pub stage_dec: Vec<f64>,
}

/// Prefix sums per (device, bits) for O(1) segment queries.
struct Prefix {
    pre: Vec<f64>,
    dec: Vec<f64>,
    mem: Vec<f64>,
    cost: Vec<f64>,
    n_groups: usize,
    n_bits: usize,
}

impl Prefix {
    fn build(p: &PartitionProblem) -> Vec<Prefix> {
        (0..p.n_devices)
            .map(|j| {
                let mut pre = vec![0.0; (p.n_groups + 1) * p.n_bits];
                let mut dec = pre.clone();
                let mut mem = pre.clone();
                let mut cost = pre.clone();
                for b in 0..p.n_bits {
                    for g in 0..p.n_groups {
                        let src = p.idx(g, j, b);
                        let dst = (g + 1) * p.n_bits + b;
                        let prev = g * p.n_bits + b;
                        pre[dst] = pre[prev] + p.pre_time[src];
                        dec[dst] = dec[prev] + p.dec_time[src];
                        mem[dst] = mem[prev] + p.mem[src];
                        cost[dst] = cost[prev] + p.lin_cost[src];
                    }
                }
                Prefix { pre, dec, mem, cost, n_groups: p.n_groups, n_bits: p.n_bits }
            })
            .collect()
    }

    #[inline]
    fn seg(&self, v: &[f64], g0: usize, g1: usize, b: usize) -> f64 {
        debug_assert!(g0 <= g1 && g1 <= self.n_groups);
        v[g1 * self.n_bits + b] - v[g0 * self.n_bits + b]
    }
}

/// Collect candidate `T` values per phase from achievable stage times.
///
/// Devices with identical phase prefixes and comm cost (same GPU class
/// on a uniform interconnect — the common case in a large fleet)
/// contribute identical segment values, which the post-sort dedup would
/// drop anyway; skipping them up front keeps this `O(classes · L² · B)`
/// instead of `O(N · L² · B)`, which is what makes warm replans on
/// 100+ device fleets cheap.
fn candidates(p: &PartitionProblem, prefix: &[Prefix], decode: bool) -> Vec<f64> {
    let mut reps: Vec<usize> = Vec::new();
    let mut vals = Vec::new();
    'devices: for (j, pf) in prefix.iter().enumerate() {
        let comm = if decode { p.comm_dec[j] } else { p.comm_pre[j] };
        let v = if decode { &pf.dec } else { &pf.pre };
        for &r in &reps {
            let rcomm = if decode { p.comm_dec[r] } else { p.comm_pre[r] };
            let rv = if decode { &prefix[r].dec } else { &prefix[r].pre };
            if comm == rcomm && v == rv {
                continue 'devices;
            }
        }
        reps.push(j);
        for b in 0..p.n_bits {
            for g0 in 0..p.n_groups {
                for g1 in g0 + 1..=p.n_groups {
                    vals.push(pf.seg(v, g0, g1, b) + comm);
                }
            }
        }
    }
    vals.sort_unstable_by(f64::total_cmp);
    vals.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    if let Some(k) = p.grid {
        if vals.len() > k {
            // Quantile subsample, always keeping the extremes.
            let n = vals.len();
            let mut picked: Vec<f64> =
                (0..k).map(|i| vals[(i * (n - 1)) / (k - 1).max(1)]).collect();
            picked.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            return picked;
        }
    }
    vals
}

const INF: f64 = f64::INFINITY;

/// Solve the partition problem. Returns `None` when no feasible plan
/// exists (e.g. the model cannot fit even at the lowest precision).
pub fn solve_partition(p: &PartitionProblem) -> Option<PartitionSolution> {
    solve_partition_warm(p, None)
}

/// Counters from one warm-started solve, for cache/pruning assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionSolveStats {
    /// Candidate `(T_pre, T_dec)` pairs whose feasibility DP ran.
    pub dp_calls: usize,
    /// Candidate pairs skipped by the α-bound incumbent prune.
    pub pruned: usize,
    /// Candidate pairs proven infeasible by the cheap window relaxation
    /// (no DP run).
    pub relaxed_out: usize,
    /// Whether the warm-start hint was feasible and seeded the search.
    pub incumbent_used: bool,
}

/// Warm-started [`solve_partition`]: `hint` — typically the previous
/// solve's assignment repaired onto the new device ordering — is
/// evaluated first and, when feasible, seeds the incumbent so the
/// candidate loop prunes most `(T_pre, T_dec)` pairs before paying for
/// their `O(N·L²·B)` DP. Exactness: the prune only skips pairs whose
/// α-weighted lower bound already meets the incumbent, every achievable
/// solution is re-discoverable at its own realized-maxima pair
/// (`lin_cost ≥ 0`), and with exhaustive candidates those pairs are in
/// the grid — so the returned objective equals the cold solve's. Under
/// grid subsampling the incumbent's realized maxima are injected into
/// the candidate lists to preserve that argument for the hint itself.
pub fn solve_partition_warm(
    p: &PartitionProblem,
    hint: Option<&[(usize, usize)]>,
) -> Option<PartitionSolution> {
    solve_partition_warm_stats(p, hint).0
}

/// [`solve_partition_warm`] plus pruning counters.
pub fn solve_partition_warm_stats(
    p: &PartitionProblem,
    hint: Option<&[(usize, usize)]>,
) -> (Option<PartitionSolution>, PartitionSolveStats) {
    assert_eq!(p.pre_time.len(), p.n_groups * p.n_devices * p.n_bits);
    assert_eq!(p.dec_time.len(), p.pre_time.len());
    assert_eq!(p.mem.len(), p.pre_time.len());
    assert_eq!(p.lin_cost.len(), p.pre_time.len());
    assert_eq!(p.capacity.len(), p.n_devices);
    assert!(p.n_groups > 0 && p.n_devices > 0 && p.n_bits > 0);

    let prefix = Prefix::build(p);
    let mut tp_cands = candidates(p, &prefix, false);
    let mut td_cands = candidates(p, &prefix, true);

    let mut stats = PartitionSolveStats::default();
    let mut best: Option<PartitionSolution> = hint.and_then(|a| evaluate_assignment(p, a));
    if let Some(inc) = &best {
        stats.incumbent_used = true;
        insert_sorted(&mut tp_cands, inc.t_max_pre);
        insert_sorted(&mut td_cands, inc.t_max_dec);
    }
    // Admissible floor on the linear term: every plan hosts each group
    // somewhere, so it pays at least the group's cheapest (j, b) cost.
    let lin_floor: f64 = (0..p.n_groups)
        .map(|g| {
            (0..p.n_devices)
                .flat_map(|j| (0..p.n_bits).map(move |b| (j, b)))
                .map(|(j, b)| p.lin_cost[p.idx(g, j, b)])
                .fold(INF, f64::min)
        })
        .sum();
    // Pruning: a pair's objective is lower-bounded by the α terms at the
    // bounds plus `lin_floor`; skip it once the incumbent already meets
    // that. Safe: any solution realizable at a pruned pair has realized
    // maxima ≤ the bounds and lin ≥ lin_floor, so it cannot beat the
    // incumbent that caused the skip.
    for &tp in &tp_cands {
        for &td in &td_cands {
            if let Some(b) = &best {
                if p.alpha_pre * tp + p.alpha_dec * td + lin_floor >= b.objective {
                    stats.pruned += 1;
                    continue;
                }
            }
            if !relaxation_feasible(p, &prefix, tp, td) {
                stats.relaxed_out += 1;
                continue;
            }
            stats.dp_calls += 1;
            if let Some(sol) = dp_for_bounds(p, &prefix, tp, td) {
                if best.as_ref().is_none_or(|b| sol.objective < b.objective) {
                    best = Some(sol);
                }
            }
        }
    }
    (best, stats)
}

/// Cheap necessary condition for `(tp, td)` feasibility: each device's
/// contiguous segment is at most its longest window (over any single
/// bitwidth) satisfying the time and memory caps, so if those maxima
/// cannot jointly cover all groups the DP must come up empty. All
/// segment contributions are non-negative, so a sliding window per
/// `(device, bits)` finds the longest fit in `O(L)`.
fn relaxation_feasible(p: &PartitionProblem, prefix: &[Prefix], tp: f64, td: f64) -> bool {
    let l = p.n_groups;
    let mut coverable = 0usize;
    for (j, pf) in prefix.iter().enumerate() {
        let cap_pre = tp - p.comm_pre[j] + 1e-12;
        let cap_dec = td - p.comm_dec[j] + 1e-12;
        let cap_mem = p.capacity[j] - p.fixed_mem[j] + 1e-6;
        let mut best_window = 0usize;
        for b in 0..p.n_bits {
            let mut g0 = 0usize;
            for g1 in 1..=l {
                while g0 < g1
                    && (pf.seg(&pf.pre, g0, g1, b) > cap_pre
                        || pf.seg(&pf.dec, g0, g1, b) > cap_dec
                        || pf.seg(&pf.mem, g0, g1, b) > cap_mem)
                {
                    g0 += 1;
                }
                best_window = best_window.max(g1 - g0);
            }
        }
        coverable += best_window;
        if coverable >= l {
            return true;
        }
    }
    coverable >= l
}

/// Insert `v` into a sorted candidate list unless already present.
fn insert_sorted(vals: &mut Vec<f64>, v: f64) {
    match vals.binary_search_by(|x| x.partial_cmp(&v).unwrap()) {
        Ok(_) => {}
        Err(i) => {
            if i > 0 && (vals[i - 1] - v).abs() < 1e-12 {
                return;
            }
            if i < vals.len() && (vals[i] - v).abs() < 1e-12 {
                return;
            }
            vals.insert(i, v);
        }
    }
}

/// Evaluate a fixed per-group `(device, bit)` assignment: structural
/// validity (non-decreasing devices ⇒ contiguous stages, one bitwidth
/// per stage), memory feasibility, and the realized objective. `None`
/// when malformed or infeasible — callers use this to turn a previous
/// solution into a warm-start incumbent after the cluster changed.
pub fn evaluate_assignment(
    p: &PartitionProblem,
    assignment: &[(usize, usize)],
) -> Option<PartitionSolution> {
    if assignment.len() != p.n_groups {
        return None;
    }
    let mut stage_pre = vec![0.0; p.n_devices];
    let mut stage_dec = vec![0.0; p.n_devices];
    let mut stage_mem = vec![0.0; p.n_devices];
    let mut dev_bits: Vec<Option<usize>> = vec![None; p.n_devices];
    let mut lin = 0.0;
    let mut last_dev = 0usize;
    for (g, &(j, b)) in assignment.iter().enumerate() {
        if j >= p.n_devices || b >= p.n_bits || j < last_dev {
            return None;
        }
        last_dev = j;
        match dev_bits[j] {
            None => dev_bits[j] = Some(b),
            Some(prev) if prev == b => {}
            Some(_) => return None,
        }
        let k = p.idx(g, j, b);
        stage_pre[j] += p.pre_time[k];
        stage_dec[j] += p.dec_time[k];
        stage_mem[j] += p.mem[k];
        lin += p.lin_cost[k];
    }
    for j in 0..p.n_devices {
        match dev_bits[j] {
            Some(_) => {
                if stage_mem[j] + p.fixed_mem[j] > p.capacity[j] + 1e-6 {
                    return None;
                }
                stage_pre[j] += p.comm_pre[j];
                stage_dec[j] += p.comm_dec[j];
            }
            None if !p.allow_empty_stages => return None,
            None => {}
        }
    }
    let t_max_pre = stage_pre.iter().cloned().fold(0.0, f64::max);
    let t_max_dec = stage_dec.iter().cloned().fold(0.0, f64::max);
    let objective = p.alpha_pre * t_max_pre + p.alpha_dec * t_max_dec + lin;
    Some(PartitionSolution {
        assignment: assignment.to_vec(),
        objective,
        t_max_pre,
        t_max_dec,
        stage_pre,
        stage_dec,
    })
}

/// Feasibility DP for fixed stage-time bounds. Returns the realized
/// solution (with *actual* maxima, which may beat the bounds).
#[allow(clippy::needless_range_loop)]
fn dp_for_bounds(
    p: &PartitionProblem,
    prefix: &[Prefix],
    tp: f64,
    td: f64,
) -> Option<PartitionSolution> {
    let l = p.n_groups;
    let n = p.n_devices;
    // dp[j][i]: min linear cost covering first i groups with devices 0..j.
    let mut dp = vec![vec![INF; l + 1]; n + 1];
    // parent[j][i] = (i0, bit) — groups i0..i on device j−1; bit==usize::MAX → skipped device.
    let mut parent = vec![vec![(usize::MAX, usize::MAX); l + 1]; n + 1];
    dp[0][0] = 0.0;
    for j in 1..=n {
        let pf = &prefix[j - 1];
        let cap = p.capacity[j - 1] - p.fixed_mem[j - 1];
        for i in 0..=l {
            // Skip this device entirely.
            if p.allow_empty_stages && dp[j - 1][i] < dp[j][i] {
                dp[j][i] = dp[j - 1][i];
                parent[j][i] = (i, usize::MAX);
            }
            // Assign groups i0..i (non-empty) to device j−1.
            for i0 in 0..i {
                if dp[j - 1][i0] == INF {
                    continue;
                }
                for b in 0..p.n_bits {
                    let seg_pre = pf.seg(&pf.pre, i0, i, b) + p.comm_pre[j - 1];
                    if seg_pre > tp + 1e-12 {
                        continue;
                    }
                    let seg_dec = pf.seg(&pf.dec, i0, i, b) + p.comm_dec[j - 1];
                    if seg_dec > td + 1e-12 {
                        continue;
                    }
                    let seg_mem = pf.seg(&pf.mem, i0, i, b);
                    if seg_mem > cap + 1e-6 {
                        continue;
                    }
                    let cost = dp[j - 1][i0] + pf.seg(&pf.cost, i0, i, b);
                    if cost < dp[j][i] {
                        dp[j][i] = cost;
                        parent[j][i] = (i0, b);
                    }
                }
            }
        }
    }
    if dp[n][l] == INF {
        return None;
    }

    // Reconstruct.
    let mut assignment = vec![(usize::MAX, usize::MAX); l];
    let mut stage_pre = vec![0.0; n];
    let mut stage_dec = vec![0.0; n];
    let mut i = l;
    for j in (1..=n).rev() {
        let (i0, b) = parent[j][i];
        if b == usize::MAX {
            i = i0;
            continue;
        }
        let pf = &prefix[j - 1];
        stage_pre[j - 1] = pf.seg(&pf.pre, i0, i, b) + p.comm_pre[j - 1];
        stage_dec[j - 1] = pf.seg(&pf.dec, i0, i, b) + p.comm_dec[j - 1];
        for g in i0..i {
            assignment[g] = (j - 1, b);
        }
        i = i0;
    }
    debug_assert_eq!(i, 0, "reconstruction must consume all groups");

    let t_max_pre = stage_pre.iter().cloned().fold(0.0, f64::max);
    let t_max_dec = stage_dec.iter().cloned().fold(0.0, f64::max);
    let objective = p.alpha_pre * t_max_pre + p.alpha_dec * t_max_dec + dp[n][l];
    Some(PartitionSolution { assignment, objective, t_max_pre, t_max_dec, stage_pre, stage_dec })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force reference: enumerate all contiguous partitions and
    /// per-stage bit choices.
    fn brute_force(p: &PartitionProblem) -> Option<f64> {
        let mut best: Option<f64> = None;
        // boundaries: 0 = b0 ≤ b1 ≤ … ≤ bn = l; device j gets [b_{j}, b_{j+1})
        fn rec(
            p: &PartitionProblem,
            j: usize,
            start: usize,
            stage_pre: &mut Vec<f64>,
            stage_dec: &mut Vec<f64>,
            lin: f64,
            best: &mut Option<f64>,
        ) {
            let l = p.n_groups;
            let n = p.n_devices;
            if j == n {
                if start == l {
                    let tp = stage_pre.iter().cloned().fold(0.0, f64::max);
                    let td = stage_dec.iter().cloned().fold(0.0, f64::max);
                    let obj = p.alpha_pre * tp + p.alpha_dec * td + lin;
                    if best.is_none_or(|b| obj < b) {
                        *best = Some(obj);
                    }
                }
                return;
            }
            let min_end = if p.allow_empty_stages { start } else { start + 1 };
            for end in min_end..=l {
                if end == start {
                    stage_pre.push(0.0);
                    stage_dec.push(0.0);
                    rec(p, j + 1, end, stage_pre, stage_dec, lin, best);
                    stage_pre.pop();
                    stage_dec.pop();
                    continue;
                }
                for b in 0..p.n_bits {
                    let mut pre = p.comm_pre[j];
                    let mut dec = p.comm_dec[j];
                    let mut mem = p.fixed_mem[j];
                    let mut cost = 0.0;
                    for g in start..end {
                        let k = (g * p.n_devices + j) * p.n_bits + b;
                        pre += p.pre_time[k];
                        dec += p.dec_time[k];
                        mem += p.mem[k];
                        cost += p.lin_cost[k];
                    }
                    if mem > p.capacity[j] + 1e-9 {
                        continue;
                    }
                    stage_pre.push(pre);
                    stage_dec.push(dec);
                    rec(p, j + 1, end, stage_pre, stage_dec, lin + cost, best);
                    stage_pre.pop();
                    stage_dec.pop();
                }
            }
        }
        rec(p, 0, 0, &mut Vec::new(), &mut Vec::new(), 0.0, &mut best);
        best
    }

    fn random_problem(seed: u64, l: usize, n: usize, b: usize, tight_mem: bool) -> PartitionProblem {
        let mut rng = SmallRng::seed_from_u64(seed);
        let size = l * n * b;
        let mut pre = vec![0.0; size];
        let mut dec = vec![0.0; size];
        let mut mem = vec![0.0; size];
        let mut cost = vec![0.0; size];
        for g in 0..l {
            for j in 0..n {
                let speed = 1.0 + j as f64; // later devices faster
                for bi in 0..b {
                    let k = (g * n + j) * b + bi;
                    let bits = [3.0, 4.0, 8.0, 16.0][bi % 4];
                    pre[k] = rng.gen_range(0.5..1.5) / speed * (0.8 + bits / 32.0);
                    dec[k] = rng.gen_range(0.05..0.15) / speed * (bits / 16.0 + 0.3);
                    mem[k] = bits * (1.0 + g as f64 * 0.1);
                    cost[k] = rng.gen_range(0.0..0.5) * (16.0 - bits);
                }
            }
        }
        let cap = if tight_mem { 40.0 } else { 1e9 };
        PartitionProblem {
            n_groups: l,
            n_devices: n,
            n_bits: b,
            pre_time: pre,
            dec_time: dec,
            mem,
            lin_cost: cost,
            capacity: vec![cap; n],
            fixed_mem: vec![0.0; n],
            comm_pre: vec![0.01; n],
            comm_dec: vec![0.001; n],
            alpha_pre: 3.0,
            alpha_dec: 50.0,
            allow_empty_stages: false,
            grid: None,
        }
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        for seed in 0..8 {
            let p = random_problem(seed, 5, 2, 2, false);
            let dp = solve_partition(&p).expect("feasible");
            let bf = brute_force(&p).expect("feasible");
            assert!(
                (dp.objective - bf).abs() < 1e-9,
                "seed {seed}: dp {} vs brute {bf}",
                dp.objective
            );
        }
    }

    #[test]
    fn matches_brute_force_with_memory_pressure() {
        for seed in 20..26 {
            let p = random_problem(seed, 4, 3, 3, true);
            let dp = solve_partition(&p);
            let bf = brute_force(&p);
            match (dp, bf) {
                (Some(d), Some(b)) => {
                    assert!((d.objective - b).abs() < 1e-9, "seed {seed}")
                }
                (None, None) => {}
                (d, b) => panic!("seed {seed}: dp {d:?} vs brute {b:?}"),
            }
        }
    }

    #[test]
    fn assignment_is_contiguous_and_complete() {
        let p = random_problem(3, 8, 3, 2, false);
        let sol = solve_partition(&p).unwrap();
        assert_eq!(sol.assignment.len(), 8);
        for w in sol.assignment.windows(2) {
            assert!(w[1].0 >= w[0].0, "devices must be non-decreasing");
        }
        // Same device ⇒ same bits (per-stage uniform class).
        for w in sol.assignment.windows(2) {
            if w[0].0 == w[1].0 {
                assert_eq!(w[0].1, w[1].1);
            }
        }
    }

    #[test]
    fn memory_constraint_is_respected() {
        let p = random_problem(40, 6, 2, 2, true);
        if let Some(sol) = solve_partition(&p) {
            for j in 0..p.n_devices {
                let used: f64 = sol
                    .assignment
                    .iter()
                    .enumerate()
                    .filter(|(_, (d, _))| *d == j)
                    .map(|(g, (d, b))| p.mem[(g * p.n_devices + d) * p.n_bits + b])
                    .sum();
                assert!(used <= p.capacity[j] + 1e-6, "device {j} over capacity");
            }
        }
    }

    #[test]
    fn infeasible_when_memory_too_small() {
        let mut p = random_problem(5, 4, 2, 1, false);
        p.capacity = vec![1.0; 2]; // nothing fits
        assert!(solve_partition(&p).is_none());
    }

    #[test]
    fn empty_stages_allow_fewer_devices_than_needed() {
        let mut p = random_problem(6, 2, 4, 2, false);
        p.allow_empty_stages = true;
        let sol = solve_partition(&p).unwrap();
        let used: std::collections::HashSet<usize> =
            sol.assignment.iter().map(|(d, _)| *d).collect();
        assert!(used.len() <= 2, "2 groups can use at most 2 devices");
    }

    #[test]
    fn grid_subsampling_stays_close_to_exact() {
        let exact_p = random_problem(9, 6, 3, 3, false);
        let exact = solve_partition(&exact_p).unwrap();
        let mut coarse_p = exact_p.clone();
        coarse_p.grid = Some(12);
        let coarse = solve_partition(&coarse_p).unwrap();
        assert!(coarse.objective >= exact.objective - 1e-9);
        assert!(
            coarse.objective <= exact.objective * 1.2,
            "coarse {} vs exact {}",
            coarse.objective,
            exact.objective
        );
    }

    #[test]
    fn evaluate_assignment_matches_solver_objective() {
        for seed in 0..6 {
            let p = random_problem(seed, 6, 3, 2, false);
            let sol = solve_partition(&p).expect("feasible");
            let eval = evaluate_assignment(&p, &sol.assignment).expect("solver output is valid");
            assert!(
                (eval.objective - sol.objective).abs() < 1e-9,
                "seed {seed}: eval {} vs solve {}",
                eval.objective,
                sol.objective
            );
            assert!((eval.t_max_pre - sol.t_max_pre).abs() < 1e-9);
            assert!((eval.t_max_dec - sol.t_max_dec).abs() < 1e-9);
        }
    }

    #[test]
    fn evaluate_assignment_rejects_malformed() {
        let p = random_problem(1, 4, 2, 2, false);
        // Wrong length.
        assert!(evaluate_assignment(&p, &[(0, 0)]).is_none());
        // Decreasing devices.
        assert!(evaluate_assignment(&p, &[(1, 0), (0, 0), (0, 0), (1, 0)]).is_none());
        // Mixed bits within a stage.
        assert!(evaluate_assignment(&p, &[(0, 0), (0, 1), (1, 0), (1, 0)]).is_none());
        // Empty stage without allow_empty_stages.
        assert!(evaluate_assignment(&p, &[(0, 0), (0, 0), (0, 0), (0, 0)]).is_none());
    }

    #[test]
    fn evaluate_assignment_rejects_over_capacity() {
        let mut p = random_problem(2, 4, 2, 1, false);
        let sol = solve_partition(&p).expect("feasible");
        p.capacity = vec![1e-9; 2];
        assert!(evaluate_assignment(&p, &sol.assignment).is_none());
    }

    #[test]
    fn warm_start_objective_equals_cold() {
        for seed in 0..10 {
            let p = random_problem(seed, 6, 3, 2, seed % 2 == 0);
            let Some(cold) = solve_partition(&p) else { continue };
            // Warm-start from the optimum itself and from a perturbed
            // (still valid) assignment: both must land on the cold
            // objective exactly.
            let (warm, stats) = solve_partition_warm_stats(&p, Some(&cold.assignment));
            let warm = warm.expect("warm must be feasible when cold is");
            assert!(stats.incumbent_used, "seed {seed}: optimum hint must seed the search");
            assert!(
                (warm.objective - cold.objective).abs() < 1e-9,
                "seed {seed}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            assert!(
                stats.pruned > 0,
                "seed {seed}: an optimal incumbent should prune candidate pairs"
            );
        }
    }

    #[test]
    fn warm_start_with_garbage_hint_falls_back_to_cold() {
        let p = random_problem(7, 6, 3, 2, false);
        let cold = solve_partition(&p).expect("feasible");
        let garbage = vec![(2, 0), (1, 0), (0, 0), (0, 0), (0, 0), (0, 0)];
        let (warm, stats) = solve_partition_warm_stats(&p, Some(&garbage));
        let warm = warm.expect("feasible");
        assert!(!stats.incumbent_used, "invalid hint must not seed an incumbent");
        assert!((warm.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_start_prunes_most_dp_calls_with_good_incumbent() {
        // The realistic LLM-PQ regime: the α-weighted pipeline terms
        // dominate the linear cost (microbatch counts multiply T_max),
        // so the incumbent's α-bound prune has teeth. Grid-subsampled
        // like the production assigner config.
        let mut p = random_problem(17, 10, 4, 3, false);
        for c in p.lin_cost.iter_mut() {
            *c *= 0.02;
        }
        p.grid = Some(16);
        let (cold, cold_stats) = solve_partition_warm_stats(&p, None);
        let cold = cold.expect("feasible");
        let (warm, warm_stats) = solve_partition_warm_stats(&p, Some(&cold.assignment));
        let warm = warm.expect("feasible");
        assert!(warm.objective <= cold.objective + 1e-9);
        // The incumbent lets warm skip every pair whose α-bound exceeds the
        // optimum; the pairs that remain are irreducible for an exact scan,
        // so assert warm never explores more and prunes strictly more.
        assert!(warm_stats.incumbent_used);
        assert!(
            warm_stats.dp_calls <= cold_stats.dp_calls,
            "warm {} dp calls vs cold {}",
            warm_stats.dp_calls,
            cold_stats.dp_calls
        );
        assert!(
            warm_stats.pruned > cold_stats.pruned,
            "warm pruned {} vs cold pruned {}",
            warm_stats.pruned,
            cold_stats.pruned
        );
    }

    #[test]
    fn warm_start_equals_cold_under_grid_subsampling() {
        for seed in 30..36 {
            let mut p = random_problem(seed, 8, 3, 3, false);
            p.grid = Some(12);
            let Some(cold) = solve_partition(&p) else { continue };
            let warm = solve_partition_warm(&p, Some(&cold.assignment)).expect("feasible");
            assert!(
                warm.objective <= cold.objective + 1e-9,
                "seed {seed}: warm {} must not regress cold {}",
                warm.objective,
                cold.objective
            );
        }
    }

    #[test]
    fn straggler_penalty_moves_layers_to_fast_device() {
        // Device 1 is much faster; with a large decode α the solver must
        // give it most groups.
        let mut p = random_problem(13, 8, 2, 1, false);
        for g in 0..8 {
            let k_slow = g * 2;
            let k_fast = g * 2 + 1;
            p.pre_time[k_slow] = 1.0;
            p.pre_time[k_fast] = 0.2;
            p.dec_time[k_slow] = 0.1;
            p.dec_time[k_fast] = 0.02;
            p.lin_cost[k_slow] = 0.0;
            p.lin_cost[k_fast] = 0.0;
        }
        let sol = solve_partition(&p).unwrap();
        let fast_count = sol.assignment.iter().filter(|(d, _)| *d == 1).count();
        assert!(fast_count > 4, "fast device should host the majority, got {fast_count}");
    }
}
