//! # llmpq-solver
//!
//! Optimization substrate replacing the paper's off-the-shelf GUROBI:
//!
//! * [`simplex`] — a dense two-phase primal simplex for linear programs.
//! * [`milp`] — branch-and-bound mixed-integer solver on top of the LP,
//!   with incumbent tracking, best-bound pruning, node and wall-clock
//!   limits (the paper runs GUROBI under a 60 s limit in Table 8).
//! * [`partition`] — an exact dynamic-programming solver specialized to
//!   the pipeline partition + bitwidth assignment problem: contiguous
//!   layer groups over an ordered device chain, per-stage bitwidths,
//!   per-device memory capacities, and the paper's objective
//!   `α_pre·T_max_pre + α_dec·T_max_dec + Σ c(group, device, bits)`.
//!   It scans a candidate grid of (T_max_pre, T_max_dec) bounds and runs
//!   an `O(N·L²·B)` feasibility DP per candidate. The MILP and the DP
//!   cross-validate each other in tests.

pub mod milp;
pub mod partition;
pub mod simplex;

pub use milp::{solve_milp, MilpConfig, MilpResult, MilpSpec};
pub use partition::{
    evaluate_assignment, solve_partition, solve_partition_warm, solve_partition_warm_stats,
    PartitionProblem, PartitionSolution, PartitionSolveStats,
};
pub use simplex::{solve_lp, Constraint, ConstraintOp, LinProg, LpResult, LpSolution};
