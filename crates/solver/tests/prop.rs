//! Property-based tests for the optimization substrate.

use llmpq_solver::{
    solve_lp, solve_milp, solve_partition, Constraint, LinProg, LpResult, MilpConfig, MilpResult,
    MilpSpec, PartitionProblem,
};
use proptest::prelude::*;

/// Build a random small LP: minimize cᵀx over box-bounded x with a few
/// ≤-constraints (always feasible at x = 0 when rhs ≥ 0).
fn random_lp(
    n: usize,
    costs: &[f64],
    rows: &[(Vec<f64>, f64)],
) -> LinProg {
    let mut lp = LinProg::minimize(costs[..n].to_vec());
    for v in 0..n {
        lp = lp.bound(v, 1.0);
    }
    for (coeffs, rhs) in rows {
        let c: Vec<(usize, f64)> =
            coeffs.iter().take(n).enumerate().map(|(i, &v)| (i, v)).collect();
        lp = lp.with(Constraint::le(c, *rhs));
    }
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Simplex solutions satisfy every constraint and bound.
    #[test]
    fn lp_solutions_are_feasible(
        n in 2usize..6,
        costs in prop::collection::vec(-5.0f64..5.0, 6),
        rows in prop::collection::vec(
            (prop::collection::vec(0.0f64..3.0, 6), 0.5f64..8.0),
            1..4
        ),
    ) {
        let lp = random_lp(n, &costs, &rows);
        match solve_lp(&lp) {
            LpResult::Optimal(sol) => {
                for (v, &x) in sol.x.iter().enumerate() {
                    prop_assert!(x >= -1e-7, "x[{v}] = {x} negative");
                    prop_assert!(x <= 1.0 + 1e-7, "x[{v}] = {x} above bound");
                }
                for (coeffs, rhs) in &rows {
                    let lhs: f64 = coeffs.iter().take(n).zip(&sol.x).map(|(a, x)| a * x).sum();
                    prop_assert!(lhs <= rhs + 1e-6, "constraint violated: {lhs} > {rhs}");
                }
                // Objective is consistent with x.
                let obj: f64 = costs.iter().take(n).zip(&sol.x).map(|(c, x)| c * x).sum();
                prop_assert!((obj - sol.objective).abs() < 1e-6);
            }
            other => prop_assert!(false, "x = 0 is feasible, got {other:?}"),
        }
    }

    /// The MILP optimum is never better than the LP relaxation and its
    /// solution is integral on the integer variables.
    #[test]
    fn milp_respects_relaxation_bound(
        n in 2usize..5,
        costs in prop::collection::vec(-5.0f64..5.0, 6),
        rows in prop::collection::vec(
            (prop::collection::vec(0.0f64..3.0, 6), 0.5f64..6.0),
            1..3
        ),
    ) {
        let lp = random_lp(n, &costs, &rows);
        let relax = match solve_lp(&lp) {
            LpResult::Optimal(s) => s.objective,
            _ => return Ok(()),
        };
        let spec = MilpSpec { lp, integers: (0..n).collect() };
        match solve_milp(&spec, &MilpConfig::default()) {
            MilpResult::Optimal(sol) => {
                prop_assert!(sol.objective >= relax - 1e-6,
                    "milp {} beats relaxation {relax}", sol.objective);
                for &v in &spec.integers {
                    let frac = (sol.x[v] - sol.x[v].round()).abs();
                    prop_assert!(frac < 1e-6, "x[{v}] = {} not integral", sol.x[v]);
                }
            }
            MilpResult::Infeasible => prop_assert!(false, "x=0 integral-feasible"),
            _ => {}
        }
    }

    /// The partition DP's reported objective matches its assignment, and
    /// the assignment is contiguous and memory-feasible.
    #[test]
    fn partition_solution_is_self_consistent(
        l in 2usize..7,
        n in 1usize..4,
        nb in 1usize..4,
        seed in 0u64..500,
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let size = l * n * nb;
        let p = PartitionProblem {
            n_groups: l,
            n_devices: n,
            n_bits: nb,
            pre_time: (0..size).map(|_| rng.gen_range(0.1..1.0)).collect(),
            dec_time: (0..size).map(|_| rng.gen_range(0.01..0.1)).collect(),
            mem: (0..size).map(|_| rng.gen_range(1.0..3.0)).collect(),
            lin_cost: (0..size).map(|_| rng.gen_range(0.0..1.0)).collect(),
            capacity: vec![3.5 * l as f64 / n as f64; n],
            fixed_mem: vec![0.1; n],
            comm_pre: vec![0.01; n],
            comm_dec: vec![0.001; n],
            alpha_pre: rng.gen_range(0.0..10.0),
            alpha_dec: rng.gen_range(0.0..100.0),
            allow_empty_stages: n > 1,
            grid: None,
        };
        if let Some(sol) = solve_partition(&p) {
            // Contiguity.
            for w in sol.assignment.windows(2) {
                prop_assert!(w[1].0 >= w[0].0);
            }
            // Recompute objective from scratch.
            let mut stage_pre = vec![0.0f64; n];
            let mut stage_dec = vec![0.0f64; n];
            let mut stage_mem = vec![0.0f64; n];
            let mut lin = 0.0;
            for (g, &(j, b)) in sol.assignment.iter().enumerate() {
                let k = (g * n + j) * nb + b;
                stage_pre[j] += p.pre_time[k];
                stage_dec[j] += p.dec_time[k];
                stage_mem[j] += p.mem[k];
                lin += p.lin_cost[k];
            }
            for j in 0..n {
                if stage_pre[j] > 0.0 {
                    prop_assert!(stage_mem[j] + p.fixed_mem[j] <= p.capacity[j] + 1e-6);
                    stage_pre[j] += p.comm_pre[j];
                    stage_dec[j] += p.comm_dec[j];
                }
            }
            let tp = stage_pre.iter().cloned().fold(0.0, f64::max);
            let td = stage_dec.iter().cloned().fold(0.0, f64::max);
            let obj = p.alpha_pre * tp + p.alpha_dec * td + lin;
            prop_assert!((obj - sol.objective).abs() < 1e-6,
                "reported {} vs recomputed {obj}", sol.objective);
        }
    }

    /// Relaxing a memory capacity can never worsen the DP optimum.
    #[test]
    fn partition_monotone_in_capacity(seed in 0u64..200) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let (l, n, nb) = (5usize, 2usize, 2usize);
        let size = l * n * nb;
        let mut p = PartitionProblem {
            n_groups: l,
            n_devices: n,
            n_bits: nb,
            pre_time: (0..size).map(|_| rng.gen_range(0.1..1.0)).collect(),
            dec_time: (0..size).map(|_| rng.gen_range(0.01..0.1)).collect(),
            mem: (0..size).map(|_| rng.gen_range(1.0..3.0)).collect(),
            lin_cost: (0..size).map(|_| rng.gen_range(0.0..1.0)).collect(),
            capacity: vec![7.0; n],
            fixed_mem: vec![0.0; n],
            comm_pre: vec![0.0; n],
            comm_dec: vec![0.0; n],
            alpha_pre: 3.0,
            alpha_dec: 30.0,
            allow_empty_stages: true,
            grid: None,
        };
        let tight = solve_partition(&p).map(|s| s.objective);
        p.capacity = vec![100.0; n];
        let loose = solve_partition(&p).map(|s| s.objective).expect("loose is feasible");
        if let Some(t) = tight {
            prop_assert!(loose <= t + 1e-9, "loose {loose} worse than tight {t}");
        }
    }
}
