//! Stage workers: each owns a shard of decoder layers and the KV caches
//! for every in-flight sequence, and processes work items from the
//! previous stage asynchronously.
//!
//! Workers are supervised: they receive with a bounded timeout so they
//! can stamp a heartbeat even while idle, consult the shared
//! [`FaultInjector`] before every item, and
//! deduplicate items by their global `step` id so a duplicated channel
//! message cannot corrupt the KV caches. Protocol violations (e.g. a
//! sequence id outside the batch) are answered with a
//! [`WorkerMsg::Protocol`] reply that travels down the chain to the
//! master instead of panicking the thread.

use crate::clock::{real_clock, Clock};
use crate::fault::{FaultAction, FaultInjector, Heartbeats};
use crate::migrate::{kv_to_chunks, CommitDecision, KvAssembler, KvChunkMsg, MigrationHost, WorkerSwap};
use crate::net::transport::{
    ChannelTransport, Transport, TransportRecvError, TransportSendError,
};
use crate::telemetry::{Span, Telemetry};
use crossbeam::channel::{Receiver, Sender};
use llmpq_model::{forward_layer_alibi, KvCache, LayerWeights, Matrix, Phase};
use llmpq_quant::Bitwidth;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Execution counters one stage worker reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Work items processed (micro-batch × step units).
    pub items: usize,
    /// Sequence-forwards executed (items × sequences per item).
    pub seq_forwards: usize,
    /// Seconds spent computing (excludes channel waits).
    pub busy_s: f64,
}

/// Shared collection of per-stage metrics.
pub type MetricsSink = Arc<Mutex<Vec<StageMetrics>>>;

/// Shared board where a stage records that it *lost a work item*
/// because its downstream channel disconnected mid-run. The master
/// engine consults it when an attempt fails, so a silently dropped item
/// surfaces as [`RuntimeError::StageDisconnected`](crate::engine::RuntimeError::StageDisconnected)
/// with the stage that dropped it, instead of a generic worker death.
pub type DisconnectBoard = Arc<Mutex<Vec<usize>>>;

/// Fresh, empty disconnect board.
pub fn disconnect_board() -> DisconnectBoard {
    Arc::new(Mutex::new(Vec::new()))
}

/// Static description of one stage (device + layer shard + precisions).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpec {
    /// First global layer index.
    pub layer_start: usize,
    /// Per-layer precision of the shard.
    pub bits: Vec<Bitwidth>,
}

/// One unit of pipeline work: the hidden states of each sequence of a
/// micro-batch (prefill sends `t×h`, decode `1×h` per sequence).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkItem {
    /// Globally unique, monotonically increasing id the master assigns
    /// per attempt; used to deduplicate duplicated channel messages.
    pub step: u64,
    /// Plan epoch this item belongs to. A worker that committed a live
    /// plan swap drops items from an older epoch instead of appending
    /// them to the wrong KV cache.
    pub epoch: u64,
    /// Micro-batch id (for bookkeeping/tracing).
    pub microbatch: usize,
    /// Generative phase of this item (tags telemetry spans and routes
    /// latency samples to the per-phase histograms).
    pub phase: Phase,
    /// Send timestamp, µs since the telemetry epoch (0 when telemetry is
    /// off); the receiving stage derives its queue-wait span from it.
    pub sent_us: u64,
    /// `(sequence id, hidden states)` pairs.
    pub seqs: Vec<(usize, Matrix)>,
}

/// Messages between stages.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerMsg {
    /// Process and forward.
    Work(WorkItem),
    /// Drain and exit.
    Shutdown,
    /// A protocol violation detected by a stage; forwarded unchanged to
    /// the master, where it surfaces as a `RuntimeError::Protocol`.
    Protocol(String),
    /// Live-swap phase 1 (master → ring): prepare this plan as `epoch`
    /// while the old plan keeps serving.
    PlanPropose {
        /// Epoch of the proposal.
        epoch: u64,
        /// JSON of the proposed `ExecutionPlan`.
        plan_json: String,
    },
    /// Stage acknowledgement riding the ring back to the master:
    /// prepared (`swapped == false`) or installed (`swapped == true`).
    PlanReady {
        /// Epoch being acknowledged.
        epoch: u64,
        /// Acknowledging stage.
        stage: u32,
        /// False = prepared, true = swapped.
        swapped: bool,
    },
    /// Live-swap phase 2 (master → ring, at a token boundary): install
    /// the prepared plan, shipping re-homed KV slices as [`KvChunk`]
    /// frames.
    ///
    /// [`KvChunk`]: WorkerMsg::KvChunk
    PlanCommit {
        /// Epoch being committed.
        epoch: u64,
    },
    /// Tear down the proposal for `epoch`; the old plan keeps serving.
    PlanAbort {
        /// Epoch being aborted.
        epoch: u64,
        /// Why the proposal died.
        reason: String,
    },
    /// One migrating KV fragment (commit window only).
    KvChunk(KvChunkMsg),
    /// Master → ring: clear the KV cache of sequence slot `seq` so the
    /// continuous-serving engine can reuse the slot for a new request.
    /// Forwarded around the ring; the master sinks the echo.
    KvReset {
        /// Worker-side sequence slot to clear.
        seq: usize,
    },
}

/// Everything a supervised stage worker needs besides its weights and
/// channels.
#[derive(Clone)]
pub struct WorkerCtx {
    /// Pipeline stage index.
    pub stage: usize,
    /// Cluster device id hosting the stage (for device-loss injection).
    pub device: usize,
    /// Attention heads of the model.
    pub n_heads: usize,
    /// Hidden width of the model.
    pub hidden: usize,
    /// Whether attention uses ALiBi biases.
    pub alibi: bool,
    /// Number of in-flight sequences (bounds sequence ids).
    pub n_seqs: usize,
    /// Fault injection, if this run is under test.
    pub injector: Option<Arc<FaultInjector>>,
    /// Heartbeat board, if this run is supervised.
    pub heartbeats: Option<Arc<Heartbeats>>,
    /// Metrics sink, if metrics are collected.
    pub sink: Option<MetricsSink>,
    /// Observability hub, if this run is traced (see
    /// [`crate::telemetry`]).
    pub telemetry: Option<Arc<Telemetry>>,
    /// Bitwidth label of this stage's shard (e.g. `"int4,int8"`), tagged
    /// onto trace spans.
    pub bits: Arc<str>,
    /// Receive-timeout granularity: how often an idle worker wakes to
    /// heartbeat and check the abort flag. With bounded queues it is
    /// also the send-retry granularity under backpressure.
    pub tick: Duration,
    /// Disconnect board, if the run wants dropped-item attribution.
    pub disconnects: Option<DisconnectBoard>,
    /// Time source for compute timing and injected sleeps: wall clock in
    /// production, virtual under [`crate::simnet`].
    pub clock: Arc<dyn Clock>,
    /// First global layer of this stage's shard (global↔local layer
    /// translation during KV handoff).
    pub layer_start: usize,
    /// Live-migration support: the checkpoint + quantizer settings this
    /// worker prepares proposed plans from. `None` = plan-swap messages
    /// are refused with a typed `PlanAbort`.
    pub migration: Option<Arc<MigrationHost>>,
}

impl WorkerCtx {
    /// Plain context: no faults, no heartbeats, no metrics.
    pub fn plain(stage: usize, n_heads: usize, hidden: usize, alibi: bool, n_seqs: usize) -> Self {
        Self {
            stage,
            device: stage,
            n_heads,
            hidden,
            alibi,
            n_seqs,
            injector: None,
            heartbeats: None,
            sink: None,
            telemetry: None,
            bits: Arc::from(""),
            tick: Duration::from_millis(5),
            disconnects: None,
            clock: real_clock(),
            layer_start: 0,
            migration: None,
        }
    }
}

/// Send `msg` downstream, honoring bounded-queue backpressure: a full
/// queue blocks in `tick`-sized slices, heartbeating between tries so a
/// backpressured (but healthy) stage is never mistaken for a hung one,
/// and bailing out if the attempt was aborted. Returns `false` when the
/// message could not be delivered. A *disconnected* downstream is
/// recorded on the ctx's [`DisconnectBoard`] when `note_drop` is set
/// (work items and protocol replies — real losses; shutdown forwards
/// during teardown are not).
fn send_downstream<T: Transport>(ctx: &WorkerCtx, out: &T, msg: WorkerMsg, note_drop: bool) -> bool {
    let mut msg = msg;
    loop {
        match out.send_msg(msg, ctx.tick) {
            Ok(()) => return true,
            Err(TransportSendError::Disconnected) => {
                if note_drop {
                    if let Some(board) = &ctx.disconnects {
                        board.lock().push(ctx.stage);
                    }
                }
                return false;
            }
            Err(TransportSendError::Timeout(m)) => {
                msg = m;
                if let Some(hb) = &ctx.heartbeats {
                    hb.beat(ctx.stage);
                }
                out.beat();
                if ctx.injector.as_ref().is_some_and(|i| i.aborted()) {
                    return false;
                }
            }
        }
    }
}

/// Run a stage worker until shutdown, upstream disconnect, or abort.
/// Convenience wrapper over [`run_worker_ctx`] without supervision.
pub fn run_worker(
    weights: &[LayerWeights],
    n_heads: usize,
    hidden: usize,
    alibi: bool,
    n_seqs: usize,
    input: Receiver<WorkerMsg>,
    output: Sender<WorkerMsg>,
) {
    run_worker_ctx(weights, &WorkerCtx::plain(0, n_heads, hidden, alibi, n_seqs), input, output)
}

/// The supervised stage-worker loop over an in-process channel pair.
/// Wraps the channels in a [`ChannelTransport`] (with link accounting
/// when the ctx is traced: inbound edge = link `stage`, outbound edge =
/// link `stage + 1`) and runs [`run_worker_transport`].
pub fn run_worker_ctx(
    weights: &[LayerWeights],
    ctx: &WorkerCtx,
    input: Receiver<WorkerMsg>,
    output: Sender<WorkerMsg>,
) {
    let transport = ChannelTransport::observed(
        input,
        output,
        ctx.telemetry.clone(),
        ctx.stage,
        ctx.stage + 1,
    );
    run_worker_transport(weights, ctx, &transport)
}

/// What a committed live swap installed on a worker.
struct SwapInstall {
    weights: Vec<LayerWeights>,
    layer_start: usize,
    caches: Vec<KvCache>,
}

/// Execute the commit window on a worker: ship KV slices of layers
/// leaving this stage downstream as bit-exact chunks, collect the
/// slices of layers arriving here (reassembled across fragmentation,
/// duplicates deduplicated), and hand back the target shard ready to
/// install. `Err(())` means the attempt is lost (disconnect, abort,
/// deadline) — the caller exits the worker and the supervisor recovers
/// on the *target* plan, which is authoritative once commit was sent.
fn execute_swap<T: Transport>(
    ctx: &WorkerCtx,
    link: &T,
    prepared: crate::migrate::PreparedPlan,
    cur_start: usize,
    caches: &mut [KvCache],
) -> Result<SwapInstall, ()> {
    let epoch = prepared.epoch;
    let cur_end = cur_start + caches.first().map_or(0, |c| c.k.len());
    let (new_start, new_end) = (prepared.layer_start, prepared.layer_end);
    let n_new = new_end - new_start;
    let mut new_caches: Vec<KvCache> =
        (0..ctx.n_seqs).map(|_| KvCache::new(n_new, ctx.hidden)).collect();
    // Kept layers move locally; leaving layers ship downstream.
    for (seq, cache) in caches.iter_mut().enumerate() {
        for gl in cur_start..cur_end {
            let li = gl - cur_start;
            if (new_start..new_end).contains(&gl) {
                let nli = gl - new_start;
                new_caches[seq].k[nli] = std::mem::replace(&mut cache.k[li], Matrix::zeros(0, ctx.hidden));
                new_caches[seq].v[nli] = std::mem::replace(&mut cache.v[li], Matrix::zeros(0, ctx.hidden));
            } else {
                for c in kv_to_chunks(epoch, seq as u32, gl as u32, &cache.k[li], &cache.v[li]) {
                    if !send_downstream(ctx, link, WorkerMsg::KvChunk(c), true) {
                        return Err(());
                    }
                }
            }
        }
    }
    // Await the slices of layers arriving at this stage.
    let expected: Vec<(u32, u32)> = (0..ctx.n_seqs as u32)
        .flat_map(|seq| {
            (new_start..new_end)
                .filter(|gl| !(cur_start..cur_end).contains(gl))
                .map(move |gl| (seq, gl as u32))
        })
        .collect();
    let mut asm = KvAssembler::new(epoch, &expected);
    let host = ctx.migration.as_ref().expect("prepared implies a migration host");
    let deadline = ctx.clock.now() + host.commit_timeout;
    while !asm.done() {
        if ctx.injector.as_ref().is_some_and(|i| i.aborted()) || ctx.clock.now() > deadline {
            return Err(());
        }
        match link.recv_msg(ctx.tick) {
            Ok(WorkerMsg::KvChunk(c)) => {
                let mine = c.epoch == epoch
                    && (new_start..new_end).contains(&(c.layer as usize))
                    && !(cur_start..cur_end).contains(&(c.layer as usize));
                if !mine {
                    if c.epoch >= epoch {
                        // In transit to another stage: keep it moving.
                        if !send_downstream(ctx, link, WorkerMsg::KvChunk(c), true) {
                            return Err(());
                        }
                    }
                    continue; // stale epoch: drop
                }
                match asm.push(c) {
                    Ok(Some((seq, layer, k, v))) => {
                        let nli = layer as usize - new_start;
                        new_caches[seq as usize].k[nli] = k;
                        new_caches[seq as usize].v[nli] = v;
                    }
                    Ok(None) => {}
                    Err(reason) => {
                        // Corrupt handoff: typed abort toward the master,
                        // then fail the attempt (commit already passed the
                        // point of no return).
                        let m = WorkerMsg::PlanAbort {
                            epoch,
                            reason: format!("stage {}: {reason}", ctx.stage),
                        };
                        send_downstream(ctx, link, m, true);
                        return Err(());
                    }
                }
            }
            // Ring traffic keeps flowing through the commit window.
            Ok(m @ (WorkerMsg::PlanReady { .. }
            | WorkerMsg::PlanPropose { .. }
            | WorkerMsg::PlanCommit { .. }
            | WorkerMsg::KvReset { .. }
            | WorkerMsg::Protocol(_))) => {
                if !send_downstream(ctx, link, m, true) {
                    return Err(());
                }
            }
            Ok(m @ WorkerMsg::PlanAbort { .. }) => {
                // Post-commit abort: propagate, then fail the attempt —
                // KV already left this stage, rollback is impossible; the
                // supervisor restarts on the committed plan.
                send_downstream(ctx, link, m, true);
                return Err(());
            }
            Ok(WorkerMsg::Work(_)) => {
                // The pipeline is quiescent at the boundary; only
                // fault-injected duplicates can appear here. Drop them —
                // their step was already processed.
            }
            Ok(WorkerMsg::Shutdown) => {
                send_downstream(ctx, link, WorkerMsg::Shutdown, false);
                return Err(());
            }
            Err(TransportRecvError::Timeout) => {
                if let Some(hb) = &ctx.heartbeats {
                    hb.beat(ctx.stage);
                }
                link.beat();
            }
            Err(TransportRecvError::Disconnected) => return Err(()),
        }
    }
    Ok(SwapInstall { weights: prepared.weights, layer_start: new_start, caches: new_caches })
}

/// The supervised stage-worker loop, generic over the transport that
/// carries its messages — the same loop drives an in-process thread and
/// a stage process on the other end of a TCP link.
pub fn run_worker_transport<T: Transport>(weights: &[LayerWeights], ctx: &WorkerCtx, link: &T) {
    let mut n_local = weights.len();
    // Pre-allocated per-sequence caches, local layer indexing.
    let mut caches: Vec<KvCache> = (0..ctx.n_seqs).map(|_| KvCache::new(n_local, ctx.hidden)).collect();
    // Live-swap state: `owned` overlays the borrowed startup weights
    // once a swap installs a requantized shard.
    let mut swap = WorkerSwap::new();
    let mut owned: Option<Vec<LayerWeights>> = None;
    let mut layer_start = ctx.layer_start;
    let mut metrics = StageMetrics::default();
    let mut slowdown = 1.0f64;
    let mut last_step: Option<u64> = None;
    let flush = |m: &StageMetrics| {
        if let Some(sink) = &ctx.sink {
            let mut guard = sink.lock();
            if ctx.stage < guard.len() {
                guard[ctx.stage] = *m;
            }
        }
    };
    let beat = || {
        if let Some(hb) = &ctx.heartbeats {
            hb.beat(ctx.stage);
        }
        link.beat();
    };
    let aborted = || ctx.injector.as_ref().is_some_and(|i| i.aborted());
    beat();
    loop {
        if aborted() {
            flush(&metrics);
            return;
        }
        let msg = match link.recv_msg(ctx.tick) {
            Ok(m) => m,
            Err(TransportRecvError::Timeout) => {
                beat();
                continue;
            }
            Err(TransportRecvError::Disconnected) => {
                flush(&metrics);
                return;
            }
        };
        beat();
        match msg {
            WorkerMsg::Shutdown => {
                flush(&metrics);
                // Teardown: a downstream that is already gone is not a
                // lost work item, so no disconnect note.
                send_downstream(ctx, link, WorkerMsg::Shutdown, false);
                return;
            }
            WorkerMsg::Protocol(e) => {
                // Propagate toward the master; losing the reply would
                // hide the violation, so a disconnect is recorded.
                if !send_downstream(ctx, link, WorkerMsg::Protocol(e), true) {
                    flush(&metrics);
                    return;
                }
            }
            WorkerMsg::PlanPropose { epoch, plan_json } => {
                // Ring rule: forward first so every stage prepares in
                // parallel, then prepare locally.
                let fwd = WorkerMsg::PlanPropose { epoch, plan_json: plan_json.clone() };
                if !send_downstream(ctx, link, fwd, true) {
                    flush(&metrics);
                    return;
                }
                let reply = match &ctx.migration {
                    Some(host) => match swap.on_propose(host, ctx.stage, epoch, &plan_json) {
                        Ok(true) => {
                            Some(WorkerMsg::PlanReady { epoch, stage: ctx.stage as u32, swapped: false })
                        }
                        Ok(false) => None, // duplicate / stale, already handled
                        Err(reason) => Some(WorkerMsg::PlanAbort { epoch, reason }),
                    },
                    None => Some(WorkerMsg::PlanAbort {
                        epoch,
                        reason: format!("stage {}: no migration host", ctx.stage),
                    }),
                };
                if let Some(m) = reply {
                    if !send_downstream(ctx, link, m, true) {
                        flush(&metrics);
                        return;
                    }
                }
            }
            WorkerMsg::PlanReady { epoch, stage, swapped } => {
                // Another stage's acknowledgement riding to the master.
                if !send_downstream(ctx, link, WorkerMsg::PlanReady { epoch, stage, swapped }, true) {
                    flush(&metrics);
                    return;
                }
            }
            WorkerMsg::PlanAbort { epoch, reason } => {
                let fwd = WorkerMsg::PlanAbort { epoch, reason };
                if !send_downstream(ctx, link, fwd, true) {
                    flush(&metrics);
                    return;
                }
                swap.on_abort(epoch); // old plan keeps serving untouched
            }
            WorkerMsg::PlanCommit { epoch } => {
                // Forward first: downstream stages must enter their
                // commit windows before this stage's KV chunks arrive.
                if !send_downstream(ctx, link, WorkerMsg::PlanCommit { epoch }, true) {
                    flush(&metrics);
                    return;
                }
                match swap.decide_commit(epoch) {
                    CommitDecision::Ignore => {}
                    CommitDecision::Abort(reason) => {
                        let m = WorkerMsg::PlanAbort {
                            epoch,
                            reason: format!("stage {}: {reason}", ctx.stage),
                        };
                        if !send_downstream(ctx, link, m, true) {
                            flush(&metrics);
                            return;
                        }
                    }
                    CommitDecision::Swap => {
                        let prepared = swap.prepared.take().expect("decide_commit checked");
                        match execute_swap(ctx, link, prepared, layer_start, &mut caches) {
                            Ok(install) => {
                                layer_start = install.layer_start;
                                n_local = install.weights.len();
                                owned = Some(install.weights);
                                caches = install.caches;
                                swap.active_epoch = epoch;
                                let m = WorkerMsg::PlanReady {
                                    epoch,
                                    stage: ctx.stage as u32,
                                    swapped: true,
                                };
                                if !send_downstream(ctx, link, m, true) {
                                    flush(&metrics);
                                    return;
                                }
                            }
                            Err(()) => {
                                // Post-commit failure: the attempt is
                                // lost; the supervisor restarts on the
                                // committed plan.
                                flush(&metrics);
                                return;
                            }
                        }
                    }
                }
            }
            WorkerMsg::KvChunk(c) => {
                // Not in a commit window here: the chunk is in transit to
                // another stage (or a stale duplicate the master will
                // sink) — keep it moving around the ring.
                if !send_downstream(ctx, link, WorkerMsg::KvChunk(c), true) {
                    flush(&metrics);
                    return;
                }
            }
            WorkerMsg::KvReset { seq } => {
                // Sequence retired by the serving engine: clear its slot
                // so the next request reusing it starts from empty KV.
                if seq < caches.len() {
                    caches[seq] = KvCache::new(n_local, ctx.hidden);
                }
                if !send_downstream(ctx, link, WorkerMsg::KvReset { seq }, true) {
                    flush(&metrics);
                    return;
                }
            }
            WorkerMsg::Work(mut item) => {
                let tel = ctx.telemetry.as_deref();
                let rec = tel.and_then(|t| t.stage(ctx.stage));
                if let Some(r) = rec {
                    r.on_dequeue();
                }
                if item.epoch < swap.active_epoch {
                    // A straggler from before (or duplicate racing past) a
                    // committed swap: its activations were computed against
                    // the old plan — touching the new caches would corrupt
                    // them.
                    continue;
                }
                // A *higher* epoch means this worker was (re)started into a
                // pipeline whose plan already committed swaps — the
                // lock-step commit barrier guarantees no old-epoch work can
                // follow it, so adopting is safe.
                swap.active_epoch = item.epoch;
                if last_step == Some(item.step) {
                    // Duplicated channel message: already processed.
                    continue;
                }
                if let Some(&(seq, _)) = item.seqs.iter().find(|(s, _)| *s >= ctx.n_seqs) {
                    let report = WorkerMsg::Protocol(format!(
                        "stage {}: sequence id {seq} out of range (batch has {})",
                        ctx.stage, ctx.n_seqs
                    ));
                    if !send_downstream(ctx, link, report, true) {
                        flush(&metrics);
                        return;
                    }
                    continue;
                }
                let mut duplicate = false;
                match ctx
                    .injector
                    .as_ref()
                    .map_or(FaultAction::None, |i| i.on_item(ctx.stage, ctx.device, metrics.items))
                {
                    FaultAction::Crash => {
                        // Simulated crash: drop channels without draining.
                        flush(&metrics);
                        return;
                    }
                    FaultAction::Hang => {
                        // Wedged, not dead: stop heartbeating and stop
                        // reading, but keep the channels open so the
                        // failure is invisible to disconnect detection.
                        while !aborted() {
                            ctx.clock.sleep(Duration::from_micros(200));
                        }
                        flush(&metrics);
                        return;
                    }
                    FaultAction::Slowdown(f) => slowdown = f,
                    FaultAction::Drop => continue,
                    FaultAction::Duplicate => duplicate = true,
                    FaultAction::None => {}
                }
                last_step = Some(item.step);
                if let Some(t) = tel {
                    // Queue-wait span: send stamp → dequeue.
                    let now = t.now_us();
                    t.record_span(Span {
                        tid: ctx.stage + 1,
                        name: "wait",
                        phase: item.phase,
                        ts_us: item.sent_us.min(now),
                        dur_us: now.saturating_sub(item.sent_us),
                        step: item.step,
                        microbatch: item.microbatch,
                        bits: ctx.bits.clone(),
                    });
                }
                let compute_start = tel.map(|t| t.now_us());
                let t0 = ctx.clock.now();
                let active: &[LayerWeights] = owned.as_deref().unwrap_or(weights);
                for (seq, x) in item.seqs.iter_mut() {
                    let mut h = x.clone();
                    for (l, w) in active.iter().enumerate() {
                        h = forward_layer_alibi(w, ctx.n_heads, l, &h, &mut caches[*seq], ctx.alibi);
                    }
                    *x = h;
                    metrics.seq_forwards += 1;
                }
                let elapsed = ctx.clock.now().saturating_sub(t0);
                if slowdown > 1.0 {
                    // Straggler injection: pad compute to factor × real.
                    ctx.clock.sleep(elapsed.mul_f64(slowdown - 1.0));
                }
                metrics.items += 1;
                metrics.busy_s += elapsed.as_secs_f64() * slowdown;
                if let (Some(t), Some(start)) = (tel, compute_start) {
                    let dur = t.now_us().saturating_sub(start);
                    if let Some(r) = rec {
                        r.on_compute(item.phase, dur, item.seqs.len());
                        // KV occupancy: cached positions summed over
                        // every sequence × local layers.
                        let positions: u64 = caches.iter().map(|c| c.len() as u64).sum();
                        r.set_kv_entries(positions * n_local as u64);
                    }
                    t.record_span(Span {
                        tid: ctx.stage + 1,
                        name: "compute",
                        phase: item.phase,
                        ts_us: start,
                        dur_us: dur,
                        step: item.step,
                        microbatch: item.microbatch,
                        bits: ctx.bits.clone(),
                    });
                }
                flush(&metrics);
                beat();
                let send_start = tel.map(|t| t.now_us());
                if let (Some(t), Some(ts)) = (tel, send_start) {
                    // Restamp so the next stage's wait span starts here.
                    item.sent_us = ts;
                    if let Some(next) = t.stage(ctx.stage + 1) {
                        next.on_enqueue();
                        if duplicate {
                            next.on_enqueue();
                        }
                    }
                }
                let (step, microbatch, phase) = (item.step, item.microbatch, item.phase);
                if duplicate && !send_downstream(ctx, link, WorkerMsg::Work(item.clone()), true) {
                    flush(&metrics);
                    return;
                }
                if !send_downstream(ctx, link, WorkerMsg::Work(item), true) {
                    flush(&metrics);
                    return; // downstream gone; drop recorded on the board
                }
                if let (Some(t), Some(ts)) = (tel, send_start) {
                    t.record_span(Span {
                        tid: ctx.stage + 1,
                        name: "send",
                        phase,
                        ts_us: ts,
                        dur_us: t.now_us().saturating_sub(ts),
                        step,
                        microbatch,
                        bits: ctx.bits.clone(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crossbeam::channel::unbounded;
    use llmpq_model::{RefConfig, RefModel};

    fn item(step: u64, seqs: Vec<(usize, Matrix)>) -> WorkItem {
        WorkItem { step, epoch: 0, microbatch: 0, phase: Phase::Prefill, sent_us: 0, seqs }
    }

    /// Receive the next Work item or report the message that arrived
    /// instead — no panic paths in the happy-path tests.
    fn recv_work(rx: &Receiver<WorkerMsg>) -> Result<WorkItem, String> {
        match rx.recv() {
            Ok(WorkerMsg::Work(i)) => Ok(i),
            Ok(WorkerMsg::Protocol(e)) => Err(format!("protocol error: {e}")),
            Ok(WorkerMsg::Shutdown) => Err("premature shutdown".into()),
            Ok(other) => Err(format!("unexpected message: {other:?}")),
            Err(_) => Err("disconnected".into()),
        }
    }

    #[test]
    fn worker_forwards_transformed_hidden_states() {
        let model = RefModel::new(RefConfig::tiny());
        let (tx_in, rx_in) = unbounded();
        let (tx_out, rx_out) = unbounded();
        let weights = vec![model.layers[0].clone()];
        let x = model.embed_tokens(&[1, 2, 3], 0);
        tx_in.send(WorkerMsg::Work(item(0, vec![(0, x.clone())]))).unwrap();
        tx_in.send(WorkerMsg::Shutdown).unwrap();
        run_worker(&weights, model.cfg.n_heads, model.cfg.hidden, false, 1, rx_in, tx_out);

        let got = recv_work(&rx_out).expect("work item");
        // Must equal a direct single-layer forward.
        let mut cache = llmpq_model::KvCache::new(1, model.cfg.hidden);
        let want = forward_layer_alibi(&weights[0], model.cfg.n_heads, 0, &x, &mut cache, false);
        assert_eq!(got.seqs[0].1, want);
        assert!(matches!(rx_out.recv().unwrap(), WorkerMsg::Shutdown));
    }

    #[test]
    fn worker_keeps_kv_state_across_items() {
        // Two sequential decode items for the same sequence must attend
        // to the accumulated cache — outputs differ from a fresh cache.
        let model = RefModel::new(RefConfig::tiny());
        let weights = vec![model.layers[0].clone()];
        let (tx_in, rx_in) = unbounded();
        let (tx_out, rx_out) = unbounded();
        let x1 = model.embed_tokens(&[5], 0);
        let x2 = model.embed_tokens(&[9], 1);
        tx_in.send(WorkerMsg::Work(item(0, vec![(0, x1)]))).unwrap();
        tx_in.send(WorkerMsg::Work(item(1, vec![(0, x2.clone())]))).unwrap();
        tx_in.send(WorkerMsg::Shutdown).unwrap();
        run_worker(&weights, model.cfg.n_heads, model.cfg.hidden, false, 1, rx_in, tx_out);
        let _first = recv_work(&rx_out).expect("first item");
        let second = recv_work(&rx_out).expect("second item").seqs[0].1.clone();
        // Fresh-cache forward of x2 alone gives a different answer.
        let mut fresh = llmpq_model::KvCache::new(1, model.cfg.hidden);
        let lone = forward_layer_alibi(&weights[0], model.cfg.n_heads, 0, &x2, &mut fresh, false);
        assert_ne!(second, lone, "cache state must influence decode");
    }

    #[test]
    fn injected_crash_drops_channel() {
        let model = RefModel::new(RefConfig::tiny());
        let weights = vec![model.layers[0].clone()];
        let (tx_in, rx_in) = unbounded();
        let (tx_out, rx_out) = unbounded();
        let x = model.embed_tokens(&[1], 0);
        tx_in.send(WorkerMsg::Work(item(0, vec![(0, x)]))).unwrap();
        let mut ctx = WorkerCtx::plain(0, model.cfg.n_heads, model.cfg.hidden, false, 1);
        ctx.injector = Some(crate::fault::FaultInjector::new(&FaultPlan::crash(0, 0)));
        run_worker_ctx(&weights, &ctx, rx_in, tx_out);
        // Worker died before processing: output channel disconnects
        // without delivering work.
        assert!(rx_out.recv().is_err());
    }

    #[test]
    fn duplicate_deliveries_are_deduplicated() {
        // The same step id twice: the second copy must be skipped, not
        // re-run through the KV cache.
        let model = RefModel::new(RefConfig::tiny());
        let weights = vec![model.layers[0].clone()];
        let (tx_in, rx_in) = unbounded();
        let (tx_out, rx_out) = unbounded();
        let x1 = model.embed_tokens(&[5], 0);
        let x2 = model.embed_tokens(&[9], 1);
        tx_in.send(WorkerMsg::Work(item(0, vec![(0, x1.clone())]))).unwrap();
        tx_in.send(WorkerMsg::Work(item(0, vec![(0, x1)]))).unwrap();
        tx_in.send(WorkerMsg::Work(item(1, vec![(0, x2)]))).unwrap();
        tx_in.send(WorkerMsg::Shutdown).unwrap();
        run_worker(&weights, model.cfg.n_heads, model.cfg.hidden, false, 1, rx_in, tx_out);
        let mut works = 0;
        while let Ok(msg) = rx_out.recv() {
            match msg {
                WorkerMsg::Work(_) => works += 1,
                WorkerMsg::Shutdown => break,
                WorkerMsg::Protocol(e) => panic!("unexpected protocol error: {e}"),
                other => panic!("unexpected message: {other:?}"),
            }
        }
        assert_eq!(works, 2, "duplicate must be swallowed");
    }

    #[test]
    fn out_of_range_sequence_reports_protocol_error() {
        let model = RefModel::new(RefConfig::tiny());
        let weights = vec![model.layers[0].clone()];
        let (tx_in, rx_in) = unbounded();
        let (tx_out, rx_out) = unbounded();
        let x = model.embed_tokens(&[1], 0);
        // Sequence id 5 in a batch of 1: protocol violation.
        tx_in.send(WorkerMsg::Work(item(0, vec![(5, x)]))).unwrap();
        tx_in.send(WorkerMsg::Shutdown).unwrap();
        run_worker(&weights, model.cfg.n_heads, model.cfg.hidden, false, 1, rx_in, tx_out);
        match rx_out.recv().unwrap() {
            WorkerMsg::Protocol(e) => assert!(e.contains("out of range"), "{e}"),
            other => panic!("violation must surface as a protocol reply, got {other:?}"),
        }
    }

    #[test]
    fn protocol_errors_propagate_downstream() {
        let model = RefModel::new(RefConfig::tiny());
        let weights = vec![model.layers[0].clone()];
        let (tx_in, rx_in) = unbounded();
        let (tx_out, rx_out) = unbounded();
        tx_in.send(WorkerMsg::Protocol("upstream failed".into())).unwrap();
        tx_in.send(WorkerMsg::Shutdown).unwrap();
        run_worker(&weights, model.cfg.n_heads, model.cfg.hidden, false, 1, rx_in, tx_out);
        assert!(matches!(rx_out.recv().unwrap(), WorkerMsg::Protocol(e) if e == "upstream failed"));
    }
}
