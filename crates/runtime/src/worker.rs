//! Stage workers: each owns a shard of decoder layers and the KV caches
//! for every in-flight sequence, and processes work items from the
//! previous stage asynchronously.

use crossbeam::channel::{Receiver, Sender};
use llmpq_model::{forward_layer_alibi, KvCache, LayerWeights, Matrix};
use llmpq_quant::Bitwidth;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Execution counters one stage worker reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Work items processed (micro-batch × step units).
    pub items: usize,
    /// Sequence-forwards executed (items × sequences per item).
    pub seq_forwards: usize,
    /// Seconds spent computing (excludes channel waits).
    pub busy_s: f64,
}

/// Shared collection of per-stage metrics.
pub type MetricsSink = Arc<Mutex<Vec<StageMetrics>>>;

/// Static description of one stage (device + layer shard + precisions).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpec {
    /// First global layer index.
    pub layer_start: usize,
    /// Per-layer precision of the shard.
    pub bits: Vec<Bitwidth>,
}

/// One unit of pipeline work: the hidden states of each sequence of a
/// micro-batch (prefill sends `t×h`, decode `1×h` per sequence).
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// Micro-batch id (for bookkeeping/tracing).
    pub microbatch: usize,
    /// `(sequence id, hidden states)` pairs.
    pub seqs: Vec<(usize, Matrix)>,
}

/// Messages between stages.
#[derive(Debug)]
pub enum WorkerMsg {
    /// Process and forward.
    Work(WorkItem),
    /// Drain and exit.
    Shutdown,
}

/// Run a stage worker until shutdown. `n_seqs` bounds the sequence ids;
/// `fail_after` optionally makes the worker die after that many items
/// (failure-injection hook for tests).
#[allow(clippy::too_many_arguments)]
pub fn run_worker(
    weights: &[LayerWeights],
    n_heads: usize,
    hidden: usize,
    alibi: bool,
    n_seqs: usize,
    input: Receiver<WorkerMsg>,
    output: Sender<WorkerMsg>,
    fail_after: Option<usize>,
) {
    run_worker_metered(weights, n_heads, hidden, alibi, n_seqs, input, output, fail_after, None, 0)
}

/// [`run_worker`] with metrics reporting: the worker's counters are
/// flushed into `sink[stage_idx]` whenever they change.
#[allow(clippy::too_many_arguments)]
pub fn run_worker_metered(
    weights: &[LayerWeights],
    n_heads: usize,
    hidden: usize,
    alibi: bool,
    n_seqs: usize,
    input: Receiver<WorkerMsg>,
    output: Sender<WorkerMsg>,
    fail_after: Option<usize>,
    sink: Option<MetricsSink>,
    stage_idx: usize,
) {
    let n_local = weights.len();
    // Pre-allocated per-sequence caches, local layer indexing.
    let mut caches: Vec<KvCache> = (0..n_seqs).map(|_| KvCache::new(n_local, hidden)).collect();
    let mut metrics = StageMetrics::default();
    let flush = |m: &StageMetrics| {
        if let Some(sink) = &sink {
            let mut guard = sink.lock();
            if stage_idx < guard.len() {
                guard[stage_idx] = *m;
            }
        }
    };
    while let Ok(msg) = input.recv() {
        match msg {
            WorkerMsg::Shutdown => {
                flush(&metrics);
                let _ = output.send(WorkerMsg::Shutdown);
                return;
            }
            WorkerMsg::Work(mut item) => {
                if let Some(limit) = fail_after {
                    if metrics.items >= limit {
                        // Simulated crash: drop channels without draining.
                        return;
                    }
                }
                let t0 = std::time::Instant::now();
                for (seq, x) in item.seqs.iter_mut() {
                    let mut h = x.clone();
                    for (l, w) in weights.iter().enumerate() {
                        h = forward_layer_alibi(w, n_heads, l, &h, &mut caches[*seq], alibi);
                    }
                    *x = h;
                    metrics.seq_forwards += 1;
                }
                metrics.items += 1;
                metrics.busy_s += t0.elapsed().as_secs_f64();
                flush(&metrics);
                if output.send(WorkerMsg::Work(item)).is_err() {
                    return; // downstream gone
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use llmpq_model::{RefConfig, RefModel};

    #[test]
    fn worker_forwards_transformed_hidden_states() {
        let model = RefModel::new(RefConfig::tiny());
        let (tx_in, rx_in) = unbounded();
        let (tx_out, rx_out) = unbounded();
        let weights = vec![model.layers[0].clone()];
        let x = model.embed_tokens(&[1, 2, 3], 0);
        tx_in
            .send(WorkerMsg::Work(WorkItem { microbatch: 0, seqs: vec![(0, x.clone())] }))
            .unwrap();
        tx_in.send(WorkerMsg::Shutdown).unwrap();
        run_worker(&weights, model.cfg.n_heads, model.cfg.hidden, false, 1, rx_in, tx_out, None);

        match rx_out.recv().unwrap() {
            WorkerMsg::Work(item) => {
                // Must equal a direct single-layer forward.
                let mut cache = llmpq_model::KvCache::new(1, model.cfg.hidden);
                let want = forward_layer_alibi(&weights[0], model.cfg.n_heads, 0, &x, &mut cache, false);
                assert_eq!(item.seqs[0].1, want);
            }
            other => panic!("expected work, got {other:?}"),
        }
        assert!(matches!(rx_out.recv().unwrap(), WorkerMsg::Shutdown));
    }

    #[test]
    fn worker_keeps_kv_state_across_items() {
        // Two sequential decode items for the same sequence must attend
        // to the accumulated cache — outputs differ from a fresh cache.
        let model = RefModel::new(RefConfig::tiny());
        let weights = vec![model.layers[0].clone()];
        let (tx_in, rx_in) = unbounded();
        let (tx_out, rx_out) = unbounded();
        let x1 = model.embed_tokens(&[5], 0);
        let x2 = model.embed_tokens(&[9], 1);
        tx_in.send(WorkerMsg::Work(WorkItem { microbatch: 0, seqs: vec![(0, x1)] })).unwrap();
        tx_in
            .send(WorkerMsg::Work(WorkItem { microbatch: 0, seqs: vec![(0, x2.clone())] }))
            .unwrap();
        tx_in.send(WorkerMsg::Shutdown).unwrap();
        run_worker(&weights, model.cfg.n_heads, model.cfg.hidden, false, 1, rx_in, tx_out, None);
        let _first = rx_out.recv().unwrap();
        let second = match rx_out.recv().unwrap() {
            WorkerMsg::Work(i) => i.seqs[0].1.clone(),
            other => panic!("{other:?}"),
        };
        // Fresh-cache forward of x2 alone gives a different answer.
        let mut fresh = llmpq_model::KvCache::new(1, model.cfg.hidden);
        let lone = forward_layer_alibi(&weights[0], model.cfg.n_heads, 0, &x2, &mut fresh, false);
        assert_ne!(second, lone, "cache state must influence decode");
    }

    #[test]
    fn fail_after_drops_channel() {
        let model = RefModel::new(RefConfig::tiny());
        let weights = vec![model.layers[0].clone()];
        let (tx_in, rx_in) = unbounded();
        let (tx_out, rx_out) = unbounded();
        let x = model.embed_tokens(&[1], 0);
        tx_in.send(WorkerMsg::Work(WorkItem { microbatch: 0, seqs: vec![(0, x)] })).unwrap();
        run_worker(&weights, model.cfg.n_heads, model.cfg.hidden, false, 1, rx_in, tx_out, Some(0));
        // Worker died before processing: output channel disconnects
        // without delivering work.
        assert!(rx_out.recv().is_err());
    }
}
