//! The master engine and pipeline orchestration.
//!
//! The master (paper §3) handles pre- and post-processing — embedding
//! lookup, logits projection, greedy token selection — and the
//! micro-batch manager, which chunks the global batch with *different*
//! micro-batch sizes for prefill and decode (hybrid micro-batch sizing).
//! Stage workers run on their own threads and communicate through
//! asynchronous channels, mirroring the paper's per-GPU worker
//! processes.
//!
//! Failure injection goes through the [`crate::fault::FaultPlan`] DSL
//! (which replaced the earlier ad-hoc `fail_stage_after` /
//! `fail_schedule` tuples). [`run_pipeline`] and
//! [`run_pipeline_recoverable`] detect failures by channel disconnect
//! only; [`crate::supervisor::run_pipeline_supervised`] adds heartbeat
//! and progress timeouts so hung stages and dropped messages are caught
//! too, plus replan-on-device-loss.

use crate::clock::{real_clock, Clock};
use crate::fault::{FaultInjector, FaultPlan, Heartbeats};
use crate::loader::{load_stage_weights, LoaderStats};
use crate::migrate::{MigrationCoordinator, MigrationHost};
use crate::net::transport::{ChannelTransport, Transport, TransportRecvError, TransportSendError};
use crate::telemetry::{Span, Telemetry};
use crate::worker::{
    disconnect_board, run_worker_ctx, MetricsSink, StageMetrics, WorkItem, WorkerCtx, WorkerMsg,
};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use llm_pq::{ExecutionPlan, StagePlan};
use llmpq_model::{Matrix, Phase, RefModel};
use llmpq_quant::Rounding;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

/// Runtime failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuntimeError {
    /// The plan does not match the model or batch.
    BadPlan(String),
    /// A stage worker died or disconnected.
    WorkerDied(String),
    /// A stage stopped heartbeating within the supervisor's timeout —
    /// hung, not dead: its channels were still connected.
    StageHung(usize),
    /// The pipeline made no progress within the supervisor's progress
    /// timeout (e.g. a message was lost in transit).
    Stalled(String),
    /// A stage reported a protocol violation.
    Protocol(String),
    /// A device was lost permanently and no replan could route around
    /// it.
    DeviceLost(usize),
    /// A stage dropped a work item because its downstream channel
    /// disconnected mid-run (the downstream stage died). The payload is
    /// the stage that *lost* the item; see
    /// [`DisconnectBoard`](crate::worker::DisconnectBoard).
    StageDisconnected(usize),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::BadPlan(s) => write!(f, "bad plan: {s}"),
            RuntimeError::WorkerDied(s) => write!(f, "worker died: {s}"),
            RuntimeError::StageHung(s) => write!(f, "stage {s} hung (heartbeat timeout)"),
            RuntimeError::Stalled(s) => write!(f, "pipeline stalled: {s}"),
            RuntimeError::Protocol(s) => write!(f, "protocol violation: {s}"),
            RuntimeError::DeviceLost(d) => write!(f, "device {d} lost permanently"),
            RuntimeError::StageDisconnected(s) => {
                write!(f, "stage {s} dropped a work item: downstream stage disconnected")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Result of a pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeOutput {
    /// Generated tokens per input sequence (`n_generate` each).
    pub tokens: Vec<Vec<usize>>,
    /// Loader statistics per stage.
    pub loader_stats: Vec<LoaderStats>,
    /// Wall-clock seconds of the generation run (excluding loading).
    pub wall_s: f64,
    /// Per-stage execution counters (busy time, items) from the workers.
    pub stage_metrics: Vec<StageMetrics>,
}

/// Greedy argmax over a logits row. `total_cmp` gives a total order
/// over floats (NaN sorts last), so no comparison can panic; an empty
/// row — impossible for a well-formed model — argmaxes to 0.
fn argmax(logits: &[f32]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i)
}

/// Detection and injection settings for one attempt. The plain entry
/// points leave every timeout off (failure = disconnect, as before);
/// the supervisor turns them on.
#[derive(Clone)]
pub(crate) struct AttemptSupervision {
    pub injector: Option<Arc<FaultInjector>>,
    pub heartbeats: Option<Arc<Heartbeats>>,
    pub heartbeat_timeout: Option<Duration>,
    pub progress_timeout: Option<Duration>,
    pub tick: Option<Duration>,
    pub telemetry: Option<Arc<Telemetry>>,
    /// Inter-stage queue capacity. `Some(k)` bounds every channel of the
    /// attempt to `k` in-flight messages, so a slow stage backpressures
    /// its upstream (and ultimately the master's admission) instead of
    /// buffering unboundedly; `None` keeps the legacy unbounded queues.
    pub queue_cap: Option<usize>,
    /// Time source for every deadline and sleep of the attempt: wall
    /// clock in production, virtual under [`crate::simnet`].
    pub clock: Arc<dyn Clock>,
    /// Live-migration support handed to every worker of the attempt
    /// (checkpoint + quantizer settings for preparing proposed plans).
    /// `None` = workers refuse plan proposals with a typed abort.
    pub migration_host: Option<Arc<MigrationHost>>,
}

impl Default for AttemptSupervision {
    fn default() -> Self {
        Self {
            injector: None,
            heartbeats: None,
            heartbeat_timeout: None,
            progress_timeout: None,
            tick: None,
            telemetry: None,
            queue_cap: None,
            clock: real_clock(),
            migration_host: None,
        }
    }
}

impl AttemptSupervision {
    fn tick(&self) -> Duration {
        self.tick.unwrap_or(Duration::from_millis(5))
    }
}

/// The master endpoint, generic over what carries its messages: a
/// [`ChannelTransport`] for the in-process engine, a TCP transport for
/// the multi-process runner in [`crate::net::dist`]. The generation
/// loop ([`drive_generation`]) is identical either way — which is what
/// makes the loopback run bit-identical to the in-process one.
pub(crate) struct Master<'m, T: Transport> {
    pub(crate) model: &'m RefModel,
    /// Outbound edge to stage 0 + inbound edge from the last stage.
    pub(crate) link: T,
    /// Last work-item id received — duplicates are discarded here when
    /// the final stage is the one duplicating.
    pub(crate) last_step: Cell<Option<u64>>,
    /// Observability hub of this run, if tracing is on.
    pub(crate) telemetry: Option<Arc<Telemetry>>,
    /// Whether the stage-0 queue gauge lives in this process (in-process
    /// runs). A distributed master must not bump it: the dequeue side
    /// runs in another process and the gauge would only ever grow.
    pub(crate) local_gauges: bool,
}

impl<'m> Master<'m, ChannelTransport> {
    /// In-process master over a channel pair (with link accounting when
    /// traced: outbound = link 0, inbound = link `n_stages`).
    pub(crate) fn over_channels(
        model: &'m RefModel,
        to_first: Sender<WorkerMsg>,
        from_last: Receiver<WorkerMsg>,
        telemetry: Option<Arc<Telemetry>>,
        n_stages: usize,
    ) -> Self {
        Master {
            model,
            link: ChannelTransport::observed(from_last, to_first, telemetry.clone(), n_stages, 0),
            last_step: Cell::new(None),
            telemetry,
            local_gauges: true,
        }
    }
}

impl<'m, T: Transport> Master<'m, T> {
    /// Send toward stage 0, blocking in `tick`-sized slices while the
    /// (bounded) first queue is full. This is where backpressure reaches
    /// the master: admission slows to the pipeline's pace instead of
    /// buffering unboundedly. While blocked, the heartbeat and progress
    /// checks still run, so a genuinely hung stage surfaces as
    /// `StageHung`/`Stalled` rather than a silent deadlock.
    fn send(&self, mut item: WorkItem, sup: &AttemptSupervision) -> Result<(), RuntimeError> {
        if let Some(t) = &self.telemetry {
            item.sent_us = t.now_us();
            if self.local_gauges {
                if let Some(s0) = t.stage(0) {
                    s0.on_enqueue();
                }
            }
        }
        let deadline = sup.progress_timeout.map(|t| sup.clock.deadline(t));
        let mut msg = WorkerMsg::Work(item);
        loop {
            match self.link.send_msg(msg, sup.tick()) {
                Ok(()) => return Ok(()),
                Err(TransportSendError::Disconnected) => {
                    return Err(RuntimeError::WorkerDied("first stage unreachable".into()))
                }
                Err(TransportSendError::Timeout(m)) => {
                    msg = m;
                    if let (Some(hb), Some(t)) = (&sup.heartbeats, sup.heartbeat_timeout) {
                        if let Some(stage) = hb.stalest_over(t) {
                            return Err(RuntimeError::StageHung(stage));
                        }
                    }
                    if deadline.is_some_and(|d| sup.clock.expired(d)) {
                        return Err(RuntimeError::Stalled(
                            "master blocked on stage-0 backpressure past the progress timeout"
                                .into(),
                        ));
                    }
                }
            }
        }
    }

    /// Forward a control/migration message toward stage 0 (the master is
    /// the ring's re-forwarder for KV chunks and abort broadcasts).
    fn send_ctrl(&self, msg: WorkerMsg, sup: &AttemptSupervision) -> Result<(), RuntimeError> {
        let deadline = sup.progress_timeout.map(|t| sup.clock.deadline(t));
        let mut msg = msg;
        loop {
            match self.link.send_msg(msg, sup.tick()) {
                Ok(()) => return Ok(()),
                Err(TransportSendError::Disconnected) => {
                    return Err(RuntimeError::WorkerDied("first stage unreachable".into()))
                }
                Err(TransportSendError::Timeout(m)) => {
                    msg = m;
                    if deadline.is_some_and(|d| sup.clock.expired(d)) {
                        return Err(RuntimeError::Stalled(
                            "master blocked forwarding migration traffic past the progress timeout"
                                .into(),
                        ));
                    }
                }
            }
        }
    }

    /// Handle one non-`Work` ring message at the master: plan-swap
    /// acknowledgements feed the coordinator; the master's own
    /// `PlanPropose`/`PlanCommit` wrapping around the ring are sunk;
    /// worker aborts are recorded and rebroadcast downstream exactly
    /// once; in-transit KV chunks are re-forwarded to stage 0 (one extra
    /// circle at most — consumers never re-forward consumed slices).
    /// Returns an error only for failures that kill the attempt.
    fn on_ring_msg(
        &self,
        msg: WorkerMsg,
        sup: &AttemptSupervision,
        migration: &mut Option<&mut MigrationCoordinator>,
    ) -> Result<(), RuntimeError> {
        match msg {
            WorkerMsg::PlanReady { epoch, stage, swapped } => {
                if let Some(c) = migration.as_deref_mut() {
                    c.on_ready(epoch, stage, swapped);
                }
            }
            WorkerMsg::PlanPropose { .. } | WorkerMsg::PlanCommit { .. } => {
                // The master's own broadcast completed the circle: sink.
            }
            WorkerMsg::PlanAbort { epoch, reason } => {
                if let Some(c) = migration.as_deref_mut() {
                    if c.on_worker_abort(epoch, &reason) {
                        // Post-commit abort: the target plan is already
                        // authoritative — fail the attempt so the
                        // supervisor restarts on it.
                        return Err(RuntimeError::Stalled(format!(
                            "plan swap epoch {epoch} failed after commit: {reason}"
                        )));
                    }
                    if !c.abort_seen(epoch) {
                        // Make sure every stage tears the proposal down.
                        self.send_ctrl(WorkerMsg::PlanAbort { epoch, reason }, sup)?;
                    }
                }
            }
            WorkerMsg::KvChunk(c) => {
                let active = migration
                    .as_deref()
                    .is_some_and(|m| m.pending.as_ref().is_some_and(|p| p.epoch == c.epoch));
                if active {
                    self.send_ctrl(WorkerMsg::KvChunk(c), sup)?;
                }
                // else: stale chunk from a dead epoch — sink it.
            }
            WorkerMsg::KvReset { .. } => {
                // The serving engine's own slot-recycle broadcast wrapped
                // around the ring: every stage has cleared the slot — sink.
            }
            WorkerMsg::Work(_) | WorkerMsg::Shutdown | WorkerMsg::Protocol(_) => {
                unreachable!("on_ring_msg only receives migration traffic")
            }
        }
        Ok(())
    }

    /// Receive the next fresh work item, with live-migration handling:
    /// plan-swap traffic arriving between work items is dispatched to
    /// the coordinator instead of being treated as a protocol violation.
    fn recv_m(
        &self,
        sup: &AttemptSupervision,
        migration: &mut Option<&mut MigrationCoordinator>,
    ) -> Result<WorkItem, RuntimeError> {
        let deadline = sup.progress_timeout.map(|t| sup.clock.deadline(t));
        loop {
            match self.link.recv_msg(sup.tick()) {
                Ok(WorkerMsg::Work(item)) => {
                    if self.last_step.get() == Some(item.step) {
                        continue; // duplicated delivery
                    }
                    self.last_step.set(Some(item.step));
                    return Ok(item);
                }
                Ok(WorkerMsg::Shutdown) => {
                    return Err(RuntimeError::WorkerDied("premature shutdown".into()))
                }
                Ok(WorkerMsg::Protocol(e)) => return Err(RuntimeError::Protocol(e)),
                Ok(other) => self.on_ring_msg(other, sup, migration)?,
                Err(TransportRecvError::Disconnected) => {
                    return Err(RuntimeError::WorkerDied("last stage disconnected".into()))
                }
                Err(TransportRecvError::Timeout) => {
                    if let (Some(hb), Some(t)) = (&sup.heartbeats, sup.heartbeat_timeout) {
                        if let Some(stage) = hb.stalest_over(t) {
                            return Err(RuntimeError::StageHung(stage));
                        }
                    }
                    if deadline.is_some_and(|d| sup.clock.expired(d)) {
                        return Err(RuntimeError::Stalled(
                            "no output from the last stage within the progress timeout".into(),
                        ));
                    }
                }
            }
        }
    }

    /// One bounded-wait pump of the ring during a swap barrier or commit
    /// window: processes a single message if one is available. Returns
    /// whether a message was processed. A fresh (non-duplicate) work
    /// item here is a protocol violation — the pipeline is quiescent at
    /// a token boundary.
    fn pump_migration(
        &self,
        sup: &AttemptSupervision,
        migration: &mut Option<&mut MigrationCoordinator>,
    ) -> Result<bool, RuntimeError> {
        match self.link.recv_msg(sup.tick()) {
            Ok(WorkerMsg::Work(item)) => {
                if self.last_step.get() == Some(item.step) {
                    return Ok(true); // fault-injected duplicate: drop
                }
                Err(RuntimeError::Protocol(format!(
                    "work item step {} crossed a swap barrier",
                    item.step
                )))
            }
            Ok(WorkerMsg::Shutdown) => {
                Err(RuntimeError::WorkerDied("premature shutdown".into()))
            }
            Ok(WorkerMsg::Protocol(e)) => Err(RuntimeError::Protocol(e)),
            Ok(other) => {
                self.on_ring_msg(other, sup, migration)?;
                Ok(true)
            }
            Err(TransportRecvError::Disconnected) => {
                Err(RuntimeError::WorkerDied("last stage disconnected".into()))
            }
            Err(TransportRecvError::Timeout) => {
                if let (Some(hb), Some(t)) = (&sup.heartbeats, sup.heartbeat_timeout) {
                    if let Some(stage) = hb.stalest_over(t) {
                        return Err(RuntimeError::StageHung(stage));
                    }
                }
                Ok(false)
            }
        }
    }

    /// Logits for the last position of each sequence in a work item.
    /// Traced as a `"sample"` span on the master's trace thread.
    fn sample_next(&self, item: &WorkItem) -> Vec<(usize, usize)> {
        let start = self.telemetry.as_ref().map(|t| t.now_us());
        let out: Vec<(usize, usize)> = item
            .seqs
            .iter()
            .map(|(seq, h)| {
                let last = Matrix::from_vec(1, h.cols, h.row(h.rows - 1).to_vec());
                let logits = self.model.project_logits(&last);
                (*seq, argmax(logits.row(0)))
            })
            .collect();
        if let (Some(t), Some(ts)) = (&self.telemetry, start) {
            t.add_tokens(out.len() as u64);
            t.record_span(Span {
                tid: 0,
                name: "sample",
                phase: item.phase,
                ts_us: ts,
                dur_us: t.now_us().saturating_sub(ts),
                step: item.step,
                microbatch: item.microbatch,
                bits: Arc::from(""),
            });
        }
        out
    }
}

/// Execute `plan` on `checkpoint` over `prompts`, generating
/// `n_generate` tokens per sequence with greedy decoding.
///
/// `faults`: optional deterministic failure injection (tests and
/// resilience experiments; pass `None` in production). Detection here is
/// disconnect-only — fault kinds that require timeout detection (`Hang`,
/// `DropMessage`) need [`crate::supervisor::run_pipeline_supervised`].
pub fn run_pipeline(
    checkpoint: &RefModel,
    plan: &ExecutionPlan,
    prompts: &[Vec<usize>],
    n_generate: usize,
    rounding: Rounding,
    seed: u64,
    faults: Option<&FaultPlan>,
) -> Result<RuntimeOutput, RuntimeError> {
    run_pipeline_observed(checkpoint, plan, prompts, n_generate, rounding, seed, faults, None)
}

/// [`run_pipeline`] with an attached [`Telemetry`] hub: every stage
/// records latency histograms, queue depths and lifecycle spans into it,
/// ready for [`Telemetry::to_chrome_trace`] /
/// [`Telemetry::metrics_text`] export after the run. Pass
/// `Telemetry::new(plan.stages.len())`.
#[allow(clippy::too_many_arguments)]
pub fn run_pipeline_observed(
    checkpoint: &RefModel,
    plan: &ExecutionPlan,
    prompts: &[Vec<usize>],
    n_generate: usize,
    rounding: Rounding,
    seed: u64,
    faults: Option<&FaultPlan>,
    telemetry: Option<Arc<Telemetry>>,
) -> Result<RuntimeOutput, RuntimeError> {
    validate_inputs(checkpoint, plan, prompts, n_generate, faults)?;
    let (stage_weights, loader_stats) = load_all_stages(checkpoint, plan, rounding, seed);
    let mut tokens: Vec<Vec<usize>> = vec![Vec::with_capacity(n_generate); prompts.len()];
    let sink: MetricsSink =
        Arc::new(parking_lot::Mutex::new(vec![StageMetrics::default(); plan.stages.len()]));
    let sup = AttemptSupervision {
        injector: faults.map(FaultInjector::new),
        telemetry,
        ..AttemptSupervision::default()
    };
    let start = sup.clock.now();
    run_attempt(checkpoint, plan, prompts, &mut tokens, n_generate, &stage_weights, &sup, &sink, None)?;
    let wall_s = sup.clock.now().saturating_sub(start).as_secs_f64();
    let stage_metrics = sink.lock().clone();
    Ok(RuntimeOutput { tokens, loader_stats, wall_s, stage_metrics })
}

/// Comma-joined bitwidth label of a stage's shard (e.g. `"int4,fp16"`),
/// tagged onto that stage's trace spans.
pub(crate) fn bits_label(stage: &StagePlan) -> Arc<str> {
    let joined =
        stage.bits.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(",");
    Arc::from(joined.as_str())
}

/// Like [`run_pipeline`], but recovers from stage-worker failures: on a
/// crash the surviving progress is checkpointed (ragged sequences are
/// truncated to lock-step), the failed stage's weights are reloaded via
/// the on-the-fly quantizer — the fast-recovery path §5 motivates — and
/// generation resumes by re-prefilling `prompt ++ generated-so-far`
/// (greedy decoding makes the resume exact). Returns the output plus the
/// number of restarts taken.
///
/// `faults` optionally injects failures (use
/// [`FaultPlan::crash_schedule`] for the old per-attempt tuple
/// semantics); real deployments pass `None`.
#[allow(clippy::too_many_arguments)]
pub fn run_pipeline_recoverable(
    checkpoint: &RefModel,
    plan: &ExecutionPlan,
    prompts: &[Vec<usize>],
    n_generate: usize,
    rounding: Rounding,
    seed: u64,
    max_restarts: usize,
    faults: Option<&FaultPlan>,
) -> Result<(RuntimeOutput, usize), RuntimeError> {
    validate_inputs(checkpoint, plan, prompts, n_generate, faults)?;
    let clock = real_clock();
    let start = clock.now();
    let (stage_weights, loader_stats) = load_all_stages(checkpoint, plan, rounding, seed);
    let mut tokens: Vec<Vec<usize>> = vec![Vec::with_capacity(n_generate); prompts.len()];
    let sink: MetricsSink =
        Arc::new(parking_lot::Mutex::new(vec![StageMetrics::default(); plan.stages.len()]));
    let injector = faults.map(FaultInjector::new);
    let mut attempt = 0usize;
    loop {
        if let Some(inj) = &injector {
            inj.begin_attempt(attempt);
        }
        let sup = AttemptSupervision {
            injector: injector.clone(),
            clock: clock.clone(),
            ..AttemptSupervision::default()
        };
        match run_attempt(checkpoint, plan, prompts, &mut tokens, n_generate, &stage_weights, &sup, &sink, None) {
            Ok(()) => {
                let stage_metrics = sink.lock().clone();
                return Ok((
                    RuntimeOutput {
                        tokens,
                        loader_stats,
                        wall_s: clock.now().saturating_sub(start).as_secs_f64(),
                        stage_metrics,
                    },
                    attempt,
                ));
            }
            Err(e) => {
                if attempt >= max_restarts {
                    return Err(e);
                }
                // Checkpoint: truncate ragged progress to lock-step so the
                // resume decodes every sequence from the same step.
                checkpoint_lockstep(&mut tokens);
                attempt += 1;
                // In a real deployment only the dead stage reloads; the
                // module-level loader makes that cheap. Here stage weights
                // are immutable and shared, so reload is implicit.
            }
        }
    }
}

/// Truncate ragged progress to the shortest sequence so every sequence
/// resumes from the same decode step.
pub(crate) fn checkpoint_lockstep(tokens: &mut [Vec<usize>]) {
    let done = tokens.iter().map(Vec::len).min().unwrap_or(0);
    for t in tokens.iter_mut() {
        t.truncate(done);
    }
}

pub(crate) fn validate_inputs(
    checkpoint: &RefModel,
    plan: &ExecutionPlan,
    prompts: &[Vec<usize>],
    n_generate: usize,
    faults: Option<&FaultPlan>,
) -> Result<(), RuntimeError> {
    plan.validate(checkpoint.cfg.n_layers).map_err(RuntimeError::BadPlan)?;
    if let Some(f) = faults {
        f.validate(plan.stages.len()).map_err(RuntimeError::BadPlan)?;
    }
    if prompts.is_empty() {
        return Err(RuntimeError::BadPlan("no prompts".into()));
    }
    if n_generate == 0 {
        return Err(RuntimeError::BadPlan("n_generate must be ≥ 1".into()));
    }
    for (i, p) in prompts.iter().enumerate() {
        if p.is_empty() {
            return Err(RuntimeError::BadPlan(format!("prompt {i} is empty")));
        }
        if p.len() + n_generate > checkpoint.cfg.max_seq {
            return Err(RuntimeError::BadPlan(format!("prompt {i} exceeds max_seq")));
        }
    }
    Ok(())
}

pub(crate) type StageWeights = Vec<Vec<llmpq_model::LayerWeights>>;

pub(crate) fn load_all_stages(
    checkpoint: &RefModel,
    plan: &ExecutionPlan,
    rounding: Rounding,
    seed: u64,
) -> (StageWeights, Vec<LoaderStats>) {
    let mut stage_weights = Vec::new();
    let mut loader_stats = Vec::new();
    for s in &plan.stages {
        let (w, stats) = load_stage_weights(checkpoint, s.layer_start, &s.bits, rounding, seed);
        stage_weights.push(w);
        loader_stats.push(stats);
    }
    (stage_weights, loader_stats)
}

/// The generation loop the master drives, transport-agnostic: prefill
/// over `prompt ++ generated-prefix`, then lock-step decode with hybrid
/// micro-batch sizing, finishing with a best-effort graceful `Shutdown`
/// downstream. The same function serves the in-process engine (channel
/// transport) and the multi-process runner (TCP transport), which is
/// what makes a distributed loopback run bit-identical to a local one.
/// `tokens` may hold a lock-step prefix (recovery resume).
pub(crate) fn drive_generation<T: Transport>(
    master: &Master<'_, T>,
    plan: &ExecutionPlan,
    prompts: &[Vec<usize>],
    tokens: &mut [Vec<usize>],
    n_generate: usize,
    sup: &AttemptSupervision,
) -> Result<(), RuntimeError> {
    drive_generation_migrating(master, plan, prompts, tokens, n_generate, sup, None)
}

/// Sequence-chunking of the global batch for one phase.
fn batch_chunks(n_seqs: usize, size: usize) -> Vec<Vec<usize>> {
    (0..n_seqs).collect::<Vec<_>>().chunks(size.max(1)).map(|c| c.to_vec()).collect()
}

/// Exact KV payload bytes a swap from `old` to `new` must move: every
/// `(sequence, layer)` slice whose owning stage changes ships its K and
/// V rows (`rows × hidden` f32 each).
fn swap_kv_payload_bytes(
    old: &ExecutionPlan,
    new: &ExecutionPlan,
    positions: &[usize],
    hidden: usize,
) -> u64 {
    let owner = |plan: &ExecutionPlan, layer: usize| {
        plan.stages.iter().position(|s| (s.layer_start..s.layer_end).contains(&layer))
    };
    let n_layers = old.n_layers();
    let moved_layers: u64 =
        (0..n_layers).filter(|&l| owner(old, l) != owner(new, l)).count() as u64;
    let total_rows: u64 = positions.iter().map(|&p| p as u64).sum();
    moved_layers * total_rows * hidden as u64 * 4 * 2 // K and V
}

/// [`drive_generation`] with an optional live-swap coordinator: swap
/// proposals are opened as early as possible (prepare overlaps
/// serving), and at each scheduled token boundary the master runs the
/// two-phase barrier — wait for every stage's prepared `PlanReady`,
/// send `PlanCommit`, forward migrating KV chunks, wait for every
/// swapped `PlanReady` — before decoding under the target plan. Any
/// pre-commit failure aborts back to the old plan and decoding
/// continues uninterrupted; post-commit failures fail the attempt (the
/// coordinator keeps the target plan authoritative for the restart).
pub(crate) fn drive_generation_migrating<T: Transport>(
    master: &Master<'_, T>,
    plan: &ExecutionPlan,
    prompts: &[Vec<usize>],
    tokens: &mut [Vec<usize>],
    n_generate: usize,
    sup: &AttemptSupervision,
    mut migration: Option<&mut MigrationCoordinator>,
) -> Result<(), RuntimeError> {
    let n_seqs = prompts.len();
    let done = tokens.iter().map(Vec::len).min().unwrap_or(0);
    let mut epoch = migration.as_deref().map_or(0, |c| c.active_epoch);
    let mut next_step = 0u64;
    let mut step = || {
        let s = next_step;
        next_step += 1;
        s
    };

    // Positions after the (extended) prefill below. Invariant: every
    // stage's KV cache holds exactly `positions[s]` rows for sequence
    // `s`, which is what sizes the KV handoff at a swap.
    let mut positions: Vec<usize> = prompts.iter().map(|p| p.len() + done).collect();

    // --- Prefill over prompt ++ generated prefix ---
    let chunks = batch_chunks(n_seqs, plan.microbatch.prefill_size);
    for (mb, chunk) in chunks.iter().enumerate() {
        let seqs = chunk
            .iter()
            .map(|&s| {
                let mut full = prompts[s].clone();
                full.extend_from_slice(&tokens[s][..done]);
                (s, master.model.embed_tokens(&full, 0))
            })
            .collect();
        master.send(
            WorkItem { step: step(), epoch, microbatch: mb, phase: Phase::Prefill, sent_us: 0, seqs },
            sup,
        )?;
    }
    for _ in &chunks {
        let item = master.recv_m(sup, &mut migration)?;
        for (seq, tok) in master.sample_next(&item) {
            tokens[seq].push(tok);
        }
    }

    // --- Decode ---
    let mut cur_plan: Option<ExecutionPlan> = None; // Some(_) after a committed swap
    let mut dec_chunks = batch_chunks(n_seqs, plan.microbatch.decode_size);
    for _step in done + 1..n_generate {
        // Open the next scheduled proposal as early as possible so the
        // workers' prepare (requantize) overlaps serving.
        if let Some((e, json)) = migration.as_deref_mut().and_then(|c| c.open_proposal()) {
            master.send_ctrl(WorkerMsg::PlanPropose { epoch: e, plan_json: json }, sup)?;
        }
        // Swap boundary: the pipeline is quiescent between decode
        // iterations, so tokens `0.._step` were produced by the old plan
        // and everything from `_step` on belongs to the target.
        let boundary_due = migration.as_deref().is_some_and(|c| {
            c.pending
                .as_ref()
                .is_some_and(|p| !p.commit_sent && _step >= c.schedule[p.idx].at_token)
        });
        if boundary_due {
            // Phase 1 barrier: every stage prepared, or abort.
            let deadline =
                sup.clock.deadline(migration.as_deref().expect("checked").prepare_timeout);
            let mut abort_reason: Option<String> = None;
            loop {
                let c = migration.as_deref().expect("checked");
                if c.all_prepared() {
                    break;
                }
                if let Some(r) = c.pending_abort() {
                    abort_reason = Some(r);
                    break;
                }
                if sup.clock.expired(deadline) {
                    abort_reason = Some("prepare barrier timed out".into());
                    break;
                }
                master.pump_migration(sup, &mut migration)?;
            }
            let c = migration.as_deref_mut().expect("checked");
            if let Some(reason) = abort_reason {
                // Abort path: nothing was destroyed — the old plan keeps
                // serving this very iteration.
                if let Some(e) = c.abort_pending(&reason) {
                    if !c.abort_seen(e) {
                        master.send_ctrl(WorkerMsg::PlanAbort { epoch: e, reason }, sup)?;
                    }
                }
                if let Some(t) = &sup.telemetry {
                    t.note_migration_aborted();
                }
            } else {
                // Phase 2: point of no return.
                let e = c.pending.as_ref().expect("barrier passed").epoch;
                let t0 = sup.clock.now();
                c.mark_commit_sent(t0.as_micros() as u64);
                let target = c.schedule[c.pending.as_ref().expect("pending").idx].plan.clone();
                let old = cur_plan.as_ref().unwrap_or(plan);
                let kv_bytes = swap_kv_payload_bytes(old, &target, &positions, master.model.cfg.hidden);
                c.add_kv_bytes(kv_bytes);
                master.send_ctrl(WorkerMsg::PlanCommit { epoch: e }, sup)?;
                let commit_deadline = sup.clock.deadline(c.commit_timeout);
                loop {
                    let c = migration.as_deref().expect("checked");
                    if c.all_swapped() {
                        break;
                    }
                    if sup.clock.expired(commit_deadline) {
                        return Err(RuntimeError::Stalled(format!(
                            "plan swap epoch {e} commit window timed out"
                        )));
                    }
                    master.pump_migration(sup, &mut migration)?;
                }
                let c = migration.as_deref_mut().expect("checked");
                let now_us = sup.clock.now().as_micros() as u64;
                let report = c.finish_commit(now_us).expect("pending resolved").clone();
                if let Some(t) = &sup.telemetry {
                    t.note_swap(report.latency_us, report.kv_bytes);
                    t.set_epoch(report.epoch);
                }
                epoch = report.epoch;
                dec_chunks = batch_chunks(n_seqs, target.microbatch.decode_size);
                cur_plan = Some(target);
            }
        }
        for (mb, chunk) in dec_chunks.iter().enumerate() {
            let seqs = chunk
                .iter()
                .map(|&s| {
                    // Infallible: the decode loop starts at done+1, so the
                    // prefill above pushed ≥1 token into every sequence.
                    let last = *tokens[s].last().expect("prefill produced a token");
                    let x = master.model.embed_tokens(&[last], positions[s]);
                    (s, x)
                })
                .collect();
            master.send(
                WorkItem { step: step(), epoch, microbatch: mb, phase: Phase::Decode, sent_us: 0, seqs },
                sup,
            )?;
        }
        for chunk in &dec_chunks {
            let item = master.recv_m(sup, &mut migration)?;
            for (seq, tok) in master.sample_next(&item) {
                tokens[seq].push(tok);
            }
            for &s in chunk {
                positions[s] += 1;
            }
        }
    }

    // Graceful shutdown. A full (bounded) queue may time this out; the
    // workers then exit via channel disconnect (or wire EOF) when the
    // master's endpoints drop, which flushes metrics all the same.
    let _ = master.link.send_msg(WorkerMsg::Shutdown, sup.tick());
    Ok(())
}

/// One generation attempt. `tokens` may hold an already-generated
/// lock-step prefix (recovery resume); on failure it retains whatever
/// progress was made. `migration` attaches a live plan-swap coordinator
/// to the attempt (see [`crate::migrate`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_attempt(
    checkpoint: &RefModel,
    plan: &ExecutionPlan,
    prompts: &[Vec<usize>],
    tokens: &mut [Vec<usize>],
    n_generate: usize,
    stage_weights: &StageWeights,
    sup: &AttemptSupervision,
    sink: &MetricsSink,
    migration: Option<&mut MigrationCoordinator>,
) -> Result<(), RuntimeError> {
    let n_seqs = prompts.len();
    let n_stages = plan.stages.len();
    let done = tokens.iter().map(Vec::len).min().unwrap_or(0);
    debug_assert!(tokens.iter().all(|t| t.len() == done), "resume requires lock-step prefix");
    if done >= n_generate {
        return Ok(());
    }

    // Attempt-local: records which stage dropped an item on a
    // downstream disconnect, for root-cause attribution below.
    let board = disconnect_board();

    let res = std::thread::scope(|scope| {
        // Channel chain: master → s0 → s1 → … → master, bounded when the
        // supervision asks for backpressure.
        let mut senders: Vec<Sender<WorkerMsg>> = Vec::new();
        let mut receivers: Vec<Receiver<WorkerMsg>> = Vec::new();
        for _ in 0..=n_stages {
            let (tx, rx) = match sup.queue_cap {
                Some(cap) => bounded(cap),
                None => unbounded(),
            };
            senders.push(tx);
            receivers.push(rx);
        }
        let to_first = senders[0].clone();
        let from_last = receivers[n_stages].clone();
        for (i, weights) in stage_weights.iter().enumerate() {
            let rx = receivers[i].clone();
            let tx = senders[i + 1].clone();
            let ctx = WorkerCtx {
                stage: i,
                device: plan.stages[i].device,
                n_heads: checkpoint.cfg.n_heads,
                hidden: checkpoint.cfg.hidden,
                alibi: checkpoint.cfg.alibi,
                n_seqs,
                injector: sup.injector.clone(),
                heartbeats: sup.heartbeats.clone(),
                sink: Some(sink.clone()),
                telemetry: sup.telemetry.clone(),
                bits: bits_label(&plan.stages[i]),
                tick: sup.tick(),
                disconnects: Some(board.clone()),
                clock: sup.clock.clone(),
                layer_start: plan.stages[i].layer_start,
                migration: sup.migration_host.clone(),
            };
            scope.spawn(move || run_worker_ctx(weights, &ctx, rx, tx));
        }
        drop(senders);
        drop(receivers);

        let master =
            Master::over_channels(checkpoint, to_first, from_last, sup.telemetry.clone(), n_stages);
        let res =
            drive_generation_migrating(&master, plan, prompts, tokens, n_generate, sup, migration);

        // Un-wedge hung workers before the scope joins them. On the
        // success path the workers have already drained (or will see the
        // master's channels drop), so this is a no-op.
        if res.is_err() {
            if let Some(inj) = &sup.injector {
                inj.set_abort();
            }
        }
        res
    });

    // Root-cause attribution: if a stage recorded a dropped item on a
    // downstream disconnect, the generic "worker died / stalled" the
    // master saw is a symptom — surface the drop instead. Hangs and
    // protocol violations keep their own, more specific, diagnosis.
    match res {
        Err(RuntimeError::WorkerDied(_) | RuntimeError::Stalled(_)) => {
            let dropped = board.lock().first().copied();
            match dropped {
                Some(stage) => Err(RuntimeError::StageDisconnected(stage)),
                None => res,
            }
        }
        _ => res,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_pq::{ExecutionPlan, StagePlan};
    use llmpq_model::RefConfig;
    use llmpq_quant::{quantize_model, BitAssignment, Bitwidth};
    use llmpq_workload::MicrobatchPlan;

    fn model() -> RefModel {
        RefModel::new(RefConfig::tiny())
    }

    fn plan(bits: Vec<Bitwidth>, split: usize, mb: MicrobatchPlan) -> ExecutionPlan {
        let n = bits.len();
        ExecutionPlan {
            model: "tiny".into(),
            cluster: "test".into(),
            stages: vec![
                StagePlan { device: 0, layer_start: 0, layer_end: split, bits: bits[..split].to_vec() },
                StagePlan { device: 1, layer_start: split, layer_end: n, bits: bits[split..].to_vec() },
            ],
            microbatch: mb,
            scheme: "LLM-PQ".into(),
            kv_bits: 16,
        }
    }

    fn mb(p: usize, d: usize, n_seqs: usize) -> MicrobatchPlan {
        MicrobatchPlan {
            prefill_size: p,
            prefill_count: n_seqs.div_ceil(p),
            decode_size: d,
            decode_count: n_seqs.div_ceil(d),
        }
    }

    #[test]
    fn pipeline_matches_sequential_reference() {
        // The headline correctness test: the multi-threaded, pipelined,
        // on-the-fly-quantized runtime must emit exactly the tokens of
        // single-threaded greedy generation on the eagerly quantized
        // model.
        let m = model();
        let bits = vec![Bitwidth::Int8, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2, 3], vec![9, 8, 7, 6], vec![4, 4]];
        let out = run_pipeline(&m, &plan(bits.clone(), 1, mb(2, 3, 3)), &prompts, 6, Rounding::Deterministic, 0, None)
            .expect("runtime ok");

        let qm = quantize_model(&m, &BitAssignment { bits }, Rounding::Deterministic, 0);
        for (i, p) in prompts.iter().enumerate() {
            let want = qm.generate(p, 6, 0.0, 0).tokens;
            assert_eq!(out.tokens[i], want, "sequence {i}");
        }
    }

    #[test]
    fn microbatch_sizing_does_not_change_tokens() {
        let m = model();
        let bits = vec![Bitwidth::Int4, Bitwidth::Int4];
        let prompts = vec![vec![5, 6, 7], vec![8, 9], vec![10, 11, 12], vec![13]];
        let a = run_pipeline(&m, &plan(bits.clone(), 1, mb(1, 4, 4)), &prompts, 5, Rounding::Deterministic, 3, None)
            .unwrap();
        let b = run_pipeline(&m, &plan(bits, 1, mb(4, 1, 4)), &prompts, 5, Rounding::Deterministic, 3, None)
            .unwrap();
        assert_eq!(a.tokens, b.tokens);
    }

    #[test]
    fn worker_failure_is_reported_not_hung() {
        let m = model();
        let bits = vec![Bitwidth::Fp16, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2], vec![3, 4]];
        let faults = FaultPlan::crash(1, 1); // stage 1 dies after one item
        let res = run_pipeline(
            &m,
            &plan(bits, 1, mb(1, 2, 2)),
            &prompts,
            4,
            Rounding::Deterministic,
            0,
            Some(&faults),
        );
        // Depending on timing the master sees the crash directly
        // (WorkerDied) or an upstream stage reports the broken link
        // first (StageDisconnected) — both name the failure, not a hang.
        assert!(
            matches!(res, Err(RuntimeError::WorkerDied(_) | RuntimeError::StageDisconnected(_))),
            "{res:?}"
        );
    }

    #[test]
    fn bad_plans_rejected_up_front() {
        let m = model();
        let bits = vec![Bitwidth::Fp16, Bitwidth::Fp16];
        let good = plan(bits.clone(), 1, mb(1, 1, 1));
        assert!(matches!(
            run_pipeline(&m, &good, &[], 4, Rounding::Deterministic, 0, None),
            Err(RuntimeError::BadPlan(_))
        ));
        assert!(matches!(
            run_pipeline(&m, &good, &[vec![]], 4, Rounding::Deterministic, 0, None),
            Err(RuntimeError::BadPlan(_))
        ));
        assert!(matches!(
            run_pipeline(&m, &good, &[vec![1; 200]], 4, Rounding::Deterministic, 0, None),
            Err(RuntimeError::BadPlan(_))
        ));
        let mut broken = plan(bits.clone(), 1, mb(1, 1, 1));
        broken.stages[1].layer_start = 2;
        assert!(matches!(
            run_pipeline(&m, &broken, &[vec![1]], 4, Rounding::Deterministic, 0, None),
            Err(RuntimeError::BadPlan(_))
        ));
        // A fault plan targeting a stage the plan doesn't have.
        let good = plan(bits, 1, mb(1, 1, 1));
        let faults = FaultPlan::crash(5, 0);
        assert!(matches!(
            run_pipeline(&m, &good, &[vec![1]], 4, Rounding::Deterministic, 0, Some(&faults)),
            Err(RuntimeError::BadPlan(_))
        ));
    }

    #[test]
    fn recovery_resumes_and_matches_sequential() {
        // Stage 1 dies after two work items on the first attempt; the
        // recoverable runner must restart, resume from the checkpoint,
        // and still produce exactly the sequential reference tokens.
        let m = model();
        let bits = vec![Bitwidth::Int8, Bitwidth::Int4];
        let prompts = vec![vec![1, 2, 3], vec![7, 8], vec![4, 5, 6]];
        let faults = FaultPlan::crash_schedule(&[(1, 2)]); // attempt 0: stage 1 dies after 2 items
        let (out, restarts) = run_pipeline_recoverable(
            &m,
            &plan(bits.clone(), 1, mb(1, 3, 3)),
            &prompts,
            7,
            Rounding::Deterministic,
            0,
            3,
            Some(&faults),
        )
        .expect("recovered");
        assert_eq!(restarts, 1, "exactly one restart");
        let qm = quantize_model(&m, &BitAssignment { bits }, Rounding::Deterministic, 0);
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(out.tokens[i], qm.generate(p, 7, 0.0, 0).tokens, "sequence {i}");
        }
    }

    #[test]
    fn recovery_survives_repeated_failures() {
        let m = model();
        let bits = vec![Bitwidth::Fp16, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2], vec![3, 4]];
        let faults = FaultPlan::crash_schedule(&[(0, 1), (1, 3)]); // two consecutive crashes
        let (out, restarts) = run_pipeline_recoverable(
            &m,
            &plan(bits.clone(), 1, mb(1, 2, 2)),
            &prompts,
            6,
            Rounding::Deterministic,
            0,
            5,
            Some(&faults),
        )
        .expect("recovered");
        assert_eq!(restarts, 2);
        let qm = quantize_model(&m, &BitAssignment { bits }, Rounding::Deterministic, 0);
        assert_eq!(out.tokens[0], qm.generate(&prompts[0], 6, 0.0, 0).tokens);
    }

    #[test]
    fn recovery_gives_up_after_max_restarts() {
        let m = model();
        let bits = vec![Bitwidth::Fp16, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2]];
        // Every attempt crashes, but only one restart is allowed.
        let faults = FaultPlan::crash_schedule(&[(0, 0), (0, 0), (0, 0)]);
        let res = run_pipeline_recoverable(
            &m,
            &plan(bits, 1, mb(1, 1, 1)),
            &prompts,
            6,
            Rounding::Deterministic,
            0,
            1,
            Some(&faults),
        );
        assert!(matches!(
            res,
            Err(RuntimeError::WorkerDied(_) | RuntimeError::StageDisconnected(_))
        ));
    }

    #[test]
    fn recovery_without_failures_is_plain_run() {
        let m = model();
        let bits = vec![Bitwidth::Int4, Bitwidth::Int8];
        let prompts = vec![vec![9, 1, 2]];
        let (out, restarts) = run_pipeline_recoverable(
            &m,
            &plan(bits.clone(), 1, mb(1, 1, 1)),
            &prompts,
            5,
            Rounding::Deterministic,
            0,
            3,
            None,
        )
        .unwrap();
        assert_eq!(restarts, 0);
        let plain = run_pipeline(&m, &plan(bits, 1, mb(1, 1, 1)), &prompts, 5, Rounding::Deterministic, 0, None)
            .unwrap();
        assert_eq!(out.tokens, plain.tokens);
    }

    #[test]
    fn slowdown_fault_does_not_change_tokens() {
        // A straggler stage slows the pipeline but must not perturb the
        // numerics.
        let m = model();
        let bits = vec![Bitwidth::Int8, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2, 3], vec![4, 5]];
        let faults = FaultPlan {
            events: vec![crate::fault::FaultEvent {
                stage: 0,
                step: 1,
                attempt: None,
                kind: crate::fault::FaultKind::Slowdown { factor: 3.0 },
            }],
        };
        let slow = run_pipeline(&m, &plan(bits.clone(), 1, mb(1, 2, 2)), &prompts, 5, Rounding::Deterministic, 0, Some(&faults))
            .expect("slow but correct");
        let plain = run_pipeline(&m, &plan(bits, 1, mb(1, 2, 2)), &prompts, 5, Rounding::Deterministic, 0, None)
            .unwrap();
        assert_eq!(slow.tokens, plain.tokens);
    }

    #[test]
    fn duplicate_fault_does_not_change_tokens() {
        // Duplication at an interior stage (worker dedups) and at the
        // last stage (master dedups): tokens must be unaffected.
        let m = model();
        let bits = vec![Bitwidth::Int8, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2, 3], vec![4, 5]];
        for stage in [0usize, 1] {
            let faults = FaultPlan {
                events: vec![crate::fault::FaultEvent {
                    stage,
                    step: 2,
                    attempt: None,
                    kind: crate::fault::FaultKind::DuplicateMessage,
                }],
            };
            let dup = run_pipeline(&m, &plan(bits.clone(), 1, mb(1, 2, 2)), &prompts, 5, Rounding::Deterministic, 0, Some(&faults))
                .expect("duplicate handled");
            let plain = run_pipeline(&m, &plan(bits.clone(), 1, mb(1, 2, 2)), &prompts, 5, Rounding::Deterministic, 0, None)
                .unwrap();
            assert_eq!(dup.tokens, plain.tokens, "duplicating stage {stage}");
        }
    }

    #[test]
    fn stage_metrics_account_all_work() {
        let m = model();
        let bits = vec![Bitwidth::Fp16, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2, 3], vec![4, 5]];
        let n_gen = 5;
        let out = run_pipeline(&m, &plan(bits, 1, mb(1, 2, 2)), &prompts, n_gen, Rounding::Deterministic, 0, None)
            .unwrap();
        assert_eq!(out.stage_metrics.len(), 2);
        for (i, sm) in out.stage_metrics.iter().enumerate() {
            // 2 prefill items (µ=1) + 4 decode steps × 1 item (µ=2).
            assert_eq!(sm.items, 2 + (n_gen - 1), "stage {i} items");
            // Each item carries its sequences: prefill 1 each, decode 2.
            assert_eq!(sm.seq_forwards, 2 + (n_gen - 1) * 2, "stage {i} forwards");
            assert!(sm.busy_s > 0.0);
        }
    }

    #[test]
    fn loader_stats_surface_per_stage() {
        let m = model();
        let bits = vec![Bitwidth::Int3, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2, 3]];
        let out = run_pipeline(&m, &plan(bits, 1, mb(1, 1, 1)), &prompts, 3, Rounding::Deterministic, 0, None)
            .unwrap();
        assert_eq!(out.loader_stats.len(), 2);
        assert_eq!(out.loader_stats[0].quantized_modules, 6);
        assert_eq!(out.loader_stats[1].quantized_modules, 0);
        assert!(out.wall_s > 0.0);
    }
}
